//! Shared harness for the experiment binaries (`src/bin/exp_e*.rs`).
//!
//! Every experiment prints a claim header, runs at a scale selected by the
//! `NFM_SCALE` environment variable (`quick` for CI-sized runs, `full` for
//! the numbers recorded in EXPERIMENTS.md; default `full`), and emits both
//! an aligned table and CSV.

use nfm_core::baselines::{BaselineConfig, BaselineKind, GruBaseline};
use nfm_core::metrics::Confusion;
use nfm_core::pipeline::{
    FineTuneConfig, FmClassifier, FoundationModel, PipelineConfig, TextExample,
};
use nfm_core::report::Table;
use nfm_model::pretrain::{PretrainConfig, TaskMix};
use nfm_model::tokenize::Tokenizer;
use nfm_net::capture::Trace;
use nfm_traffic::dataset::Environment;

/// Experiment scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Sessions in the unlabeled pre-training corpus.
    pub pretrain_sessions: usize,
    /// Sessions in each labeled environment.
    pub labeled_sessions: usize,
    /// Pre-training epochs.
    pub pretrain_epochs: usize,
    /// Fine-tuning epochs.
    pub finetune_epochs: usize,
    /// Baseline (GRU) training epochs.
    pub baseline_epochs: usize,
}

impl Scale {
    /// Scale selected by `NFM_SCALE` (`quick` or `full`, default `full`).
    pub fn from_env() -> Scale {
        match std::env::var("NFM_SCALE").as_deref() {
            Ok("quick") => Scale {
                pretrain_sessions: 160,
                labeled_sessions: 120,
                pretrain_epochs: 1,
                finetune_epochs: 3,
                baseline_epochs: 4,
            },
            _ => Scale {
                pretrain_sessions: 500,
                labeled_sessions: 350,
                pretrain_epochs: 3,
                finetune_epochs: 5,
                baseline_epochs: 8,
            },
        }
    }
}

/// Print the standard experiment banner and emit an `exp.run` event to the
/// observability sink (a no-op unless `NFM_OBS_OUT` is set).
pub fn banner(id: &str, anchor: &str, claim: &str) {
    println!("==============================================================");
    println!("{id} — paper anchor: {anchor}");
    println!("claim under test: {claim}");
    println!("==============================================================\n");
    nfm_obs::event(
        "exp.run",
        &[("id", nfm_obs::Value::S(id)), ("anchor", nfm_obs::Value::S(anchor))],
    );
}

/// Print a table in both aligned and CSV form, and mirror it to the
/// observability sink as `table`/`row` records under the given title.
pub fn render_table(title: &str, table: &Table) {
    println!("{}", table.render());
    println!("[csv]\n{}", table.to_csv());
    nfm_obs::emit_table(title, table.header(), table.rows());
}

/// Finish an experiment run: snapshot the global metrics registry into the
/// observability sink (as `metric` records) and flush it. Call at the end of
/// every experiment `main`.
pub fn finish() {
    nfm_obs::emit_metrics(nfm_obs::global());
    nfm_obs::flush();
}

/// The default pipeline configuration at a given scale.
pub fn pipeline_config(scale: &Scale) -> PipelineConfig {
    PipelineConfig {
        pretrain: PretrainConfig { epochs: scale.pretrain_epochs, ..PretrainConfig::default() },
        ..PipelineConfig::default()
    }
}

/// Pre-train a foundation model on the standard unlabeled mixture.
pub fn pretrain_standard(
    scale: &Scale,
    tokenizer: &dyn Tokenizer,
    tasks: TaskMix,
) -> FoundationModel {
    let envs = Environment::pretrain_mix(scale.pretrain_sessions);
    let traces: Vec<Trace> = envs.iter().map(|e| e.simulate().trace).collect();
    let refs: Vec<&Trace> = traces.iter().collect();
    let mut cfg = pipeline_config(scale);
    cfg.pretrain.tasks = tasks;
    // Client-window contexts span related flows (DNS lookup + follow-on
    // connection), which is where the cross-protocol semantics live; E5
    // ablates this choice.
    cfg.context = nfm_model::context::ContextStrategy::ClientWindow { window_us: 5_000_000 };
    let (fm, _) = FoundationModel::pretrain_on(&refs, tokenizer, &cfg).expect("pretraining failed");
    fm
}

/// The four model families of the headline comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelFamily {
    /// GRU, random embeddings, labeled data only.
    GruRandom,
    /// GRU with GloVe embeddings from the labeled data, frozen.
    GruGlove,
    /// Pre-trained encoder frozen; only the head trains.
    FmFrozen,
    /// Pre-trained encoder fully fine-tuned.
    FmFinetuned,
}

impl ModelFamily {
    /// All families, report order.
    pub const ALL: [ModelFamily; 4] = [
        ModelFamily::GruRandom,
        ModelFamily::GruGlove,
        ModelFamily::FmFrozen,
        ModelFamily::FmFinetuned,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelFamily::GruRandom => "gru-random",
            ModelFamily::GruGlove => "gru-glove",
            ModelFamily::FmFrozen => "fm-frozen",
            ModelFamily::FmFinetuned => "fm-finetuned",
        }
    }
}

/// A trained model of any family, unified behind predict/evaluate.
pub enum TrainedModel {
    /// A GRU baseline.
    Gru(GruBaseline),
    /// A fine-tuned foundation-model classifier.
    Fm(FmClassifier),
}

impl TrainedModel {
    /// Evaluate on examples.
    pub fn evaluate(&self, examples: &[TextExample]) -> Confusion {
        match self {
            TrainedModel::Gru(m) => m.evaluate(examples),
            TrainedModel::Fm(m) => m.evaluate(examples),
        }
    }
}

/// Train one family on the given labeled examples.
pub fn train_family(
    family: ModelFamily,
    fm: &FoundationModel,
    train: &[TextExample],
    n_classes: usize,
    scale: &Scale,
) -> TrainedModel {
    match family {
        ModelFamily::GruRandom | ModelFamily::GruGlove => {
            let kind = if family == ModelFamily::GruRandom {
                BaselineKind::GruRandom
            } else {
                BaselineKind::GruGlove
            };
            TrainedModel::Gru(GruBaseline::train(
                train,
                n_classes,
                kind,
                &BaselineConfig { epochs: scale.baseline_epochs, ..BaselineConfig::default() },
            ))
        }
        ModelFamily::FmFrozen => {
            // Head-only training is cheap: give it more epochs and a higher
            // learning rate to converge. Mean pooling exposes pre-trained
            // token geometry to the probe directly.
            let cfg = FineTuneConfig {
                epochs: scale.finetune_epochs * 3,
                lr: 3e-3,
                freeze_encoder: true,
                pooling: nfm_core::pipeline::Pooling::Mean,
                ..FineTuneConfig::default()
            };
            TrainedModel::Fm(
                FmClassifier::fine_tune(fm, train, n_classes, &cfg).expect("fine-tuning failed"),
            )
        }
        ModelFamily::FmFinetuned => {
            // Standard BERT recipe: full fine-tuning from the [CLS]
            // position. (Ablations with frozen embeddings / mean pooling
            // trade in-distribution accuracy for transfer; EXPERIMENTS.md
            // discusses the tradeoff under E1 condition B.)
            let cfg = FineTuneConfig {
                epochs: scale.finetune_epochs,
                lr: 1e-3,
                ..FineTuneConfig::default()
            };
            TrainedModel::Fm(
                FmClassifier::fine_tune(fm, train, n_classes, &cfg).expect("fine-tuning failed"),
            )
        }
    }
}

/// Pre-train on a DNS-heavy unlabeled mixture — NorBERT's own setting
/// ("pre-trained a foundational model (NorBERT) on DNS traffic", §3.4).
/// Name tokens dominate the corpus, so their co-occurrence structure isn't
/// washed out by generic header tokens.
pub fn pretrain_dns_heavy(
    scale: &Scale,
    tokenizer: &dyn Tokenizer,
    tasks: TaskMix,
) -> FoundationModel {
    let envs: Vec<Environment> =
        Environment::pretrain_mix(scale.pretrain_sessions).into_iter().map(dns_heavy).collect();
    let traces: Vec<Trace> = envs.iter().map(|e| e.simulate().trace).collect();
    let refs: Vec<&Trace> = traces.iter().collect();
    let mut cfg = pipeline_config(scale);
    cfg.pretrain.tasks = tasks;
    // DNS contexts are short and cheap; spend more epochs on them.
    cfg.pretrain.epochs = scale.pretrain_epochs * 3;
    cfg.context = nfm_model::context::ContextStrategy::ClientWindow { window_us: 5_000_000 };
    let (fm, _) = FoundationModel::pretrain_on(&refs, tokenizer, &cfg).expect("pretraining failed");
    fm
}

/// Build the NorBERT-style DNS classification task from a labeled trace:
/// examples are DNS flows, the label is the queried site's semantic category
/// (mail/news/video/… — ground truth from the domain registry). This is the
/// downstream family NorBERT evaluated: classification of DNS traffic whose
/// discriminative names shift across deployments.
pub fn dns_category_examples(
    lt: &nfm_traffic::LabeledTrace,
    tokenizer: &dyn Tokenizer,
    max_tokens: usize,
) -> Vec<TextExample> {
    use nfm_traffic::domains::SiteCategory;
    let flows = nfm_traffic::dataset::extract_flows(lt, 1);
    flows
        .iter()
        .filter_map(|f| {
            if f.label.is_malicious() {
                return None;
            }
            // Any flow whose first packet is a DNS query qualifies — DNS
            // lookups appear standalone and as preludes of web/TLS/video
            // sessions alike.
            if f.key.src_port.max(f.key.dst_port) == 0 || f.key.protocol != 17 {
                return None;
            }
            let first = f.packets.first()?.parse().ok()?;
            if first.transport.dst_port() != Some(53) {
                return None;
            }
            let msg = nfm_net::wire::dns::Message::parse(first.transport.payload()).ok()?;
            let qname = &msg.questions.first()?.name;
            let category = lt.registry.categorize(qname)?;
            let label = SiteCategory::ALL.iter().position(|c| *c == category)?;
            let tokens = nfm_model::context::flow_context(&f.packets, tokenizer, max_tokens);
            (!tokens.is_empty()).then_some(TextExample { tokens, label })
        })
        .collect()
}

/// Number of classes in the DNS-category task.
pub fn dns_category_classes() -> usize {
    nfm_traffic::domains::SiteCategory::ALL.len()
}

/// A DNS-heavy variant of an environment (for the NorBERT-style DNS tasks):
/// same registry and seeds, but standalone DNS lookups dominate the session
/// mix so every site category accumulates labeled examples.
pub fn dns_heavy(mut env: Environment) -> Environment {
    env.config.mix.weights = [10.0, 0.5, 1.0, 0.5, 0.5, 0.2, 0.5, 0.2, 0.0];
    env
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dns_category_examples_extract() {
        let lt = nfm_traffic::simulate(&nfm_traffic::SimConfig {
            n_sessions: 60,
            ..nfm_traffic::SimConfig::default()
        });
        let tok = nfm_model::tokenize::field::FieldTokenizer::new();
        let ex = dns_category_examples(&lt, &tok, 64);
        assert!(!ex.is_empty());
        assert!(ex.iter().all(|e| e.label < dns_category_classes()));
    }

    #[test]
    fn scale_quick_is_smaller_than_full() {
        // Avoid mutating the process environment (tests run in parallel);
        // compare the two literal configurations instead.
        let quick = Scale {
            pretrain_sessions: 160,
            labeled_sessions: 120,
            pretrain_epochs: 1,
            finetune_epochs: 3,
            baseline_epochs: 4,
        };
        let full = Scale::from_env();
        assert!(
            quick.pretrain_sessions < full.pretrain_sessions || std::env::var("NFM_SCALE").is_ok()
        );
    }

    #[test]
    fn families_have_distinct_names() {
        let mut names: Vec<&str> = ModelFamily::ALL.iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4);
    }
}
