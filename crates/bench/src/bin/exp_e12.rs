//! E12 — the NetGLUE benchmark leaderboard (paper §4.2).
//!
//! Claim: the community needs "benchmarks \[comprising\] a dozen of network
//! downstream tasks including device classification, flow classification,
//! performance prediction, … malware detection". This binary runs the whole
//! suite across all four model families and prints the leaderboard — the
//! repository's flagship table.
//!
//! The `fm-frozen` family (head-only fine-tuning against the frozen
//! pre-trained encoder) is more than a leaderboard row: it is the training
//! recipe behind the shared-backbone serving path — `TaskHead::fine_tune`
//! produces bitwise the same head, and `MultiTaskServer` (E19) serves all
//! of these tasks off one encoder forward per flow. Its gap to
//! `fm-finetuned` here is the price of keeping the encoder shareable.

use nfm_bench::{banner, pretrain_standard, render_table, train_family, ModelFamily, Scale};
use nfm_core::netglue::{Task, TaskResult};
use nfm_core::report::{f3, Table};
use nfm_model::pretrain::TaskMix;
use nfm_model::tokenize::field::FieldTokenizer;
use nfm_traffic::dataset::{extract_flows, split_train_val, Environment};
use nfm_traffic::SimConfig;

fn main() {
    banner(
        "E12",
        "§4.2 (public benchmarks)",
        "a GLUE-style multi-task benchmark separates model families",
    );
    let scale = Scale::from_env();
    let tokenizer = FieldTokenizer::new();

    println!("pretraining foundation model…\n");
    let fm = pretrain_standard(&scale, &tokenizer, TaskMix::default());

    // A single labeled environment with attacks enabled so the malware task
    // has positives.
    let mut env = Environment::env_a(scale.labeled_sessions);
    env.config = SimConfig { anomaly_fraction: 0.15, ..env.config };
    let lt = env.simulate();
    let flows = extract_flows(&lt, 2);
    let (train_flows, eval_flows) = split_train_val(flows, 0.3);

    let mut results: Vec<TaskResult> = Vec::new();
    for task in Task::ALL {
        let train = task.examples(&train_flows, &tokenizer, 94);
        let eval = task.examples(&eval_flows, &tokenizer, 94);
        if train.is_empty() || eval.is_empty() {
            continue;
        }
        println!(
            "task {} — {} train / {} eval, {} classes",
            task.name(),
            train.len(),
            eval.len(),
            task.n_classes()
        );
        for family in ModelFamily::ALL {
            let model = train_family(family, &fm, &train, task.n_classes(), &scale);
            let confusion = model.evaluate(&eval);
            results.push(TaskResult {
                task,
                model: family.name().to_string(),
                accuracy: confusion.accuracy(),
                macro_f1: confusion.macro_f1(),
                n_eval: eval.len(),
            });
        }
    }

    // Leaderboard: rows = model families, columns = tasks (macro F1) + mean.
    println!();
    let mut header = vec!["model".to_string()];
    header.extend(Task::ALL.iter().map(|t| t.name().to_string()));
    header.push("mean f1".to_string());
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);
    for family in ModelFamily::ALL {
        let mut row = vec![family.name().to_string()];
        let mut scores = Vec::new();
        for task in Task::ALL {
            let score = results
                .iter()
                .find(|r| r.task == task && r.model == family.name())
                .map(|r| r.macro_f1);
            match score {
                Some(s) => {
                    scores.push(s);
                    row.push(f3(s));
                }
                None => row.push("-".to_string()),
            }
        }
        let mean = scores.iter().sum::<f64>() / scores.len().max(1) as f64;
        row.push(f3(mean));
        table.row(&row);
    }
    render_table("e12.results", &table);
    println!("paper shape: fm-finetuned leads the mean column; the benchmark");
    println!("separates families the way GLUE separates NLP models.");
    nfm_bench::finish();
}
