//! E3 — NetBERT-style analogy probes (paper §3.4).
//!
//! Claim: networking embeddings support analogies like "BGP is to router as
//! STP is to switch". On traffic tokens, the analogous regularities are
//! role-preserving shifts: query↔response across protocols, request verb ↔
//! status across applications, sibling ciphersuites across key lengths.
//! Compared across Word2Vec skip-gram embeddings and the FM's input
//! embeddings, over the same field-token corpus.

use nfm_bench::{banner, pretrain_standard, render_table, Scale};
use nfm_core::report::Table;
use nfm_model::context::{contexts_from_trace, ContextStrategy};
use nfm_model::embed::analysis::analogy;
use nfm_model::embed::word2vec::{Word2Vec, Word2VecConfig};
use nfm_model::pretrain::TaskMix;
use nfm_model::tokenize::field::FieldTokenizer;
use nfm_model::vocab::Vocab;
use nfm_tensor::matrix::Matrix;
use nfm_traffic::dataset::Environment;

/// a : b :: c : expected
const ANALOGIES: [(&str, &str, &str, &str); 5] = [
    ("DNS_QUERY", "DNS_RESP", "TLS_CLIENT_HELLO", "TLS_SERVER_HELLO"),
    ("PORT_80", "HTTP_GET", "PORT_53", "DNS_QUERY"),
    ("CS_C02F", "CS_C030", "CS_C02B", "CS_C02C"),
    ("PORT_25", "MAIL_EHLO", "PORT_123", "NTP_CLIENT"),
    ("HTTP_GET", "HTTP_2XX", "MAIL_EHLO", "MAIL_250"),
];

fn probe(table: &mut Table, name: &str, emb: &Matrix, vocab: &Vocab) {
    for (a, b, c, expected) in ANALOGIES {
        let ids = [a, b, c, expected].map(|t| vocab.id_exact(t));
        let [Some(ia), Some(ib), Some(ic), Some(ie)] = ids else {
            table.row(&[
                name.into(),
                format!("{a}:{b} :: {c}:?"),
                expected.into(),
                "token missing".into(),
                "-".into(),
            ]);
            continue;
        };
        let candidates = analogy(emb, vocab, ia, ib, ic, 10);
        let rank = candidates
            .iter()
            .position(|n| n.id == ie)
            .map(|p| (p + 1).to_string())
            .unwrap_or(">10".to_string());
        let top: Vec<&str> = candidates.iter().take(3).map(|n| n.token.as_str()).collect();
        table.row(&[
            name.into(),
            format!("{a}:{b} :: {c}:?"),
            expected.into(),
            rank,
            top.join(" "),
        ]);
    }
}

fn main() {
    banner(
        "E3",
        "§3.4 (NetBERT analogies)",
        "embedding arithmetic recovers protocol-role analogies",
    );
    let scale = Scale::from_env();
    let tokenizer = FieldTokenizer::new();

    // Build the shared corpus once.
    let envs = Environment::pretrain_mix(scale.pretrain_sessions);
    let traces: Vec<_> = envs.iter().map(|e| e.simulate().trace).collect();
    let mut contexts = Vec::new();
    for t in &traces {
        contexts.extend(contexts_from_trace(t, &tokenizer, ContextStrategy::Flow, 94));
    }
    let vocab = Vocab::from_sequences(&contexts, 2);
    let encoded: Vec<Vec<usize>> = contexts.iter().map(|c| vocab.encode(c)).collect();

    println!("training word2vec skip-gram on {} contexts…", contexts.len());
    let w2v = Word2Vec::train(
        &encoded,
        &vocab,
        &Word2VecConfig { dim: 32, epochs: 6, ..Word2VecConfig::default() },
    );

    println!("pretraining foundation model…\n");
    let fm = pretrain_standard(&scale, &tokenizer, TaskMix::default());

    let mut table = Table::new(&["embeddings", "analogy", "expected", "rank", "top-3"]);
    probe(&mut table, "word2vec", &w2v.embeddings, &vocab);
    probe(&mut table, "fm-input", fm.encoder.token_embeddings(), &fm.vocab);
    render_table("e3.results", &table);
    println!("paper shape: the expected completion ranks at or near the top.");
    nfm_bench::finish();
}
