//! Diagnostic: does MLM pre-training cluster site-name tokens by semantic
//! category? Reports within- vs cross-category cosine for the QD_{domain}
//! tokens of both environment registries, plus per-category centroid
//! separability (the precondition for E1's transfer result).

use nfm_bench::Scale;
use nfm_core::report::{f3, Table};
use nfm_model::pretrain::TaskMix;
use nfm_model::tokenize::field::FieldTokenizer;
use nfm_tensor::matrix::cosine;
use nfm_traffic::domains::{DomainRegistry, SiteCategory};

fn report(
    table: &mut Table,
    model_name: &str,
    emb: &nfm_tensor::matrix::Matrix,
    vocab: &nfm_model::vocab::Vocab,
) {
    for (name, seed, zipf) in [("env-A(10)", 10u64, 1.1), ("env-B(77)", 77u64, 0.7)] {
        let reg = DomainRegistry::generate(seed, 4, zipf);
        // Collect (category, embedding) for brand tokens present in vocab.
        let mut items: Vec<(SiteCategory, Vec<f32>)> = Vec::new();
        for site in reg.sites() {
            let tok = format!("QD_{}", site.domain.labels()[0]);
            if let Some(id) = vocab.id_exact(&tok) {
                items.push((site.category, emb.row(id).to_vec()));
            }
        }
        let mut within = Vec::new();
        let mut cross = Vec::new();
        for i in 0..items.len() {
            for j in i + 1..items.len() {
                let c = cosine(&items[i].1, &items[j].1) as f64;
                if items[i].0 == items[j].0 {
                    within.push(c);
                } else {
                    cross.push(c);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        table.row(&[
            model_name.to_string(),
            name.to_string(),
            items.len().to_string(),
            f3(mean(&within)),
            f3(mean(&cross)),
            f3(mean(&within) - mean(&cross)),
        ]);
    }
}

fn main() {
    let scale = Scale::from_env();
    let tokenizer = FieldTokenizer::new();

    let mut table = Table::new(&["model", "registry", "tokens", "within", "cross", "separation"]);

    // Word2Vec over the same client-window contexts.
    {
        use nfm_model::context::{contexts_from_trace, ContextStrategy};
        use nfm_model::embed::word2vec::{Word2Vec, Word2VecConfig};
        use nfm_model::vocab::Vocab;
        use nfm_traffic::dataset::Environment;
        let envs: Vec<_> = Environment::pretrain_mix(scale.pretrain_sessions)
            .into_iter()
            .map(nfm_bench::dns_heavy)
            .collect();
        let traces: Vec<_> = envs.iter().map(|e| e.simulate().trace).collect();
        let mut contexts = Vec::new();
        for t in &traces {
            contexts.extend(contexts_from_trace(
                t,
                &tokenizer,
                ContextStrategy::ClientWindow { window_us: 5_000_000 },
                94,
            ));
        }
        let vocab = Vocab::from_sequences(&contexts, 2);
        let encoded: Vec<Vec<usize>> = contexts.iter().map(|c| vocab.encode(c)).collect();
        println!("word2vec on {} client-window contexts…", contexts.len());
        let w2v = Word2Vec::train(
            &encoded,
            &vocab,
            &Word2VecConfig { dim: 32, epochs: 6, ..Word2VecConfig::default() },
        );
        report(&mut table, "word2vec", &w2v.embeddings, &vocab);
    }

    println!("pretraining FM…");
    let fm = nfm_bench::pretrain_dns_heavy(&scale, &tokenizer, TaskMix::default());
    report(&mut table, "fm-mlm", fm.encoder.token_embeddings(), &fm.vocab);

    println!("{}", table.render());
}
