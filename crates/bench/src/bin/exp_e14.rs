//! E14 — fault-tolerant training (paper §4.3, operational robustness).
//!
//! Claim: a production foundation-model pipeline must survive the two
//! dominant training failure modes — numerical divergence (NaN/Inf losses,
//! exploding gradients) and process death mid-run — without human babysitting
//! and without changing the final model. This experiment exercises both:
//!
//! 1. **Divergence recovery** — NaN losses are injected at chosen steps; the
//!    `TrainGuard` must roll back to the epoch-start weights, halve the
//!    learning rate, reshuffle, and still finish. The recovery log is
//!    printed as a table.
//! 2. **Kill & resume** — a run snapshots every epoch; a second run resumes
//!    from a mid-run snapshot (simulating a kill at that point) and must
//!    produce *bitwise identical* final weights to the uninterrupted run.
//! 3. **Model round trip** — the pre-trained model is saved and reloaded
//!    through the versioned, checksummed format; embeddings must match
//!    bitwise and a corrupted file must be rejected with a typed error.

use std::path::PathBuf;

use nfm_bench::{banner, render_table, Scale};
use nfm_core::pipeline::{FoundationModel, PipelineConfig};
use nfm_core::report::Table;
use nfm_model::context::contexts_from_trace;
use nfm_model::nn::transformer::{Encoder, EncoderConfig};
use nfm_model::pretrain::{pretrain, PretrainConfig, TaskMix};
use nfm_model::tokenize::field::FieldTokenizer;
use nfm_model::vocab::Vocab;
use nfm_tensor::layers::Module;
use nfm_traffic::netsim::{simulate, SimConfig};

fn encoder_bits(encoder: &mut Encoder) -> Vec<u32> {
    let mut bits = Vec::new();
    encoder.visit_params(&mut |p, _| bits.extend(p.iter().map(|v| v.to_bits())));
    bits
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nfm_e14_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn main() {
    banner(
        "E14",
        "§4.3 (operational deployment)",
        "training survives NaN divergence and mid-run kills; resume is bitwise exact",
    );
    let scale = Scale::from_env();
    let tokenizer = FieldTokenizer::new();

    // A small shared corpus: enough flows for several batches per epoch.
    let sessions = scale.labeled_sessions.min(120);
    let lt = simulate(&SimConfig {
        n_sessions: sessions,
        n_general_hosts: 4,
        n_iot_sets: 1,
        ..SimConfig::default()
    });
    let contexts =
        contexts_from_trace(&lt.trace, &tokenizer, nfm_model::context::ContextStrategy::Flow, 46);
    let vocab = Vocab::from_sequences(&contexts, 2);
    let enc_cfg = EncoderConfig {
        vocab: vocab.len(),
        d_model: 16,
        n_heads: 2,
        n_layers: 1,
        d_ff: 32,
        max_len: 48,
    };
    let base =
        PretrainConfig { epochs: 4, tasks: TaskMix::mlm_only(), ..PretrainConfig::default() };
    println!("corpus: {} contexts, vocab {}\n", contexts.len(), vocab.len());

    // --- Scenario 1: divergence recovery -------------------------------
    println!("[1/3] injecting NaN losses at steps 3 and 9…");
    let cfg = PretrainConfig { inject_nan_at: vec![3, 9], ..base.clone() };
    let (_, _, stats) =
        pretrain(&contexts, &vocab, enc_cfg, &cfg).expect("guard should recover, not fail");
    let mut recovery = Table::new(&["epoch", "step", "cause", "action"]);
    for ev in &stats.guard_events {
        recovery.row(&[
            ev.epoch.to_string(),
            ev.step.to_string(),
            ev.cause.clone(),
            ev.action.clone(),
        ]);
    }
    render_table("e14.recovery", &recovery);
    assert!(!stats.guard_events.is_empty(), "injected NaNs must trip the guard");
    assert_eq!(stats.mlm_loss.len(), cfg.epochs, "all epochs completed despite faults");
    println!(
        "recovered from {} fault(s); final epoch loss {:.3}\n",
        stats.guard_events.len(),
        stats.mlm_loss.last().copied().unwrap_or(f32::NAN)
    );

    // --- Scenario 2: kill & resume -------------------------------------
    println!("[2/3] uninterrupted run vs kill-at-epoch-2 + resume…");
    let snap_dir = temp_dir("snapshots");
    let snap_cfg = PretrainConfig { snapshot_dir: Some(snap_dir.clone()), ..base.clone() };
    let (mut enc_full, _, _) =
        pretrain(&contexts, &vocab, enc_cfg, &snap_cfg).expect("uninterrupted run");
    // A kill after epoch 2 leaves snapshot_ep2.nfmc on disk; a fresh
    // process resumes from it with the same config.
    let resume_cfg =
        PretrainConfig { resume_from: Some(snap_dir.join("snapshot_ep2.nfmc")), ..base.clone() };
    let (mut enc_resumed, _, resumed_stats) =
        pretrain(&contexts, &vocab, enc_cfg, &resume_cfg).expect("resumed run");
    assert_eq!(resumed_stats.resumed_at, Some(2), "resumed from the epoch-2 snapshot");
    let full_bits = encoder_bits(&mut enc_full);
    let resumed_bits = encoder_bits(&mut enc_resumed);
    let identical = full_bits == resumed_bits;
    let mut resume_table = Table::new(&["run", "params", "bitwise equal"]);
    resume_table.row(&["uninterrupted".into(), full_bits.len().to_string(), "-".into()]);
    resume_table.row(&[
        "killed@ep2+resumed".into(),
        resumed_bits.len().to_string(),
        identical.to_string(),
    ]);
    render_table("e14.resume", &resume_table);
    assert!(identical, "resumed weights must be bitwise identical to the uninterrupted run");
    std::fs::remove_dir_all(&snap_dir).ok();
    println!();

    // --- Scenario 3: model save/load round trip ------------------------
    println!("[3/3] checksummed model file round trip…");
    let pipe_cfg = PipelineConfig {
        d_model: 16,
        n_heads: 2,
        n_layers: 1,
        d_ff: 32,
        max_len: 48,
        pretrain: PretrainConfig {
            epochs: 1,
            tasks: TaskMix::mlm_only(),
            ..PretrainConfig::default()
        },
        ..PipelineConfig::default()
    };
    let (fm, _) = FoundationModel::pretrain_on(&[&lt.trace], &tokenizer, &pipe_cfg)
        .expect("pretraining failed");
    let model_dir = temp_dir("model");
    let path = model_dir.join("model.nfmc");
    fm.save(&path).expect("save");
    let loaded = FoundationModel::load(&path).expect("load");
    let probe = vec!["IP4".to_string(), "PROTO_UDP".to_string()];
    let same = fm.embed(&probe).iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        == loaded.embed(&probe).iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    assert!(same, "loaded model embeddings must match bitwise");
    let mut bytes = std::fs::read(&path).expect("read");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&path, &bytes).expect("write");
    let err = FoundationModel::load(&path).expect_err("corrupted file must be rejected");
    println!("round trip bitwise: {same}; corrupted file rejected with: {err}");
    std::fs::remove_dir_all(&model_dir).ok();

    println!("\npaper shape: fault tolerance is table stakes for §4.3 operational");
    println!("deployment — recovery is automatic and resume changes nothing.");
    nfm_bench::finish();
}
