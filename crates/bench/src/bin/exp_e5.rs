//! E5 — context-construction ablation (paper §4.1.3).
//!
//! Claim: context design matters because capture points interleave
//! concurrent connections and practical models cap context length; the
//! paper proposes "use the first M tokens from each of the N successive IP
//! packets" as a budget-aware context. We sweep the four strategies for
//! pre-training (downstream encoding held fixed) and report downstream F1.

use nfm_bench::{banner, pipeline_config, render_table, train_family, ModelFamily, Scale};
use nfm_core::netglue::Task;
use nfm_core::pipeline::FoundationModel;
use nfm_core::report::{f3, Table};
use nfm_model::context::ContextStrategy;
use nfm_model::tokenize::field::FieldTokenizer;
use nfm_net::capture::Trace;
use nfm_traffic::dataset::{extract_flows, split_train_val, Environment};

fn main() {
    banner(
        "E5",
        "§4.1.3 (context construction)",
        "flow/session contexts beat per-packet and naive interleaved windows;\n  first-M-of-N recovers most quality under a tight budget",
    );
    let scale = Scale::from_env();
    let tokenizer = FieldTokenizer::new();
    let envs = Environment::pretrain_mix(scale.pretrain_sessions);
    let traces: Vec<Trace> = envs.iter().map(|e| e.simulate().trace).collect();
    let refs: Vec<&Trace> = traces.iter().collect();

    // Fixed downstream data.
    let task = Task::AppClassification;
    let lt_a = Environment::env_a(scale.labeled_sessions).simulate();
    let flows = extract_flows(&lt_a, 2);
    let (train_flows, eval_flows) = split_train_val(flows, 0.3);
    let train = task.examples(&train_flows, &tokenizer, 94);
    let eval = task.examples(&eval_flows, &tokenizer, 94);

    let strategies = [
        ContextStrategy::Packet,
        ContextStrategy::Flow,
        ContextStrategy::InterleavedWindow { window: 12 },
        ContextStrategy::FirstMofN { m: 8, n: 8 },
        ContextStrategy::ClientWindow { window_us: 5_000_000 },
    ];

    let mut table =
        Table::new(&["pretrain context", "contexts", "mlm acc", "downstream acc", "downstream f1"]);
    for strategy in strategies {
        println!("pretraining with {} contexts…", strategy.name());
        let mut cfg = pipeline_config(&scale);
        cfg.context = strategy;
        let (fm, stats) =
            FoundationModel::pretrain_on(&refs, &tokenizer, &cfg).expect("pretraining failed");
        let n_ctx: usize = traces
            .iter()
            .map(|t| {
                nfm_model::context::contexts_from_trace(t, &tokenizer, strategy, cfg.max_len - 2)
                    .len()
            })
            .sum();
        let model = train_family(ModelFamily::FmFinetuned, &fm, &train, task.n_classes(), &scale);
        let confusion = model.evaluate(&eval);
        table.row(&[
            strategy.name().to_string(),
            n_ctx.to_string(),
            f3(stats.final_mlm_accuracy as f64),
            f3(confusion.accuracy()),
            f3(confusion.macro_f1()),
        ]);
    }
    println!();
    render_table("e5.results", &table);
    println!("paper shape: flow > first-m-of-n > interleaved ≈ packet.");
    nfm_bench::finish();
}
