//! E13 (extension) — robustness to capture faults.
//!
//! The paper's benchmark discussion (§4.2) assumes clean captures; real
//! captures drop, corrupt, truncate, and reorder packets. This extension
//! measures how a fine-tuned classifier degrades as the *evaluation*
//! capture degrades — the deployment question a downstream user hits first.
//! (Fault model mirrors smoltcp's example fault injector.)

use nfm_bench::{
    banner, pretrain_standard, render_table, train_family, ModelFamily, Scale, TrainedModel,
};
use nfm_core::netglue::Task;
use nfm_core::report::{f3, Table};
use nfm_model::pretrain::TaskMix;
use nfm_model::tokenize::field::FieldTokenizer;
use nfm_traffic::dataset::{extract_flows, split_train_val, Environment};
use nfm_traffic::faults::{inject, FaultConfig};
use nfm_traffic::netsim::LabeledTrace;

fn main() {
    banner(
        "E13 (extension)",
        "§4.2 (data quality)",
        "classification degrades gracefully — not catastrophically — under\n  packet loss, corruption, and snap-length truncation",
    );
    let scale = Scale::from_env();
    let tokenizer = FieldTokenizer::new();
    let task = Task::AppClassification;

    println!("pretraining + fine-tuning on clean data…");
    let fm = pretrain_standard(&scale, &tokenizer, TaskMix::default());
    let lt = Environment::env_a(scale.labeled_sessions).simulate();
    let flows = extract_flows(&lt, 2);
    let (train_flows, _) = split_train_val(flows, 0.3);
    let train = task.examples(&train_flows, &tokenizer, 94);
    let model = train_family(ModelFamily::FmFinetuned, &fm, &train, task.n_classes(), &scale);
    let TrainedModel::Fm(clf) = model else { unreachable!("fm family") };

    // Independent evaluation capture, degraded at increasing severities.
    let base = Environment::env_a(scale.labeled_sessions / 2);
    let eval_lt =
        Environment { name: "eval", config: nfm_traffic::SimConfig { seed: 0xE13, ..base.config } }
            .simulate();

    let severities: [(&str, FaultConfig); 5] = [
        ("clean", FaultConfig::default()),
        ("drop 10%", FaultConfig { drop_chance: 0.10, seed: 2, ..FaultConfig::default() }),
        ("corrupt 10%", FaultConfig { corrupt_chance: 0.10, seed: 3, ..FaultConfig::default() }),
        ("snaplen 96B", FaultConfig { snaplen: 96, seed: 4, ..FaultConfig::default() }),
        ("noisy (15/15/5/10)", FaultConfig::noisy(5)),
    ];

    let mut table = Table::new(&["capture condition", "eval flows", "acc", "macro f1"]);
    for (name, cfg) in severities {
        let (trace, _) = inject(&eval_lt.trace, &cfg);
        let degraded = LabeledTrace {
            trace,
            labels: eval_lt.labels.clone(),
            registry: eval_lt.registry.clone(),
        };
        let flows = extract_flows(&degraded, 1);
        let eval = task.examples(&flows, &tokenizer, 94);
        if eval.is_empty() {
            continue;
        }
        let confusion = clf.evaluate(&eval);
        table.row(&[
            name.to_string(),
            eval.len().to_string(),
            f3(confusion.accuracy()),
            f3(confusion.macro_f1()),
        ]);
    }
    println!();
    render_table("e13.results", &table);
    println!("expected shape: graceful degradation; corruption hurts least (checksums");
    println!("drop bad packets), snap-length hurts payload-dependent classes most.");
    nfm_bench::finish();
}
