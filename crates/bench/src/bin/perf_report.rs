//! perf_report — wall-clock timings for the training/inference hot paths at
//! 1 and 4 worker threads, written to `BENCH_perf.json`.
//!
//! Records are `{name, threads, value, unit}` — `unit` is `"ms"` for wall
//! times, `"req_per_s"` for serving/cluster throughput, and `"ratio"` for
//! the shed rate and cluster availability under the fault sweeps (ratio
//! rows are seed-deterministic and thread-invariant, but recorded at every
//! measured thread count). Rows with `threads: 0` are run-wide
//! counter totals snapshotted from the `nfm_obs` metrics registry (MAC
//! counts, pool dispatch totals, serving outcome counters — see
//! `OBSERVABILITY.md`), accumulated across every thread setting the report
//! timed. Every measured operation is bitwise
//! deterministic across thread counts (see `nfm_tensor::pool`), so each
//! setting performs the exact same arithmetic and the wall-clock ratio is a
//! pure parallel-speedup measurement. On a single-core machine the 4-thread
//! rows measure scheduling overhead rather than speedup; run on a
//! multi-core host for the numbers recorded in EXPERIMENTS.md.
//!
//! `NFM_SCALE=quick` shrinks the workloads for CI.
//!
//! `--baseline <path>` compares this run against a previously written
//! `BENCH_perf.json`: the report gains a `vs_base` column, and the process
//! exits nonzero when `serve_throughput`, `serve_throughput_batched`,
//! `multitask_throughput`, or `cluster_throughput` regresses by more than
//! 20% at any thread count.
//!
//! `NFM_BENCH_ASSERT_BATCHED=1` turns the batched-serving comparison into a
//! smoke gate: the process exits 2 if micro-batched serving at one thread is
//! more than 5% slower than unbatched serving. The 5% band absorbs
//! single-core VM timer noise — since the elementwise kernels vectorised,
//! batched and unbatched serving are within a few percent of each other on
//! bench-sized models, and the gate exists to catch structural regressions
//! (batching losing outright), not scheduler jitter.
//!
//! The multi-task fan-out comparison is always a gate: the process exits 2
//! if `MultiTaskServer` at one thread delivers less than 2x the answer
//! throughput of four separate single-task engines. Unlike micro-batching,
//! fan-out removes K−1 encoder forwards outright, so the margin is
//! structural — falling under 2x means the shared-encoder path stopped
//! sharing.

use std::time::Instant;

use nfm_core::baselines::MajorityBaseline;
use nfm_core::cluster::{ClusterConfig, ClusterSupervisor};
use nfm_core::pipeline::{FineTuneConfig, FmClassifier, FoundationModel, TaskHead, TextExample};
use nfm_core::serve::{Fallback, MultiTaskServer, ServeConfig, ServeEngine};
use nfm_model::nn::transformer::EncoderConfig;
use nfm_model::pretrain::{pretrain, PretrainConfig, TaskMix};
use nfm_model::tokenize::field::FieldTokenizer;
use nfm_model::vocab::Vocab;
use nfm_tensor::matrix::Matrix;
use nfm_tensor::pool;
use nfm_traffic::faults::{burst_schedule, inject, FaultConfig, ReplicaFault, ReplicaFaultKind};
use nfm_traffic::netsim::{simulate, SimConfig};

struct Rec {
    name: String,
    threads: usize,
    value: f64,
    unit: &'static str,
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Best-of-`reps` wall time in milliseconds.
fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(ms(t.elapsed()));
    }
    best
}

/// One `{name, threads, value, unit}` row parsed back out of a previously
/// written `BENCH_perf.json`. The file is our own fixed-format output, so a
/// small line-oriented parser is enough — no JSON dependency.
fn parse_baseline(text: &str) -> Vec<Rec> {
    fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let tag = format!("\"{key}\":");
        let rest = &line[line.find(&tag)? + tag.len()..];
        let rest = rest.trim_start();
        let end = rest.find([',', '}'])?;
        Some(rest[..end].trim().trim_matches('"'))
    }
    text.lines()
        .filter_map(|line| {
            let line = line.trim().trim_end_matches(',');
            if !line.starts_with('{') {
                return None;
            }
            Some(Rec {
                name: field(line, "name")?.to_string(),
                threads: field(line, "threads")?.parse().ok()?,
                value: field(line, "value")?.parse().ok()?,
                // The unit is display-only for baselines; leak-free static
                // mapping of the handful we emit.
                unit: match field(line, "unit")? {
                    "ms" => "ms",
                    "req_per_s" => "req_per_s",
                    "ratio" => "ratio",
                    _ => "count",
                },
            })
        })
        .collect()
}

/// Deterministic synthetic corpus with enough token diversity to give the
/// encoder a non-trivial vocabulary.
fn synthetic_corpus(n: usize) -> (Vocab, Vec<Vec<String>>) {
    let contexts: Vec<Vec<String>> = (0..n)
        .map(|i| {
            let k = i % 8;
            (0..12).flat_map(|j| [format!("x{k}_{j}"), format!("y{k}_{j}")]).collect()
        })
        .collect();
    let vocab = Vocab::from_sequences(&contexts, 1);
    (vocab, contexts)
}

fn main() {
    let quick = matches!(std::env::var("NFM_SCALE").as_deref(), Ok("quick"));
    let args: Vec<String> = std::env::args().collect();
    let baseline: Option<Vec<Rec>> = args.iter().position(|a| a == "--baseline").map(|i| {
        let path = args.get(i + 1).unwrap_or_else(|| {
            eprintln!("--baseline requires a path to a prior BENCH_perf.json");
            std::process::exit(2);
        });
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        parse_baseline(&text)
    });
    let thread_counts = [1usize, 4];
    let mut records: Vec<Rec> = Vec::new();
    println!("perf_report: timing hot paths at threads = {thread_counts:?}\n");

    // --- Tiled matmul at model-relevant shapes -------------------------
    // (seq × d)·(d × d) projections and square kernels around the sizes the
    // encoder uses at production scale.
    let shapes: &[(usize, usize, usize)] = if quick {
        &[(96, 128, 128), (256, 256, 256)]
    } else {
        &[(96, 256, 256), (256, 256, 256), (512, 512, 512)]
    };
    for &(m, k, n) in shapes {
        let a = Matrix::from_fn(m, k, |r, c| ((r * 31 + c) % 17) as f32 - 8.0);
        let b = Matrix::from_fn(k, n, |r, c| ((r * 13 + c) % 11) as f32 - 5.0);
        for &t in &thread_counts {
            pool::set_threads(t);
            let wall = best_of(if quick { 2 } else { 5 }, || {
                std::hint::black_box(a.matmul(&b));
            });
            records.push(Rec {
                name: format!("matmul_{m}x{k}x{n}"),
                threads: t,
                value: wall,
                unit: "ms",
            });
        }
    }

    // --- One pretrain epoch (MLM + next-flow) --------------------------
    let (vocab, contexts) = synthetic_corpus(if quick { 48 } else { 120 });
    let enc_cfg = EncoderConfig {
        vocab: vocab.len(),
        d_model: 32,
        n_heads: 4,
        n_layers: 2,
        d_ff: 64,
        max_len: 32,
    };
    let pre_cfg = PretrainConfig {
        epochs: 1,
        tasks: TaskMix { mlm: true, next_flow: true, query_answer: false },
        ..PretrainConfig::default()
    };
    let mut trained = None;
    for &t in &thread_counts {
        pool::set_threads(t);
        let start = Instant::now();
        let (encoder, _, _) =
            pretrain(&contexts, &vocab, enc_cfg, &pre_cfg).expect("pretraining failed");
        let wall = ms(start.elapsed());
        records.push(Rec { name: "pretrain_epoch".into(), threads: t, value: wall, unit: "ms" });
        trained = Some(encoder);
    }

    // --- One batched-predict pass --------------------------------------
    let fm = FoundationModel {
        encoder: trained.expect("pretrain ran"),
        vocab,
        max_len: enc_cfg.max_len,
    };
    let examples: Vec<TextExample> = contexts
        .iter()
        .enumerate()
        .map(|(i, c)| TextExample { tokens: c.clone(), label: i % 2 })
        .collect();
    pool::set_threads(0);
    let clf = FmClassifier::fine_tune(
        &fm,
        &examples,
        2,
        &FineTuneConfig { epochs: 1, ..FineTuneConfig::default() },
    )
    .expect("fine-tuning failed");
    let batch: Vec<Vec<String>> = examples.iter().map(|e| e.tokens.clone()).collect();
    for &t in &thread_counts {
        pool::set_threads(t);
        let wall = best_of(if quick { 2 } else { 3 }, || {
            std::hint::black_box(clf.predict_batch(&batch));
        });
        records.push(Rec { name: "predict_batch".into(), threads: t, value: wall, unit: "ms" });
    }
    pool::set_threads(0);

    // --- Serving under the fault sweep ----------------------------------
    // End-to-end `ServeEngine::serve_trace` over a corrupted, bursty
    // capture (the E15 regime): throughput in requests served per second,
    // plus the deterministic shed rate — which is identical at every
    // thread count, so it is recorded once.
    let lt = simulate(&SimConfig {
        n_sessions: if quick { 40 } else { 120 },
        n_general_hosts: 4,
        n_iot_sets: 1,
        ..SimConfig::default()
    });
    let (noisy, _) = inject(
        &lt.trace,
        &FaultConfig { corrupt_chance: 0.3, snaplen: 200, seed: 21, ..FaultConfig::default() },
    );
    let tokenizer = FieldTokenizer::new();
    let serve_cfg = ServeConfig { queue_capacity: 8, shed_watermark: 4, ..ServeConfig::default() };
    let schedule = burst_schedule(
        noisy.len() * 4,
        &FaultConfig { burst_chance: 0.5, max_burst: 16, seed: 9, ..FaultConfig::default() },
    );
    for &t in &thread_counts {
        pool::set_threads(t);
        let mut served = 0usize;
        let mut shed_rate = 0.0;
        let wall = best_of(if quick { 2 } else { 3 }, || {
            let mut engine = ServeEngine::new(
                clf.clone(),
                Fallback::Majority(MajorityBaseline { class: 0, n_classes: 2 }),
                serve_cfg,
            );
            served = engine.serve_trace(&noisy, &tokenizer, &schedule).len();
            shed_rate = engine.stats().shed_rate();
        });
        let throughput = served as f64 / (wall / 1e3);
        records.push(Rec {
            name: "serve_throughput".into(),
            threads: t,
            value: throughput,
            unit: "req_per_s",
        });
        // The shed decision is seeded and thread-invariant, but record it
        // at every measured thread count so downstream tooling never has to
        // special-case which setting carried the ratio.
        records.push(Rec {
            name: "serve_shed_rate".into(),
            threads: t,
            value: shed_rate,
            unit: "ratio",
        });
    }
    pool::set_threads(0);

    // --- Micro-batched serving ------------------------------------------
    // The same workload with the queue drained in micro-batches
    // (`max_batch` requests per packed forward pass, scratch buffers
    // reused). Responses are asserted bitwise identical to the unbatched
    // run before anything is timed, so the throughput delta is pure
    // batching effect.
    let batched_cfg = ServeConfig { max_batch: 16, ..serve_cfg };
    {
        pool::set_threads(1);
        let majority = || Fallback::Majority(MajorityBaseline { class: 0, n_classes: 2 });
        let mut single = ServeEngine::new(clf.clone(), majority(), serve_cfg);
        let mut batched = ServeEngine::new(clf.clone(), majority(), batched_cfg);
        let rs = single.serve_trace(&noisy, &tokenizer, &schedule);
        let rb = batched.serve_trace(&noisy, &tokenizer, &schedule);
        assert_eq!(rs, rb, "micro-batched serving must answer bitwise identically");
        assert_eq!(single.stats(), batched.stats(), "serving stats must match");
        println!("batched-vs-unbatched identity: ok ({} responses)\n", rs.len());
        pool::set_threads(0);
    }
    let mut batched_t1 = f64::NAN;
    for &t in &thread_counts {
        pool::set_threads(t);
        let mut served = 0usize;
        let wall = best_of(if quick { 2 } else { 3 }, || {
            let mut engine = ServeEngine::new(
                clf.clone(),
                Fallback::Majority(MajorityBaseline { class: 0, n_classes: 2 }),
                batched_cfg,
            );
            served = engine.serve_trace(&noisy, &tokenizer, &schedule).len();
        });
        let throughput = served as f64 / (wall / 1e3);
        if t == 1 {
            batched_t1 = throughput;
        }
        records.push(Rec {
            name: "serve_throughput_batched".into(),
            threads: t,
            value: throughput,
            unit: "req_per_s",
        });
    }
    pool::set_threads(0);
    let single_t1 = records
        .iter()
        .find(|r| r.name == "serve_throughput" && r.threads == 1)
        .map(|r| r.value)
        .unwrap_or(f64::NAN);
    println!(
        "serve throughput at 1 thread: unbatched {single_t1:.0} req/s, \
         batched {batched_t1:.0} req/s ({:.2}x)\n",
        batched_t1 / single_t1
    );
    if std::env::var("NFM_BENCH_ASSERT_BATCHED").as_deref() == Ok("1")
        && batched_t1 < single_t1 * 0.95
    {
        eprintln!(
            "FAIL: batched serving ({batched_t1:.0} req/s) is more than 5% slower than \
             unbatched ({single_t1:.0} req/s) at 1 thread"
        );
        std::process::exit(2);
    }

    // --- Multi-task fan-out serving --------------------------------------
    // K = 4 tasks over the same corrupted bursty capture. The fan-out path
    // (`MultiTaskServer`: one shared encoder forward per admitted flow, K
    // head GEMVs) against the separate-engine deployment (K independent
    // `ServeEngine`s, each running the full encoder). Responses are asserted
    // bitwise identical per task before anything is timed, so the
    // throughput delta is pure encoder amortization.
    const K_TASKS: usize = 4;
    let backbone = clf.backbone();
    let fan_heads: Vec<TaskHead> =
        (0..K_TASKS).map(|k| TaskHead::from_classifier(&clf, &format!("task-{k}"))).collect();
    let majority = || Fallback::Majority(MajorityBaseline { class: 0, n_classes: 2 });
    let fan_tasks = || fan_heads.iter().map(|h| (h.clone(), majority())).collect::<Vec<_>>();
    {
        pool::set_threads(1);
        let mut server = MultiTaskServer::new(backbone.clone(), fan_tasks(), serve_cfg);
        let fanned = server.serve_trace(&noisy, &tokenizer, &schedule);
        for (k, head) in fan_heads.iter().enumerate() {
            let mut solo = ServeEngine::new(backbone.attach(head), majority(), serve_cfg);
            let solo_rs = solo.serve_trace(&noisy, &tokenizer, &schedule);
            assert_eq!(fanned[k], solo_rs, "fan-out task {k} must answer bitwise identically");
            assert_eq!(server.task_stats()[k], solo.stats(), "fan-out task {k} stats must match");
        }
        let f = server.stats();
        println!(
            "fan-out-vs-separate identity: ok ({K_TASKS} tasks, {} encoder rows for {} head \
             rows)\n",
            f.encoder_rows, f.head_rows
        );
        pool::set_threads(0);
    }
    let mut fanout_t1 = f64::NAN;
    let mut separate_t1 = f64::NAN;
    for &t in &thread_counts {
        pool::set_threads(t);
        let mut answers = 0usize;
        let wall = best_of(if quick { 2 } else { 3 }, || {
            let mut server = MultiTaskServer::new(backbone.clone(), fan_tasks(), serve_cfg);
            answers = server.serve_trace(&noisy, &tokenizer, &schedule).iter().map(Vec::len).sum();
        });
        let throughput = answers as f64 / (wall / 1e3);
        if t == 1 {
            fanout_t1 = throughput;
        }
        records.push(Rec {
            name: "multitask_throughput".into(),
            threads: t,
            value: throughput,
            unit: "req_per_s",
        });
        let mut answers = 0usize;
        let wall = best_of(if quick { 2 } else { 3 }, || {
            answers = fan_heads
                .iter()
                .map(|head| {
                    let mut solo = ServeEngine::new(backbone.attach(head), majority(), serve_cfg);
                    solo.serve_trace(&noisy, &tokenizer, &schedule).len()
                })
                .sum();
        });
        let throughput = answers as f64 / (wall / 1e3);
        if t == 1 {
            separate_t1 = throughput;
        }
        records.push(Rec {
            name: "multitask_throughput_separate".into(),
            threads: t,
            value: throughput,
            unit: "req_per_s",
        });
    }
    pool::set_threads(0);
    let fanout_speedup = fanout_t1 / separate_t1;
    records.push(Rec {
        name: "multitask_speedup".into(),
        threads: 1,
        value: fanout_speedup,
        unit: "ratio",
    });
    println!(
        "multi-task throughput at 1 thread ({K_TASKS} tasks): separate {separate_t1:.0} ans/s, \
         fan-out {fanout_t1:.0} ans/s ({fanout_speedup:.2}x)\n"
    );
    if fanout_speedup < 2.0 {
        eprintln!(
            "FAIL: fan-out serving ({fanout_t1:.0} ans/s) is less than 2x the separate-engine \
             deployment ({separate_t1:.0} ans/s) at 1 thread"
        );
        std::process::exit(2);
    }

    // --- Cluster serving under a replica crash ---------------------------
    // End-to-end `ClusterSupervisor::serve_trace` (the E16 regime): three
    // replicas over the same corrupted bursty capture with one replica
    // crashing mid-run. Throughput counts final answers per second;
    // availability is the (deterministic) fraction of arrivals answered.
    let ckpt_dir = std::env::temp_dir().join(format!("nfm_perf_cluster_{}", std::process::id()));
    let crash =
        [ReplicaFault { replica: 0, at_burst: schedule.len() / 3, kind: ReplicaFaultKind::Crash }];
    for &t in &thread_counts {
        pool::set_threads(t);
        let mut served = 0usize;
        let mut availability = 0.0;
        let mut model_availability = 0.0;
        let wall = best_of(if quick { 2 } else { 3 }, || {
            let majority = || Fallback::Majority(MajorityBaseline { class: 0, n_classes: 2 });
            let replicas = (0..3).map(|_| (clf.clone(), majority())).collect();
            let mut cluster = ClusterSupervisor::new(
                replicas,
                majority(),
                &ckpt_dir,
                ClusterConfig { serve: serve_cfg, ..ClusterConfig::default() },
            )
            .expect("cluster construction");
            served = cluster.serve_trace(&noisy, &tokenizer, &schedule, &crash).len();
            availability = cluster.stats().availability();
            model_availability = cluster.stats().model_availability();
        });
        records.push(Rec {
            name: "cluster_throughput".into(),
            threads: t,
            value: served as f64 / (wall / 1e3),
            unit: "req_per_s",
        });
        records.push(Rec {
            name: "cluster_availability".into(),
            threads: t,
            value: availability,
            unit: "ratio",
        });
        records.push(Rec {
            name: "cluster_model_availability".into(),
            threads: t,
            value: model_availability,
            unit: "ratio",
        });
    }
    std::fs::remove_dir_all(&ckpt_dir).ok();
    pool::set_threads(0);

    // --- Registry counter rows ------------------------------------------
    // Run-wide totals from the observability layer: deterministic work
    // accounting (MACs, pool dispatches, serving outcomes) to sit next to
    // the wall-clock rows. `threads: 0` marks a cumulative counter.
    for m in nfm_obs::global().snapshot() {
        if let nfm_obs::MetricValue::Counter(v) = m.value {
            records.push(Rec {
                name: m.name.to_string(),
                threads: 0,
                value: v as f64,
                unit: m.unit.as_str(),
            });
        }
    }

    // --- Report ---------------------------------------------------------
    let header: &[&str] = if baseline.is_some() {
        &["name", "threads", "value", "unit", "speedup", "vs_base"]
    } else {
        &["name", "threads", "value", "unit", "speedup"]
    };
    let mut table = nfm_core::report::Table::new(header);
    let mut regressions: Vec<String> = Vec::new();
    for rec in &records {
        let base = records
            .iter()
            .find(|r| r.name == rec.name && r.threads == 1)
            .map_or(rec.value, |r| r.value);
        // Speedup is a wall-time ratio; for throughput the gain is the
        // value ratio inverted; dimensionless and counter rows have none.
        let speedup = match (rec.unit, rec.threads) {
            (_, 0) => "-".into(),
            ("ms", _) => format!("{:.2}x", base / rec.value),
            ("req_per_s", _) => format!("{:.2}x", rec.value / base),
            _ => "-".into(),
        };
        let mut row = vec![
            rec.name.clone(),
            rec.threads.to_string(),
            format!("{:.3}", rec.value),
            rec.unit.into(),
            speedup,
        ];
        if let Some(base_recs) = &baseline {
            let prior = base_recs.iter().find(|r| r.name == rec.name && r.threads == rec.threads);
            row.push(match prior {
                Some(p) if p.value > 0.0 => {
                    let delta = rec.value / p.value - 1.0;
                    // Gatekeep the serving throughputs: a >20% drop against
                    // the baseline file fails the run.
                    let gated = matches!(
                        rec.name.as_str(),
                        "serve_throughput"
                            | "serve_throughput_batched"
                            | "multitask_throughput"
                            | "cluster_throughput"
                    );
                    if gated && delta < -0.20 {
                        regressions.push(format!(
                            "{} (threads={}): {:.3} -> {:.3} ({:+.1}%)",
                            rec.name,
                            rec.threads,
                            p.value,
                            rec.value,
                            delta * 100.0
                        ));
                    }
                    format!("{:+.1}%", delta * 100.0)
                }
                _ => "-".into(),
            });
        }
        table.row(&row);
    }
    nfm_bench::render_table("perf.records", &table);

    let mut json = String::from("[\n");
    for (i, rec) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        json.push_str(&format!(
            "  {{\"name\": \"{}\", \"threads\": {}, \"value\": {:.3}, \"unit\": \"{}\"}}{}\n",
            rec.name, rec.threads, rec.value, rec.unit, comma
        ));
    }
    json.push_str("]\n");
    std::fs::write("BENCH_perf.json", &json).expect("write BENCH_perf.json");
    println!("wrote BENCH_perf.json ({} records)", records.len());
    nfm_bench::finish();
    if !regressions.is_empty() {
        eprintln!("FAIL: throughput regressed >20% against the baseline:");
        for r in &regressions {
            eprintln!("  {r}");
        }
        std::process::exit(1);
    }
}
