//! E7 — label efficiency (paper §1/§2).
//!
//! Claim: pre-training "significantly reduce\[s\] and even eliminate\[s\] the
//! need for data labeling" — BERT cut labeled-data needs, GPT-3 cut them by
//! another order of magnitude. We sweep the number of labeled fine-tuning
//! examples and compare the pre-trained model against the from-scratch GRU:
//! the FM's curve should dominate at small label counts.

use nfm_bench::{banner, pretrain_standard, render_table, train_family, ModelFamily, Scale};
use nfm_core::netglue::Task;
use nfm_core::report::{f3, Table};
use nfm_model::pretrain::TaskMix;
use nfm_model::tokenize::field::FieldTokenizer;
use nfm_traffic::dataset::{extract_flows, split_train_val, Environment};

fn main() {
    banner(
        "E7",
        "§1/§2 (label efficiency of pre-training)",
        "the FM needs far fewer labels to reach a given F1 than from-scratch models",
    );
    let scale = Scale::from_env();
    let tokenizer = FieldTokenizer::new();
    let task = Task::AppClassification;

    println!("pretraining foundation model…\n");
    let fm = pretrain_standard(&scale, &tokenizer, TaskMix::default());

    let lt_a = Environment::env_a(scale.labeled_sessions.max(300)).simulate();
    let flows = extract_flows(&lt_a, 2);
    let (train_flows, eval_flows) = split_train_val(flows, 0.3);
    let all_train = task.examples(&train_flows, &tokenizer, 94);
    let eval = task.examples(&eval_flows, &tokenizer, 94);
    println!("label pool: {}, eval: {}\n", all_train.len(), eval.len());

    // Stratified subsets: round-robin across classes so even tiny budgets
    // see every class that exists (as a human labeller would ensure).
    let mut by_class: Vec<Vec<&nfm_core::pipeline::TextExample>> =
        vec![Vec::new(); task.n_classes()];
    for e in &all_train {
        by_class[e.label].push(e);
    }
    let stratified = |n: usize| -> Vec<nfm_core::pipeline::TextExample> {
        let mut out = Vec::with_capacity(n);
        let mut idx = 0;
        while out.len() < n {
            let mut advanced = false;
            for class in by_class.iter() {
                if let Some(e) = class.get(idx) {
                    out.push((*e).clone());
                    advanced = true;
                    if out.len() == n {
                        break;
                    }
                }
            }
            if !advanced {
                break; // pool exhausted
            }
            idx += 1;
        }
        out
    };

    let budgets = [8usize, 16, 32, 64, 128, 256];
    let mut table = Table::new(&["labels", "fm-finetuned f1", "gru-random f1", "fm advantage"]);
    for &n in &budgets {
        let n = n.min(all_train.len());
        let subset = stratified(n);
        // Small budgets need proportionally more epochs to converge.
        let mut s = scale;
        s.finetune_epochs = scale.finetune_epochs.max(300 / n.max(1));
        s.baseline_epochs = scale.baseline_epochs.max(300 / n.max(1));
        let fm_model = train_family(ModelFamily::FmFinetuned, &fm, &subset, task.n_classes(), &s);
        let gru_model = train_family(ModelFamily::GruRandom, &fm, &subset, task.n_classes(), &s);
        let f_fm = fm_model.evaluate(&eval).macro_f1();
        let f_gru = gru_model.evaluate(&eval).macro_f1();
        println!("n={n}: fm {:.3} gru {:.3}", f_fm, f_gru);
        table.row(&[n.to_string(), f3(f_fm), f3(f_gru), f3(f_fm - f_gru)]);
        if n == all_train.len() {
            break;
        }
    }
    println!();
    render_table("e7.results", &table);
    println!("paper shape: the FM column dominates at small label budgets and the");
    println!("gap narrows as labels become plentiful.");
    nfm_bench::finish();
}
