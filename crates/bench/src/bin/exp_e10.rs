//! E10 — cost scaling / energy footprint (paper §4.5).
//!
//! Claim: "Large models training and inference often consume massive amount
//! of energy" and the learning-complexity question asks what embedding
//! dimension the domain actually needs. We sweep model size, measuring
//! parameters, pre-training wall time, inference throughput, and downstream
//! F1 — locating the knee where quality saturates.

use std::time::Instant;

use nfm_bench::{banner, render_table, train_family, ModelFamily, Scale};
use nfm_core::netglue::Task;
use nfm_core::pipeline::{FoundationModel, PipelineConfig};
use nfm_core::report::{count, f3, Table};
use nfm_model::pretrain::PretrainConfig;
use nfm_model::tokenize::field::FieldTokenizer;
use nfm_net::capture::Trace;
use nfm_tensor::layers::Module;
use nfm_traffic::dataset::{extract_flows, split_train_val, Environment};

fn main() {
    banner(
        "E10",
        "§4.5 (energy footprint, learning complexity)",
        "downstream quality saturates well below NLP-scale model sizes",
    );
    let scale = Scale::from_env();
    let tokenizer = FieldTokenizer::new();
    let task = Task::AppClassification;

    let envs = Environment::pretrain_mix(scale.pretrain_sessions / 2);
    let traces: Vec<Trace> = envs.iter().map(|e| e.simulate().trace).collect();
    let refs: Vec<&Trace> = traces.iter().collect();

    let lt_a = Environment::env_a(scale.labeled_sessions).simulate();
    let flows = extract_flows(&lt_a, 2);
    let (train_flows, eval_flows) = split_train_val(flows, 0.3);
    let train = task.examples(&train_flows, &tokenizer, 94);
    let eval = task.examples(&eval_flows, &tokenizer, 94);

    let sizes: [(usize, usize, usize); 4] = [(16, 2, 1), (32, 4, 2), (64, 4, 2), (64, 4, 4)];

    let mut table =
        Table::new(&["d_model", "layers", "params", "pretrain s", "infer seq/s", "downstream f1"]);
    for (d_model, n_heads, n_layers) in sizes {
        println!("size d={d_model} L={n_layers}…");
        let cfg = PipelineConfig {
            d_model,
            n_heads,
            n_layers,
            d_ff: d_model * 2,
            pretrain: PretrainConfig { epochs: scale.pretrain_epochs, ..PretrainConfig::default() },
            ..PipelineConfig::default()
        };
        let t0 = Instant::now();
        let (fm, _) =
            FoundationModel::pretrain_on(&refs, &tokenizer, &cfg).expect("pretraining failed");
        let pretrain_s = t0.elapsed().as_secs_f64();
        let mut enc = fm.encoder.clone();
        let params = enc.n_params();

        // Inference throughput on the eval set.
        let t0 = Instant::now();
        let mut n = 0usize;
        for e in eval.iter().take(200) {
            let _ = fm.embed(&e.tokens);
            n += 1;
        }
        let seq_per_s = n as f64 / t0.elapsed().as_secs_f64();

        let model = train_family(ModelFamily::FmFinetuned, &fm, &train, task.n_classes(), &scale);
        let f1 = model.evaluate(&eval).macro_f1();
        table.row(&[
            d_model.to_string(),
            n_layers.to_string(),
            count(params),
            format!("{pretrain_s:.1}"),
            format!("{seq_per_s:.0}"),
            f3(f1),
        ]);
    }
    println!();
    render_table("e10.results", &table);
    println!("paper shape: F1 saturates by d_model≈32-64 while cost keeps growing —");
    println!("the minimum adequate model is tiny compared to NLP foundation models.");
    nfm_bench::finish();
}
