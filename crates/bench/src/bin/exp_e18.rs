//! E18 — drift-aware self-healing serving (paper §4.3, operational
//! robustness; the adaptation counterpart of E16's failover matrix).
//!
//! Claim: a deployed network foundation model faces traffic that moves
//! under it — application mixes shift, ground truth relabels itself — and
//! §4.3's "operational deployment" story is incomplete without a loop that
//! *notices* the shift, quarantines the suspicious traffic, fine-tunes a
//! candidate in the background, and rolls it out canary-first without ever
//! dropping model availability. This binary drives that loop through a
//! seeded drift matrix and asserts recovery, not just survival.
//!
//! | scenario    | drift injected in phase B          | expected reaction    |
//! |-------------|------------------------------------|----------------------|
//! | no-drift    | none (fresh i.i.d. base-mix trace) | zero adaptations     |
//! | mix-shift   | app mix reversed (covariate drift) | adapt + rollout      |
//! | label-flip  | ground-truth labels remapped       | adapt + rollout      |
//! | compound    | mix shift + a replica crash        | adapt + warm restart |
//!
//! Every scenario runs the same three phases: (A) warm-up on base-mix
//! traffic with correct feedback, (B) two passes of the scenario's drifted
//! traffic with delayed ground-truth feedback (the trip, quarantine, and
//! rollout happen here), then (C) one pass of held-out drifted traffic that
//! measures post-adaptation accuracy. The whole matrix must reproduce
//! bitwise across sweeps.

use std::collections::HashMap;
use std::path::PathBuf;

use nfm_bench::{banner, render_table, Scale};
use nfm_core::baselines::MajorityBaseline;
use nfm_core::cluster::{AdaptConfig, ClusterConfig, ClusterStats, ClusterSupervisor};
use nfm_core::ood::{DriftConfig, DriftMonitor};
use nfm_core::pipeline::{
    examples_from_flows, FineTuneConfig, FmClassifier, FoundationModel, PipelineConfig, TextExample,
};
use nfm_core::report::Table;
use nfm_core::serve::{assemble_requests, Fallback, Response, ServeConfig};
use nfm_model::pretrain::{PretrainConfig, TaskMix};
use nfm_model::tokenize::field::FieldTokenizer;
use nfm_net::capture::Trace;
use nfm_traffic::dataset::extract_flows;
use nfm_traffic::faults::{DriftFaultConfig, ReplicaFault, ReplicaFaultKind};
use nfm_traffic::label::AppClass;
use nfm_traffic::netsim::{simulate, AppMix, LabeledTrace, SimConfig};

const N_CLASSES: usize = AppClass::ALL.len();
const MAX_TOKENS: usize = 48;

/// The drift fault shared by the covariate scenarios: a near-total reversal
/// of the application mix, so classes that were rare at calibration time
/// dominate the drifted traffic.
fn drift_fault() -> DriftFaultConfig {
    DriftFaultConfig { mix_shift: 1.0, label_flip_chance: 1.0, seed: 7, ..Default::default() }
}

fn base_sim(seed: u64, n_sessions: usize) -> SimConfig {
    SimConfig { seed, n_sessions, n_general_hosts: 4, n_iot_sets: 1, ..SimConfig::default() }
}

fn drift_sim(seed: u64, n_sessions: usize) -> SimConfig {
    let base = base_sim(seed, n_sessions);
    let mix = drift_fault().shifted_mix(&AppMix::default());
    SimConfig { mix, ..base }
}

/// Token-sequence → app-class oracle covering every trace a scenario may
/// serve. First insert wins, so the mapping is deterministic regardless of
/// how many traces mention the same flow shape.
fn build_oracle(traces: &[&LabeledTrace]) -> HashMap<Vec<String>, usize> {
    let tok = FieldTokenizer::new();
    let mut oracle = HashMap::new();
    for lt in traces {
        let flows = extract_flows(lt, 1);
        for e in examples_from_flows(&flows, &tok, MAX_TOKENS, |f| Some(f.label.app.id())) {
            oracle.entry(e.tokens).or_insert(e.label);
        }
    }
    oracle
}

fn train_model(scale: &Scale, lt: &LabeledTrace) -> (FmClassifier, Vec<TextExample>) {
    let tok = FieldTokenizer::new();
    let cfg = PipelineConfig {
        d_model: 16,
        n_heads: 2,
        n_layers: 1,
        d_ff: 32,
        max_len: MAX_TOKENS,
        pretrain: PretrainConfig {
            epochs: scale.pretrain_epochs.min(2),
            tasks: TaskMix::mlm_only(),
            ..PretrainConfig::default()
        },
        ..PipelineConfig::default()
    };
    let (fm, _) =
        FoundationModel::pretrain_on(&[&lt.trace], &tok, &cfg).expect("pretraining failed");
    let flows = extract_flows(lt, 1);
    let train = examples_from_flows(&flows, &tok, MAX_TOKENS, |f| Some(f.label.app.id()));
    let clf = FmClassifier::fine_tune(
        &fm,
        &train,
        N_CLASSES,
        &FineTuneConfig { epochs: 2, ..FineTuneConfig::default() },
    )
    .expect("fine-tuning failed");
    (clf, train)
}

fn majority() -> Fallback {
    Fallback::Majority(MajorityBaseline { class: 0, n_classes: N_CLASSES })
}

struct Scenario {
    name: &'static str,
    /// Covariate drift: phases B/C serve mix-shifted traffic.
    mix_shift: bool,
    /// Label drift: ground truth is remapped through the fault's label map.
    label_flip: bool,
    /// Compound fault: crash replica 0 mid-way through the first drifted pass.
    crash: bool,
}

#[derive(Debug, Clone, PartialEq)]
struct Outcome {
    name: &'static str,
    stats: ClusterStats,
    drift_trips: usize,
    pre: (usize, usize),
    post: (usize, usize),
    final_responses: Vec<Response>,
}

impl Outcome {
    fn pre_acc(&self) -> f64 {
        self.pre.0 as f64 / (self.pre.1.max(1)) as f64
    }
    fn post_acc(&self) -> f64 {
        self.post.0 as f64 / (self.post.1.max(1)) as f64
    }
}

fn checkpoint_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nfm_e18_{}_{name}", std::process::id()))
}

/// Score one serve pass against the ground-truth function: (correct, matched).
fn grade(
    responses: &[Response],
    trace: &Trace,
    truth: &dyn Fn(&[String]) -> Option<usize>,
) -> (usize, usize) {
    let (requests, _) = assemble_requests(trace, &FieldTokenizer::new(), MAX_TOKENS);
    let mut correct = 0;
    let mut matched = 0;
    for r in responses {
        let Some(req) = requests.get(r.flow) else { continue };
        let Some(label) = truth(&req.tokens) else { continue };
        matched += 1;
        if r.class == label {
            correct += 1;
        }
    }
    (correct, matched)
}

struct Fixture {
    clf: FmClassifier,
    train: Vec<TextExample>,
    /// Calibration reference: training flows plus held-out in-distribution
    /// traffic, so the detector's baseline distance reflects what healthy
    /// serving actually looks like (not just memorised training flows).
    reference: Vec<TextExample>,
    warmup: LabeledTrace,
    base_b: LabeledTrace,
    base_c: LabeledTrace,
    drift_b: LabeledTrace,
    drift_c: LabeledTrace,
    oracle: HashMap<Vec<String>, usize>,
    flip_map: Vec<usize>,
}

fn run_scenario(fx: &Fixture, scenario: &Scenario) -> Outcome {
    let tok = FieldTokenizer::new();
    let monitor = DriftMonitor::calibrate(
        &fx.clf,
        &fx.reference,
        DriftConfig {
            warmup: 96,
            delta_milli: 300,
            err_warmup: 16,
            err_lambda_milli: 4_000,
            ..DriftConfig::default()
        },
    );
    let config = ClusterConfig {
        serve: ServeConfig { quarantine_capacity: 512, ..ServeConfig::default() },
        probe_interval: 4,
        restart_backoff_base: 4,
        restart_backoff_factor: 2,
        ..ClusterConfig::default()
    };
    let replicas = (0..3).map(|_| (fx.clf.clone(), majority())).collect();
    let dir = checkpoint_dir(scenario.name);
    let mut cluster =
        ClusterSupervisor::new(replicas, majority(), &dir, config).expect("cluster construction");
    cluster.enable_adaptation(
        monitor,
        AdaptConfig {
            min_quarantine: 16,
            replay: fx.train.clone(),
            holdout: Vec::new(),
            fine_tune: FineTuneConfig { epochs: 2, ..FineTuneConfig::default() },
            ..AdaptConfig::default()
        },
    );

    let oracle = &fx.oracle;
    let truth_base = |t: &[String]| oracle.get(t).copied();
    let flip = &fx.flip_map;
    let truth_drift =
        move |t: &[String]| oracle.get(t).map(|&c| if scenario.label_flip { flip[c] } else { c });

    // Phase A: two warm-up passes of base-mix traffic with correct labels,
    // seeding both Page–Hinkley means at their in-distribution levels.
    for _ in 0..2 {
        cluster.serve_trace(&fx.warmup.trace, &tok, &[], &[]);
        cluster.apply_feedback(&truth_base);
    }
    assert_eq!(
        cluster.stats().adaptations_started,
        0,
        "{}: warm-up traffic is in-distribution and must not adapt",
        scenario.name
    );

    // Phase B: two passes of the scenario's drifted traffic. The first pass
    // measures pre-adaptation accuracy and (through feedback) trips the
    // detector; the second gives the supervisor ticks to fine-tune,
    // shadow-evaluate, and canary the candidate through.
    let trace_b = if scenario.mix_shift { &fx.drift_b.trace } else { &fx.base_b.trace };
    let faults = if scenario.crash {
        // `at_burst` matches the supervisor's cumulative tick counter, so
        // the crash is scheduled relative to where warm-up left it.
        vec![ReplicaFault {
            replica: 0,
            at_burst: cluster.tick() + 8,
            kind: ReplicaFaultKind::Crash,
        }]
    } else {
        Vec::new()
    };
    let responses_b = cluster.serve_trace(trace_b, &tok, &[], &faults);
    let pre = grade(&responses_b, trace_b, &truth_drift);
    cluster.apply_feedback(&truth_drift);
    cluster.serve_trace(trace_b, &tok, &[], &[]);
    cluster.apply_feedback(&truth_drift);

    // Phase C: a held-out drifted trace measures post-adaptation accuracy.
    let trace_c = if scenario.mix_shift { &fx.drift_c.trace } else { &fx.base_c.trace };
    let final_responses = cluster.serve_trace(trace_c, &tok, &[], &[]);
    let post = grade(&final_responses, trace_c, &truth_drift);

    let drift_trips = (0..3).map(|r| cluster.replica_stats(r).drift_trips).sum::<usize>();
    let stats = cluster.stats();
    std::fs::remove_dir_all(&dir).ok();
    Outcome { name: scenario.name, stats, drift_trips, pre, post, final_responses }
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario { name: "no-drift", mix_shift: false, label_flip: false, crash: false },
        Scenario { name: "mix-shift", mix_shift: true, label_flip: false, crash: false },
        Scenario { name: "label-flip", mix_shift: false, label_flip: true, crash: false },
        Scenario { name: "compound", mix_shift: true, label_flip: false, crash: true },
    ]
}

fn drift_table(outcomes: &[Outcome]) -> Table {
    let mut table = Table::new(&[
        "scenario",
        "trips",
        "quarantined",
        "adapts",
        "rejected",
        "rollouts",
        "completed",
        "rollbacks",
        "restarts",
        "pre_acc",
        "post_acc",
        "model_avail",
    ]);
    for o in outcomes {
        let s = &o.stats;
        table.row(&[
            o.name.into(),
            o.drift_trips.to_string(),
            s.quarantine_drained.to_string(),
            s.adaptations_started.to_string(),
            s.candidates_rejected.to_string(),
            s.rollouts_started.to_string(),
            s.rollouts_completed.to_string(),
            s.rollbacks.to_string(),
            s.restarts_ok.to_string(),
            format!("{:.3}", o.pre_acc()),
            format!("{:.3}", o.post_acc()),
            format!("{:.3}", s.model_availability()),
        ]);
    }
    table
}

fn main() {
    banner(
        "E18",
        "§4.3 (drift-aware self-healing)",
        "online drift detection trips on covariate and label drift but never on \
         i.i.d. traffic, quarantined flows fine-tune a candidate in the \
         background, and a canary-gated rollout restores accuracy without \
         dropping model availability — bitwise reproducibly",
    );
    let scale = Scale::from_env();
    let n = scale.labeled_sessions.min(60);

    let lt_train = simulate(&base_sim(11, n));
    let fx = {
        let (clf, train) = train_model(&scale, &lt_train);
        let warmup = simulate(&base_sim(12, n));
        let base_b = simulate(&base_sim(13, n));
        let base_c = simulate(&base_sim(14, n));
        let drift_b = simulate(&drift_sim(13, n));
        let drift_c = simulate(&drift_sim(14, n));
        let oracle = build_oracle(&[&lt_train, &warmup, &base_b, &base_c, &drift_b, &drift_c]);
        let flip_map = drift_fault().label_map(N_CLASSES);
        let tok = FieldTokenizer::new();
        let warmup_flows = extract_flows(&warmup, 1);
        let mut reference = train.clone();
        reference.extend(examples_from_flows(&warmup_flows, &tok, MAX_TOKENS, |f| {
            Some(f.label.app.id())
        }));
        Fixture {
            clf,
            train,
            reference,
            warmup,
            base_b,
            base_c,
            drift_b,
            drift_c,
            oracle,
            flip_map,
        }
    };
    println!(
        "model: {} training flows, {} oracle entries, {} classes\n",
        fx.train.len(),
        fx.oracle.len(),
        N_CLASSES
    );

    let run_sweep =
        || -> Vec<Outcome> { scenarios().iter().map(|sc| run_scenario(&fx, sc)).collect() };
    let outcomes = run_sweep();
    render_table("e18.drift", &drift_table(&outcomes));
    let get = |name: &str| -> &Outcome {
        outcomes.iter().find(|o| o.name == name).expect("scenario present")
    };

    // --- The acceptance criteria, asserted, not eyeballed ---------------
    for o in &outcomes {
        assert!(
            o.stats.model_availability() >= 0.99,
            "{}: model availability {:.4} dipped below 0.99 during adaptation",
            o.name,
            o.stats.model_availability()
        );
        assert_eq!(o.stats.rollbacks, 0, "{}: no canary should roll back here", o.name);
        assert!(o.post.1 > 0, "{}: phase C must grade against the oracle", o.name);
    }

    let control = get("no-drift");
    assert_eq!(
        control.stats.adaptations_started, 0,
        "control: i.i.d. traffic must never schedule an adaptation"
    );
    assert_eq!(control.stats.rollouts_started, 0, "control: zero rollouts");
    assert_eq!(control.drift_trips, 0, "control: detectors must stay quiet");

    for name in ["mix-shift", "label-flip", "compound"] {
        let o = get(name);
        assert!(o.drift_trips >= 1, "{name}: drift must trip a detector");
        assert!(o.stats.adaptations_started >= 1, "{name}: a background adaptation must start");
        assert!(o.stats.rollouts_completed >= 1, "{name}: the canary rollout must complete");
        assert!(
            o.post_acc() > o.pre_acc(),
            "{name}: post-adaptation accuracy {:.3} must beat pre-adaptation {:.3}",
            o.post_acc(),
            o.pre_acc()
        );
        assert!(
            o.post_acc() >= 0.50,
            "{name}: post-adaptation accuracy {:.3} below the recovery floor",
            o.post_acc()
        );
    }

    let compound = get("compound");
    assert_eq!(compound.stats.crashes_injected, 1, "compound: the crash must land");
    assert!(compound.stats.restarts_ok >= 1, "compound: the crashed replica must warm-restart");

    // --- Bitwise reproducibility ----------------------------------------
    let rerun = run_sweep();
    let identical = outcomes == rerun;
    assert!(identical, "fixed seeds must reproduce the drift matrix bitwise");
    println!("\nrerun with identical seeds: drift matrix bitwise identical = {identical}");
    println!("zero panics across {} scenarios x 2 sweeps", outcomes.len());

    println!("\npaper shape: §4.3 frames deployment as an ongoing obligation, not a");
    println!("handoff — traffic drifts, labels arrive late, and replicas fail while");
    println!("the model is mid-update. The self-healing loop closes that gap:");
    println!("detect (Page–Hinkley on OOD distance + confidence + feedback errors),");
    println!("quarantine, fine-tune in the background, and promote canary-first so");
    println!("the fleet never serves fewer answers while it learns.");
    nfm_bench::finish();
}
