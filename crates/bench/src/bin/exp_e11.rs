//! E11 — common cross-protocol representation (paper §4.1.1).
//!
//! Claim: "a natural first step is for us to learn common representations
//! within a single network protocol and then expand the foundation model to
//! the multi-lingual domain" — the multilingual argument (RoBERTa →
//! XLM-RoBERTa). We pre-train specialists on single-protocol slices of the
//! corpus and one unified model on everything, then evaluate all of them on
//! the full multi-protocol downstream task.

use nfm_bench::{banner, pipeline_config, render_table, train_family, ModelFamily, Scale};
use nfm_core::netglue::Task;
use nfm_core::pipeline::FoundationModel;
use nfm_core::report::{f3, Table};
use nfm_model::tokenize::field::FieldTokenizer;
use nfm_net::capture::Trace;
use nfm_traffic::dataset::{extract_flows, split_train_val, Environment};

fn protocol_slice(trace: &Trace, ports: &[u16]) -> Trace {
    trace.filter(|p| {
        let sp = p.transport.src_port().unwrap_or(0);
        let dp = p.transport.dst_port().unwrap_or(0);
        ports.contains(&sp) || ports.contains(&dp)
    })
}

fn main() {
    banner(
        "E11",
        "§4.1.1 (common representation)",
        "one cross-protocol model beats per-protocol specialists on a\n  multi-protocol task",
    );
    let scale = Scale::from_env();
    let tokenizer = FieldTokenizer::new();
    let task = Task::AppClassification;

    let envs = Environment::pretrain_mix(scale.pretrain_sessions);
    let traces: Vec<Trace> = envs.iter().map(|e| e.simulate().trace).collect();

    let lt_a = Environment::env_a(scale.labeled_sessions).simulate();
    let flows = extract_flows(&lt_a, 2);
    let (train_flows, eval_flows) = split_train_val(flows, 0.3);
    let train = task.examples(&train_flows, &tokenizer, 94);
    let eval = task.examples(&eval_flows, &tokenizer, 94);

    let corpora: [(&str, Option<Vec<u16>>); 4] = [
        ("dns-specialist", Some(vec![53])),
        ("web-specialist", Some(vec![80, 8080])),
        ("tls-specialist", Some(vec![443, 8443])),
        ("unified", None),
    ];

    let mut table = Table::new(&[
        "pretrain corpus",
        "corpus packets",
        "vocab",
        "downstream acc",
        "downstream f1",
    ]);
    for (name, ports) in corpora {
        let sliced: Vec<Trace> = match &ports {
            Some(ports) => traces.iter().map(|t| protocol_slice(t, ports)).collect(),
            None => traces.clone(),
        };
        let n_packets: usize = sliced.iter().map(|t| t.len()).sum();
        println!("pretraining {name} on {n_packets} packets…");
        let refs: Vec<&Trace> = sliced.iter().collect();
        let cfg = pipeline_config(&scale);
        let (fm, _) =
            FoundationModel::pretrain_on(&refs, &tokenizer, &cfg).expect("pretraining failed");
        let model = train_family(ModelFamily::FmFinetuned, &fm, &train, task.n_classes(), &scale);
        let confusion = model.evaluate(&eval);
        table.row(&[
            name.to_string(),
            n_packets.to_string(),
            fm.vocab.len().to_string(),
            f3(confusion.accuracy()),
            f3(confusion.macro_f1()),
        ]);
    }
    println!();
    render_table("e11.results", &table);
    println!("paper shape: unified > every specialist on the multi-protocol task,");
    println!("because specialists lack the other protocols' vocabulary entirely.");
    nfm_bench::finish();
}
