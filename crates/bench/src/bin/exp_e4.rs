//! E4 — tokenizer ablation (paper §4.1.2).
//!
//! Claim: "recognizing the network protocol and tokenizing it based on
//! protocol format … would preserve the semantics of the tokens" — i.e. the
//! field-aware tokenizer should beat raw bytes (and learned BPE over bytes)
//! on downstream quality at the same budget, while byte-level models pay a
//! long-sequence tax.

use nfm_bench::{banner, pipeline_config, render_table, train_family, ModelFamily, Scale};
use nfm_core::netglue::Task;
use nfm_core::pipeline::FoundationModel;
use nfm_core::report::{f3, Table};
use nfm_model::tokenize::bpe::BpeTokenizer;
use nfm_model::tokenize::bytes::ByteTokenizer;
use nfm_model::tokenize::field::FieldTokenizer;
use nfm_model::tokenize::Tokenizer;
use nfm_net::capture::Trace;
use nfm_traffic::dataset::{extract_flows, split_train_val, Environment};

fn run_one(
    name: &str,
    tokenizer: &dyn Tokenizer,
    traces: &[&Trace],
    scale: &Scale,
    table: &mut Table,
) {
    let cfg = pipeline_config(scale);
    let (fm, stats) =
        FoundationModel::pretrain_on(traces, tokenizer, &cfg).expect("pretraining failed");

    let task = Task::AppClassification;
    let lt_a = Environment::env_a(scale.labeled_sessions).simulate();
    let flows = extract_flows(&lt_a, 2);
    let (train_flows, eval_flows) = split_train_val(flows, 0.3);
    let train = task.examples(&train_flows, tokenizer, 94);
    let eval = task.examples(&eval_flows, tokenizer, 94);

    let model = train_family(ModelFamily::FmFinetuned, &fm, &train, task.n_classes(), scale);
    let confusion = model.evaluate(&eval);
    let mean_len: f64 =
        eval.iter().map(|e| e.tokens.len()).sum::<usize>() as f64 / eval.len().max(1) as f64;
    table.row(&[
        name.to_string(),
        fm.vocab.len().to_string(),
        format!("{mean_len:.1}"),
        f3(stats.final_mlm_accuracy as f64),
        f3(confusion.accuracy()),
        f3(confusion.macro_f1()),
    ]);
}

fn main() {
    banner(
        "E4",
        "§4.1.2 (tokenizer design)",
        "protocol-field tokenization beats byte-level and BPE at equal budget",
    );
    let scale = Scale::from_env();
    let envs = Environment::pretrain_mix(scale.pretrain_sessions);
    let traces: Vec<Trace> = envs.iter().map(|e| e.simulate().trace).collect();
    let refs: Vec<&Trace> = traces.iter().collect();

    let mut table = Table::new(&[
        "tokenizer",
        "vocab",
        "mean seq len",
        "mlm acc",
        "downstream acc",
        "downstream f1",
    ]);

    println!("field tokenizer…");
    run_one("field", &FieldTokenizer::new(), &refs, &scale, &mut table);

    println!("byte tokenizer…");
    run_one("bytes", &ByteTokenizer::new(), &refs, &scale, &mut table);

    println!("training BPE merges…");
    let frames: Vec<Vec<u8>> = traces
        .iter()
        .flat_map(|t| t.packets().iter().take(1500).map(|p| p.frame.clone()))
        .collect();
    let bpe = BpeTokenizer::train(&frames, 160);
    println!("bpe tokenizer ({} merges)…", bpe.n_merges());
    run_one("bpe", &bpe, &refs, &scale, &mut table);

    println!();
    render_table("e4.results", &table);
    println!("paper shape: field > bpe > bytes on downstream quality; bytes pay");
    println!("a long-sequence tax (mean seq len) for the same packet budget.");
    nfm_bench::finish();
}
