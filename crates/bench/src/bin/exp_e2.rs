//! E2 — NorBERT token-semantics reproduction (paper §3.4).
//!
//! Claim: after pre-training on traffic, "the closest neighbor to the token
//! 80 (HTTP) was the token 443 (HTTPS); and the closest neighbor to the
//! token 49199 [ECDHE-RSA-AES128-GCM] is token 49200 [its AES-256 sibling]".
//!
//! Two embedding sources over the same corpus are probed: skip-gram
//! word2vec with frequent-token subsampling (the distributional-semantics
//! reference from the paper's §2) and the foundation model's MLM input
//! embeddings. Tokens are related if they occur in interchangeable traffic
//! contexts; the probes ask whether each source discovers that.

use nfm_bench::{banner, pretrain_standard, render_table, Scale};
use nfm_core::report::{f3, Table};
use nfm_model::context::{contexts_from_trace, ContextStrategy};
use nfm_model::embed::analysis::{nearest_neighbors, neighbor_rank};
use nfm_model::embed::word2vec::{Word2Vec, Word2VecConfig};
use nfm_model::pretrain::TaskMix;
use nfm_model::tokenize::field::FieldTokenizer;
use nfm_model::vocab::Vocab;
use nfm_tensor::matrix::Matrix;
use nfm_traffic::dataset::Environment;

const PROBES: [(&str, &str, &str); 6] = [
    ("PORT_80", "PORT_443", "paper: nn(80)=443 (HTTP↔HTTPS)"),
    ("CS_C02F", "CS_C030", "paper: nn(49199)=49200 (AES sibling)"),
    ("CS_1301", "CS_1302", "TLS1.3 sibling pair"),
    ("PORT_25", "PORT_143", "mail cluster (SMTP↔IMAP)"),
    ("DNS_QUERY", "DNS_RESP", "request↔response pair"),
    ("TLS_CLIENT_HELLO", "TLS_SERVER_HELLO", "handshake pair"),
];

fn probe(table: &mut Table, model: &str, emb: &Matrix, vocab: &Vocab) {
    for (query, expected, note) in PROBES {
        let (Some(q), Some(e)) = (vocab.id_exact(query), vocab.id_exact(expected)) else {
            table.row(&[
                model.into(),
                query.into(),
                expected.into(),
                "n/a".into(),
                "token not in vocab".into(),
                note.into(),
            ]);
            continue;
        };
        let rank =
            neighbor_rank(emb, vocab, q, e, 50).map(|r| r.to_string()).unwrap_or(">50".into());
        let top: Vec<String> = nearest_neighbors(emb, vocab, q, 3)
            .into_iter()
            .map(|n| format!("{}({})", n.token, f3(n.similarity as f64)))
            .collect();
        table.row(&[model.into(), query.into(), expected.into(), rank, top.join(" "), note.into()]);
    }
}

fn suite_purity(emb: &Matrix, vocab: &Vocab) -> (usize, usize) {
    let suites: Vec<usize> =
        vocab.iter().filter(|(_, t)| t.starts_with("CS_")).map(|(id, _)| id).collect();
    let is_strong = |tok: &str| {
        u16::from_str_radix(tok.trim_start_matches("CS_"), 16)
            .map(nfm_net::wire::tls::suites::is_strong)
            .unwrap_or(false)
    };
    let mut same = 0;
    let mut total = 0;
    for &s in &suites {
        let nns = nearest_neighbors(emb, vocab, s, 50);
        if let Some(nn) = nns.iter().find(|n| n.token.starts_with("CS_")) {
            total += 1;
            if is_strong(vocab.token(s)) == is_strong(&nn.token) {
                same += 1;
            }
        }
    }
    (same, total)
}

fn main() {
    banner(
        "E2",
        "§3.4 (NorBERT token semantics)",
        "nearest neighbors of learned token embeddings match protocol intuition",
    );
    let scale = Scale::from_env();
    let tokenizer = FieldTokenizer::new();

    // Shared corpus: flow contexts (no truncation of handshakes).
    let envs = Environment::pretrain_mix(scale.pretrain_sessions);
    let traces: Vec<_> = envs.iter().map(|e| e.simulate().trace).collect();
    let mut contexts = Vec::new();
    for t in &traces {
        contexts.extend(contexts_from_trace(t, &tokenizer, ContextStrategy::Flow, 94));
    }
    let vocab = Vocab::from_sequences(&contexts, 2);
    let encoded: Vec<Vec<usize>> = contexts.iter().map(|c| vocab.encode(c)).collect();
    println!("corpus: {} flow contexts, vocab {}", contexts.len(), vocab.len());

    println!("training word2vec (with frequent-token subsampling)…");
    let w2v = Word2Vec::train(
        &encoded,
        &vocab,
        &Word2VecConfig { dim: 32, epochs: 6, ..Word2VecConfig::default() },
    );

    println!("pretraining foundation model…\n");
    let fm = pretrain_standard(&scale, &tokenizer, TaskMix::default());

    let mut table =
        Table::new(&["embeddings", "query", "expected", "rank", "top-3 neighbors", "note"]);
    probe(&mut table, "word2vec", &w2v.embeddings, &vocab);
    probe(&mut table, "fm-input", fm.encoder.token_embeddings(), &fm.vocab);
    render_table("e2.results", &table);

    let (same, total) = suite_purity(&w2v.embeddings, &vocab);
    println!(
        "word2vec ciphersuite cluster purity: {same}/{total} ({})",
        f3(if total > 0 { same as f64 / total as f64 } else { 0.0 })
    );
    let (same, total) = suite_purity(fm.encoder.token_embeddings(), &fm.vocab);
    println!(
        "fm-input ciphersuite cluster purity: {same}/{total} ({})\n",
        f3(if total > 0 { same as f64 / total as f64 } else { 0.0 })
    );
    println!("paper shape: semantically-related tokens are mutual nearest neighbors;");
    println!("the distributional (word2vec) probe shows it most cleanly at this scale.");
    nfm_bench::finish();
}
