//! E9 — interpretability (paper §4.4).
//!
//! Claim: networking models need networking-native explanations; "the notion
//! of superpixels has allowed more meaningful features and explanations" in
//! vision, and the analogue here is explaining whole protocol *fields*
//! (token groups) rather than individual sub-tokens. We measure explanation
//! fidelity with deletion curves (lower area = the explanation found what
//! the model actually uses) for token-level occlusion, field-group
//! occlusion, attention rollout, and a random-attribution control.

use nfm_bench::{
    banner, pretrain_standard, render_table, train_family, ModelFamily, Scale, TrainedModel,
};
use nfm_core::interpret::{
    attention_rollout, deletion_auc, occlusion_groups, occlusion_tokens, Attribution,
};
use nfm_core::netglue::Task;
use nfm_core::report::{f3, Table};
use nfm_model::pretrain::TaskMix;
use nfm_model::tokenize::field::FieldTokenizer;
use nfm_traffic::dataset::{extract_flows, split_train_val, Environment};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    banner(
        "E9",
        "§4.4 (interpretability)",
        "field-group ('superpixel') explanations are as faithful as token-level\n  ones while being far coarser; both beat random attribution",
    );
    let scale = Scale::from_env();
    let tokenizer = FieldTokenizer::new();
    let task = Task::AppClassification;

    println!("pretraining + fine-tuning a classifier…\n");
    let fm = pretrain_standard(&scale, &tokenizer, TaskMix::default());
    let lt = Environment::env_a(scale.labeled_sessions).simulate();
    let flows = extract_flows(&lt, 2);
    let (train_flows, eval_flows) = split_train_val(flows, 0.3);
    let train = task.examples(&train_flows, &tokenizer, 64);
    let eval = task.examples(&eval_flows, &tokenizer, 64);
    let model = train_family(ModelFamily::FmFinetuned, &fm, &train, task.n_classes(), &scale);
    let TrainedModel::Fm(mut clf) = model else { unreachable!("fm family") };

    let n_explained = eval.len().min(40);
    let mut rng = StdRng::seed_from_u64(99);
    let mut auc_token = Vec::new();
    let mut auc_group = Vec::new();
    let mut auc_rollout = Vec::new();
    let mut auc_random = Vec::new();
    let mut group_units = Vec::new();
    let mut token_units = Vec::new();

    for example in eval.iter().take(n_explained) {
        let tokens = &example.tokens;
        if tokens.len() < 4 {
            continue;
        }
        let t_attr = occlusion_tokens(&clf, tokens);
        let g_attr = occlusion_groups(&clf, tokens);
        // Rollout weights as token-level attributions.
        let weights = attention_rollout(&mut clf, tokens);
        let r_attr: Vec<Attribution> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| Attribution {
                unit: tokens[i].clone(),
                token_indices: vec![i],
                importance: w,
            })
            .collect();
        // Random control.
        let rand_attr: Vec<Attribution> = (0..tokens.len())
            .map(|i| Attribution {
                unit: tokens[i].clone(),
                token_indices: vec![i],
                importance: rng.gen::<f64>(),
            })
            .collect();
        auc_token.push(deletion_auc(&clf, tokens, &t_attr));
        auc_group.push(deletion_auc(&clf, tokens, &g_attr));
        auc_rollout.push(deletion_auc(&clf, tokens, &r_attr));
        auc_random.push(deletion_auc(&clf, tokens, &rand_attr));
        token_units.push(t_attr.len() as f64);
        group_units.push(g_attr.len() as f64);
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let mut table =
        Table::new(&["explanation", "units per example", "deletion AUC (lower=better)"]);
    table.row(&[
        "occlusion-tokens".into(),
        format!("{:.1}", mean(&token_units)),
        f3(mean(&auc_token)),
    ]);
    table.row(&[
        "occlusion-groups".into(),
        format!("{:.1}", mean(&group_units)),
        f3(mean(&auc_group)),
    ]);
    table.row(&[
        "attention-rollout".into(),
        format!("{:.1}", mean(&token_units)),
        f3(mean(&auc_rollout)),
    ]);
    table.row(&[
        "random-control".into(),
        format!("{:.1}", mean(&token_units)),
        f3(mean(&auc_random)),
    ]);
    println!();
    render_table("e9.results", &table);
    println!("paper shape: occlusion methods < random; groups give comparable");
    println!("fidelity with ~4x fewer units — the superpixel argument.");
    nfm_bench::finish();
}
