//! E15 — robust streaming inference under chaos (paper §4.3, operational
//! robustness; serving-side counterpart of E14).
//!
//! Claim: a deployed foundation model must keep answering when the network
//! and the model itself misbehave. The serving engine's controls —
//! bounded admission with deterministic shedding, deadline budgets,
//! retry-with-backoff, and a circuit breaker that degrades to the flow-stats
//! baseline — must together guarantee that every admitted request gets a
//! response, with zero panics, and that a fixed seed reproduces the whole
//! availability table bitwise.
//!
//! The chaos matrix drives one scenario per failure mode:
//!
//! | scenario    | injected fault                                     |
//! |-------------|----------------------------------------------------|
//! | clean       | none (control)                                     |
//! | corrupt     | byte flips + snaplen truncation + reorder + dupes  |
//! | burst       | bursty arrivals against a small admission queue    |
//! | deadline    | tight per-request budget                           |
//! | nan-poison  | NaN weights mid-run, then healed (breaker cycle)   |
//! | combined    | all of the above at once                           |

use nfm_bench::{banner, render_table, Scale};
use nfm_core::baselines::MajorityBaseline;
use nfm_core::pipeline::{
    FineTuneConfig, FmClassifier, FoundationModel, PipelineConfig, TextExample,
};
use nfm_core::report::Table;
use nfm_core::serve::{BreakerConfig, Fallback, RetryPolicy, ServeConfig, ServeEngine, ServeStats};
use nfm_model::pretrain::{PretrainConfig, TaskMix};
use nfm_model::tokenize::field::FieldTokenizer;
use nfm_net::capture::Trace;
use nfm_tensor::layers::Module;
use nfm_traffic::faults::{burst_schedule, inject, FaultConfig};
use nfm_traffic::netsim::{simulate, SimConfig};

/// One chaos scenario: a name, the capture-level faults, the arrival
/// process, the serving knobs, and whether the model is NaN-poisoned for
/// the middle third of the run.
struct Scenario {
    name: &'static str,
    faults: Option<FaultConfig>,
    arrivals: FaultConfig,
    serve: ServeConfig,
    poison_midrun: bool,
}

/// Accumulated outcome of one scenario.
struct Outcome {
    name: &'static str,
    stats: ServeStats,
    responses: usize,
}

fn train_engine_model(scale: &Scale) -> (FmClassifier, Fallback, Trace) {
    let lt = simulate(&SimConfig {
        n_sessions: scale.labeled_sessions.min(80),
        n_general_hosts: 4,
        n_iot_sets: 1,
        ..SimConfig::default()
    });
    let tokenizer = FieldTokenizer::new();
    let cfg = PipelineConfig {
        d_model: 16,
        n_heads: 2,
        n_layers: 1,
        d_ff: 32,
        max_len: 48,
        pretrain: PretrainConfig {
            epochs: scale.pretrain_epochs.min(2),
            tasks: TaskMix::mlm_only(),
            ..PretrainConfig::default()
        },
        ..PipelineConfig::default()
    };
    let (fm, _) =
        FoundationModel::pretrain_on(&[&lt.trace], &tokenizer, &cfg).expect("pretraining failed");
    // A small benign/telemetry-style task: the experiment measures
    // availability, not accuracy, so a port-separable set is enough.
    let train: Vec<TextExample> = (0..24)
        .map(|i| TextExample {
            tokens: vec![if i % 2 == 0 { "PORT_53" } else { "PORT_443" }.to_string()],
            label: i % 2,
        })
        .collect();
    let clf = FmClassifier::fine_tune(
        &fm,
        &train,
        2,
        &FineTuneConfig { epochs: 2, ..FineTuneConfig::default() },
    )
    .expect("fine-tuning failed");
    let fallback = Fallback::Majority(MajorityBaseline::fit(&train, 2));
    (clf, fallback, lt.trace)
}

/// Run one scenario to completion and return its availability accounting.
/// The trace is served in three equal slices; `poison_midrun` NaN-poisons
/// the encoder for the middle slice and heals it for the last, which forces
/// a full breaker cycle (closed → open → half-open → closed) under live
/// traffic.
fn run_scenario(clf: &FmClassifier, trace: &Trace, scenario: &Scenario) -> Outcome {
    let tokenizer = FieldTokenizer::new();
    let served_trace = match &scenario.faults {
        Some(cfg) => inject(trace, cfg).0,
        None => trace.clone(),
    };
    let n = served_trace.len();
    let fallback = Fallback::Majority(MajorityBaseline { class: 0, n_classes: 2 });
    let mut engine = ServeEngine::new(clf.clone(), fallback, scenario.serve);
    let mut responses = 0usize;

    // Slice the capture by packet index thirds so the poison window falls
    // mid-run. Flow assembly is per-slice — fine for availability metrics.
    let cuts = [0, n / 3, 2 * n / 3, n];
    let mut snapshot: Vec<Vec<f32>> = Vec::new();
    for phase in 0..3 {
        if scenario.poison_midrun && phase == 1 {
            engine.model_mut().encoder.visit_params(&mut |p, _| snapshot.push(p.to_vec()));
            engine.model_mut().encoder.visit_params(&mut |p, _| p.fill(f32::NAN));
        }
        if scenario.poison_midrun && phase == 2 {
            let mut slot = 0usize;
            engine.model_mut().encoder.visit_params(&mut |p, _| {
                p.copy_from_slice(&snapshot[slot]);
                slot += 1;
            });
        }
        let slice =
            Trace::from_packets(served_trace.packets()[cuts[phase]..cuts[phase + 1]].to_vec());
        let schedule = burst_schedule(
            slice.len().max(1) * 4,
            &FaultConfig { seed: scenario.arrivals.seed + phase as u64, ..scenario.arrivals },
        );
        responses += engine.serve_trace(&slice, &tokenizer, &schedule).len();
    }
    Outcome { name: scenario.name, stats: engine.stats(), responses }
}

fn scenarios() -> Vec<Scenario> {
    // Corruption pressure calibrated to degrade, not blind, the capture:
    // byte flips and a 200-byte snap length leave most headers intact, so
    // the engine still sees traffic while counting plenty of malformed
    // packets.
    let corrupt = FaultConfig {
        corrupt_chance: 0.3,
        snaplen: 200,
        reorder_chance: 0.25,
        duplicate_chance: 0.15,
        seed: 21,
        ..FaultConfig::default()
    };
    let bursty =
        FaultConfig { burst_chance: 0.6, max_burst: 32, seed: 9, ..FaultConfig::default() };
    let smooth = FaultConfig { seed: 9, ..FaultConfig::default() };
    let small_queue =
        ServeConfig { queue_capacity: 6, shed_watermark: 3, ..ServeConfig::default() };
    let breaker_fast = ServeConfig {
        breaker: BreakerConfig { failure_threshold: 2, cooldown: 4, probes_to_close: 1 },
        retry: RetryPolicy { max_retries: 1, ..RetryPolicy::default() },
        ..ServeConfig::default()
    };
    vec![
        Scenario {
            name: "clean",
            faults: None,
            arrivals: smooth,
            serve: ServeConfig::default(),
            poison_midrun: false,
        },
        Scenario {
            name: "corrupt",
            faults: Some(corrupt),
            arrivals: smooth,
            serve: ServeConfig::default(),
            poison_midrun: false,
        },
        Scenario {
            name: "burst",
            faults: None,
            arrivals: bursty,
            serve: small_queue,
            poison_midrun: false,
        },
        Scenario {
            name: "deadline",
            faults: None,
            arrivals: smooth,
            serve: ServeConfig { deadline_budget: 40_000, ..ServeConfig::default() },
            poison_midrun: false,
        },
        Scenario {
            name: "nan-poison",
            faults: None,
            arrivals: smooth,
            serve: breaker_fast,
            poison_midrun: true,
        },
        Scenario {
            name: "combined",
            faults: Some(corrupt),
            arrivals: bursty,
            serve: ServeConfig {
                deadline_budget: 400_000,
                ..ServeConfig {
                    breaker: breaker_fast.breaker,
                    retry: breaker_fast.retry,
                    ..small_queue
                }
            },
            poison_midrun: true,
        },
    ]
}

fn availability_table(outcomes: &[Outcome]) -> Table {
    let mut table = Table::new(&[
        "scenario", "arrived", "admitted", "shed", "model", "fallback", "ddl_miss", "trips",
        "recov", "avail", "panics",
    ]);
    for o in outcomes {
        let s = &o.stats;
        table.row(&[
            o.name.into(),
            s.arrived.to_string(),
            s.admitted.to_string(),
            s.shed.to_string(),
            s.answered_model.to_string(),
            s.answered_fallback.to_string(),
            s.deadline_misses.to_string(),
            s.breaker_trips.to_string(),
            s.breaker_recoveries.to_string(),
            format!("{:.3}", s.availability()),
            "0".into(),
        ]);
    }
    table
}

fn main() {
    banner(
        "E15",
        "§4.3 (operational deployment)",
        "serving stays available under chaos: every admitted request answered, \
         breaker trips and recovers, zero panics, bitwise-reproducible table",
    );
    let scale = Scale::from_env();
    let (clf, _, trace) = train_engine_model(&scale);
    println!("capture: {} packets; fault matrix: 6 scenarios\n", trace.len());

    let run_sweep = || -> Vec<Outcome> {
        scenarios().iter().map(|sc| run_scenario(&clf, &trace, sc)).collect()
    };
    let outcomes = run_sweep();
    let table = availability_table(&outcomes);
    render_table("e15.availability", &table);

    // --- The acceptance criteria, asserted, not eyeballed ---------------
    for o in &outcomes {
        let s = &o.stats;
        assert_eq!(s.answered(), s.admitted, "{}: every admitted request must be answered", o.name);
        assert_eq!(o.responses, s.admitted, "{}: one response per admitted request", o.name);
        assert_eq!(s.arrived, s.admitted + s.shed, "{}: arrivals are admitted or shed", o.name);
    }
    let burst = outcomes.iter().find(|o| o.name == "burst").expect("burst scenario");
    assert!(burst.stats.shed > 0, "bursty overload must shed");
    let corrupt = outcomes.iter().find(|o| o.name == "corrupt").expect("corrupt scenario");
    assert!(corrupt.stats.malformed_packets > 0, "corruption must produce unparseable packets");
    assert!(corrupt.stats.answered() > 0, "a degraded capture must still be served");
    let deadline = outcomes.iter().find(|o| o.name == "deadline").expect("deadline scenario");
    assert!(deadline.stats.deadline_misses > 0, "tight budget must miss deadlines");
    assert_eq!(deadline.stats.breaker_trips, 0, "deadline misses never trip the breaker");
    let poison = outcomes.iter().find(|o| o.name == "nan-poison").expect("poison scenario");
    assert!(poison.stats.breaker_trips >= 1, "NaN weights must trip the breaker");
    assert!(poison.stats.breaker_recoveries >= 1, "healed weights must close the breaker");
    assert!(poison.stats.answered_fallback > 0, "open breaker routes to the fallback");

    // --- Bitwise reproducibility ----------------------------------------
    let rerun = run_sweep();
    let identical =
        outcomes.iter().zip(&rerun).all(|(a, b)| a.stats == b.stats && a.responses == b.responses);
    assert!(identical, "fixed seeds must reproduce the availability table bitwise");
    println!("\nrerun with identical seeds: availability table bitwise identical = {identical}");
    println!("zero panics across {} scenarios x 2 sweeps", outcomes.len());

    println!("\npaper shape: §4.3 asks what it takes to operate a foundation model");
    println!("in production; the answer on the serving side is explicit backpressure,");
    println!("deadlines, and a breaker that degrades to the cheap baseline instead of");
    println!("failing — availability holds even when the model itself is poisoned.");
    nfm_bench::finish();
}
