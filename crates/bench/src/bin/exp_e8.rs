//! E8 — zero-day detection via OOD scores (paper §4.3).
//!
//! Claim: Sommer & Paxson argued ML only finds "activity that is similar to
//! something previously seen"; the paper counters that modern OOD methods
//! (energy scores, Mahalanobis on embeddings) can flag genuinely novel
//! behavior. We train a malware classifier on benign traffic + two known
//! attack classes, then score three *held-out* attack classes. A pre-trained
//! encoder is compared with a never-pre-trained one to isolate the
//! contribution of the foundation model.

use nfm_bench::{banner, pipeline_config, render_table, Scale};
use nfm_core::metrics::auroc;
use nfm_core::netglue::Task;
use nfm_core::ood::{OodDetector, OodScore};
use nfm_core::pipeline::{FineTuneConfig, FmClassifier, FoundationModel, PipelineConfig};
use nfm_core::report::{f3, Table};
use nfm_model::context::flow_context;
use nfm_model::pretrain::PretrainConfig;
use nfm_model::tokenize::field::FieldTokenizer;
use nfm_traffic::dataset::{extract_flows, OodSplit};
use nfm_traffic::AnomalyClass;

fn flows_tokens(
    flows: &[nfm_traffic::LabeledFlow],
    tokenizer: &FieldTokenizer,
    pred: impl Fn(&nfm_traffic::LabeledFlow) -> bool,
) -> Vec<Vec<String>> {
    flows
        .iter()
        .filter(|f| pred(f))
        .map(|f| flow_context(&f.packets, tokenizer, 94))
        .filter(|t| !t.is_empty())
        .collect()
}

fn main() {
    banner(
        "E8",
        "§4.3 (rare and unseen events)",
        "embedding-based OOD scores detect attack classes absent from training",
    );
    let scale = Scale::from_env();
    let tokenizer = FieldTokenizer::new();
    let split = OodSplit::default();

    let train_lt = split.train_env(scale.labeled_sessions).simulate();
    let eval_lt = split.eval_env(scale.labeled_sessions).simulate();
    let train_flows = extract_flows(&train_lt, 2);
    let eval_flows = extract_flows(&eval_lt, 2);
    let train_ex = Task::MalwareDetection.examples(&train_flows, &tokenizer, 94);

    // Two encoders: pre-trained vs never-pre-trained (ablation).
    println!("pretraining encoder…");
    let cfg = pipeline_config(&scale);
    let (fm_pre, _) = FoundationModel::pretrain_on(&[&train_lt.trace], &tokenizer, &cfg)
        .expect("pretraining failed");
    println!("building random-init encoder (no pretraining)…\n");
    let no_pretrain_cfg = PipelineConfig {
        pretrain: PretrainConfig { epochs: 0, ..PretrainConfig::default() },
        ..cfg.clone()
    };
    let (fm_rand, _) =
        FoundationModel::pretrain_on(&[&train_lt.trace], &tokenizer, &no_pretrain_cfg)
            .expect("pretraining failed");

    let ft = FineTuneConfig { epochs: scale.finetune_epochs, ..FineTuneConfig::default() };
    let clf_pre = FmClassifier::fine_tune(&fm_pre, &train_ex, 2, &ft).expect("fine-tuning failed");
    let clf_rand =
        FmClassifier::fine_tune(&fm_rand, &train_ex, 2, &ft).expect("fine-tuning failed");

    let benign = flows_tokens(&eval_flows, &tokenizer, |f| !f.label.is_malicious());
    println!("eval: {} benign flows; zero-days: {:?}\n", benign.len(), split.zero_day);

    let mut table = Table::new(&["encoder", "zero-day", "score", "auroc"]);
    for (enc_name, clf) in [("pretrained", &clf_pre), ("random-init", &clf_rand)] {
        let detector = OodDetector::fit(clf, &train_ex);
        for class in &split.zero_day {
            let attacks =
                flows_tokens(&eval_flows, &tokenizer, |f| f.label.anomaly == Some(*class));
            if attacks.is_empty() {
                continue;
            }
            for score in OodScore::ALL {
                let pos: Vec<f64> = attacks.iter().map(|t| detector.score(clf, t, score)).collect();
                let neg: Vec<f64> = benign.iter().map(|t| detector.score(clf, t, score)).collect();
                table.row(&[
                    enc_name.to_string(),
                    class.name().to_string(),
                    score.name().to_string(),
                    f3(auroc(&pos, &neg)),
                ]);
            }
        }
    }
    println!();
    render_table("e8.results", &table);
    let _ = AnomalyClass::ALL; // anchor the label set in the binary
    println!("paper shape: mahalanobis/energy ≫ 0.5 on zero-days; the pretrained");
    println!("encoder beats the random-init one, answering Sommer-Paxson.");
    nfm_bench::finish();
}
