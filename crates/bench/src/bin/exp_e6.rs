//! E6 — pre-training task ablation (paper §4.1.4).
//!
//! Claim: "new network-specific training tasks may need to be defined", in
//! particular tasks that "capture the nature of the relationships between a
//! query and its answers". We sweep {MLM} → {MLM+next-flow} →
//! {MLM+query-answer} → all three, and additionally probe each model's
//! ability to predict masked DNS *answer* tokens (the QA skill itself).

use nfm_bench::{banner, pretrain_standard, render_table, train_family, ModelFamily, Scale};
use nfm_core::netglue::Task;
use nfm_core::report::{f3, Table};
use nfm_model::pretrain::TaskMix;
use nfm_model::tokenize::field::FieldTokenizer;
use nfm_traffic::dataset::{extract_flows, split_train_val, Environment};

fn main() {
    banner(
        "E6",
        "§4.1.4 (pre-training tasks)",
        "adding network-specific objectives (next-flow, query→answer) helps",
    );
    let scale = Scale::from_env();
    let tokenizer = FieldTokenizer::new();

    let task = Task::AppClassification;
    let lt_a = Environment::env_a(scale.labeled_sessions).simulate();
    let flows = extract_flows(&lt_a, 2);
    let (train_flows, eval_flows) = split_train_val(flows, 0.3);
    let train = task.examples(&train_flows, &tokenizer, 94);
    let eval = task.examples(&eval_flows, &tokenizer, 94);

    let mixes = [
        TaskMix { mlm: true, next_flow: false, query_answer: false },
        TaskMix { mlm: true, next_flow: true, query_answer: false },
        TaskMix { mlm: true, next_flow: false, query_answer: true },
        TaskMix { mlm: true, next_flow: true, query_answer: true },
    ];

    let mut table = Table::new(&["pretrain tasks", "downstream acc", "downstream f1"]);
    for mix in mixes {
        println!("pretraining with {}…", mix.name());
        let fm = pretrain_standard(&scale, &tokenizer, mix);
        let model = train_family(ModelFamily::FmFinetuned, &fm, &train, task.n_classes(), &scale);
        let confusion = model.evaluate(&eval);
        table.row(&[mix.name(), f3(confusion.accuracy()), f3(confusion.macro_f1())]);
    }
    println!();
    render_table("e6.results", &table);
    println!("paper shape: mlm+nfp+qa ≥ mlm+single-extra ≥ mlm alone.");
    nfm_bench::finish();
}
