//! E17 — micro-batched inference serving (paper §4.3, serving cost; the
//! throughput counterpart of E15's robustness story).
//!
//! Claim: serving traffic from millions of users makes inference cost a
//! first-order concern. Draining the admission queue in micro-batches —
//! every queued request packed into one forward pass, scratch buffers
//! reused across batches — must raise serving throughput without changing
//! a single answer: responses, statistics, and shed decisions stay bitwise
//! identical to one-at-a-time serving at every batch size, healthy or
//! NaN-poisoned.
//!
//! The sweep runs the E15 regime (corrupted, bursty capture) at
//! `max_batch` ∈ {1, 2, 4, 8, 16}, asserting bitwise identity against the
//! unbatched run at each point, then replays the whole sweep to confirm
//! the matrix reproduces exactly. Wall-clock throughput is printed for
//! operator eyes but kept out of the table, which holds only
//! deterministic values.

use std::time::Instant;

use nfm_bench::{banner, render_table, Scale};
use nfm_core::baselines::MajorityBaseline;
use nfm_core::pipeline::{
    FineTuneConfig, FmClassifier, FoundationModel, PipelineConfig, TextExample,
};
use nfm_core::report::Table;
use nfm_core::serve::{Fallback, Responder, Response, ServeConfig, ServeEngine, ServeStats};
use nfm_model::pretrain::{PretrainConfig, TaskMix};
use nfm_model::tokenize::field::FieldTokenizer;
use nfm_net::capture::Trace;
use nfm_tensor::layers::Module;
use nfm_traffic::faults::{burst_schedule, inject, FaultConfig};
use nfm_traffic::netsim::{simulate, SimConfig};

/// Batch sizes under test; 1 is the identity reference.
const BATCH_SIZES: [usize; 5] = [1, 2, 4, 8, 16];

/// Deterministic outcome of one sweep point (everything but wall time).
#[derive(Debug, Clone, PartialEq)]
struct Outcome {
    max_batch: usize,
    responses: Vec<Response>,
    stats: ServeStats,
    /// Packed forward passes executed (`serve.batch.count` delta).
    batches: u64,
    /// Requests answered out of packed passes (`serve.batch.requests` delta).
    batched_requests: u64,
}

fn train_serve_model(scale: &Scale) -> (FmClassifier, Trace) {
    let lt = simulate(&SimConfig {
        n_sessions: scale.labeled_sessions.min(120),
        n_general_hosts: 4,
        n_iot_sets: 1,
        ..SimConfig::default()
    });
    let tokenizer = FieldTokenizer::new();
    let cfg = PipelineConfig {
        d_model: 32,
        n_heads: 4,
        n_layers: 2,
        d_ff: 64,
        max_len: 48,
        pretrain: PretrainConfig {
            epochs: scale.pretrain_epochs.min(2),
            tasks: TaskMix::mlm_only(),
            ..PretrainConfig::default()
        },
        ..PipelineConfig::default()
    };
    let (fm, _) =
        FoundationModel::pretrain_on(&[&lt.trace], &tokenizer, &cfg).expect("pretraining failed");
    let train: Vec<TextExample> = (0..24)
        .map(|i| TextExample {
            tokens: vec![if i % 2 == 0 { "PORT_53" } else { "PORT_443" }.to_string()],
            label: i % 2,
        })
        .collect();
    let clf = FmClassifier::fine_tune(
        &fm,
        &train,
        2,
        &FineTuneConfig { epochs: 2, ..FineTuneConfig::default() },
    )
    .expect("fine-tuning failed");
    (clf, lt.trace)
}

fn counter_value(name: &str) -> u64 {
    nfm_obs::global()
        .snapshot()
        .into_iter()
        .find(|m| m.name == name)
        .and_then(|m| match m.value {
            nfm_obs::MetricValue::Counter(v) => Some(v),
            _ => None,
        })
        .unwrap_or(0)
}

/// Serve the capture at one batch size: healthy traffic, then NaN-poisoned
/// weights (breaker + fallback), then healed weights — the full E15 fault
/// arc, so identity is checked on the ugly paths too. Returns the
/// deterministic outcome plus the wall time of the serving calls.
fn run_point(
    clf: &FmClassifier,
    noisy: &Trace,
    schedule: &[usize],
    max_batch: usize,
) -> (Outcome, f64) {
    let tokenizer = FieldTokenizer::new();
    let config =
        ServeConfig { queue_capacity: 16, shed_watermark: 12, max_batch, ..ServeConfig::default() };
    let mut engine = ServeEngine::new(
        clf.clone(),
        Fallback::Majority(MajorityBaseline { class: 0, n_classes: 2 }),
        config,
    );
    let batches_before = counter_value("serve.batch.count");
    let requests_before = counter_value("serve.batch.requests");
    let start = Instant::now();
    let mut responses = engine.serve_trace(noisy, &tokenizer, schedule);
    let snapshot: Vec<Vec<f32>> = {
        let mut params = Vec::new();
        engine.model_mut().encoder.visit_params(&mut |p, _| params.push(p.to_vec()));
        params
    };
    engine.model_mut().encoder.visit_params(&mut |p, _| p.fill(f32::NAN));
    responses.extend(engine.serve_trace(noisy, &tokenizer, schedule));
    let mut slot = 0usize;
    engine.model_mut().encoder.visit_params(&mut |p, _| {
        p.copy_from_slice(&snapshot[slot]);
        slot += 1;
    });
    responses.extend(engine.serve_trace(noisy, &tokenizer, schedule));
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let outcome = Outcome {
        max_batch,
        responses,
        stats: engine.stats(),
        batches: counter_value("serve.batch.count") - batches_before,
        batched_requests: counter_value("serve.batch.requests") - requests_before,
    };
    (outcome, wall_ms)
}

fn sweep_table(outcomes: &[Outcome]) -> Table {
    let reference = &outcomes[0];
    let mut table = Table::new(&[
        "max_batch",
        "answered",
        "model",
        "fallback",
        "shed",
        "deadline_miss",
        "batches",
        "batched_reqs",
        "identical",
    ]);
    for o in outcomes {
        let s = &o.stats;
        let identical = o.responses == reference.responses && s == &reference.stats;
        table.row(&[
            o.max_batch.to_string(),
            s.answered().to_string(),
            s.answered_model.to_string(),
            s.answered_fallback.to_string(),
            s.shed.to_string(),
            s.deadline_misses.to_string(),
            o.batches.to_string(),
            o.batched_requests.to_string(),
            if identical { "yes" } else { "NO" }.to_string(),
        ]);
    }
    table
}

fn main() {
    banner(
        "E17",
        "§4.3 (serving cost at scale)",
        "micro-batched queue draining raises serving throughput while answering \
         every request bitwise identically to one-at-a-time serving, across \
         batch sizes and through NaN-poisoning fault arcs",
    );
    let scale = Scale::from_env();
    let (clf, trace) = train_serve_model(&scale);
    let (noisy, _) = inject(
        &trace,
        &FaultConfig { corrupt_chance: 0.3, snaplen: 200, seed: 21, ..FaultConfig::default() },
    );
    let schedule = burst_schedule(
        noisy.len() * 4,
        &FaultConfig { burst_chance: 0.5, max_burst: 16, seed: 9, ..FaultConfig::default() },
    );
    println!(
        "capture: {} packets ({} after faults); sweep: max_batch in {BATCH_SIZES:?}\n",
        trace.len(),
        noisy.len()
    );

    let run_sweep = || -> (Vec<Outcome>, Vec<f64>) {
        let mut outcomes = Vec::new();
        let mut walls = Vec::new();
        for &mb in &BATCH_SIZES {
            let (o, w) = run_point(&clf, &noisy, &schedule, mb);
            outcomes.push(o);
            walls.push(w);
        }
        (outcomes, walls)
    };
    let (outcomes, walls) = run_sweep();
    let table = sweep_table(&outcomes);
    render_table("e17.batching", &table);

    // Wall-clock throughput is operator-facing only: printed, never put in
    // the table, so the emitted records stay bitwise reproducible.
    println!("wall-clock (not part of the deterministic table):");
    for (o, w) in outcomes.iter().zip(&walls) {
        println!(
            "  max_batch={:<2} {:>8.1} ms  {:>9.0} req/s  {:>5.2}x",
            o.max_batch,
            w,
            o.responses.len() as f64 / (w / 1e3),
            walls[0] / w,
        );
    }

    // --- The acceptance criteria, asserted, not eyeballed ---------------
    let reference = &outcomes[0];
    assert!(reference.stats.shed > 0, "bursts against the queue must shed");
    assert!(
        reference.responses.iter().any(|r| r.responder == Responder::Fallback),
        "the poisoned phase must produce fallback answers"
    );
    assert!(
        reference.responses.iter().any(|r| r.responder == Responder::Model),
        "the healthy phases must produce model answers"
    );
    assert_eq!(reference.batches, 0, "max_batch=1 must never pack a batch");
    for o in &outcomes[1..] {
        assert_eq!(
            o.responses, reference.responses,
            "max_batch={}: responses must be bitwise identical to unbatched",
            o.max_batch
        );
        assert_eq!(
            o.stats, reference.stats,
            "max_batch={}: statistics must be identical to unbatched",
            o.max_batch
        );
        assert!(o.batches > 0, "max_batch={}: packed passes must actually run", o.max_batch);
    }
    let deepest = outcomes.last().expect("sweep ran");
    assert!(
        deepest.batched_requests > deepest.batches,
        "max_batch=16 must average more than one request per packed pass"
    );

    // --- Bitwise reproducibility ----------------------------------------
    let (rerun, _) = run_sweep();
    assert_eq!(outcomes, rerun, "fixed seeds must reproduce the sweep bitwise");
    println!("\nrerun with identical seeds: sweep bitwise identical = true");
    println!("zero divergent answers across {} sweep points x 2 sweeps", BATCH_SIZES.len());

    println!("\npaper shape: §4.3 asks whether foundation-model inference can be");
    println!("served at line-rate cost; micro-batching answers the throughput half");
    println!("without touching the correctness half — the batch is an execution");
    println!("detail, invisible in every response bit.");
    nfm_bench::finish();
}
