//! E19 — shared-encoder multi-task serving with embedding fan-out (paper
//! §3's amortization argument at serving time; the multi-task counterpart
//! of E17's micro-batching).
//!
//! Claim: the economic case for a network foundation model (§3) is that one
//! pre-trained encoder amortizes across the NetGLUE task suite (§4.2). That
//! argument is usually made about *training* — E12 already shows head-only
//! fine-tuning — but it applies equally at *serving* time: a deployment
//! answering K tasks about the same flow should run the shared encoder
//! once, cache the pooled embedding, and fan it out to K lightweight heads,
//! instead of running K full forwards. The risk is semantic: batching,
//! shedding, deadlines, breakers, and retries are all per-task state
//! machines, and sharing compute must not change a single answer.
//!
//! This binary builds one [`FmBackbone`] plus a [`TaskHead`] per NetGLUE
//! task, serves a bursty request stream with random per-request task
//! subsets through a [`MultiTaskServer`], and asserts the fan-out path is
//! **bitwise identical** — flow-for-flow, cost-for-cost, stat-for-stat —
//! to K independent single-task [`ServeEngine`]s fed the same per-task
//! streams, under both a generous and a deadline-starved budget. It then
//! checks the amortization actually happened: the shared path must run
//! strictly fewer encoder forwards than the fan-out it served. The whole
//! matrix must reproduce bitwise across two sweeps.

use nfm_bench::{banner, render_table, Scale};
use nfm_core::baselines::MajorityBaseline;
use nfm_core::netglue::Task;
use nfm_core::pipeline::{
    FineTuneConfig, FmBackbone, FoundationModel, PipelineConfig, Pooling, TaskHead,
};
use nfm_core::report::Table;
use nfm_core::serve::{
    assemble_requests, Fallback, MultiTaskServer, MultiTaskStats, Response, ServeConfig,
    ServeEngine, ServeRequest, ServeStats, TaskSet,
};
use nfm_model::pretrain::{PretrainConfig, TaskMix};
use nfm_model::tokenize::field::FieldTokenizer;
use nfm_traffic::dataset::extract_flows;
use nfm_traffic::faults::{burst_schedule, task_mask_schedule, FaultConfig};
use nfm_traffic::netsim::{simulate, SimConfig};

const MAX_TOKENS: usize = 48;
const N_TASKS: usize = Task::ALL.len();

fn sim(seed: u64, n_sessions: usize) -> SimConfig {
    SimConfig { seed, n_sessions, n_general_hosts: 4, n_iot_sets: 1, ..SimConfig::default() }
}

/// Pre-train the shared backbone and fine-tune one head per NetGLUE task
/// against it (encoder frozen — the heads share the backbone bitwise).
fn build_stack(scale: &Scale) -> (FmBackbone, Vec<TaskHead>, Vec<MajorityBaseline>) {
    let tok = FieldTokenizer::new();
    let lt = simulate(&sim(11, scale.labeled_sessions.min(60)));
    let cfg = PipelineConfig {
        d_model: 16,
        n_heads: 2,
        n_layers: 1,
        d_ff: 32,
        max_len: MAX_TOKENS,
        pretrain: PretrainConfig {
            epochs: scale.pretrain_epochs.min(2),
            tasks: TaskMix::mlm_only(),
            ..PretrainConfig::default()
        },
        ..PipelineConfig::default()
    };
    let (fm, _) =
        FoundationModel::pretrain_on(&[&lt.trace], &tok, &cfg).expect("pretraining failed");
    let backbone = FmBackbone::from_model(&fm, Pooling::Mean);
    let flows = extract_flows(&lt, 1);
    let ft = FineTuneConfig { epochs: 2, pooling: Pooling::Mean, ..FineTuneConfig::default() };
    let mut heads = Vec::new();
    let mut priors = Vec::new();
    for task in Task::ALL {
        let examples = task.examples(&flows, &tok, MAX_TOKENS);
        assert!(!examples.is_empty(), "{}: no training examples", task.name());
        heads.push(
            TaskHead::fine_tune(&backbone, task.name(), &examples, task.n_classes(), &ft)
                .expect("head fine-tuning failed"),
        );
        priors.push(MajorityBaseline::fit(&examples, task.n_classes()));
    }
    (backbone, heads, priors)
}

/// One budget scenario of the serve matrix.
struct Scenario {
    name: &'static str,
    deadline_budget: u64,
}

/// Everything a sweep produces, compared bitwise across reruns.
#[derive(Debug, Clone, PartialEq)]
struct Outcome {
    scenario: &'static str,
    responses: Vec<Vec<Response>>,
    task_stats: Vec<ServeStats>,
    fanout: MultiTaskStats,
}

/// Mirror of [`MultiTaskServer::serve_requests`]'s burst loop for one
/// standalone engine: lane `k` sees exactly the requests whose task set
/// contains `k`, submitted and drained on the same burst boundaries.
fn run_standalone(
    engine: &mut ServeEngine,
    k: usize,
    requests: &[ServeRequest],
    schedule: &[usize],
) -> Vec<Response> {
    let mut out = Vec::new();
    let mut pending = requests.iter().cloned();
    let mut exhausted = false;
    for &burst in schedule {
        for _ in 0..burst {
            match pending.next() {
                Some(r) => {
                    if r.tasks.contains(k) {
                        engine.submit(r);
                    }
                }
                None => {
                    exhausted = true;
                    break;
                }
            }
        }
        out.append(&mut engine.drain_queue());
        if exhausted {
            break;
        }
    }
    for r in pending {
        if r.tasks.contains(k) {
            engine.submit(r);
        }
        out.append(&mut engine.drain_queue());
    }
    out
}

fn run_scenario(
    backbone: &FmBackbone,
    heads: &[TaskHead],
    priors: &[MajorityBaseline],
    requests: &[ServeRequest],
    schedule: &[usize],
    scenario: &Scenario,
) -> Outcome {
    let config = ServeConfig {
        queue_capacity: 12,
        shed_watermark: 8,
        deadline_budget: scenario.deadline_budget,
        max_batch: 8,
        batch_cost_budget: 6 * backbone.encoder_cost(MAX_TOKENS),
        max_tokens: MAX_TOKENS,
        seed: 29,
        ..ServeConfig::default()
    };
    let tasks: Vec<(TaskHead, Fallback)> =
        heads.iter().zip(priors).map(|(h, &p)| (h.clone(), Fallback::Majority(p))).collect();
    let mut server = MultiTaskServer::new(backbone.clone(), tasks, config);
    let responses = server.serve_requests(requests.to_vec(), schedule);

    // The identity: every lane answers bitwise like a standalone engine.
    for (k, head) in heads.iter().enumerate() {
        let mut solo =
            ServeEngine::new(backbone.attach(head), Fallback::Majority(priors[k]), config);
        let want = run_standalone(&mut solo, k, requests, schedule);
        assert_eq!(
            responses[k], want,
            "{} / {}: fan-out responses diverge from a standalone engine",
            scenario.name, head.name
        );
        assert_eq!(
            server.task_stats()[k],
            solo.stats(),
            "{} / {}: fan-out stats diverge from a standalone engine",
            scenario.name,
            head.name
        );
    }
    Outcome {
        scenario: scenario.name,
        task_stats: server.task_stats(),
        fanout: server.stats(),
        responses,
    }
}

fn serve_table(outcomes: &[Outcome], heads: &[TaskHead]) -> Table {
    let mut table = Table::new(&[
        "scenario",
        "task",
        "classes",
        "arrived",
        "shed",
        "model",
        "fallback",
        "deadline_miss",
        "identical",
    ]);
    for o in outcomes {
        for (k, s) in o.task_stats.iter().enumerate() {
            table.row(&[
                o.scenario.into(),
                heads[k].name.clone(),
                heads[k].n_classes.to_string(),
                s.arrived.to_string(),
                s.shed.to_string(),
                s.answered_model.to_string(),
                s.answered_fallback.to_string(),
                s.deadline_misses.to_string(),
                "yes".into(),
            ]);
        }
    }
    table
}

fn fanout_table(outcomes: &[Outcome]) -> Table {
    let mut table = Table::new(&[
        "scenario",
        "submitted",
        "lane_offers",
        "batches",
        "encoder_rows",
        "head_rows",
        "amortization",
    ]);
    for o in outcomes {
        let f = &o.fanout;
        let ratio = f.head_rows as f64 / (f.encoder_rows.max(1)) as f64;
        table.row(&[
            o.scenario.into(),
            f.submitted.to_string(),
            f.lane_offers.to_string(),
            f.batches.to_string(),
            f.encoder_rows.to_string(),
            f.head_rows.to_string(),
            format!("{ratio:.2}x"),
        ]);
    }
    table
}

fn main() {
    banner(
        "E19",
        "§3 (shared-encoder amortization at serving time)",
        "a multi-task server runs the shared encoder once per admitted flow and \
         fans the pooled embedding out to per-task heads, answering every task \
         bitwise identically to independent single-task engines — under bursts, \
         shedding, tight deadlines, and random task subsets — while doing \
         strictly less encoder work",
    );
    let scale = Scale::from_env();
    let (backbone, heads, priors) = build_stack(&scale);
    println!(
        "backbone: d_model={}, {} tasks: {}\n",
        backbone.d_model(),
        heads.len(),
        heads.iter().map(|h| h.name.as_str()).collect::<Vec<_>>().join(", ")
    );

    // Held-out serve traffic with random per-request task subsets and a
    // bursty arrival schedule, both seeded.
    let tok = FieldTokenizer::new();
    let serve_lt = simulate(&sim(23, scale.labeled_sessions.min(60)));
    let (mut requests, ingest) = assemble_requests(&serve_lt.trace, &tok, MAX_TOKENS);
    let masks = task_mask_schedule(requests.len(), N_TASKS, 0.6, 101);
    for (r, &m) in requests.iter_mut().zip(&masks) {
        r.tasks = TaskSet::from_mask(m);
    }
    let schedule = burst_schedule(
        requests.len(),
        &FaultConfig { burst_chance: 0.5, max_burst: 12, seed: 9, ..FaultConfig::default() },
    );
    println!(
        "serve stream: {} flows assembled, {} requests, {} bursts\n",
        ingest.flows_assembled,
        requests.len(),
        schedule.len()
    );

    let scenarios = [
        Scenario { name: "generous", deadline_budget: u64::MAX },
        // Tight: flows longer than ~24 tokens refuse at the encoder plan,
        // so refusal and deadline-miss paths must also match bitwise.
        Scenario { name: "tight", deadline_budget: backbone.encoder_cost(24) + 256 },
    ];
    let run_sweep = || -> Vec<Outcome> {
        scenarios
            .iter()
            .map(|sc| run_scenario(&backbone, &heads, &priors, &requests, &schedule, sc))
            .collect()
    };
    let outcomes = run_sweep();
    render_table("e19.serve", &serve_table(&outcomes, &heads));
    render_table("e19.fanout", &fanout_table(&outcomes));

    // --- The acceptance criteria, asserted, not eyeballed ---------------
    for o in &outcomes {
        let f = &o.fanout;
        assert_eq!(f.submitted, requests.len(), "{}: every request submitted", o.scenario);
        assert!(
            f.lane_offers > f.submitted,
            "{}: random subsets plus 60% full fan-out must multi-task some requests",
            o.scenario
        );
        assert!(f.batches > 0 && f.encoder_rows > 0, "{}: shared batches ran", o.scenario);
        assert!(
            f.encoder_rows < f.head_rows,
            "{}: amortization means strictly fewer encoder forwards ({}) than head \
             forwards ({})",
            o.scenario,
            f.encoder_rows,
            f.head_rows
        );
        let answered: usize = o.task_stats.iter().map(|s| s.answered()).sum();
        let admitted: usize = o.task_stats.iter().map(|s| s.admitted).sum();
        assert_eq!(answered, admitted, "{}: every admitted request answered", o.scenario);
    }
    let generous = &outcomes[0];
    assert!(
        generous.task_stats.iter().all(|s| s.deadline_misses == 0),
        "generous: nothing misses an unlimited deadline"
    );
    let tight = &outcomes[1];
    assert!(
        tight.task_stats.iter().map(|s| s.deadline_misses).sum::<usize>() > 0,
        "tight: the starved budget must produce deadline misses"
    );

    // --- Bitwise reproducibility ----------------------------------------
    let rerun = run_sweep();
    let identical = outcomes == rerun;
    assert!(identical, "fixed seeds must reproduce the serve matrix bitwise");
    println!("\nrerun with identical seeds: serve matrix bitwise identical = {identical}");
    println!("zero panics across {} scenarios x {} tasks x 2 sweeps", outcomes.len(), heads.len());

    println!("\npaper shape: §3 argues one foundation model amortizes across tasks;");
    println!("§4.2's NetGLUE makes the task suite concrete. Fan-out serving closes");
    println!("the loop operationally: the encoder — orders of magnitude heavier than");
    println!("any head — runs once per flow, and each task keeps its own admission,");
    println!("deadline, breaker, and drift state, so sharing compute never changes");
    println!("an answer, a shed decision, or a statistic.");
    nfm_bench::finish();
}
