//! E16 — supervised multi-replica serving under replica-level chaos (paper
//! §4.3, operational robustness; cluster-level counterpart of E15).
//!
//! Claim: serving heavy traffic from millions of users means surviving the
//! loss of whole replicas, not just of individual requests. A
//! [`ClusterSupervisor`] over N serve engines — with health probes,
//! failover, hedged dispatch, and supervised warm restarts from checksummed
//! checkpoints — must keep model-path availability ≥ 0.99 through a
//! single-replica failure, where a single-replica deployment measurably
//! cannot, and the whole chaos matrix must reproduce bitwise.
//!
//! The replica-failure matrix drives one scenario per failure mode:
//!
//! | scenario      | replicas | injected fault                              |
//! |---------------|----------|---------------------------------------------|
//! | clean         | 3        | none (control)                              |
//! | crash-1       | 3        | one replica crashes mid-run                 |
//! | stall-1       | 3        | one replica slows 32× (hedged dispatch)     |
//! | corrupt-wts   | 3        | one replica's weights NaN-poisoned          |
//! | corrupt-ckpt  | 3        | crash + bit-flipped restart checkpoint      |
//! | crash-2       | 3        | two replicas crash at once                  |
//! | single-base   | 1        | the crash-1 fault against a lone replica    |

use std::path::PathBuf;

use nfm_bench::{banner, render_table, Scale};
use nfm_core::baselines::MajorityBaseline;
use nfm_core::cluster::{ClusterConfig, ClusterStats, ClusterSupervisor};
use nfm_core::pipeline::{
    FineTuneConfig, FmClassifier, FoundationModel, PipelineConfig, TextExample,
};
use nfm_core::report::Table;
use nfm_core::serve::{assemble_requests, Fallback, ServeConfig};
use nfm_model::pretrain::{PretrainConfig, TaskMix};
use nfm_model::tokenize::field::FieldTokenizer;
use nfm_net::capture::Trace;
use nfm_traffic::faults::{ReplicaFault, ReplicaFaultKind};
use nfm_traffic::netsim::{simulate, SimConfig};

/// One chaos scenario: a name, the cluster size, the replica faults (burst
/// indices filled in once the tick count is known), and whether replica 0's
/// restart checkpoint is bit-flipped before traffic starts.
struct Scenario {
    name: &'static str,
    n_replicas: usize,
    faults: Vec<ReplicaFault>,
    corrupt_checkpoint: bool,
}

/// Accumulated outcome of one scenario.
#[derive(Debug, Clone, PartialEq)]
struct Outcome {
    name: &'static str,
    stats: ClusterStats,
    responses: usize,
    end_healthy: usize,
}

fn train_cluster_model(scale: &Scale) -> (FmClassifier, Trace) {
    let lt = simulate(&SimConfig {
        n_sessions: scale.labeled_sessions.min(80),
        n_general_hosts: 4,
        n_iot_sets: 1,
        ..SimConfig::default()
    });
    let tokenizer = FieldTokenizer::new();
    let cfg = PipelineConfig {
        d_model: 16,
        n_heads: 2,
        n_layers: 1,
        d_ff: 32,
        max_len: 48,
        pretrain: PretrainConfig {
            epochs: scale.pretrain_epochs.min(2),
            tasks: TaskMix::mlm_only(),
            ..PretrainConfig::default()
        },
        ..PipelineConfig::default()
    };
    let (fm, _) =
        FoundationModel::pretrain_on(&[&lt.trace], &tokenizer, &cfg).expect("pretraining failed");
    let train: Vec<TextExample> = (0..24)
        .map(|i| TextExample {
            tokens: vec![if i % 2 == 0 { "PORT_53" } else { "PORT_443" }.to_string()],
            label: i % 2,
        })
        .collect();
    let clf = FmClassifier::fine_tune(
        &fm,
        &train,
        2,
        &FineTuneConfig { epochs: 2, ..FineTuneConfig::default() },
    )
    .expect("fine-tuning failed");
    (clf, lt.trace)
}

fn majority() -> Fallback {
    Fallback::Majority(MajorityBaseline { class: 0, n_classes: 2 })
}

/// Cluster knobs shared by every scenario: a deadline budget two requests
/// deep (so a 32× stall misses it), a probe budget that passes on a healthy
/// replica and fails under the stall factor, and a short restart backoff so
/// recoveries land inside the run.
fn cluster_config(clf: &FmClassifier) -> ClusterConfig {
    let request_cost = clf.inference_cost(64);
    let canary = vec!["PORT_443".to_string(), "IP4".to_string()];
    let probe_cost = clf.inference_cost(canary.len());
    ClusterConfig {
        serve: ServeConfig { deadline_budget: request_cost * 2, ..ServeConfig::default() },
        probe_interval: 4,
        probe_budget: probe_cost * 2,
        canary,
        degraded_after: 1,
        down_after: 2,
        hedge: true,
        // Four ticks of downtime before the first restart: long enough that
        // round-robin provably points at a downed replica (forcing failover)
        // and that a lone replica visibly loses model availability.
        restart_backoff_base: 4,
        restart_backoff_factor: 2,
        ..ClusterConfig::default()
    }
}

fn checkpoint_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nfm_e16_{}_{name}", std::process::id()))
}

/// Run one scenario to completion. One request arrives per tick, so the
/// fault/probe/restart timeline is a pure function of the flow count.
fn run_scenario(clf: &FmClassifier, trace: &Trace, scenario: &Scenario) -> Outcome {
    let tokenizer = FieldTokenizer::new();
    let config = cluster_config(clf);
    let replicas = (0..scenario.n_replicas).map(|_| (clf.clone(), majority())).collect();
    let dir = checkpoint_dir(scenario.name);
    let mut cluster =
        ClusterSupervisor::new(replicas, majority(), &dir, config).expect("cluster construction");
    if scenario.corrupt_checkpoint {
        // Flip one payload bit in replica 0's restart artifact: the load
        // path must reject it by CRC, not crash on it.
        let path = cluster.checkpoint_path(0).to_path_buf();
        let mut bytes = std::fs::read(&path).expect("read checkpoint");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).expect("write checkpoint");
    }
    let responses = cluster.serve_trace(trace, &tokenizer, &[], &scenario.faults);
    let outcome = Outcome {
        name: scenario.name,
        stats: cluster.stats(),
        responses: responses.len(),
        end_healthy: cluster.healthy_count(),
    };
    std::fs::remove_dir_all(&dir).ok();
    outcome
}

/// The replica-failure matrix. `n_ticks` is the number of requests the
/// capture assembles into (one request per tick), so mid-run fault times
/// scale with the capture.
fn scenarios(n_ticks: usize) -> Vec<Scenario> {
    let mid = n_ticks / 3;
    let crash =
        |replica, at_burst| ReplicaFault { replica, at_burst, kind: ReplicaFaultKind::Crash };
    vec![
        Scenario { name: "clean", n_replicas: 3, faults: vec![], corrupt_checkpoint: false },
        Scenario {
            name: "crash-1",
            n_replicas: 3,
            faults: vec![crash(0, mid)],
            corrupt_checkpoint: false,
        },
        Scenario {
            name: "stall-1",
            n_replicas: 3,
            // Struck just after a probe tick: hedges fire while the stall
            // is still undetected, then probes take the replica down.
            faults: vec![ReplicaFault {
                replica: 1,
                at_burst: mid / 4 * 4 + 1,
                kind: ReplicaFaultKind::Stall { factor: 32 },
            }],
            corrupt_checkpoint: false,
        },
        Scenario {
            name: "corrupt-wts",
            n_replicas: 3,
            faults: vec![ReplicaFault {
                replica: 2,
                at_burst: mid,
                kind: ReplicaFaultKind::CorruptWeights,
            }],
            corrupt_checkpoint: false,
        },
        Scenario {
            name: "corrupt-ckpt",
            n_replicas: 3,
            faults: vec![crash(0, mid)],
            corrupt_checkpoint: true,
        },
        Scenario {
            name: "crash-2",
            n_replicas: 3,
            faults: vec![crash(0, mid), crash(1, mid)],
            corrupt_checkpoint: false,
        },
        Scenario {
            name: "single-base",
            n_replicas: 1,
            faults: vec![crash(0, mid)],
            corrupt_checkpoint: false,
        },
    ]
}

fn availability_table(outcomes: &[Outcome]) -> Table {
    let mut table = Table::new(&[
        "scenario",
        "reps",
        "arrived",
        "model",
        "fb",
        "sup",
        "shed",
        "failover",
        "hedge",
        "wins",
        "down",
        "restart",
        "peer",
        "avail",
        "model_avail",
    ]);
    for o in outcomes {
        let s = &o.stats;
        table.row(&[
            o.name.into(),
            o.end_healthy.to_string(),
            s.arrived.to_string(),
            s.answered_model.to_string(),
            s.answered_fallback.to_string(),
            s.answered_supervisor.to_string(),
            s.shed.to_string(),
            s.failovers.to_string(),
            s.hedges.to_string(),
            s.hedge_wins.to_string(),
            s.to_down.to_string(),
            s.restarts_ok.to_string(),
            s.peer_clones.to_string(),
            format!("{:.3}", s.availability()),
            format!("{:.3}", s.model_availability()),
        ]);
    }
    table
}

fn main() {
    banner(
        "E16",
        "§4.3 (operational deployment)",
        "a supervised 3-replica cluster keeps model availability ≥ 0.99 through \
         single-replica failures that measurably degrade a lone replica, with \
         probes, failover, hedging, warm restarts, and a bitwise-reproducible table",
    );
    let scale = Scale::from_env();
    let (clf, trace) = train_cluster_model(&scale);
    let n_ticks = assemble_requests(&trace, &FieldTokenizer::new(), 64).0.len();
    println!(
        "capture: {} packets → {n_ticks} requests; failure matrix: 7 scenarios\n",
        trace.len()
    );
    assert!(n_ticks >= 24, "capture too small to place mid-run faults");

    let run_sweep = || -> Vec<Outcome> {
        scenarios(n_ticks).iter().map(|sc| run_scenario(&clf, &trace, sc)).collect()
    };
    let outcomes = run_sweep();
    let table = availability_table(&outcomes);
    render_table("e16.availability", &table);
    let get = |name: &str| -> &Outcome {
        outcomes.iter().find(|o| o.name == name).expect("scenario present")
    };

    // --- The acceptance criteria, asserted, not eyeballed ---------------
    for o in &outcomes {
        let s = &o.stats;
        assert_eq!(
            s.answered(),
            s.arrived - s.shed,
            "{}: every unshed arrival must be answered",
            o.name
        );
        assert_eq!(o.responses, s.answered(), "{}: one response per answered request", o.name);
    }
    let clean = get("clean");
    assert_eq!(clean.stats.answered_model, clean.stats.arrived, "control: all model answers");
    assert_eq!(clean.stats.to_down, 0, "control: no replica goes down");

    let single = get("single-base");
    let crash1 = get("crash-1");
    assert!(crash1.stats.restarts_ok >= 1, "supervised restart must fire");
    assert!(crash1.stats.failovers >= 1, "traffic must fail over off the crashed replica");
    assert_eq!(crash1.end_healthy, 3, "the crashed replica must return to service");
    assert!(
        crash1.stats.model_availability() >= 0.99,
        "3-replica cluster under single failure: model availability {:.4} < 0.99",
        crash1.stats.model_availability()
    );
    assert!(
        single.stats.model_availability() < crash1.stats.model_availability(),
        "single replica ({:.4}) must measurably underperform the cluster ({:.4})",
        single.stats.model_availability(),
        crash1.stats.model_availability()
    );

    let stall = get("stall-1");
    assert_eq!(stall.stats.stalls_injected, 1);
    assert!(stall.stats.hedges >= 1, "deadline-missed answers must be hedged");
    assert!(stall.stats.hedge_wins >= 1, "a healthy replica must win some hedges");

    let corrupt = get("corrupt-wts");
    assert_eq!(corrupt.stats.corruptions_injected, 1);
    assert!(corrupt.stats.to_down >= 1, "probes must take the corrupted replica down");
    assert!(corrupt.stats.restarts_ok >= 1, "checkpoint restore must bring it back");
    assert_eq!(corrupt.end_healthy, 3);

    let ckpt = get("corrupt-ckpt");
    assert!(ckpt.stats.restart_load_errors >= 1, "bit-flipped checkpoint must fail its CRC");
    assert!(ckpt.stats.peer_clones >= 1, "a healthy peer must donate its model");
    assert!(ckpt.stats.restarts_ok >= 1);

    let crash2 = get("crash-2");
    assert_eq!(crash2.stats.crashes_injected, 2);
    assert!(
        crash2.stats.availability() > 0.999,
        "even two simultaneous crashes must not drop answers"
    );

    // --- Bitwise reproducibility ----------------------------------------
    let rerun = run_sweep();
    let identical = outcomes == rerun;
    assert!(identical, "fixed seeds must reproduce the availability matrix bitwise");
    println!("\nrerun with identical seeds: availability matrix bitwise identical = {identical}");
    println!("zero panics across {} scenarios x 2 sweeps", outcomes.len());

    println!("\npaper shape: §4.3 asks what operating a foundation model takes at");
    println!("production scale; the cluster answer is supervision — probes that");
    println!("demote sick replicas, routing that fails over, hedges that cover slow");
    println!("ones, and warm restarts from checksummed checkpoints — so the service");
    println!("outlives any single replica.");
    nfm_bench::finish();
}
