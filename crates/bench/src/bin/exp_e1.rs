//! E1 — NorBERT performance reproduction (paper §3.4).
//!
//! Claim: "The authors pre-trained a foundational model (NorBERT) on DNS
//! traffic, fine-tuned it on a labeled dataset, and evaluated its
//! performance on an independent labeled dataset. The performance of the
//! GRU models drop considerably (F-1 between 0.585 and 0.726). In
//! contrast, the performance of NorBERT remains above 0.9."
//!
//! Two conditions:
//!
//! **A (application classification across deployments)** — the labeled set
//! comes from environment A; evaluation also runs on independent
//! environment B (different site population, popularity skew, app mix,
//! host population). The pre-trained model has seen B-like traffic
//! *unlabeled*; baselines only ever see labeled env-A flows.
//!
//! **B (DNS site-category, disjoint name vocabulary)** — the harder
//! NorBERT-style condition where the discriminative tokens (site names)
//! are entirely different in env B. This condition probes whether
//! pre-training has organized *name* embeddings by category; at
//! laptop-scale corpora it has not (see EXPERIMENTS.md for the analysis),
//! which bounds the data requirements the paper's §4.5 asks about.

use nfm_bench::{
    banner, dns_category_classes, dns_category_examples, dns_heavy, pretrain_dns_heavy,
    pretrain_standard, render_table, train_family, ModelFamily, Scale,
};
use nfm_core::netglue::Task;
use nfm_core::report::{f3, Table};
use nfm_model::pretrain::TaskMix;
use nfm_model::tokenize::field::FieldTokenizer;
use nfm_traffic::dataset::{extract_flows, split_train_val, Environment};

fn main() {
    banner(
        "E1",
        "§3.4 (NorBERT downstream performance)",
        "FM stays high on an independent dataset; from-scratch baselines drop",
    );
    let scale = Scale::from_env();
    let tokenizer = FieldTokenizer::new();

    // ---------------- Condition A: app classification ----------------
    println!("[condition A] pretraining foundation model on unlabeled mixture…");
    let fm = pretrain_standard(&scale, &tokenizer, TaskMix::default());
    let task = Task::AppClassification;

    let lt_a = Environment::env_a(scale.labeled_sessions).simulate();
    let flows_a = extract_flows(&lt_a, 2);
    let (train_flows, eval_a_flows) = split_train_val(flows_a, 0.3);
    let train = task.examples(&train_flows, &tokenizer, 94);
    let eval_a = task.examples(&eval_a_flows, &tokenizer, 94);
    let lt_b = Environment::env_b(scale.labeled_sessions).simulate();
    let eval_b = task.examples(&extract_flows(&lt_b, 2), &tokenizer, 94);
    println!(
        "labeled: {} train / {} eval-A / {} eval-B\n",
        train.len(),
        eval_a.len(),
        eval_b.len()
    );

    let mut table_a = Table::new(&["model", "f1 env-A", "f1 env-B (independent)", "retention"]);
    for family in ModelFamily::ALL {
        println!("training {}…", family.name());
        let model = train_family(family, &fm, &train, task.n_classes(), &scale);
        let fa = model.evaluate(&eval_a).macro_f1();
        let fb = model.evaluate(&eval_b).macro_f1();
        table_a.row(&[
            family.name().to_string(),
            f3(fa),
            f3(fb),
            f3(if fa > 0.0 { fb / fa } else { 0.0 }),
        ]);
    }
    println!("\n[condition A] application classification across deployments:");
    render_table("e1.condition_a", &table_a);

    // ------------- Condition B: DNS category, disjoint names -------------
    println!("[condition B] pretraining on DNS-heavy corpus (NorBERT's setting)…");
    let fm_dns = pretrain_dns_heavy(&scale, &tokenizer, TaskMix::default());
    let lt_a = dns_heavy(Environment::env_a(scale.labeled_sessions)).simulate();
    let all_a = dns_category_examples(&lt_a, &tokenizer, 94);
    let split_at = all_a.len() * 7 / 10;
    let (train, eval_a) = all_a.split_at(split_at);
    let lt_b = dns_heavy(Environment::env_b(scale.labeled_sessions)).simulate();
    let eval_b = dns_category_examples(&lt_b, &tokenizer, 94);
    println!(
        "DNS-category: {} train / {} eval-A / {} eval-B (names fully disjoint)\n",
        train.len(),
        eval_a.len(),
        eval_b.len()
    );
    let mut table_b = Table::new(&["model", "f1 env-A", "f1 env-B (disjoint names)", "retention"]);
    for family in ModelFamily::ALL {
        println!("training {}…", family.name());
        let model = train_family(family, &fm_dns, train, dns_category_classes(), &scale);
        let fa = model.evaluate(eval_a).macro_f1();
        let fb = model.evaluate(&eval_b).macro_f1();
        table_b.row(&[
            family.name().to_string(),
            f3(fa),
            f3(fb),
            f3(if fa > 0.0 { fb / fa } else { 0.0 }),
        ]);
    }
    println!("\n[condition B] DNS site-category with disjoint name vocabulary:");
    render_table("e1.condition_b", &table_b);

    println!("paper shape (condition A): fm-finetuned leads on both columns and");
    println!("retains more of its F1 on the independent environment.");
    println!("condition B is reported as a scale boundary: no family transfers");
    println!("fully-disjoint name semantics at laptop-scale corpora.");
    nfm_bench::finish();
}
