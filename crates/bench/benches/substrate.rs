//! Substrate micro-benchmarks: packet parse/emit throughput, trace
//! generation rate, flow assembly, pcap IO, and tokenizer throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use nfm_model::tokenize::bytes::ByteTokenizer;
use nfm_model::tokenize::field::FieldTokenizer;
use nfm_model::tokenize::Tokenizer;
use nfm_net::flow::FlowTable;
use nfm_net::packet::Packet;
use nfm_traffic::netsim::{simulate, SimConfig};

fn sample_trace() -> nfm_net::Trace {
    simulate(&SimConfig {
        n_sessions: 80,
        n_general_hosts: 4,
        n_iot_sets: 1,
        ..SimConfig::default()
    })
    .trace
}

fn bench_parse(c: &mut Criterion) {
    let trace = sample_trace();
    let frames: Vec<Vec<u8>> = trace.packets().iter().take(512).map(|p| p.frame.clone()).collect();
    let bytes: usize = frames.iter().map(|f| f.len()).sum();
    let mut g = c.benchmark_group("packet");
    g.throughput(Throughput::Bytes(bytes as u64));
    g.bench_function("parse_512", |b| {
        b.iter(|| {
            let mut ok = 0usize;
            for f in &frames {
                if Packet::parse(f).is_ok() {
                    ok += 1;
                }
            }
            ok
        })
    });
    let parsed: Vec<Packet> = frames.iter().filter_map(|f| Packet::parse(f).ok()).collect();
    g.bench_function("emit_512", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for p in &parsed {
                n += p.emit().len();
            }
            n
        })
    });
    g.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("traffic");
    g.sample_size(10);
    g.bench_function("simulate_40_sessions", |b| {
        b.iter(|| {
            simulate(&SimConfig {
                n_sessions: 40,
                n_general_hosts: 4,
                n_iot_sets: 1,
                boot_dhcp: false,
                ..SimConfig::default()
            })
            .trace
            .len()
        })
    });
    g.finish();
}

fn bench_flows_and_pcap(c: &mut Criterion) {
    let trace = sample_trace();
    let mut g = c.benchmark_group("trace");
    g.sample_size(20);
    g.bench_function("flow_assembly", |b| {
        b.iter(|| FlowTable::from_trace(trace.packets().iter()).len())
    });
    g.bench_function("pcap_write_read", |b| {
        b.iter_batched(
            Vec::new,
            |mut buf| {
                nfm_net::pcap::write(&mut buf, &trace).expect("in-memory");
                nfm_net::pcap::read(&mut buf.as_slice()).expect("round trip").len()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_tokenizers(c: &mut Criterion) {
    let trace = sample_trace();
    let packets: Vec<Packet> =
        trace.packets().iter().take(256).filter_map(|p| p.parse().ok()).collect();
    let mut g = c.benchmark_group("tokenize");
    let field = FieldTokenizer::new();
    g.bench_function("field_256_packets", |b| {
        b.iter(|| packets.iter().map(|p| field.tokenize(p).len()).sum::<usize>())
    });
    let bytes = ByteTokenizer::new();
    g.bench_function("bytes_256_packets", |b| {
        b.iter(|| packets.iter().map(|p| bytes.tokenize(p).len()).sum::<usize>())
    });
    g.finish();
}

criterion_group!(benches, bench_parse, bench_generation, bench_flows_and_pcap, bench_tokenizers);
criterion_main!(benches);
