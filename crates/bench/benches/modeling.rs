//! Modeling micro-benchmarks: matmul, attention forward, encoder
//! forward/backward, one MLM training step, and embedding queries — the
//! inputs to E10's cost model.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nfm_model::nn::attention::MultiHeadAttention;
use nfm_model::nn::transformer::{Encoder, EncoderConfig};
use nfm_tensor::init;
use nfm_tensor::layers::Module;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = init::normal(&mut rng, 64, 64, 1.0);
    let b = init::normal(&mut rng, 64, 64, 1.0);
    let mut g = c.benchmark_group("tensor");
    g.throughput(Throughput::Elements(64 * 64 * 64));
    g.bench_function("matmul_64x64x64", |bch| bch.iter(|| a.matmul(&b).norm()));
    g.bench_function("softmax_rows_64x64", |bch| {
        bch.iter(|| {
            let mut m = a.clone();
            m.softmax_rows();
            m.get(0, 0)
        })
    });
    g.finish();
}

fn bench_attention(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut attn = MultiHeadAttention::new(&mut rng, 32, 4);
    let x = init::normal(&mut rng, 64, 32, 1.0);
    let mut g = c.benchmark_group("attention");
    g.bench_function("forward_T64_d32_h4", |b| b.iter(|| attn.forward_inference(&x).norm()));
    g.bench_function("forward_backward_T64", |b| {
        b.iter(|| {
            let y = attn.forward(&x);
            attn.backward(&y).norm()
        })
    });
    g.finish();
}

fn bench_encoder(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let cfg =
        EncoderConfig { vocab: 512, d_model: 32, n_heads: 4, n_layers: 2, d_ff: 64, max_len: 96 };
    let mut enc = Encoder::new(&mut rng, cfg);
    let ids: Vec<usize> = (0..64).map(|i| 5 + i % 500).collect();
    let mut g = c.benchmark_group("encoder");
    g.throughput(Throughput::Elements(64));
    g.bench_function("forward_T64_L2_d32", |b| b.iter(|| enc.forward_inference(&ids).norm()));
    g.bench_function("train_step_T64", |b| {
        b.iter(|| {
            enc.zero_grad();
            let h = enc.forward(&ids);
            enc.backward(&h);
            h.norm()
        })
    });
    g.bench_function("embed_query", |b| b.iter(|| enc.cls_embedding(&ids)[0]));
    g.finish();
}

criterion_group!(benches, bench_matmul, bench_attention, bench_encoder);
criterion_main!(benches);
