//! Double-run determinism of the observability stream (OBSERVABILITY.md's
//! headline contract): two seeded runs of `exp_e15` must emit byte-identical
//! JSONL event streams.
//!
//! The test shells out to the real binary (Cargo exposes its path via
//! `CARGO_BIN_EXE_exp_e15`), so the property is checked end-to-end — lazy
//! sink init from `NFM_OBS_OUT`, instrumentation across tensor/model/core,
//! and the final `nfm_bench::finish()` snapshot — not just in-process.

use std::process::{Command, Stdio};

/// Run `exp_e15` at quick scale with the sink pointed at `path`, pinned to a
/// fixed thread count, and return the emitted stream.
fn run_e15(path: &std::path::Path) -> Vec<u8> {
    let status = Command::new(env!("CARGO_BIN_EXE_exp_e15"))
        .env("NFM_SCALE", "quick")
        .env("NFM_THREADS", "2")
        .env("NFM_OBS_OUT", path)
        .env_remove("NFM_OBS_WALL")
        .stdout(Stdio::null())
        .status()
        .expect("spawn exp_e15");
    assert!(status.success(), "exp_e15 exited with {status}");
    let bytes = std::fs::read(path).expect("read emitted stream");
    let _ = std::fs::remove_file(path);
    bytes
}

/// Minimal structural check that one emitted line is a plausible JSON
/// object of a known record type carrying the expected `seq`. (CI
/// additionally parses every line with a real JSON parser.)
fn check_line(line: &str, expected_seq: u64) {
    assert!(line.starts_with("{\"type\":\"") && line.ends_with('}'), "not an object: {line}");
    let ty = line["{\"type\":\"".len()..].split('"').next().unwrap();
    assert!(
        matches!(ty, "event" | "span" | "table" | "row" | "metric"),
        "unknown record type {ty:?}: {line}"
    );
    let seq_field = format!("\"seq\":{expected_seq},");
    assert!(line.contains(&seq_field), "expected {seq_field} in: {line}");
}

#[test]
fn e15_obs_stream_is_byte_identical_across_runs() {
    let dir = std::env::temp_dir();
    let a = run_e15(&dir.join("nfm_obs_e15_run_a.jsonl"));
    let b = run_e15(&dir.join("nfm_obs_e15_run_b.jsonl"));
    assert!(!a.is_empty(), "exp_e15 must emit events when NFM_OBS_OUT is set");
    assert_eq!(a, b, "seeded runs must produce byte-identical JSONL streams");

    let text = String::from_utf8(a).expect("stream is UTF-8");
    let mut kinds: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for (i, line) in text.lines().enumerate() {
        check_line(line, i as u64);
        kinds.insert(line["{\"type\":\"".len()..].split('"').next().unwrap().to_string());
    }
    // The stream must exercise the full record vocabulary: banner event,
    // train/serve spans, the availability table + rows, and the final
    // registry snapshot.
    for want in ["event", "span", "table", "row", "metric"] {
        assert!(kinds.iter().any(|k| *k == want), "no {want:?} record in stream");
    }
    // Wall-clock metrics must be filtered out of the deterministic stream.
    assert!(!text.contains("\"unit\":\"us\""), "wall-time metrics leaked into the stream");
}
