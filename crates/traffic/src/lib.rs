//! # nfm-traffic — synthetic labeled network traffic
//!
//! The privacy-preserving data substitute the paper proposes in §4.2:
//! "synthetic packet trace generators may be one solution for mitigating the
//! privacy concerns, and training foundational models on network data."
//!
//! The generator builds a synthetic internet (hierarchical domain registry,
//! server directory), a population of client devices with distinct
//! fingerprints (TTLs, ciphersuites, user agents, traffic shapes), and
//! application session models (DNS, HTTP, TLS, mail, NTP, video, IoT, bulk)
//! plus attack injectors. A capture-point simulator interleaves sessions via
//! a Poisson process into a timestamped [`nfm_net::Trace`] with exact
//! per-flow ground truth.
//!
//! Everything is deterministic under a seed.
//!
//! ```
//! use nfm_traffic::netsim::{simulate, SimConfig};
//!
//! let lt = simulate(&SimConfig { n_sessions: 10, ..SimConfig::default() });
//! assert!(lt.trace.len() > 0);
//! // Every flow in the trace has ground truth.
//! let flows = nfm_traffic::dataset::extract_flows(&lt, 1);
//! assert!(flows.iter().all(|f| f.packets.len() >= 1));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod anomaly;
pub mod apps;
pub mod dataset;
pub mod dist;
pub mod domains;
pub mod endpoints;
pub mod faults;
pub mod label;
pub mod netsim;

pub use dataset::{extract_flows, Environment, LabeledFlow, OodSplit};
pub use label::{AnomalyClass, AppClass, DeviceClass, TrafficLabel};
pub use netsim::{simulate, LabeledTrace, SimConfig};
