//! Deterministic hierarchical domain-name registry.
//!
//! The paper (§3.3) calls out DNS names as a categorical field with rich
//! semantics: "values may indicate mail servers, repository servers, time
//! servers, news sites, or video streaming sites". This module generates a
//! synthetic internet whose names carry exactly that cluster structure, so a
//! pre-trained model has real semantics to discover.

use nfm_net::wire::dns::Name;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dist::Zipf;

/// Semantic category of a site — the latent variable behind the clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SiteCategory {
    /// Webmail and MX hosts.
    Mail,
    /// News/content sites.
    News,
    /// Video streaming.
    Video,
    /// Time servers.
    Time,
    /// Software/package repositories.
    Repository,
    /// CDN edges (appear as dependencies of other sites).
    Cdn,
    /// IoT device cloud endpoints.
    IotCloud,
    /// Advertising/tracking endpoints.
    Ads,
    /// Social platforms.
    Social,
}

impl SiteCategory {
    /// All categories, stable order.
    pub const ALL: [SiteCategory; 9] = [
        SiteCategory::Mail,
        SiteCategory::News,
        SiteCategory::Video,
        SiteCategory::Time,
        SiteCategory::Repository,
        SiteCategory::Cdn,
        SiteCategory::IotCloud,
        SiteCategory::Ads,
        SiteCategory::Social,
    ];

    /// A short tag used inside generated names (e.g. `mail`, `cdn`) so the
    /// category is recoverable from tokens — this is the semantic signal.
    pub fn tag(&self) -> &'static str {
        match self {
            SiteCategory::Mail => "mail",
            SiteCategory::News => "news",
            SiteCategory::Video => "video",
            SiteCategory::Time => "time",
            SiteCategory::Repository => "repo",
            SiteCategory::Cdn => "cdn",
            SiteCategory::IotCloud => "iot",
            SiteCategory::Ads => "ads",
            SiteCategory::Social => "social",
        }
    }
}

/// One registered site: a base domain, category, and host names under it.
#[derive(Debug, Clone)]
pub struct Site {
    /// Base domain, e.g. `video7.example-tld`.
    pub domain: Name,
    /// Semantic category.
    pub category: SiteCategory,
    /// Hostnames under the domain (e.g. `www`, `api`, `edge3`).
    pub hosts: Vec<Name>,
}

/// A deterministic registry of sites with Zipf popularity.
#[derive(Debug, Clone)]
pub struct DomainRegistry {
    sites: Vec<Site>,
    popularity: Zipf,
}

const SYLLABLES: [&str; 16] = [
    "ar", "bel", "cor", "dan", "el", "fen", "gor", "hul", "in", "jal", "kem", "lor", "mir", "nor",
    "os", "pel",
];

const TLDS: [&str; 4] = ["com", "net", "org", "io"];

fn brand_name(rng: &mut StdRng) -> String {
    let n = rng.gen_range(2..4);
    (0..n).map(|_| SYLLABLES[rng.gen_range(0..SYLLABLES.len())]).collect()
}

impl DomainRegistry {
    /// Build a registry of `sites_per_category` sites per category, fully
    /// determined by `seed`. `zipf_s` controls popularity skew.
    pub fn generate(seed: u64, sites_per_category: usize, zipf_s: f64) -> DomainRegistry {
        assert!(sites_per_category >= 1);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x00d0_ca11_d00d_5eed);
        let mut sites = Vec::new();
        for &category in &SiteCategory::ALL {
            for i in 0..sites_per_category {
                let brand = brand_name(&mut rng);
                let tld = TLDS[rng.gen_range(0..TLDS.len())];
                let domain = Name::parse_str(&format!("{}-{}{}.{}", brand, category.tag(), i, tld))
                    .expect("generated names are valid");
                let host_labels: &[&str] = match category {
                    SiteCategory::Mail => &["mx1", "mx2", "smtp", "imap", "webmail"],
                    SiteCategory::News => &["www", "api", "img", "static"],
                    SiteCategory::Video => &["www", "api", "edge1", "edge2", "manifest"],
                    SiteCategory::Time => &["ntp1", "ntp2"],
                    SiteCategory::Repository => &["www", "mirror1", "mirror2", "archive"],
                    SiteCategory::Cdn => &["edge1", "edge2", "edge3", "edge4"],
                    SiteCategory::IotCloud => &["gateway", "telemetry", "firmware"],
                    SiteCategory::Ads => &["track", "pixel", "serve"],
                    SiteCategory::Social => &["www", "api", "media"],
                };
                let hosts = host_labels
                    .iter()
                    .map(|h| Name::parse_str(&format!("{h}.{domain}")).expect("valid host name"))
                    .collect();
                sites.push(Site { domain, category, hosts });
            }
        }
        // Shuffle so Zipf popularity ranks interleave categories; without
        // this, whole categories would sit in the unpopular tail.
        for i in (1..sites.len()).rev() {
            sites.swap(i, rng.gen_range(0..=i));
        }
        let popularity = Zipf::new(sites.len(), zipf_s);
        DomainRegistry { sites, popularity }
    }

    /// All sites, stable order.
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// Sites of one category.
    pub fn sites_in(&self, category: SiteCategory) -> impl Iterator<Item = &Site> {
        self.sites.iter().filter(move |s| s.category == category)
    }

    /// Draw a site by global Zipf popularity.
    pub fn sample_site<R: Rng + ?Sized>(&self, rng: &mut R) -> &Site {
        &self.sites[self.popularity.sample(rng)]
    }

    /// Draw a site of a given category (uniform within the category after
    /// rejection against the Zipf draw, falling back to uniform).
    pub fn sample_site_in<R: Rng + ?Sized>(&self, rng: &mut R, category: SiteCategory) -> &Site {
        for _ in 0..16 {
            let s = self.sample_site(rng);
            if s.category == category {
                return s;
            }
        }
        let matching: Vec<&Site> = self.sites_in(category).collect();
        matching[rng.gen_range(0..matching.len())]
    }

    /// Draw a host name from a site (uniform).
    pub fn sample_host<'a, R: Rng + ?Sized>(&self, rng: &mut R, site: &'a Site) -> &'a Name {
        &site.hosts[rng.gen_range(0..site.hosts.len())]
    }

    /// Recover the category of a name generated by this registry (by
    /// suffix match against site domains). Ground truth for evaluation.
    pub fn categorize(&self, name: &Name) -> Option<SiteCategory> {
        self.sites.iter().find(|s| name.is_subdomain_of(&s.domain)).map(|s| s.category)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = DomainRegistry::generate(1, 3, 1.0);
        let b = DomainRegistry::generate(1, 3, 1.0);
        assert_eq!(a.sites().len(), b.sites().len());
        for (x, y) in a.sites().iter().zip(b.sites()) {
            assert_eq!(x.domain, y.domain);
            assert_eq!(x.hosts, y.hosts);
        }
        let c = DomainRegistry::generate(2, 3, 1.0);
        assert_ne!(a.sites()[0].domain, c.sites()[0].domain);
    }

    #[test]
    fn every_category_present() {
        let reg = DomainRegistry::generate(5, 2, 1.0);
        for cat in SiteCategory::ALL {
            assert_eq!(reg.sites_in(cat).count(), 2, "{cat:?}");
        }
        assert_eq!(reg.sites().len(), 18);
    }

    #[test]
    fn category_tag_embedded_in_name() {
        let reg = DomainRegistry::generate(5, 2, 1.0);
        for site in reg.sites() {
            let name = site.domain.to_string();
            assert!(name.contains(site.category.tag()), "{name}");
        }
    }

    #[test]
    fn hosts_are_subdomains() {
        let reg = DomainRegistry::generate(3, 2, 1.0);
        for site in reg.sites() {
            for host in &site.hosts {
                assert!(host.is_subdomain_of(&site.domain));
            }
        }
    }

    #[test]
    fn categorize_recovers_ground_truth() {
        let reg = DomainRegistry::generate(9, 3, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            let site = reg.sample_site(&mut rng);
            let host = reg.sample_host(&mut rng, site);
            assert_eq!(reg.categorize(host), Some(site.category));
        }
        assert_eq!(reg.categorize(&Name::parse_str("unknown.test").unwrap()), None);
    }

    #[test]
    fn sample_site_in_respects_category() {
        let reg = DomainRegistry::generate(11, 4, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        for cat in SiteCategory::ALL {
            for _ in 0..20 {
                assert_eq!(reg.sample_site_in(&mut rng, cat).category, cat);
            }
        }
    }

    #[test]
    fn popularity_is_skewed() {
        let reg = DomainRegistry::generate(13, 10, 1.3);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            *counts.entry(reg.sample_site(&mut rng).domain.clone()).or_insert(0usize) += 1;
        }
        let max = *counts.values().max().unwrap();
        let total: usize = counts.values().sum();
        // The most popular site takes a disproportionate share.
        assert!(max as f64 / total as f64 > 0.05, "max share {}", max as f64 / total as f64);
    }
}
