//! The capture-point simulator: schedules application sessions from a host
//! population via a Poisson process and merges them into one interleaved,
//! timestamped trace with per-flow ground-truth labels — the "border router"
//! view the paper describes in §4.1.3.

use std::collections::HashMap;

use nfm_net::capture::{Trace, TracePacket};
use nfm_net::flow::FlowKey;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::anomaly;
use crate::apps::{self, Session, SessionCtx};
use crate::dist::{Categorical, PoissonProcess};
use crate::domains::DomainRegistry;
use crate::endpoints::{standard_population, Host, ServerDirectory};
use crate::label::{AnomalyClass, AppClass, DeviceClass, TrafficLabel};

/// Relative frequency of each application class in the session mix.
#[derive(Debug, Clone, PartialEq)]
pub struct AppMix {
    /// Weights indexed like [`AppClass::ALL`] (Dhcp weight is ignored:
    /// DHCP happens at boot, not via the mix).
    pub weights: [f64; 9],
}

impl Default for AppMix {
    fn default() -> Self {
        // dns, web, tls, mail, ntp, video, iot, bulk, dhcp(unused)
        AppMix { weights: [2.5, 2.0, 3.0, 1.0, 1.0, 0.6, 2.0, 0.4, 0.0] }
    }
}

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master seed; every run with the same config is identical.
    pub seed: u64,
    /// Number of general-purpose hosts (workstations + phones).
    pub n_general_hosts: u16,
    /// Number of IoT device quartets (camera/thermostat/bulb/assistant).
    pub n_iot_sets: u16,
    /// Session arrivals per simulated second across the whole population.
    pub sessions_per_sec: f64,
    /// Total sessions to generate.
    pub n_sessions: usize,
    /// Application mix.
    pub mix: AppMix,
    /// Fraction of sessions that are attacks (0 disables).
    pub anomaly_fraction: f64,
    /// Which anomaly classes may appear (others never generated).
    pub anomaly_classes: Vec<AnomalyClass>,
    /// Domain registry seed (vary to shift the "site population").
    pub registry_seed: u64,
    /// Sites per category in the registry.
    pub sites_per_category: usize,
    /// Popularity skew.
    pub zipf_s: f64,
    /// Emit DHCP boot handshakes for every host at t≈0.
    pub boot_dhcp: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 1,
            n_general_hosts: 8,
            n_iot_sets: 2,
            sessions_per_sec: 4.0,
            n_sessions: 200,
            mix: AppMix::default(),
            anomaly_fraction: 0.0,
            anomaly_classes: AnomalyClass::ALL.to_vec(),
            registry_seed: 1,
            sites_per_category: 4,
            zipf_s: 1.1,
            boot_dhcp: true,
        }
    }
}

/// A generated trace plus ground truth: canonical flow key → label.
#[derive(Debug, Clone)]
pub struct LabeledTrace {
    /// The merged, time-sorted packet trace.
    pub trace: Trace,
    /// Ground-truth label per canonical flow key.
    pub labels: HashMap<FlowKey, TrafficLabel>,
    /// The registry the trace was generated against (for name ground truth).
    pub registry: DomainRegistry,
}

impl LabeledTrace {
    /// Ground-truth label for a packet's flow.
    pub fn label_of(&self, key: &FlowKey) -> Option<TrafficLabel> {
        self.labels.get(&key.canonical()).copied()
    }
}

fn dhcp_boot_session(host: &Host, xid: u32) -> Session {
    use nfm_net::addr::MacAddr;
    use nfm_net::packet::Packet;
    use nfm_net::wire::dhcp::{Message, MessageType};
    use std::net::Ipv4Addr;

    let gw = crate::endpoints::GATEWAY_ADDR;
    let gw_mac = MacAddr::from_index(0x3fff);
    let mut packets = Vec::new();
    let discover = Message::discover(xid, host.mac, Some(host.hostname.clone()));
    packets.push((
        0,
        Packet::udp_v4(
            host.mac,
            MacAddr::BROADCAST,
            Ipv4Addr::UNSPECIFIED,
            Ipv4Addr::BROADCAST,
            68,
            67,
            64,
            discover.emit(),
        ),
    ));
    let offer = Message::offer(&discover, host.ip, gw);
    packets.push((2_000, Packet::udp_v4(gw_mac, host.mac, gw, host.ip, 67, 68, 64, offer.emit())));
    let mut request = Message::discover(xid, host.mac, Some(host.hostname.clone()));
    request.msg_type = MessageType::Request;
    request.requested_addr = Some(host.ip);
    request.server_id = Some(gw);
    packets.push((
        4_000,
        Packet::udp_v4(
            host.mac,
            MacAddr::BROADCAST,
            Ipv4Addr::UNSPECIFIED,
            Ipv4Addr::BROADCAST,
            68,
            67,
            64,
            request.emit(),
        ),
    ));
    let mut ack = Message::offer(&request, host.ip, gw);
    ack.msg_type = MessageType::Ack;
    packets.push((6_000, Packet::udp_v4(gw_mac, host.mac, gw, host.ip, 67, 68, 64, ack.emit())));
    Session { label: TrafficLabel::benign(AppClass::Dhcp, host.device), packets }
}

/// Run the simulator, producing a labeled trace.
pub fn simulate(config: &SimConfig) -> LabeledTrace {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let registry =
        DomainRegistry::generate(config.registry_seed, config.sites_per_category, config.zipf_s);
    let directory = ServerDirectory::build(&registry);
    let mut hosts = standard_population(config.n_general_hosts, config.n_iot_sets);

    let mut all_packets: Vec<TracePacket> = Vec::new();
    let mut labels: HashMap<FlowKey, TrafficLabel> = HashMap::new();

    let place_session = |session: Session,
                         start_us: u64,
                         all_packets: &mut Vec<TracePacket>,
                         labels: &mut HashMap<FlowKey, TrafficLabel>| {
        for (offset, packet) in &session.packets {
            let key = FlowKey::from_packet(packet).canonical();
            labels.entry(key).or_insert(session.label);
            all_packets.push(TracePacket::from_packet(start_us + offset, packet));
        }
    };

    if config.boot_dhcp {
        for (i, host) in hosts.iter().enumerate() {
            let session = dhcp_boot_session(host, 0x1000_0000 + i as u32);
            let start = rng.gen_range(0..500_000);
            place_session(session, start, &mut all_packets, &mut labels);
        }
    }

    // Which benign generator handles each mix slot.
    let mix_dist = Categorical::new(&config.mix.weights[..8]);
    let mut arrivals = PoissonProcess::new(config.sessions_per_sec, 1_000_000);

    for _ in 0..config.n_sessions {
        let start_us = arrivals.next_event(&mut rng);
        let host_idx = rng.gen_range(0..hosts.len());
        let rtt_us = apps::sample_rtt_us(&mut rng);
        let is_attack = config.anomaly_fraction > 0.0
            && !config.anomaly_classes.is_empty()
            && rng.gen_bool(config.anomaly_fraction);
        let session = {
            let mut ctx =
                SessionCtx { client: &mut hosts[host_idx], directory: &directory, rtt_us };
            if is_attack {
                let class = config.anomaly_classes[rng.gen_range(0..config.anomaly_classes.len())];
                anomaly::generate(&mut rng, &mut ctx, &registry, class)
            } else {
                let device = ctx.client.device;
                let is_iot = matches!(
                    device,
                    DeviceClass::Camera
                        | DeviceClass::Thermostat
                        | DeviceClass::SmartBulb
                        | DeviceClass::VoiceAssistant
                );
                if is_iot {
                    // IoT devices speak their own profile plus NTP/DNS.
                    match rng.gen_range(0..10) {
                        0 => apps::ntp::generate(&mut rng, &mut ctx, &registry),
                        1 => apps::dns::generate(&mut rng, &mut ctx, &registry),
                        _ => apps::iot::generate(&mut rng, &mut ctx, &registry),
                    }
                } else {
                    match mix_dist.sample(&mut rng) {
                        0 => apps::dns::generate(&mut rng, &mut ctx, &registry),
                        1 => apps::http::generate(&mut rng, &mut ctx, &registry),
                        2 => apps::tls::generate(&mut rng, &mut ctx, &registry),
                        3 => apps::mail::generate(&mut rng, &mut ctx, &registry),
                        4 => apps::ntp::generate(&mut rng, &mut ctx, &registry),
                        5 => apps::video::generate(&mut rng, &mut ctx, &registry),
                        6 => apps::iot::generate(&mut rng, &mut ctx, &registry),
                        _ => apps::bulk::generate(&mut rng, &mut ctx, &registry),
                    }
                }
            }
        };
        place_session(session, start_us, &mut all_packets, &mut labels);
    }

    LabeledTrace { trace: Trace::from_packets(all_packets), labels, registry }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfm_net::flow::FlowTable;

    fn small_config() -> SimConfig {
        SimConfig { n_sessions: 40, n_general_hosts: 4, n_iot_sets: 1, ..SimConfig::default() }
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = simulate(&small_config());
        let b = simulate(&small_config());
        assert_eq!(a.trace.len(), b.trace.len());
        for (x, y) in a.trace.packets().iter().zip(b.trace.packets()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = simulate(&small_config());
        let b = simulate(&SimConfig { seed: 99, ..small_config() });
        assert_ne!(a.trace.len(), b.trace.len());
    }

    #[test]
    fn every_flow_has_a_label() {
        let lt = simulate(&small_config());
        let table = FlowTable::from_trace(lt.trace.packets().iter());
        assert!(!table.is_empty());
        let mut labeled = 0;
        for flow in table.flows() {
            if lt.label_of(&flow.key).is_some() {
                labeled += 1;
            }
        }
        // All flows were produced by labeled sessions.
        assert_eq!(labeled, table.len());
    }

    #[test]
    fn trace_is_time_sorted_and_interleaved() {
        let lt = simulate(&small_config());
        let mut last = 0;
        for p in lt.trace.packets() {
            assert!(p.ts_us >= last);
            last = p.ts_us;
        }
        // Interleaving: adjacent packets frequently belong to different flows.
        let mut switches = 0;
        let mut prev_key = None;
        for p in lt.trace.packets() {
            if let Ok(parsed) = p.parse() {
                let key = FlowKey::from_packet(&parsed).canonical();
                if prev_key.is_some() && prev_key != Some(key) {
                    switches += 1;
                }
                prev_key = Some(key);
            }
        }
        assert!(switches > lt.trace.len() / 10, "switches {switches} of {}", lt.trace.len());
    }

    #[test]
    fn anomaly_fraction_injects_malicious_flows() {
        let cfg = SimConfig { anomaly_fraction: 0.3, n_sessions: 60, ..small_config() };
        let lt = simulate(&cfg);
        let malicious = lt.labels.values().filter(|l| l.is_malicious()).count();
        assert!(malicious > 0);
        let benign = lt.labels.values().filter(|l| !l.is_malicious()).count();
        assert!(benign > 0);
    }

    #[test]
    fn restricted_anomaly_classes_respected() {
        let cfg = SimConfig {
            anomaly_fraction: 0.5,
            anomaly_classes: vec![AnomalyClass::PortScan],
            n_sessions: 40,
            ..small_config()
        };
        let lt = simulate(&cfg);
        for label in lt.labels.values() {
            if let Some(a) = label.anomaly {
                assert_eq!(a, AnomalyClass::PortScan);
            }
        }
    }

    #[test]
    fn dhcp_boot_present_when_enabled() {
        let lt = simulate(&small_config());
        let has_dhcp = lt.labels.values().any(|l| l.app == AppClass::Dhcp);
        assert!(has_dhcp);
        let off = simulate(&SimConfig { boot_dhcp: false, n_sessions: 10, ..small_config() });
        let has_dhcp = off.labels.values().any(|l| l.app == AppClass::Dhcp);
        assert!(!has_dhcp);
    }

    #[test]
    fn app_diversity_present() {
        let lt = simulate(&SimConfig { n_sessions: 150, ..small_config() });
        let mut seen: Vec<AppClass> = lt.labels.values().map(|l| l.app).collect();
        seen.sort_unstable();
        seen.dedup();
        assert!(seen.len() >= 6, "apps seen: {seen:?}");
    }
}
