//! IoT device sessions, dispatched on the device class: camera streams,
//! thermostat/bulb telemetry beacons, voice-assistant bursts. These give the
//! device-classification task its signal (Sivanathan et al., cited §4.2).

use rand::Rng;

use crate::apps::{dns, udp_exchange, Session, SessionCtx, TcpConversation};
use crate::domains::{DomainRegistry, SiteCategory};
use crate::endpoints::GATEWAY_ADDR;
use crate::label::{AppClass, DeviceClass, TrafficLabel};

/// Build a minimal MQTT-style PUBLISH packet body (type nibble 3).
fn mqtt_publish<R: Rng + ?Sized>(rng: &mut R, topic: &str) -> Vec<u8> {
    let payload_len = rng.gen_range(8..48);
    let mut body = Vec::new();
    body.push(0x30); // PUBLISH, QoS 0
    let remaining = 2 + topic.len() + payload_len;
    body.push(remaining as u8);
    body.extend_from_slice(&(topic.len() as u16).to_be_bytes());
    body.extend_from_slice(topic.as_bytes());
    body.extend((0..payload_len).map(|_| rng.gen::<u8>()));
    body
}

fn camera_session<R: Rng + ?Sized>(
    rng: &mut R,
    ctx: &mut SessionCtx<'_>,
    registry: &DomainRegistry,
) -> Session {
    let site = registry.sample_site_in(rng, SiteCategory::IotCloud).clone();
    let host = site
        .hosts
        .iter()
        .find(|h| h.to_string().starts_with("telemetry"))
        .unwrap_or(&site.hosts[0])
        .clone();
    let (mut packets, server_ip) = dns::lookup_packets(rng, ctx, &host, 0);
    let connect_at = packets.last().map(|(ts, _)| ts + 1_000).unwrap_or(0);
    let rtt = ctx.rtt_us;
    // RTSP-style control then a steady upload stream of video chunks.
    let mut conv = TcpConversation::new(rng, ctx.client, server_ip, 554, rtt, connect_at);
    conv.handshake();
    conv.client_send(
        format!("DESCRIBE rtsp://{host}/stream RTSP/1.0\r\nCSeq: 1\r\n\r\n").as_bytes(),
    );
    conv.server_send(b"RTSP/1.0 200 OK\r\nCSeq: 1\r\n\r\n");
    conv.client_send(b"SETUP rtsp://stream RTSP/1.0\r\nCSeq: 2\r\n\r\n");
    conv.server_send(b"RTSP/1.0 200 OK\r\nCSeq: 2\r\nSession: 12345\r\n\r\n");
    let n_chunks = rng.gen_range(5..15);
    for _ in 0..n_chunks {
        let chunk: Vec<u8> = (0..rng.gen_range(900..1400)).map(|_| rng.gen()).collect();
        conv.client_send(&chunk); // cameras upload
        conv.wait(rng.gen_range(30_000..80_000));
    }
    conv.close();
    packets.extend(conv.finish());
    Session { label: TrafficLabel::benign(AppClass::Iot, DeviceClass::Camera), packets }
}

fn telemetry_session<R: Rng + ?Sized>(
    rng: &mut R,
    ctx: &mut SessionCtx<'_>,
    registry: &DomainRegistry,
    device: DeviceClass,
    topic: &str,
    n_publishes: std::ops::Range<usize>,
) -> Session {
    let site = registry.sample_site_in(rng, SiteCategory::IotCloud).clone();
    let host = site
        .hosts
        .iter()
        .find(|h| h.to_string().starts_with("gateway"))
        .unwrap_or(&site.hosts[0])
        .clone();
    let (mut packets, server_ip) = dns::lookup_packets(rng, ctx, &host, 0);
    let connect_at = packets.last().map(|(ts, _)| ts + 1_000).unwrap_or(0);
    let rtt = ctx.rtt_us;
    let mut conv = TcpConversation::new(rng, ctx.client, server_ip, 1883, rtt, connect_at);
    conv.handshake();
    // MQTT CONNECT / CONNACK.
    let client_id = ctx.client.hostname.clone();
    let mut connect = vec![0x10, (10 + client_id.len()) as u8];
    connect.extend_from_slice(&[0x00, 0x04]);
    connect.extend_from_slice(b"MQTT");
    connect.extend_from_slice(&[0x04, 0x02, 0x00, 0x3c]);
    connect.extend_from_slice(&(client_id.len() as u16).to_be_bytes());
    connect.extend_from_slice(client_id.as_bytes());
    conv.client_send(&connect);
    conv.server_send(&[0x20, 0x02, 0x00, 0x00]);
    let n = rng.gen_range(n_publishes);
    for _ in 0..n {
        let publish = mqtt_publish(rng, topic);
        conv.client_send(&publish);
        conv.wait(rng.gen_range(1_000_000..5_000_000)); // sparse telemetry
    }
    conv.close();
    packets.extend(conv.finish());
    Session { label: TrafficLabel::benign(AppClass::Iot, device), packets }
}

fn bulb_session<R: Rng + ?Sized>(rng: &mut R, ctx: &mut SessionCtx<'_>) -> Session {
    // Bulbs mostly chat with the local gateway over tiny UDP datagrams.
    let mut packets = Vec::new();
    let mut t = 0u64;
    for _ in 0..rng.gen_range(2..6) {
        let cmd: Vec<u8> = (0..rng.gen_range(10..30)).map(|_| rng.gen()).collect();
        let ack: Vec<u8> = (0..8).map(|_| rng.gen()).collect();
        let mut pkts = udp_exchange(ctx.client, GATEWAY_ADDR, 5683, 2_000, t, cmd, Some(ack));
        t = pkts.last().map(|(ts, _)| ts + rng.gen_range(100_000..900_000)).unwrap_or(t);
        packets.append(&mut pkts);
    }
    Session { label: TrafficLabel::benign(AppClass::Iot, DeviceClass::SmartBulb), packets }
}

fn assistant_session<R: Rng + ?Sized>(
    rng: &mut R,
    ctx: &mut SessionCtx<'_>,
    registry: &DomainRegistry,
) -> Session {
    // Voice assistants do a DNS lookup then a short, upload-leaning TLS
    // burst (the voice clip) followed by a small response.
    let site = registry.sample_site_in(rng, SiteCategory::IotCloud).clone();
    let host = registry.sample_host(rng, &site).clone();
    let (mut packets, server_ip) = dns::lookup_packets(rng, ctx, &host, 0);
    let connect_at = packets.last().map(|(ts, _)| ts + 500).unwrap_or(0);
    let rtt = ctx.rtt_us;
    let client_suites = ctx.client.ciphersuites();
    let mut conv = TcpConversation::new(rng, ctx.client, server_ip, 443, rtt, connect_at);
    conv.handshake();
    let sizes = crate::dist::LogNormal::from_median(1_500.0, 1.4);
    crate::apps::tls::run_handshake_and_data(
        rng,
        &mut conv,
        &host.to_string(),
        client_suites,
        0,
        &sizes,
        crate::apps::tls::server_prefers_256(server_ip),
    );
    // Voice clip upload: a burst of client records.
    let clip: Vec<u8> = (0..rng.gen_range(12_000..40_000)).map(|_| rng.gen()).collect();
    let rec = nfm_net::wire::tls::Record {
        content_type: nfm_net::wire::tls::ContentType::ApplicationData,
        version: 0x0303,
        payload: clip,
    };
    conv.client_send(&rec.emit());
    conv.wait(rng.gen_range(100_000..400_000)); // cloud ASR latency
    let answer = nfm_net::wire::tls::Record {
        content_type: nfm_net::wire::tls::ContentType::ApplicationData,
        version: 0x0303,
        payload: (0..rng.gen_range(800..4_000)).map(|_| rng.gen()).collect(),
    };
    conv.server_send(&answer.emit());
    conv.close();
    packets.extend(conv.finish());
    Session { label: TrafficLabel::benign(AppClass::Iot, DeviceClass::VoiceAssistant), packets }
}

/// Generate one IoT session appropriate to the client's device class.
/// Non-IoT devices fall back to a thermostat-style telemetry session.
pub fn generate<R: Rng + ?Sized>(
    rng: &mut R,
    ctx: &mut SessionCtx<'_>,
    registry: &DomainRegistry,
) -> Session {
    match ctx.client.device {
        DeviceClass::Camera => camera_session(rng, ctx, registry),
        DeviceClass::SmartBulb => bulb_session(rng, ctx),
        DeviceClass::VoiceAssistant => assistant_session(rng, ctx, registry),
        DeviceClass::Thermostat => {
            telemetry_session(rng, ctx, registry, DeviceClass::Thermostat, "home/hvac/state", 2..8)
        }
        other => telemetry_session(rng, ctx, registry, other, "device/telemetry", 1..4),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoints::{Host, ServerDirectory};
    use nfm_net::flow::FlowTable;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(device: DeviceClass, seed: u64) -> Session {
        let reg = DomainRegistry::generate(3, 2, 1.0);
        let dir = ServerDirectory::build(&reg);
        let mut host = Host::new(1, device);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ctx = SessionCtx { client: &mut host, directory: &dir, rtt_us: 15_000 };
        generate(&mut rng, &mut ctx, &reg)
    }

    #[test]
    fn camera_uploads_dominate() {
        let s = run(DeviceClass::Camera, 1);
        assert_eq!(s.label.device, DeviceClass::Camera);
        let mut table = FlowTable::new();
        for (i, (ts, p)) in s.packets.iter().enumerate() {
            table.push(i, *ts, p);
        }
        let tcp = table.flows().iter().find(|f| f.key.protocol == 6).unwrap();
        assert!(tcp.stats.fwd_bytes > tcp.stats.bwd_bytes, "camera is upload-heavy");
        assert_eq!(tcp.key.dst_port, 554);
    }

    #[test]
    fn bulb_uses_tiny_udp() {
        let s = run(DeviceClass::SmartBulb, 2);
        assert!(s.packets.iter().all(|(_, p)| p.transport.payload().len() < 64));
        assert!(s.packets.iter().any(|(_, p)| p.transport.dst_port() == Some(5683)));
    }

    #[test]
    fn thermostat_publishes_mqtt_on_1883() {
        let s = run(DeviceClass::Thermostat, 3);
        let has_mqtt = s.packets.iter().any(|(_, p)| {
            p.transport.dst_port() == Some(1883) && p.transport.payload().first() == Some(&0x30)
        });
        assert!(has_mqtt);
    }

    #[test]
    fn assistant_mixes_dns_and_tls() {
        let s = run(DeviceClass::VoiceAssistant, 4);
        let dns = s.packets.iter().filter(|(_, p)| p.transport.dst_port() == Some(53)).count();
        let tls = s.packets.iter().filter(|(_, p)| p.transport.dst_port() == Some(443)).count();
        assert!(dns > 0 && tls > 0);
    }
}
