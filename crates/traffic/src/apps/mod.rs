//! Per-application session generators.
//!
//! Each generator produces a [`Session`]: a label plus a list of
//! `(time-offset, packet)` pairs forming one application transaction
//! (possibly spanning several flows, e.g. a DNS lookup followed by a TCP
//! connection — the cross-connection semantics of §4.1.3).

pub mod bulk;
pub mod dns;
pub mod http;
pub mod iot;
pub mod mail;
pub mod ntp;
pub mod tls;
pub mod video;

use std::net::Ipv4Addr;

use nfm_net::addr::MacAddr;
use nfm_net::packet::Packet;
use nfm_net::wire::tcp::{Flags, Repr as TcpRepr};
use rand::Rng;

use crate::endpoints::{Host, ServerDirectory};
use crate::label::TrafficLabel;

/// One generated application transaction.
#[derive(Debug, Clone)]
pub struct Session {
    /// Ground-truth label applied to every flow in the session.
    pub label: TrafficLabel,
    /// Packets as (offset µs from session start, packet).
    pub packets: Vec<(u64, Packet)>,
}

impl Session {
    /// Duration from first to last packet.
    pub fn duration_us(&self) -> u64 {
        match (self.packets.first(), self.packets.last()) {
            (Some(a), Some(b)) => b.0.saturating_sub(a.0),
            _ => 0,
        }
    }

    /// Total wire bytes.
    pub fn total_bytes(&self) -> usize {
        self.packets.iter().map(|(_, p)| p.wire_len()).sum()
    }
}

/// Shared state threaded through session generators.
pub struct SessionCtx<'a> {
    /// The client host (mutable: allocates ephemeral ports).
    pub client: &'a mut Host,
    /// Site hostname directory.
    pub directory: &'a ServerDirectory,
    /// Round-trip time to remote servers in microseconds.
    pub rtt_us: u64,
}

/// Sample a per-session RTT: 4–80 ms with a long-ish tail.
pub fn sample_rtt_us<R: Rng + ?Sized>(rng: &mut R) -> u64 {
    let base: f64 = rng.gen_range(4_000.0..30_000.0);
    let tail = crate::dist::Pareto::new(1.0, 2.5).sample(rng);
    (base * tail).min(80_000.0) as u64
}

/// Builds a realistic bidirectional TCP conversation: handshake, data
/// segments with correct seq/ack bookkeeping, and FIN teardown.
pub struct TcpConversation {
    client_mac: MacAddr,
    server_mac: MacAddr,
    client_ip: Ipv4Addr,
    server_ip: Ipv4Addr,
    client_port: u16,
    server_port: u16,
    client_ttl: u8,
    client_seq: u32,
    server_seq: u32,
    /// Next ack each side would send (bytes received + syn/fin phantoms).
    client_ack: u32,
    server_ack: u32,
    clock_us: u64,
    rtt_us: u64,
    /// Maximum payload bytes per segment.
    pub mss: usize,
    packets: Vec<(u64, Packet)>,
}

impl TcpConversation {
    /// Start a conversation (no packets yet); `start_us` is the session
    /// offset of the first SYN.
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        client: &mut Host,
        server_ip: Ipv4Addr,
        server_port: u16,
        rtt_us: u64,
        start_us: u64,
    ) -> TcpConversation {
        TcpConversation {
            client_mac: client.mac,
            server_mac: ServerDirectory::server_mac(server_ip),
            client_ip: client.ip,
            server_ip,
            client_port: client.ephemeral_port(),
            server_port,
            client_ttl: client.ttl(),
            client_seq: rng.gen(),
            server_seq: rng.gen(),
            client_ack: 0,
            server_ack: 0,
            clock_us: start_us,
            rtt_us,
            mss: 1400,
            packets: Vec::new(),
        }
    }

    /// The client's source port for this conversation.
    pub fn client_port(&self) -> u16 {
        self.client_port
    }

    /// Current conversation clock (µs offset).
    pub fn clock_us(&self) -> u64 {
        self.clock_us
    }

    /// Advance the clock by `us` (e.g. server think time).
    pub fn wait(&mut self, us: u64) {
        self.clock_us += us;
    }

    fn push_client(&mut self, flags: Flags, payload: Vec<u8>) {
        let repr = TcpRepr {
            src_port: self.client_port,
            dst_port: self.server_port,
            seq: self.client_seq,
            ack: self.client_ack,
            flags,
            window: 64_240,
        };
        let p = Packet::tcp_v4(
            self.client_mac,
            self.server_mac,
            self.client_ip,
            self.server_ip,
            repr,
            self.client_ttl,
            payload,
        );
        self.packets.push((self.clock_us, p));
    }

    fn push_server(&mut self, flags: Flags, payload: Vec<u8>) {
        let repr = TcpRepr {
            src_port: self.server_port,
            dst_port: self.client_port,
            seq: self.server_seq,
            ack: self.server_ack,
            flags,
            window: 65_535,
        };
        let p = Packet::tcp_v4(
            self.server_mac,
            self.client_mac,
            self.server_ip,
            self.client_ip,
            repr,
            64,
            payload,
        );
        self.packets.push((self.clock_us, p));
    }

    /// Emit the three-way handshake.
    pub fn handshake(&mut self) {
        self.push_client(Flags::SYN, Vec::new());
        self.client_seq = self.client_seq.wrapping_add(1);
        self.clock_us += self.rtt_us / 2;
        self.server_ack = self.client_seq;
        self.push_server(Flags::SYN_ACK, Vec::new());
        self.server_seq = self.server_seq.wrapping_add(1);
        self.clock_us += self.rtt_us / 2;
        self.client_ack = self.server_seq;
        self.push_client(Flags::ACK, Vec::new());
    }

    /// Client sends `data`, segmented at the MSS; the server acks the last
    /// segment after half an RTT.
    pub fn client_send(&mut self, data: &[u8]) {
        for chunk in chunks_nonempty(data, self.mss) {
            self.push_client(Flags::PSH_ACK, chunk.to_vec());
            self.client_seq = self.client_seq.wrapping_add(chunk.len() as u32);
            self.clock_us += 200; // serialization gap
        }
        self.clock_us += self.rtt_us / 2;
        self.server_ack = self.client_seq;
        self.push_server(Flags::ACK, Vec::new());
    }

    /// Server sends `data`, segmented at the MSS; the client acks.
    pub fn server_send(&mut self, data: &[u8]) {
        for chunk in chunks_nonempty(data, self.mss) {
            self.push_server(Flags::PSH_ACK, chunk.to_vec());
            self.server_seq = self.server_seq.wrapping_add(chunk.len() as u32);
            self.clock_us += 200;
        }
        self.clock_us += self.rtt_us / 2;
        self.client_ack = self.server_seq;
        self.push_client(Flags::ACK, Vec::new());
    }

    /// Graceful teardown: client FIN, server FIN-ACK, client ACK.
    pub fn close(&mut self) {
        self.push_client(Flags::FIN_ACK, Vec::new());
        self.client_seq = self.client_seq.wrapping_add(1);
        self.clock_us += self.rtt_us / 2;
        self.server_ack = self.client_seq;
        self.push_server(Flags::FIN_ACK, Vec::new());
        self.server_seq = self.server_seq.wrapping_add(1);
        self.clock_us += self.rtt_us / 2;
        self.client_ack = self.server_seq;
        self.push_client(Flags::ACK, Vec::new());
    }

    /// Abrupt client reset.
    pub fn reset(&mut self) {
        self.push_client(Flags::RST, Vec::new());
    }

    /// Finish, returning the timed packets.
    pub fn finish(self) -> Vec<(u64, Packet)> {
        self.packets
    }
}

/// Like `chunks` but yields one empty chunk for empty input (so zero-length
/// writes still emit a segment when callers want one). Here: skips empty.
fn chunks_nonempty(data: &[u8], size: usize) -> impl Iterator<Item = &[u8]> {
    data.chunks(size.max(1)).filter(|c| !c.is_empty())
}

/// A simple UDP request/response exchange between client and server.
#[allow(clippy::too_many_arguments)]
pub fn udp_exchange(
    client: &mut Host,
    server_ip: Ipv4Addr,
    server_port: u16,
    rtt_us: u64,
    start_us: u64,
    request: Vec<u8>,
    response: Option<Vec<u8>>,
) -> Vec<(u64, Packet)> {
    let sport = client.ephemeral_port();
    let smac = client.mac;
    let dmac = ServerDirectory::server_mac(server_ip);
    let mut out = Vec::new();
    out.push((
        start_us,
        Packet::udp_v4(smac, dmac, client.ip, server_ip, sport, server_port, client.ttl(), request),
    ));
    if let Some(resp) = response {
        out.push((
            start_us + rtt_us,
            Packet::udp_v4(dmac, smac, server_ip, client.ip, server_port, sport, 64, resp),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::DeviceClass;
    use nfm_net::flow::{FlowKey, FlowTable};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tcp_conversation_is_one_flow_with_valid_ordering() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut client = Host::new(1, DeviceClass::Workstation);
        let server = Ipv4Addr::new(198, 18, 0, 1);
        let mut conv = TcpConversation::new(&mut rng, &mut client, server, 80, 20_000, 0);
        conv.handshake();
        conv.client_send(b"GET / HTTP/1.1\r\n\r\n");
        conv.wait(5_000);
        conv.server_send(&vec![0x55; 3000]); // forces 3 segments
        conv.close();
        let packets = conv.finish();

        // Timestamps are non-decreasing.
        let mut last = 0;
        for (ts, _) in &packets {
            assert!(*ts >= last);
            last = *ts;
        }
        // All packets belong to one canonical flow.
        let first_key = FlowKey::from_packet(&packets[0].1).canonical();
        for (_, p) in &packets {
            assert_eq!(FlowKey::from_packet(p).canonical(), first_key);
        }
        // Emitted packets are all valid.
        for (_, p) in &packets {
            let bytes = p.emit();
            assert_eq!(Packet::parse(&bytes).unwrap(), *p);
        }
        // Flow stats see the handshake and teardown.
        let mut table = FlowTable::new();
        for (i, (ts, p)) in packets.iter().enumerate() {
            table.push(i, *ts, p);
        }
        let flow = &table.flows()[0];
        assert_eq!(flow.stats.syn_count, 2); // SYN + SYN-ACK
        assert_eq!(flow.stats.fin_count, 2);
        assert_eq!(flow.stats.bwd_bytes, 3000);
    }

    #[test]
    fn seq_ack_bookkeeping_consistent() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut client = Host::new(1, DeviceClass::Phone);
        let mut conv = TcpConversation::new(
            &mut rng,
            &mut client,
            Ipv4Addr::new(198, 18, 0, 2),
            443,
            10_000,
            0,
        );
        conv.handshake();
        conv.client_send(b"hello");
        let packets = conv.finish();
        // Server's ACK after client data acknowledges 5 bytes + 1 (SYN).
        let syn = match &packets[0].1.transport {
            nfm_net::packet::Transport::Tcp { repr, .. } => repr.seq,
            _ => unreachable!(),
        };
        let last_ack = match &packets.last().unwrap().1.transport {
            nfm_net::packet::Transport::Tcp { repr, .. } => repr.ack,
            _ => unreachable!(),
        };
        assert_eq!(last_ack, syn.wrapping_add(1 + 5));
    }

    #[test]
    fn udp_exchange_round_trip() {
        let mut client = Host::new(3, DeviceClass::Camera);
        let server = Ipv4Addr::new(198, 18, 1, 1);
        let pkts =
            udp_exchange(&mut client, server, 53, 15_000, 100, b"q".to_vec(), Some(b"r".to_vec()));
        assert_eq!(pkts.len(), 2);
        assert_eq!(pkts[1].0 - pkts[0].0, 15_000);
        assert_eq!(pkts[0].1.transport.dst_port(), Some(53));
        assert!(FlowKey::from_packet(&pkts[0].1).same_flow(&FlowKey::from_packet(&pkts[1].1)));
    }

    #[test]
    fn rtt_sampler_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            let rtt = sample_rtt_us(&mut rng);
            assert!((4_000..=80_000).contains(&rtt), "rtt {rtt}");
        }
    }
}
