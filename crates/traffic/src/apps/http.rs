//! Plain-HTTP browsing sessions: DNS prelude, TCP connection, one or more
//! request/response exchanges with device-specific User-Agents and
//! category-dependent object sizes.

use nfm_net::wire::http::{Request, Response};
use rand::Rng;

use crate::apps::{dns, Session, SessionCtx, TcpConversation};
use crate::dist::LogNormal;
use crate::domains::{DomainRegistry, SiteCategory};
use crate::label::{AppClass, TrafficLabel};

const PATHS: [&str; 8] = [
    "/",
    "/index.html",
    "/api/v1/items",
    "/static/app.js",
    "/img/logo.png",
    "/feed.xml",
    "/search?q=nfm",
    "/about",
];

/// Median response size per category (bytes) — part of the semantic signal.
fn body_size(category: SiteCategory) -> LogNormal {
    match category {
        SiteCategory::News | SiteCategory::Social => LogNormal::from_median(18_000.0, 2.2),
        SiteCategory::Repository => LogNormal::from_median(40_000.0, 2.5),
        SiteCategory::Ads => LogNormal::from_median(900.0, 1.8),
        _ => LogNormal::from_median(6_000.0, 2.0),
    }
}

/// Generate one browsing session.
pub fn generate<R: Rng + ?Sized>(
    rng: &mut R,
    ctx: &mut SessionCtx<'_>,
    registry: &DomainRegistry,
) -> Session {
    let device = ctx.client.device;
    let category =
        *[SiteCategory::News, SiteCategory::Repository, SiteCategory::Ads, SiteCategory::Social]
            .get(rng.gen_range(0..4))
            .expect("index in range");
    let site = registry.sample_site_in(rng, category).clone();
    let host_name = registry.sample_host(rng, &site).clone();

    let (mut packets, server_ip) = dns::lookup_packets(rng, ctx, &host_name, 0);
    let connect_at = packets.last().map(|(ts, _)| ts + 1_000).unwrap_or(0);

    let rtt = ctx.rtt_us;
    let mut conv = TcpConversation::new(rng, ctx.client, server_ip, 80, rtt, connect_at);
    conv.handshake();
    let n_requests = rng.gen_range(1..=3usize);
    let sizes = body_size(category);
    let ua = ctx.client.user_agent();
    for _ in 0..n_requests {
        let path = PATHS[rng.gen_range(0..PATHS.len())];
        let req = Request::get(&host_name.to_string(), path, ua);
        conv.client_send(&req.emit());
        conv.wait(rng.gen_range(1_000..20_000)); // server think time
        let size = (sizes.sample(rng) as usize).clamp(64, 120_000);
        let content_type = if path.ends_with(".js") {
            "application/javascript"
        } else if path.ends_with(".png") {
            "image/png"
        } else {
            "text/html"
        };
        let resp = Response::ok(content_type, vec![0x58; size]);
        conv.server_send(&resp.emit());
        conv.wait(rng.gen_range(500..30_000)); // client read time
    }
    conv.close();
    packets.extend(conv.finish());
    Session { label: TrafficLabel::benign(AppClass::Web, device), packets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoints::{Host, ServerDirectory};
    use crate::label::DeviceClass;
    use nfm_net::packet::Transport;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn session_contains_dns_then_http_on_port_80() {
        let reg = DomainRegistry::generate(2, 2, 1.0);
        let dir = ServerDirectory::build(&reg);
        let mut host = Host::new(1, DeviceClass::Workstation);
        let mut rng = StdRng::seed_from_u64(3);
        let mut ctx = SessionCtx { client: &mut host, directory: &dir, rtt_us: 20_000 };
        let session = generate(&mut rng, &mut ctx, &reg);
        assert_eq!(session.label.app, AppClass::Web);
        // First packets are DNS, later ones TCP/80.
        assert_eq!(session.packets[0].1.transport.dst_port(), Some(53));
        let has_http = session.packets.iter().any(|(_, p)| match &p.transport {
            Transport::Tcp { repr, payload } => {
                (repr.dst_port == 80) && payload.starts_with(b"GET ")
            }
            _ => false,
        });
        assert!(has_http);
        // The GET carries the device's user agent.
        let get_payload = session
            .packets
            .iter()
            .find_map(|(_, p)| match &p.transport {
                Transport::Tcp { payload, .. } if payload.starts_with(b"GET ") => {
                    Some(payload.clone())
                }
                _ => None,
            })
            .unwrap();
        let req = nfm_net::wire::http::Request::parse(&get_payload).unwrap();
        assert_eq!(req.user_agent(), Some(host.user_agent()));
    }

    #[test]
    fn response_sizes_vary_by_category() {
        // Statistical check: repository bodies are bigger than ads bodies.
        let mut rng = StdRng::seed_from_u64(4);
        let repo: f64 =
            (0..200).map(|_| body_size(SiteCategory::Repository).sample(&mut rng)).sum::<f64>()
                / 200.0;
        let ads: f64 =
            (0..200).map(|_| body_size(SiteCategory::Ads).sample(&mut rng)).sum::<f64>() / 200.0;
        assert!(repo > ads * 5.0, "repo {repo} vs ads {ads}");
    }
}
