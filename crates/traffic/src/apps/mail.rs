//! Mail sessions: SMTP submissions and IMAP polls against mail-category
//! sites, with realistic text dialogues.

use rand::Rng;

use crate::apps::{dns, Session, SessionCtx, TcpConversation};
use crate::dist::LogNormal;
use crate::domains::{DomainRegistry, SiteCategory};
use crate::label::{AppClass, TrafficLabel};

/// Generate an SMTP message submission.
fn smtp_session<R: Rng + ?Sized>(
    rng: &mut R,
    ctx: &mut SessionCtx<'_>,
    registry: &DomainRegistry,
) -> Session {
    let device = ctx.client.device;
    let site = registry.sample_site_in(rng, SiteCategory::Mail).clone();
    let mx = site
        .hosts
        .iter()
        .find(|h| h.to_string().starts_with("mx"))
        .unwrap_or(&site.hosts[0])
        .clone();
    let (mut packets, server_ip) = dns::lookup_packets(rng, ctx, &mx, 0);
    let connect_at = packets.last().map(|(ts, _)| ts + 1_000).unwrap_or(0);
    let rtt = ctx.rtt_us;
    let mut conv = TcpConversation::new(rng, ctx.client, server_ip, 25, rtt, connect_at);
    conv.handshake();
    conv.wait(2_000);
    conv.server_send(format!("220 {mx} ESMTP ready\r\n").as_bytes());
    conv.client_send("EHLO client.local\r\n".to_string().as_bytes());
    conv.server_send(b"250-SIZE 35882577\r\n250 STARTTLS\r\n");
    conv.client_send(format!("MAIL FROM:<user@{}>\r\n", site.domain).as_bytes());
    conv.server_send(b"250 2.1.0 OK\r\n");
    conv.client_send(format!("RCPT TO:<peer@{}>\r\n", site.domain).as_bytes());
    conv.server_send(b"250 2.1.5 OK\r\n");
    conv.client_send(b"DATA\r\n");
    conv.server_send(b"354 Go ahead\r\n");
    let size = (LogNormal::from_median(7_000.0, 2.5).sample(rng) as usize).clamp(300, 80_000);
    let mut body = format!("Subject: report {}\r\n\r\n", rng.gen_range(0..1000)).into_bytes();
    body.resize(size, b'm');
    body.extend_from_slice(b"\r\n.\r\n");
    conv.client_send(&body);
    conv.wait(rng.gen_range(5_000..40_000));
    conv.server_send(b"250 2.0.0 Queued\r\n");
    conv.client_send(b"QUIT\r\n");
    conv.server_send(b"221 Bye\r\n");
    conv.close();
    packets.extend(conv.finish());
    Session { label: TrafficLabel::benign(AppClass::Mail, device), packets }
}

/// Generate an IMAP poll (login, select, fetch headers).
fn imap_session<R: Rng + ?Sized>(
    rng: &mut R,
    ctx: &mut SessionCtx<'_>,
    registry: &DomainRegistry,
) -> Session {
    let device = ctx.client.device;
    let site = registry.sample_site_in(rng, SiteCategory::Mail).clone();
    let imap = site
        .hosts
        .iter()
        .find(|h| h.to_string().starts_with("imap"))
        .unwrap_or(&site.hosts[0])
        .clone();
    let (mut packets, server_ip) = dns::lookup_packets(rng, ctx, &imap, 0);
    let connect_at = packets.last().map(|(ts, _)| ts + 1_000).unwrap_or(0);
    let rtt = ctx.rtt_us;
    let mut conv = TcpConversation::new(rng, ctx.client, server_ip, 143, rtt, connect_at);
    conv.handshake();
    conv.server_send(b"* OK IMAP4rev1 ready\r\n");
    conv.client_send(b"a1 LOGIN user secret\r\n");
    conv.server_send(b"a1 OK LOGIN completed\r\n");
    conv.client_send(b"a2 SELECT INBOX\r\n");
    let n_msgs = rng.gen_range(0..40);
    conv.server_send(
        format!("* {n_msgs} EXISTS\r\na2 OK [READ-WRITE] SELECT completed\r\n").as_bytes(),
    );
    if n_msgs > 0 {
        conv.client_send(b"a3 FETCH 1:* (FLAGS BODY[HEADER.FIELDS (SUBJECT)])\r\n");
        let size = (n_msgs as usize) * rng.gen_range(60..200);
        conv.wait(rng.gen_range(2_000..15_000));
        conv.server_send(&vec![b'h'; size]);
    }
    conv.client_send(b"a4 LOGOUT\r\n");
    conv.server_send(b"* BYE\r\na4 OK LOGOUT completed\r\n");
    conv.close();
    packets.extend(conv.finish());
    Session { label: TrafficLabel::benign(AppClass::Mail, device), packets }
}

/// Generate one mail session (70% IMAP polls, 30% SMTP sends — polls are
/// more frequent in real traffic).
pub fn generate<R: Rng + ?Sized>(
    rng: &mut R,
    ctx: &mut SessionCtx<'_>,
    registry: &DomainRegistry,
) -> Session {
    if rng.gen_bool(0.3) {
        smtp_session(rng, ctx, registry)
    } else {
        imap_session(rng, ctx, registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoints::{Host, ServerDirectory};
    use crate::label::DeviceClass;
    use nfm_net::packet::Transport;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mail_ports(s: &Session) -> Vec<u16> {
        s.packets
            .iter()
            .filter_map(|(_, p)| match &p.transport {
                Transport::Tcp { repr, .. } => Some(repr.dst_port.min(repr.src_port)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn sessions_use_mail_ports() {
        let reg = DomainRegistry::generate(8, 2, 1.0);
        let dir = ServerDirectory::build(&reg);
        let mut host = Host::new(1, DeviceClass::Workstation);
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen_25 = false;
        let mut seen_143 = false;
        for _ in 0..30 {
            let mut ctx = SessionCtx { client: &mut host, directory: &dir, rtt_us: 25_000 };
            let s = generate(&mut rng, &mut ctx, &reg);
            assert_eq!(s.label.app, AppClass::Mail);
            let ports = mail_ports(&s);
            assert!(!ports.is_empty());
            seen_25 |= ports.contains(&25);
            seen_143 |= ports.contains(&143);
        }
        assert!(seen_25 && seen_143, "both SMTP and IMAP appear across sessions");
    }

    #[test]
    fn smtp_dialogue_contains_verbs() {
        let reg = DomainRegistry::generate(8, 2, 1.0);
        let dir = ServerDirectory::build(&reg);
        let mut host = Host::new(2, DeviceClass::Workstation);
        let mut rng = StdRng::seed_from_u64(8);
        let mut ctx = SessionCtx { client: &mut host, directory: &dir, rtt_us: 25_000 };
        let s = smtp_session(&mut rng, &mut ctx, &reg);
        let all: Vec<u8> =
            s.packets.iter().flat_map(|(_, p)| p.transport.payload().to_vec()).collect();
        let text = String::from_utf8_lossy(&all);
        for verb in ["EHLO", "MAIL FROM", "RCPT TO", "DATA", "QUIT", "220", "250"] {
            assert!(text.contains(verb), "missing {verb}");
        }
    }
}
