//! NTP time-sync sessions: small fixed-size UDP request/response pairs to
//! time-category servers, the most regular traffic in the mix.

use nfm_net::wire::ntp::Packet as NtpPacket;
use rand::Rng;

use crate::apps::{udp_exchange, Session, SessionCtx};
use crate::domains::{DomainRegistry, SiteCategory};
use crate::label::{AppClass, TrafficLabel};

/// Generate one NTP poll (occasionally a burst of 2–3 as clients step).
pub fn generate<R: Rng + ?Sized>(
    rng: &mut R,
    ctx: &mut SessionCtx<'_>,
    registry: &DomainRegistry,
) -> Session {
    let device = ctx.client.device;
    let site = registry.sample_site_in(rng, SiteCategory::Time).clone();
    let host = registry.sample_host(rng, &site).clone();
    let server_ip = ctx.directory.resolve(&host).expect("time hosts registered in directory");
    let n = if rng.gen_bool(0.2) { rng.gen_range(2..=3) } else { 1 };
    let mut packets = Vec::new();
    let mut t = 0u64;
    let rtt = ctx.rtt_us;
    for _ in 0..n {
        let ts: u64 = rng.gen();
        let req = NtpPacket::client_request(ts);
        let resp = NtpPacket::server_response(&req, rng.gen_range(1..=3), ts.wrapping_add(1 << 20));
        let mut pkts =
            udp_exchange(ctx.client, server_ip, 123, rtt, t, req.emit(), Some(resp.emit()));
        t = pkts.last().map(|(ts, _)| ts + rng.gen_range(800_000..1_200_000)).unwrap_or(t);
        packets.append(&mut pkts);
    }
    Session { label: TrafficLabel::benign(AppClass::Ntp, device), packets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoints::{Host, ServerDirectory};
    use crate::label::DeviceClass;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ntp_sessions_are_48_byte_exchanges_on_123() {
        let reg = DomainRegistry::generate(4, 2, 1.0);
        let dir = ServerDirectory::build(&reg);
        let mut host = Host::new(1, DeviceClass::Thermostat);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let mut ctx = SessionCtx { client: &mut host, directory: &dir, rtt_us: 12_000 };
            let s = generate(&mut rng, &mut ctx, &reg);
            assert_eq!(s.label.app, AppClass::Ntp);
            for (_, p) in &s.packets {
                assert_eq!(p.transport.payload().len(), nfm_net::wire::ntp::PACKET_LEN);
                let parsed = NtpPacket::parse(p.transport.payload()).unwrap();
                assert!(matches!(
                    parsed.mode,
                    nfm_net::wire::ntp::Mode::Client | nfm_net::wire::ntp::Mode::Server
                ));
            }
        }
    }

    #[test]
    fn response_echoes_originate_timestamp() {
        let reg = DomainRegistry::generate(4, 2, 1.0);
        let dir = ServerDirectory::build(&reg);
        let mut host = Host::new(2, DeviceClass::Camera);
        let mut rng = StdRng::seed_from_u64(2);
        let mut ctx = SessionCtx { client: &mut host, directory: &dir, rtt_us: 12_000 };
        let s = generate(&mut rng, &mut ctx, &reg);
        let req = NtpPacket::parse(s.packets[0].1.transport.payload()).unwrap();
        let resp = NtpPacket::parse(s.packets[1].1.transport.payload()).unwrap();
        assert_eq!(resp.originate_ts, req.transmit_ts);
    }
}
