//! TLS sessions: DNS prelude, TCP/443 connection, handshake with
//! device-profile ciphersuites and SNI, then encrypted application records.

use nfm_net::wire::tls::{suites, ClientHello, ContentType, Record, ServerHello};
use rand::Rng;

use crate::apps::{dns, Session, SessionCtx, TcpConversation};
use crate::dist::LogNormal;
use crate::domains::{DomainRegistry, SiteCategory};
use crate::label::{AppClass, TrafficLabel};

/// Suites a typical AES-128-preferring server accepts, preference order.
const SERVER_SUITES_128: [u16; 7] = [
    suites::TLS13_AES128_GCM,
    suites::TLS13_AES256_GCM,
    suites::ECDHE_ECDSA_AES128_GCM,
    suites::ECDHE_ECDSA_AES256_GCM,
    suites::ECDHE_RSA_AES128_GCM,
    suites::ECDHE_RSA_AES256_GCM,
    suites::RSA_AES128_CBC_SHA,
];

/// The same set for servers that prefer 256-bit keys (as real fleets are
/// split, roughly half and half) — this is what makes each AES-128 suite
/// and its AES-256 sibling appear in the *same* ServerHello slot across the
/// corpus, the paradigmatic structure behind NorBERT's 49199↔49200 result.
const SERVER_SUITES_256: [u16; 7] = [
    suites::TLS13_AES256_GCM,
    suites::TLS13_AES128_GCM,
    suites::ECDHE_ECDSA_AES256_GCM,
    suites::ECDHE_ECDSA_AES128_GCM,
    suites::ECDHE_RSA_AES256_GCM,
    suites::ECDHE_RSA_AES128_GCM,
    suites::RSA_AES128_CBC_SHA,
];

/// Pick the first server-preferred suite the client offers (fallback: the
/// client's first offer, mirroring permissive embedded servers).
/// `prefer_256` selects the server's key-length policy.
pub fn negotiate(client_offer: &[u16], prefer_256: bool) -> u16 {
    let prefs: &[u16] = if prefer_256 { &SERVER_SUITES_256 } else { &SERVER_SUITES_128 };
    prefs
        .iter()
        .copied()
        .find(|s| client_offer.contains(s))
        .unwrap_or_else(|| client_offer.first().copied().unwrap_or(suites::RSA_AES128_CBC_SHA))
}

/// A server's key-length policy, a stable property of its address.
pub fn server_prefers_256(server_ip: std::net::Ipv4Addr) -> bool {
    server_ip.octets()[3] & 1 == 1
}

fn random_bytes<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<u8> {
    (0..n).map(|_| rng.gen()).collect()
}

/// Run a TLS handshake plus `n_exchanges` application-data exchanges over an
/// existing conversation. Returns the negotiated suite.
#[allow(clippy::too_many_arguments)]
pub fn run_handshake_and_data<R: Rng + ?Sized>(
    rng: &mut R,
    conv: &mut TcpConversation,
    sni: &str,
    client_suites: Vec<u16>,
    n_exchanges: usize,
    response_sizes: &LogNormal,
    prefer_256: bool,
) -> u16 {
    let mut client_random = [0u8; 32];
    rng.fill(&mut client_random);
    let hello = ClientHello {
        version: 0x0303,
        random: client_random,
        ciphersuites: client_suites.clone(),
        server_name: Some(sni.to_string()),
    };
    let rec =
        Record { content_type: ContentType::Handshake, version: 0x0301, payload: hello.emit() };
    conv.client_send(&rec.emit());

    let chosen = negotiate(&client_suites, prefer_256);
    let mut server_random = [0u8; 32];
    rng.fill(&mut server_random);
    let sh = ServerHello { version: 0x0303, random: server_random, ciphersuite: chosen };
    let mut server_flight =
        Record { content_type: ContentType::Handshake, version: 0x0303, payload: sh.emit() }.emit();
    // Certificate + key exchange, opaque (sizes realistic).
    let cert_len = rng.gen_range(1200..3200);
    server_flight.extend(
        Record {
            content_type: ContentType::Handshake,
            version: 0x0303,
            payload: random_bytes(rng, cert_len),
        }
        .emit(),
    );
    conv.wait(rng.gen_range(500..3_000));
    conv.server_send(&server_flight);

    // Client finished flight.
    let mut fin =
        Record { content_type: ContentType::ChangeCipherSpec, version: 0x0303, payload: vec![1] }
            .emit();
    fin.extend(
        Record {
            content_type: ContentType::Handshake,
            version: 0x0303,
            payload: random_bytes(rng, 52),
        }
        .emit(),
    );
    conv.client_send(&fin);

    for _ in 0..n_exchanges {
        let req_len = rng.gen_range(80..700);
        let req = Record {
            content_type: ContentType::ApplicationData,
            version: 0x0303,
            payload: random_bytes(rng, req_len),
        };
        conv.client_send(&req.emit());
        conv.wait(rng.gen_range(1_000..15_000));
        let size = (response_sizes.sample(rng) as usize).clamp(128, 60_000);
        // Large responses split across several records (max 16 KiB each).
        let mut flight = Vec::new();
        let mut remaining = size;
        while remaining > 0 {
            let chunk = remaining.min(16_000);
            flight.extend(
                Record {
                    content_type: ContentType::ApplicationData,
                    version: 0x0303,
                    payload: random_bytes(rng, chunk),
                }
                .emit(),
            );
            remaining -= chunk;
        }
        conv.server_send(&flight);
        conv.wait(rng.gen_range(500..20_000));
    }
    chosen
}

/// Generate one HTTPS-style TLS session.
pub fn generate<R: Rng + ?Sized>(
    rng: &mut R,
    ctx: &mut SessionCtx<'_>,
    registry: &DomainRegistry,
) -> Session {
    let device = ctx.client.device;
    let category = *[
        SiteCategory::News,
        SiteCategory::Social,
        SiteCategory::Ads,
        SiteCategory::IotCloud,
        SiteCategory::Mail,
    ]
    .get(rng.gen_range(0..5))
    .expect("index in range");
    let site = registry.sample_site_in(rng, category).clone();
    let host_name = registry.sample_host(rng, &site).clone();

    let (mut packets, server_ip) = dns::lookup_packets(rng, ctx, &host_name, 0);
    let connect_at = packets.last().map(|(ts, _)| ts + 1_000).unwrap_or(0);

    let rtt = ctx.rtt_us;
    let client_suites = ctx.client.ciphersuites();
    let mut conv = TcpConversation::new(rng, ctx.client, server_ip, 443, rtt, connect_at);
    conv.handshake();
    let sizes = LogNormal::from_median(9_000.0, 2.4);
    let n = rng.gen_range(1..=4usize);
    run_handshake_and_data(
        rng,
        &mut conv,
        &host_name.to_string(),
        client_suites,
        n,
        &sizes,
        server_prefers_256(server_ip),
    );
    conv.close();
    packets.extend(conv.finish());
    Session { label: TrafficLabel::benign(AppClass::Tls, device), packets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoints::{Host, ServerDirectory};
    use crate::label::DeviceClass;
    use nfm_net::packet::Transport;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn negotiation_respects_server_preference() {
        assert_eq!(
            negotiate(&[suites::ECDHE_RSA_AES128_GCM, suites::TLS13_AES128_GCM], false),
            suites::TLS13_AES128_GCM
        );
        assert_eq!(negotiate(&[suites::RSA_AES128_CBC_SHA], false), suites::RSA_AES128_CBC_SHA);
        // Unknown-only offer falls back to the client's first suite.
        assert_eq!(negotiate(&[0x9999], true), 0x9999);
        // A 256-preferring server picks the AES-256 sibling from the same offer.
        assert_eq!(
            negotiate(&[suites::ECDHE_RSA_AES128_GCM, suites::ECDHE_RSA_AES256_GCM], true),
            suites::ECDHE_RSA_AES256_GCM
        );
    }

    #[test]
    fn session_has_parseable_client_hello_with_sni() {
        let reg = DomainRegistry::generate(7, 2, 1.0);
        let dir = ServerDirectory::build(&reg);
        let mut host = Host::new(2, DeviceClass::Phone);
        let mut rng = StdRng::seed_from_u64(5);
        let mut ctx = SessionCtx { client: &mut host, directory: &dir, rtt_us: 20_000 };
        let session = generate(&mut rng, &mut ctx, &reg);
        assert_eq!(session.label.app, AppClass::Tls);
        let hello = session
            .packets
            .iter()
            .find_map(|(_, p)| match &p.transport {
                Transport::Tcp { repr, payload } if repr.dst_port == 443 && !payload.is_empty() => {
                    let recs = nfm_net::wire::tls::Record::parse_all(payload).ok()?;
                    recs.iter()
                        .find(|r| r.content_type == ContentType::Handshake)
                        .and_then(|r| ClientHello::parse(&r.payload).ok())
                }
                _ => None,
            })
            .expect("session contains a ClientHello");
        assert!(hello.server_name.is_some());
        assert_eq!(hello.ciphersuites, host.ciphersuites());
    }

    #[test]
    fn iot_sessions_negotiate_weak_suites() {
        let reg = DomainRegistry::generate(7, 2, 1.0);
        let dir = ServerDirectory::build(&reg);
        let mut bulb = Host::new(3, DeviceClass::SmartBulb);
        let mut rng = StdRng::seed_from_u64(6);
        let mut conv = TcpConversation::new(
            &mut rng,
            &mut bulb,
            std::net::Ipv4Addr::new(198, 18, 0, 9),
            443,
            10_000,
            0,
        );
        conv.handshake();
        let sizes = LogNormal::from_median(2_000.0, 1.5);
        let suites_offered = bulb.ciphersuites();
        let chosen = run_handshake_and_data(
            &mut rng,
            &mut conv,
            "iot.example",
            suites_offered,
            1,
            &sizes,
            false,
        );
        assert!(!suites::is_strong(chosen));
        let _ = dir; // directory unused in this low-level test
    }
}
