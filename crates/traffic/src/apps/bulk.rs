//! Bulk transfer sessions: SSH-style banner exchange followed by a large
//! Pareto-sized transfer to a repository site (backups, syncs, clones).

use rand::Rng;

use crate::apps::{dns, Session, SessionCtx, TcpConversation};
use crate::dist::Pareto;
use crate::domains::{DomainRegistry, SiteCategory};
use crate::label::{AppClass, TrafficLabel};

/// Generate one bulk-transfer session.
pub fn generate<R: Rng + ?Sized>(
    rng: &mut R,
    ctx: &mut SessionCtx<'_>,
    registry: &DomainRegistry,
) -> Session {
    let device = ctx.client.device;
    let site = registry.sample_site_in(rng, SiteCategory::Repository).clone();
    let host = site
        .hosts
        .iter()
        .find(|h| h.to_string().starts_with("mirror"))
        .unwrap_or(&site.hosts[0])
        .clone();
    let (mut packets, server_ip) = dns::lookup_packets(rng, ctx, &host, 0);
    let connect_at = packets.last().map(|(ts, _)| ts + 1_000).unwrap_or(0);
    let rtt = ctx.rtt_us;
    let mut conv = TcpConversation::new(rng, ctx.client, server_ip, 22, rtt, connect_at);
    conv.handshake();
    conv.client_send(b"SSH-2.0-nfm_sync_1.0\r\n");
    conv.server_send(b"SSH-2.0-nfm_mirror_2.4\r\n");
    // Key exchange: two mid-sized opaque flights.
    let kex_c: Vec<u8> = (0..rng.gen_range(600..1200)).map(|_| rng.gen()).collect();
    conv.client_send(&kex_c);
    let kex_s: Vec<u8> = (0..rng.gen_range(600..1200)).map(|_| rng.gen()).collect();
    conv.server_send(&kex_s);
    // The transfer itself, heavy-tailed; downloads twice as common.
    let size = (Pareto::new(30_000.0, 1.2).sample(rng) as usize).min(250_000);
    let data: Vec<u8> = (0..size).map(|_| rng.gen()).collect();
    if rng.gen_bool(2.0 / 3.0) {
        conv.server_send(&data);
    } else {
        conv.client_send(&data);
    }
    conv.close();
    packets.extend(conv.finish());
    Session { label: TrafficLabel::benign(AppClass::Bulk, device), packets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoints::{Host, ServerDirectory};
    use crate::label::DeviceClass;
    use nfm_net::flow::FlowTable;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bulk_sessions_move_many_bytes_on_22() {
        let reg = DomainRegistry::generate(14, 2, 1.0);
        let dir = ServerDirectory::build(&reg);
        let mut host = Host::new(1, DeviceClass::Workstation);
        let mut rng = StdRng::seed_from_u64(21);
        let mut ctx = SessionCtx { client: &mut host, directory: &dir, rtt_us: 22_000 };
        let s = generate(&mut rng, &mut ctx, &reg);
        assert_eq!(s.label.app, AppClass::Bulk);
        let mut table = FlowTable::new();
        for (i, (ts, p)) in s.packets.iter().enumerate() {
            table.push(i, *ts, p);
        }
        let tcp = table.flows().iter().find(|f| f.key.protocol == 6).unwrap();
        assert_eq!(tcp.key.dst_port, 22);
        assert!(tcp.stats.total_bytes() > 30_000, "bytes {}", tcp.stats.total_bytes());
        // Banner exchange present.
        let banner = s.packets.iter().any(|(_, p)| p.transport.payload().starts_with(b"SSH-2.0"));
        assert!(banner);
    }
}
