//! Video streaming sessions: a TLS session to a video edge host followed by
//! periodic large segment downloads — the high-volume, bursty,
//! download-dominated profile of adaptive bitrate streaming.

use rand::Rng;

use crate::apps::{dns, tls as tls_app, Session, SessionCtx, TcpConversation};
use crate::dist::LogNormal;
use crate::domains::{DomainRegistry, SiteCategory};
use crate::label::{AppClass, TrafficLabel};

/// Generate one streaming session.
pub fn generate<R: Rng + ?Sized>(
    rng: &mut R,
    ctx: &mut SessionCtx<'_>,
    registry: &DomainRegistry,
) -> Session {
    let device = ctx.client.device;
    let site = registry.sample_site_in(rng, SiteCategory::Video).clone();
    let edge = site
        .hosts
        .iter()
        .find(|h| h.to_string().starts_with("edge"))
        .unwrap_or(&site.hosts[0])
        .clone();

    let (mut packets, server_ip) = dns::lookup_packets(rng, ctx, &edge, 0);
    let connect_at = packets.last().map(|(ts, _)| ts + 1_000).unwrap_or(0);
    let rtt = ctx.rtt_us;
    let client_suites = ctx.client.ciphersuites();
    let mut conv = TcpConversation::new(rng, ctx.client, server_ip, 443, rtt, connect_at);
    conv.handshake();
    // Manifest fetch then N media segments: segments are much larger than
    // ordinary web objects and arrive at a steady cadence (player buffer).
    let manifest_sizes = LogNormal::from_median(3_000.0, 1.5);
    tls_app::run_handshake_and_data(
        rng,
        &mut conv,
        &edge.to_string(),
        client_suites,
        1,
        &manifest_sizes,
        tls_app::server_prefers_256(server_ip),
    );
    let n_segments = rng.gen_range(2..=5usize);
    let segment_sizes = LogNormal::from_median(28_000.0, 1.6);
    for _ in 0..n_segments {
        // Request record.
        let req = nfm_net::wire::tls::Record {
            content_type: nfm_net::wire::tls::ContentType::ApplicationData,
            version: 0x0303,
            payload: (0..rng.gen_range(100..400)).map(|_| rng.gen()).collect(),
        };
        conv.client_send(&req.emit());
        conv.wait(rng.gen_range(2_000..10_000));
        let size = (segment_sizes.sample(rng) as usize).clamp(8_000, 90_000);
        let mut flight = Vec::new();
        let mut remaining = size;
        while remaining > 0 {
            let chunk = remaining.min(16_000);
            flight.extend(
                nfm_net::wire::tls::Record {
                    content_type: nfm_net::wire::tls::ContentType::ApplicationData,
                    version: 0x0303,
                    payload: (0..chunk).map(|_| rng.gen()).collect(),
                }
                .emit(),
            );
            remaining -= chunk;
        }
        conv.server_send(&flight);
        // Player consumes a segment's worth of time before the next fetch.
        conv.wait(rng.gen_range(500_000..2_000_000));
    }
    conv.close();
    packets.extend(conv.finish());
    Session { label: TrafficLabel::benign(AppClass::Video, device), packets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoints::{Host, ServerDirectory};
    use crate::label::DeviceClass;
    use nfm_net::flow::FlowTable;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn video_is_download_dominated_and_long() {
        let reg = DomainRegistry::generate(6, 2, 1.0);
        let dir = ServerDirectory::build(&reg);
        let mut host = Host::new(1, DeviceClass::Workstation);
        let mut rng = StdRng::seed_from_u64(12);
        let mut ctx = SessionCtx { client: &mut host, directory: &dir, rtt_us: 18_000 };
        let s = generate(&mut rng, &mut ctx, &reg);
        assert_eq!(s.label.app, AppClass::Video);

        let mut table = FlowTable::new();
        for (i, (ts, p)) in s.packets.iter().enumerate() {
            table.push(i, *ts, p);
        }
        // Find the TCP flow (skip the DNS flow).
        let tcp_flow = table
            .flows()
            .iter()
            .find(|f| f.key.protocol == 6)
            .expect("video session has a TCP flow");
        assert!(
            tcp_flow.stats.bwd_bytes > tcp_flow.stats.fwd_bytes * 5,
            "download {} should dwarf upload {}",
            tcp_flow.stats.bwd_bytes,
            tcp_flow.stats.fwd_bytes
        );
        // Streaming cadence makes it long-lived (>1 s).
        assert!(s.duration_us() > 1_000_000);
    }
}
