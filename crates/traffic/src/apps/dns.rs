//! DNS lookup sessions: hierarchical query/answer transactions where the
//! answers are semantically the "children" of the query (§4.1.4).

use std::net::Ipv4Addr;

use nfm_net::wire::dns::{Message, Name, Rcode, Rdata, Record, RecordType};
use rand::Rng;

use crate::apps::{udp_exchange, Session, SessionCtx};
use crate::domains::DomainRegistry;
use crate::endpoints::RESOLVER_ADDR;
use crate::label::{AppClass, TrafficLabel};

/// Build the answer chain for `qname`: occasionally a CNAME hop to another
/// host of the same site, then the terminal A record from the directory.
fn build_answers<R: Rng + ?Sized>(
    rng: &mut R,
    ctx: &SessionCtx<'_>,
    qname: &Name,
) -> (Vec<Record>, Ipv4Addr) {
    let addr = ctx.directory.resolve(qname).unwrap_or(Ipv4Addr::new(198, 19, 255, 254));
    let mut answers = Vec::new();
    // 25% of lookups traverse a CNAME (e.g. www → edge host), mirroring CDN
    // indirection.
    if rng.gen_bool(0.25) {
        let target = Name::parse_str(&format!("alias-{}.{}", rng.gen_range(0..4), qname.parent()))
            .unwrap_or_else(|_| qname.clone());
        answers.push(Record {
            name: qname.clone(),
            rtype: RecordType::Cname,
            ttl: 300,
            rdata: Rdata::Cname(target.clone()),
        });
        answers.push(Record { name: target, rtype: RecordType::A, ttl: 60, rdata: Rdata::A(addr) });
    } else {
        // Often multiple A records — the "set-valued answer" structure the
        // paper wants pre-training tasks to capture.
        let n = rng.gen_range(1..=3);
        for i in 0..n {
            let o = addr.octets();
            answers.push(Record {
                name: qname.clone(),
                rtype: RecordType::A,
                ttl: 60,
                rdata: Rdata::A(Ipv4Addr::new(o[0], o[1], o[2], o[3].wrapping_add(i))),
            });
        }
    }
    (answers, addr)
}

/// A lookup used as a prelude to another session: returns the timed packets
/// and the resolved server address.
pub fn lookup_packets<R: Rng + ?Sized>(
    rng: &mut R,
    ctx: &mut SessionCtx<'_>,
    qname: &Name,
    start_us: u64,
) -> (Vec<(u64, nfm_net::Packet)>, Ipv4Addr) {
    let id: u16 = rng.gen();
    let query = Message::query(id, qname.clone(), RecordType::A);
    let (answers, addr) = build_answers(rng, ctx, qname);
    let response = Message::response(&query, Rcode::NoError, answers);
    // Resolver RTT is LAN-local: a fraction of the WAN RTT, at least 1ms.
    let resolver_rtt = (ctx.rtt_us / 8).max(1_000);
    let packets = udp_exchange(
        ctx.client,
        RESOLVER_ADDR,
        53,
        resolver_rtt,
        start_us,
        query.emit(),
        Some(response.emit()),
    );
    (packets, addr)
}

/// A standalone DNS session (one or a burst of related lookups).
pub fn generate<R: Rng + ?Sized>(
    rng: &mut R,
    ctx: &mut SessionCtx<'_>,
    registry: &DomainRegistry,
) -> Session {
    let device = ctx.client.device;
    let mut packets = Vec::new();
    let site = registry.sample_site(rng).clone();
    // A page load resolves 1–4 names of the same site back to back.
    let n = rng.gen_range(1..=4usize);
    let mut t = 0u64;
    for _ in 0..n {
        let host = registry.sample_host(rng, &site).clone();
        let (mut pkts, _) = lookup_packets(rng, ctx, &host, t);
        t = pkts.last().map(|(ts, _)| ts + rng.gen_range(500..5_000)).unwrap_or(t);
        packets.append(&mut pkts);
    }
    // 5% of lookups get NXDOMAIN for a typo name.
    if rng.gen_bool(0.05) {
        let bad = Name::parse_str(&format!("typo{}.{}", rng.gen_range(0..100), site.domain))
            .expect("valid name");
        let id: u16 = rng.gen();
        let query = Message::query(id, bad, RecordType::A);
        let response = Message::response(&query, Rcode::NxDomain, vec![]);
        let mut pkts = udp_exchange(
            ctx.client,
            RESOLVER_ADDR,
            53,
            (ctx.rtt_us / 8).max(1_000),
            t,
            query.emit(),
            Some(response.emit()),
        );
        packets.append(&mut pkts);
    }
    Session { label: TrafficLabel::benign(AppClass::Dns, device), packets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoints::{Host, ServerDirectory};
    use crate::label::DeviceClass;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (DomainRegistry, ServerDirectory, Host) {
        let reg = DomainRegistry::generate(1, 2, 1.0);
        let dir = ServerDirectory::build(&reg);
        let host = Host::new(1, DeviceClass::Workstation);
        (reg, dir, host)
    }

    #[test]
    fn lookup_resolves_to_directory_address() {
        let (reg, dir, mut host) = setup();
        let mut rng = StdRng::seed_from_u64(9);
        let site = reg.sites()[0].clone();
        let qname = site.hosts[0].clone();
        let mut ctx = SessionCtx { client: &mut host, directory: &dir, rtt_us: 20_000 };
        let (packets, addr) = lookup_packets(&mut rng, &mut ctx, &qname, 0);
        assert_eq!(packets.len(), 2);
        // The response parses as DNS and answers terminate in an A record
        // derived from the directory address.
        let resp = Message::parse(packets[1].1.transport.payload()).unwrap();
        assert!(resp.is_response);
        assert!(!resp.answers.is_empty());
        let expected = dir.resolve(&qname).unwrap();
        assert_eq!(addr.octets()[..3], expected.octets()[..3]);
    }

    #[test]
    fn generated_session_is_labeled_dns_and_parses() {
        let (reg, dir, mut host) = setup();
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..20 {
            let mut ctx = SessionCtx { client: &mut host, directory: &dir, rtt_us: 16_000 };
            let session = generate(&mut rng, &mut ctx, &reg);
            assert_eq!(session.label.app, AppClass::Dns);
            assert!(!session.packets.is_empty());
            for (_, p) in &session.packets {
                let on_53 =
                    p.transport.dst_port() == Some(53) || p.transport.src_port() == Some(53);
                assert!(on_53, "one side of every DNS packet is port 53");
                let msg = Message::parse(p.transport.payload());
                assert!(msg.is_ok(), "every payload is valid DNS");
            }
        }
    }

    #[test]
    fn timestamps_non_decreasing() {
        let (reg, dir, mut host) = setup();
        let mut rng = StdRng::seed_from_u64(11);
        let mut ctx = SessionCtx { client: &mut host, directory: &dir, rtt_us: 16_000 };
        let session = generate(&mut rng, &mut ctx, &reg);
        let mut last = 0;
        for (ts, _) in &session.packets {
            assert!(*ts >= last);
            last = *ts;
        }
    }
}
