//! Fault injection for traces — the adverse-network-conditions knobs
//! smoltcp's examples expose (`--drop-chance`, `--corrupt-chance`, …),
//! applied offline to generated captures. Used to test how tokenizers and
//! models degrade on lossy or corrupted input, and to make training data
//! realistically imperfect.

use std::error::Error;
use std::fmt;

use nfm_net::capture::{Trace, TracePacket};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fault-injection configuration; probabilities in [0, 1].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability of dropping each packet.
    pub drop_chance: f64,
    /// Probability of flipping one random byte in a packet.
    pub corrupt_chance: f64,
    /// Probability of duplicating a packet (duplicate keeps its timestamp
    /// plus a small delta, modelling a retransmit seen twice).
    pub duplicate_chance: f64,
    /// Probability of delaying a packet by up to `max_delay_us`
    /// (reordering relative to its neighbours).
    pub reorder_chance: f64,
    /// Maximum reorder delay in microseconds.
    pub max_delay_us: u64,
    /// Truncate packets longer than this to this many bytes (0 disables) —
    /// models a capture snap length.
    pub snaplen: usize,
    /// Probability that an arrival at the serving path starts a burst
    /// instead of a single request (see [`burst_schedule`]).
    pub burst_chance: f64,
    /// Largest burst [`burst_schedule`] may emit (minimum 2 when bursts
    /// are enabled).
    pub max_burst: usize,
    /// Seed for the fault process.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            duplicate_chance: 0.0,
            reorder_chance: 0.0,
            max_delay_us: 50_000,
            snaplen: 0,
            burst_chance: 0.0,
            max_burst: 8,
            seed: 1,
        }
    }
}

/// A fault configuration that does not describe a probability process:
/// some chance field is NaN, infinite, or outside [0, 1]. Typed (like
/// `PipelineError`/`TrainError`) so callers can match on it and carry it
/// through `?`.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// One or more chance fields are not finite probabilities in [0, 1].
    OutOfRange {
        /// The offending `(field name, value)` pairs, in declaration order.
        fields: Vec<(&'static str, f64)>,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::OutOfRange { fields } => {
                let list: Vec<String> = fields
                    .iter()
                    .map(|(name, v)| format!("{name} = {v} (must be in [0, 1])"))
                    .collect();
                write!(f, "invalid FaultConfig: {}", list.join(", "))
            }
        }
    }
}

impl Error for FaultError {}

impl FaultConfig {
    /// The "15%" starting point smoltcp's README suggests for demos.
    pub fn noisy(seed: u64) -> FaultConfig {
        FaultConfig {
            drop_chance: 0.15,
            corrupt_chance: 0.15,
            duplicate_chance: 0.05,
            reorder_chance: 0.1,
            seed,
            ..FaultConfig::default()
        }
    }

    /// Check every probability is a finite value in [0, 1]. Returns a typed
    /// [`FaultError`] naming each offending field. `inject` tolerates
    /// invalid configs by clamping; call this to reject them loudly instead.
    pub fn validate(&self) -> Result<(), FaultError> {
        let fields = [
            ("drop_chance", self.drop_chance),
            ("corrupt_chance", self.corrupt_chance),
            ("duplicate_chance", self.duplicate_chance),
            ("reorder_chance", self.reorder_chance),
            ("burst_chance", self.burst_chance),
        ];
        let bad: Vec<(&'static str, f64)> = fields
            .iter()
            .filter(|(_, v)| !v.is_finite() || !(0.0..=1.0).contains(v))
            .copied()
            .collect();
        if bad.is_empty() {
            Ok(())
        } else {
            Err(FaultError::OutOfRange { fields: bad })
        }
    }

    /// Copy with every probability clamped to [0, 1] (NaN becomes 0).
    fn clamped(&self) -> FaultConfig {
        let clamp = |v: f64| if v.is_finite() { v.clamp(0.0, 1.0) } else { 0.0 };
        FaultConfig {
            drop_chance: clamp(self.drop_chance),
            corrupt_chance: clamp(self.corrupt_chance),
            duplicate_chance: clamp(self.duplicate_chance),
            reorder_chance: clamp(self.reorder_chance),
            burst_chance: clamp(self.burst_chance),
            ..*self
        }
    }
}

/// Statistics about what the injector did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Packets dropped.
    pub dropped: usize,
    /// Packets with a corrupted byte.
    pub corrupted: usize,
    /// Packets duplicated.
    pub duplicated: usize,
    /// Packets delayed/reordered.
    pub reordered: usize,
    /// Packets truncated by the snap length.
    pub truncated: usize,
}

/// Apply faults to a trace, returning the degraded trace and statistics.
/// Deterministic under `config.seed`. Out-of-range probabilities are
/// clamped to [0, 1] (NaN → 0) rather than panicking; use
/// [`FaultConfig::validate`] to reject such configs explicitly.
pub fn inject(trace: &Trace, config: &FaultConfig) -> (Trace, FaultStats) {
    let config = &config.clamped();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xFA_u64.rotate_left(32));
    let mut out: Vec<TracePacket> = Vec::with_capacity(trace.len());
    let mut stats = FaultStats::default();
    for tp in trace.packets() {
        if config.drop_chance > 0.0 && rng.gen_bool(config.drop_chance) {
            stats.dropped += 1;
            continue;
        }
        let mut packet = tp.clone();
        if config.snaplen > 0 && packet.frame.len() > config.snaplen {
            packet.frame.truncate(config.snaplen);
            stats.truncated += 1;
        }
        if config.corrupt_chance > 0.0
            && !packet.frame.is_empty()
            && rng.gen_bool(config.corrupt_chance)
        {
            let at = rng.gen_range(0..packet.frame.len());
            let bit = 1u8 << rng.gen_range(0..8);
            packet.frame[at] ^= bit;
            stats.corrupted += 1;
        }
        if config.reorder_chance > 0.0 && rng.gen_bool(config.reorder_chance) {
            packet.ts_us += rng.gen_range(1..=config.max_delay_us.max(1));
            stats.reordered += 1;
        }
        if config.duplicate_chance > 0.0 && rng.gen_bool(config.duplicate_chance) {
            let mut dup = packet.clone();
            dup.ts_us += rng.gen_range(1..1_000);
            out.push(dup);
            stats.duplicated += 1;
        }
        out.push(packet);
    }
    (Trace::from_packets(out), stats)
}

/// Group `n` serve-path arrivals into bursts: each schedule entry is how
/// many requests arrive back-to-back before the service gets to drain its
/// queue. With `burst_chance = 0` every entry is 1 (a smooth arrival
/// process); otherwise an arrival starts a burst of `2..=max_burst`
/// requests with the configured probability. Deterministic under
/// `config.seed`; the sizes always sum to exactly `n`. Out-of-range
/// chances are clamped like [`inject`] does.
pub fn burst_schedule(n: usize, config: &FaultConfig) -> Vec<usize> {
    let config = config.clamped();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xB0_u64.rotate_left(16));
    let mut out = Vec::new();
    let mut left = n;
    while left > 0 {
        let size = if config.burst_chance > 0.0 && rng.gen_bool(config.burst_chance) {
            rng.gen_range(2..=config.max_burst.max(2))
        } else {
            1
        };
        let size = size.min(left);
        out.push(size);
        left -= size;
    }
    out
}

/// Seeded schedule of per-request task-subset bitmasks for multi-task
/// serving sweeps: entry `i` is the mask of task lanes request `i` fans
/// out to (bit `k` = task `k`). With probability `full_chance` a request
/// asks for every task; otherwise a uniform non-empty subset of the
/// `n_tasks` low bits is drawn. Deterministic in `(n, n_tasks,
/// full_chance, seed)`, so a chaos sweep replays the same fan-out pattern
/// bit for bit. `n_tasks` is clamped to 1..=64 (a `u64` of lanes);
/// `full_chance` outside [0, 1] is clamped.
pub fn task_mask_schedule(n: usize, n_tasks: usize, full_chance: f64, seed: u64) -> Vec<u64> {
    let n_tasks = n_tasks.clamp(1, 64);
    let full_chance = if full_chance.is_finite() { full_chance.clamp(0.0, 1.0) } else { 1.0 };
    let all = if n_tasks == 64 { u64::MAX } else { (1u64 << n_tasks) - 1 };
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7A_u64.rotate_left(24));
    (0..n)
        .map(|_| {
            if full_chance >= 1.0 || rng.gen_bool(full_chance) {
                all
            } else {
                loop {
                    let mask = rng.gen::<u64>() & all;
                    if mask != 0 {
                        break mask;
                    }
                }
            }
        })
        .collect()
}

/// What a replica-level fault does to one serving replica. Packet-level
/// faults ([`inject`]) damage the *traffic*; these damage the *server* — the
/// failure modes a multi-replica cluster exists to survive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaFaultKind {
    /// The replica process dies: it can serve nothing until the supervisor
    /// restarts it from a checkpoint.
    Crash,
    /// The replica slows down by `factor` (GC pause, noisy neighbour,
    /// thermal throttle): every request costs `factor`× its normal budget.
    Stall {
        /// Cost multiplier (≥ 2 when emitted by [`replica_fault_schedule`]).
        factor: u64,
    },
    /// The replica's in-memory weights are silently corrupted (bit rot,
    /// faulty DIMM): it still accepts requests but produces garbage the
    /// health probes must catch.
    CorruptWeights,
}

impl ReplicaFaultKind {
    /// Short name for events and report tables.
    pub fn name(&self) -> &'static str {
        match self {
            ReplicaFaultKind::Crash => "crash",
            ReplicaFaultKind::Stall { .. } => "stall",
            ReplicaFaultKind::CorruptWeights => "corrupt_weights",
        }
    }
}

/// One scheduled replica fault: at the start of burst `at_burst`, replica
/// `replica` suffers `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaFault {
    /// Index of the replica the fault hits.
    pub replica: usize,
    /// Burst index (cluster tick) at which the fault strikes.
    pub at_burst: usize,
    /// What happens to the replica.
    pub kind: ReplicaFaultKind,
}

/// Per-burst fault process for a replica cluster; probabilities in [0, 1].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaFaultConfig {
    /// Probability per (burst, replica) of a crash.
    pub crash_chance: f64,
    /// Probability per (burst, replica) of a stall starting.
    pub stall_chance: f64,
    /// Probability per (burst, replica) of weight corruption.
    pub corrupt_chance: f64,
    /// Largest stall factor emitted (minimum 2).
    pub max_stall_factor: u64,
    /// Seed for the fault process.
    pub seed: u64,
}

impl Default for ReplicaFaultConfig {
    fn default() -> Self {
        ReplicaFaultConfig {
            crash_chance: 0.0,
            stall_chance: 0.0,
            corrupt_chance: 0.0,
            max_stall_factor: 8,
            seed: 1,
        }
    }
}

impl ReplicaFaultConfig {
    /// Check every probability is a finite value in [0, 1]; same contract
    /// as [`FaultConfig::validate`].
    pub fn validate(&self) -> Result<(), FaultError> {
        let fields = [
            ("crash_chance", self.crash_chance),
            ("stall_chance", self.stall_chance),
            ("corrupt_chance", self.corrupt_chance),
        ];
        let bad: Vec<(&'static str, f64)> = fields
            .iter()
            .filter(|(_, v)| !v.is_finite() || !(0.0..=1.0).contains(v))
            .copied()
            .collect();
        if bad.is_empty() {
            Ok(())
        } else {
            Err(FaultError::OutOfRange { fields: bad })
        }
    }

    fn clamped(&self) -> ReplicaFaultConfig {
        let clamp = |v: f64| if v.is_finite() { v.clamp(0.0, 1.0) } else { 0.0 };
        ReplicaFaultConfig {
            crash_chance: clamp(self.crash_chance),
            stall_chance: clamp(self.stall_chance),
            corrupt_chance: clamp(self.corrupt_chance),
            ..*self
        }
    }
}

/// Draw a deterministic replica-fault schedule: for each of `n_bursts`
/// cluster ticks and each of `n_replicas` replicas, at most one fault fires
/// (crash wins over stall wins over corruption when several are drawn).
/// The result is sorted by `(at_burst, replica)` and reproducible under
/// `config.seed`; out-of-range chances are clamped like [`inject`].
pub fn replica_fault_schedule(
    n_replicas: usize,
    n_bursts: usize,
    config: &ReplicaFaultConfig,
) -> Vec<ReplicaFault> {
    let config = config.clamped();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xC7_u64.rotate_left(24));
    let mut out = Vec::new();
    for burst in 0..n_bursts {
        for replica in 0..n_replicas {
            let kind = if config.crash_chance > 0.0 && rng.gen_bool(config.crash_chance) {
                Some(ReplicaFaultKind::Crash)
            } else if config.stall_chance > 0.0 && rng.gen_bool(config.stall_chance) {
                let factor = rng.gen_range(2..=config.max_stall_factor.max(2));
                Some(ReplicaFaultKind::Stall { factor })
            } else if config.corrupt_chance > 0.0 && rng.gen_bool(config.corrupt_chance) {
                Some(ReplicaFaultKind::CorruptWeights)
            } else {
                None
            };
            if let Some(kind) = kind {
                out.push(ReplicaFault { replica, at_burst: burst, kind });
            }
        }
    }
    out
}

/// Distribution-drift process for serving scenarios; magnitudes in [0, 1].
///
/// Unlike [`ReplicaFaultConfig`] (which breaks replicas), this shifts the
/// *workload*: after `onset_burst`, traffic is generated from an app mix
/// blended away from the baseline by `mix_shift` (covariate drift), and
/// ground-truth labels are remapped with `label_flip_chance` per class
/// (label/concept drift).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftFaultConfig {
    /// Burst (cluster tick) index at which the drift begins.
    pub onset_burst: usize,
    /// How far the app mix moves toward its reversed weight order: 0 keeps
    /// the baseline mix, 1 fully reverses the popularity ranking.
    pub mix_shift: f64,
    /// Probability per class that its ground-truth label is remapped to a
    /// different class after onset.
    pub label_flip_chance: f64,
    /// Seed for the label-remap draw.
    pub seed: u64,
}

impl Default for DriftFaultConfig {
    fn default() -> Self {
        DriftFaultConfig { onset_burst: 0, mix_shift: 0.0, label_flip_chance: 0.0, seed: 1 }
    }
}

impl DriftFaultConfig {
    /// Check `mix_shift` and `label_flip_chance` are finite values in
    /// [0, 1]; same contract as [`FaultConfig::validate`].
    pub fn validate(&self) -> Result<(), FaultError> {
        let fields = [("mix_shift", self.mix_shift), ("label_flip_chance", self.label_flip_chance)];
        let bad: Vec<(&'static str, f64)> = fields
            .iter()
            .filter(|(_, v)| !v.is_finite() || !(0.0..=1.0).contains(v))
            .copied()
            .collect();
        if bad.is_empty() {
            Ok(())
        } else {
            Err(FaultError::OutOfRange { fields: bad })
        }
    }

    fn clamped(&self) -> DriftFaultConfig {
        let clamp = |v: f64| if v.is_finite() { v.clamp(0.0, 1.0) } else { 0.0 };
        DriftFaultConfig {
            mix_shift: clamp(self.mix_shift),
            label_flip_chance: clamp(self.label_flip_chance),
            ..*self
        }
    }

    /// The drifted app mix: each of the first 8 weights is blended
    /// `(1−m)·base + m·reversed` toward the reversed weight order (the DHCP
    /// slot is pinned — boot traffic is not part of the mix). Deterministic,
    /// no RNG; out-of-range shifts are clamped like [`inject`].
    pub fn shifted_mix(&self, base: &crate::netsim::AppMix) -> crate::netsim::AppMix {
        let m = self.clamped().mix_shift;
        let mut weights = base.weights;
        for (i, w) in weights.iter_mut().enumerate().take(8) {
            *w = (1.0 - m) * base.weights[i] + m * base.weights[7 - i];
        }
        crate::netsim::AppMix { weights }
    }

    /// Deterministic post-onset label remap: for each of `n_classes`
    /// classes, with `label_flip_chance` the label is redirected to a
    /// different class (drawn under `seed`); otherwise it maps to itself.
    pub fn label_map(&self, n_classes: usize) -> Vec<usize> {
        let config = self.clamped();
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xD1_u64.rotate_left(8));
        (0..n_classes)
            .map(|c| {
                if n_classes > 1
                    && config.label_flip_chance > 0.0
                    && rng.gen_bool(config.label_flip_chance)
                {
                    // Draw a partner from the other n−1 classes.
                    let off = rng.gen_range(1..n_classes);
                    (c + off) % n_classes
                } else {
                    c
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netsim::{simulate, SimConfig};

    fn base_trace() -> Trace {
        simulate(&SimConfig { n_sessions: 40, boot_dhcp: false, ..SimConfig::default() }).trace
    }

    #[test]
    fn no_faults_is_identity() {
        let trace = base_trace();
        let (out, stats) = inject(&trace, &FaultConfig::default());
        assert_eq!(stats, FaultStats::default());
        assert_eq!(out.len(), trace.len());
        for (a, b) in out.packets().iter().zip(trace.packets()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn drop_rate_roughly_matches() {
        let trace = base_trace();
        let cfg = FaultConfig { drop_chance: 0.25, ..FaultConfig::default() };
        let (out, stats) = inject(&trace, &cfg);
        let rate = stats.dropped as f64 / trace.len() as f64;
        assert!((rate - 0.25).abs() < 0.05, "drop rate {rate}");
        assert_eq!(out.len(), trace.len() - stats.dropped);
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let trace = base_trace();
        let cfg = FaultConfig { corrupt_chance: 1.0, ..FaultConfig::default() };
        let (out, stats) = inject(&trace, &cfg);
        assert_eq!(stats.corrupted, trace.len());
        let mut total_flipped_bits = 0u32;
        for (a, b) in out.packets().iter().zip(trace.packets()) {
            let flipped: u32 =
                a.frame.iter().zip(&b.frame).map(|(x, y)| (x ^ y).count_ones()).sum();
            total_flipped_bits += flipped;
            assert_eq!(flipped, 1, "exactly one bit per packet");
        }
        assert_eq!(total_flipped_bits as usize, trace.len());
    }

    #[test]
    fn duplicates_and_reorders_keep_time_sorted() {
        let trace = base_trace();
        let cfg =
            FaultConfig { duplicate_chance: 0.3, reorder_chance: 0.3, ..FaultConfig::default() };
        let (out, stats) = inject(&trace, &cfg);
        assert!(stats.duplicated > 0 && stats.reordered > 0);
        assert_eq!(out.len(), trace.len() + stats.duplicated);
        let mut last = 0;
        for p in out.packets() {
            assert!(p.ts_us >= last);
            last = p.ts_us;
        }
    }

    #[test]
    fn snaplen_truncates() {
        let trace = base_trace();
        let cfg = FaultConfig { snaplen: 96, ..FaultConfig::default() };
        let (out, stats) = inject(&trace, &cfg);
        assert!(stats.truncated > 0);
        assert!(out.packets().iter().all(|p| p.frame.len() <= 96));
    }

    #[test]
    fn deterministic_under_seed() {
        let trace = base_trace();
        let cfg = FaultConfig::noisy(7);
        let (a, sa) = inject(&trace, &cfg);
        let (b, sb) = inject(&trace, &cfg);
        assert_eq!(sa, sb);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.packets().iter().zip(b.packets()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn out_of_range_probability_is_rejected_by_validate_and_clamped_by_inject() {
        let cfg = FaultConfig { drop_chance: 1.5, ..FaultConfig::default() };
        let err = cfg.validate().expect_err("1.5 is not a probability");
        let FaultError::OutOfRange { fields } = &err;
        assert_eq!(fields.as_slice(), &[("drop_chance", 1.5)]);
        let msg = err.to_string();
        assert!(msg.contains("drop_chance"), "message names the field: {msg}");
        // inject clamps to 1.0 instead of panicking: every packet drops.
        let trace = base_trace();
        let (out, stats) = inject(&trace, &cfg);
        assert_eq!(out.len(), 0);
        assert_eq!(stats.dropped, trace.len());
        // NaN clamps to 0 (no-op), also without panicking.
        let nan_cfg = FaultConfig { corrupt_chance: f64::NAN, ..FaultConfig::default() };
        assert!(nan_cfg.validate().is_err());
        let (out, stats) = inject(&trace, &nan_cfg);
        assert_eq!(out.len(), trace.len());
        assert_eq!(stats, FaultStats::default());
        assert!(FaultConfig::noisy(1).validate().is_ok());
    }

    #[test]
    fn empty_trace_is_a_no_op() {
        let empty = Trace::from_packets(Vec::new());
        let (out, stats) = inject(&empty, &FaultConfig::noisy(5));
        assert_eq!(out.len(), 0);
        assert_eq!(stats, FaultStats::default());
    }

    #[test]
    fn drop_chance_one_empties_the_trace() {
        let trace = base_trace();
        let cfg = FaultConfig { drop_chance: 1.0, ..FaultConfig::default() };
        let (out, stats) = inject(&trace, &cfg);
        assert_eq!(out.len(), 0);
        assert_eq!(stats.dropped, trace.len());
    }

    #[test]
    fn snaplen_below_ethernet_header_still_truncates_safely() {
        // 8 bytes is shorter than the 14-byte Ethernet header; frames
        // become unparseable but the injector must not panic.
        let trace = base_trace();
        let cfg = FaultConfig { snaplen: 8, corrupt_chance: 1.0, ..FaultConfig::default() };
        let (out, stats) = inject(&trace, &cfg);
        assert_eq!(stats.truncated, trace.len());
        assert!(out.packets().iter().all(|p| p.frame.len() <= 8));
    }

    #[test]
    fn zero_max_delay_with_certain_reorder_does_not_panic() {
        let trace = base_trace();
        let cfg = FaultConfig { reorder_chance: 1.0, max_delay_us: 0, ..FaultConfig::default() };
        let (out, stats) = inject(&trace, &cfg);
        assert_eq!(stats.reordered, trace.len());
        assert_eq!(out.len(), trace.len());
    }

    #[test]
    fn fault_error_is_a_std_error_listing_every_bad_field() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<FaultError>();
        let cfg = FaultConfig {
            drop_chance: -0.1,
            burst_chance: f64::INFINITY,
            ..FaultConfig::default()
        };
        let err = cfg.validate().expect_err("two bad fields");
        let FaultError::OutOfRange { fields } = &err;
        assert_eq!(fields.len(), 2);
        let msg = err.to_string();
        assert!(msg.contains("drop_chance") && msg.contains("burst_chance"), "{msg}");
    }

    #[test]
    fn burst_schedule_sums_to_n_and_is_deterministic() {
        let smooth = burst_schedule(50, &FaultConfig::default());
        assert_eq!(smooth, vec![1; 50]);
        let cfg =
            FaultConfig { burst_chance: 0.4, max_burst: 6, seed: 9, ..FaultConfig::default() };
        let a = burst_schedule(200, &cfg);
        let b = burst_schedule(200, &cfg);
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.iter().sum::<usize>(), 200);
        assert!(a.iter().any(|&s| s > 1), "bursts actually occur");
        assert!(a.iter().all(|&s| (1..=6).contains(&s)));
        // NaN burst chance clamps to 0 (smooth) instead of panicking.
        let nan = FaultConfig { burst_chance: f64::NAN, ..FaultConfig::default() };
        assert_eq!(burst_schedule(5, &nan), vec![1; 5]);
        assert!(burst_schedule(0, &cfg).is_empty());
    }

    #[test]
    fn tokenizer_survives_noisy_traces() {
        // The §4.1.2 tokenizer must degrade gracefully, never panic, on
        // heavily damaged captures.
        let trace = base_trace();
        let (noisy, _) = inject(&trace, &FaultConfig::noisy(3));
        let mut tokenized = 0usize;
        for tp in noisy.packets() {
            if let Ok(p) = tp.parse() {
                // Any parsed packet must tokenize (tested via flow context
                // elsewhere; here we exercise parse on corrupted frames).
                let _ = p.wire_len();
                tokenized += 1;
            }
        }
        // Many packets survive (corruption often hits payload bytes).
        assert!(tokenized > noisy.len() / 3, "{tokenized}/{}", noisy.len());
    }

    #[test]
    fn replica_fault_schedule_is_deterministic_and_bounded() {
        let cfg = ReplicaFaultConfig {
            crash_chance: 0.05,
            stall_chance: 0.1,
            corrupt_chance: 0.05,
            max_stall_factor: 6,
            seed: 42,
        };
        let a = replica_fault_schedule(3, 100, &cfg);
        let b = replica_fault_schedule(3, 100, &cfg);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(!a.is_empty(), "faults actually occur at these rates");
        for f in &a {
            assert!(f.replica < 3);
            assert!(f.at_burst < 100);
            if let ReplicaFaultKind::Stall { factor } = f.kind {
                assert!((2..=6).contains(&factor), "stall factor {factor}");
            }
        }
        // Sorted by (burst, replica) because of generation order.
        let keys: Vec<(usize, usize)> = a.iter().map(|f| (f.at_burst, f.replica)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        // All three kinds appear over a long enough horizon.
        let names: Vec<&str> = a.iter().map(|f| f.kind.name()).collect();
        for want in ["crash", "stall", "corrupt_weights"] {
            assert!(names.contains(&want), "missing kind {want}");
        }
    }

    #[test]
    fn replica_fault_schedule_clamps_and_validates() {
        // Zero chances: no faults ever.
        assert!(replica_fault_schedule(4, 50, &ReplicaFaultConfig::default()).is_empty());
        // NaN clamps to 0 instead of panicking.
        let nan = ReplicaFaultConfig { crash_chance: f64::NAN, ..ReplicaFaultConfig::default() };
        assert!(replica_fault_schedule(2, 20, &nan).is_empty());
        assert!(nan.validate().is_err());
        let ok = ReplicaFaultConfig { crash_chance: 0.5, ..ReplicaFaultConfig::default() };
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn drift_config_validates_and_clamps() {
        assert!(DriftFaultConfig::default().validate().is_ok());
        let full =
            DriftFaultConfig { mix_shift: 1.0, label_flip_chance: 1.0, ..Default::default() };
        assert!(full.validate().is_ok());
        let bad = DriftFaultConfig { mix_shift: 1.5, ..Default::default() };
        let err = bad.validate().expect_err("out-of-range accepted");
        let FaultError::OutOfRange { fields } = &err;
        assert_eq!(fields, &[("mix_shift", 1.5)]);
        let nan = DriftFaultConfig { label_flip_chance: f64::NAN, ..Default::default() };
        assert!(nan.validate().is_err());
        // Clamping instead of panicking on degenerate magnitudes.
        let mix = nan.shifted_mix(&crate::netsim::AppMix::default());
        assert_eq!(mix.weights, crate::netsim::AppMix::default().weights);
        assert_eq!(nan.label_map(4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn shifted_mix_interpolates_and_pins_dhcp() {
        let base = crate::netsim::AppMix::default();
        let zero = DriftFaultConfig::default().shifted_mix(&base);
        assert_eq!(zero.weights, base.weights);
        let full = DriftFaultConfig { mix_shift: 1.0, ..Default::default() };
        let rev = full.shifted_mix(&base);
        for i in 0..8 {
            assert!((rev.weights[i] - base.weights[7 - i]).abs() < 1e-12);
        }
        assert_eq!(rev.weights[8], base.weights[8], "dhcp slot must be pinned");
        let half = DriftFaultConfig { mix_shift: 0.5, ..Default::default() };
        let mid = half.shifted_mix(&base);
        for i in 0..8 {
            let want = 0.5 * (base.weights[i] + base.weights[7 - i]);
            assert!((mid.weights[i] - want).abs() < 1e-12);
        }
    }

    #[test]
    fn task_mask_schedule_is_seeded_nonempty_and_bounded() {
        let a = task_mask_schedule(200, 4, 0.5, 11);
        let b = task_mask_schedule(200, 4, 0.5, 11);
        assert_eq!(a, b, "mask schedule must be deterministic under one seed");
        assert_eq!(a.len(), 200);
        assert!(a.iter().all(|&m| m != 0 && m <= 0b1111), "masks stay within the task lanes");
        let c = task_mask_schedule(50, 4, 0.5, 12);
        assert_ne!(a[..50], c[..], "different seeds give different schedules");
        // Full fan-out and clamped degenerate inputs.
        assert!(task_mask_schedule(20, 4, 1.0, 1).iter().all(|&m| m == 0b1111));
        assert!(task_mask_schedule(20, 1, 0.0, 1).iter().all(|&m| m == 1));
        assert!(task_mask_schedule(5, 64, f64::NAN, 1).iter().all(|&m| m == u64::MAX));
    }

    #[test]
    fn label_map_is_seeded_and_within_range() {
        let cfg = DriftFaultConfig { label_flip_chance: 0.7, seed: 9, ..Default::default() };
        let a = cfg.label_map(9);
        let b = cfg.label_map(9);
        assert_eq!(a, b, "label map must be deterministic under one seed");
        assert!(a.iter().all(|&l| l < 9));
        // A full flip always redirects every class somewhere else.
        let all = DriftFaultConfig { label_flip_chance: 1.0, seed: 3, ..Default::default() };
        let m = all.label_map(9);
        assert!(m.iter().enumerate().all(|(c, &l)| l != c && l < 9));
        // A single class can never flip (no distinct partner exists).
        assert_eq!(all.label_map(1), vec![0]);
    }
}
