//! Fault injection for traces — the adverse-network-conditions knobs
//! smoltcp's examples expose (`--drop-chance`, `--corrupt-chance`, …),
//! applied offline to generated captures. Used to test how tokenizers and
//! models degrade on lossy or corrupted input, and to make training data
//! realistically imperfect.

use std::error::Error;
use std::fmt;

use nfm_net::capture::{Trace, TracePacket};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fault-injection configuration; probabilities in [0, 1].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability of dropping each packet.
    pub drop_chance: f64,
    /// Probability of flipping one random byte in a packet.
    pub corrupt_chance: f64,
    /// Probability of duplicating a packet (duplicate keeps its timestamp
    /// plus a small delta, modelling a retransmit seen twice).
    pub duplicate_chance: f64,
    /// Probability of delaying a packet by up to `max_delay_us`
    /// (reordering relative to its neighbours).
    pub reorder_chance: f64,
    /// Maximum reorder delay in microseconds.
    pub max_delay_us: u64,
    /// Truncate packets longer than this to this many bytes (0 disables) —
    /// models a capture snap length.
    pub snaplen: usize,
    /// Probability that an arrival at the serving path starts a burst
    /// instead of a single request (see [`burst_schedule`]).
    pub burst_chance: f64,
    /// Largest burst [`burst_schedule`] may emit (minimum 2 when bursts
    /// are enabled).
    pub max_burst: usize,
    /// Seed for the fault process.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            duplicate_chance: 0.0,
            reorder_chance: 0.0,
            max_delay_us: 50_000,
            snaplen: 0,
            burst_chance: 0.0,
            max_burst: 8,
            seed: 1,
        }
    }
}

/// A fault configuration that does not describe a probability process:
/// some chance field is NaN, infinite, or outside [0, 1]. Typed (like
/// `PipelineError`/`TrainError`) so callers can match on it and carry it
/// through `?`.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// One or more chance fields are not finite probabilities in [0, 1].
    OutOfRange {
        /// The offending `(field name, value)` pairs, in declaration order.
        fields: Vec<(&'static str, f64)>,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::OutOfRange { fields } => {
                let list: Vec<String> = fields
                    .iter()
                    .map(|(name, v)| format!("{name} = {v} (must be in [0, 1])"))
                    .collect();
                write!(f, "invalid FaultConfig: {}", list.join(", "))
            }
        }
    }
}

impl Error for FaultError {}

impl FaultConfig {
    /// The "15%" starting point smoltcp's README suggests for demos.
    pub fn noisy(seed: u64) -> FaultConfig {
        FaultConfig {
            drop_chance: 0.15,
            corrupt_chance: 0.15,
            duplicate_chance: 0.05,
            reorder_chance: 0.1,
            seed,
            ..FaultConfig::default()
        }
    }

    /// Check every probability is a finite value in [0, 1]. Returns a typed
    /// [`FaultError`] naming each offending field. `inject` tolerates
    /// invalid configs by clamping; call this to reject them loudly instead.
    pub fn validate(&self) -> Result<(), FaultError> {
        let fields = [
            ("drop_chance", self.drop_chance),
            ("corrupt_chance", self.corrupt_chance),
            ("duplicate_chance", self.duplicate_chance),
            ("reorder_chance", self.reorder_chance),
            ("burst_chance", self.burst_chance),
        ];
        let bad: Vec<(&'static str, f64)> = fields
            .iter()
            .filter(|(_, v)| !v.is_finite() || !(0.0..=1.0).contains(v))
            .copied()
            .collect();
        if bad.is_empty() {
            Ok(())
        } else {
            Err(FaultError::OutOfRange { fields: bad })
        }
    }

    /// Copy with every probability clamped to [0, 1] (NaN becomes 0).
    fn clamped(&self) -> FaultConfig {
        let clamp = |v: f64| if v.is_finite() { v.clamp(0.0, 1.0) } else { 0.0 };
        FaultConfig {
            drop_chance: clamp(self.drop_chance),
            corrupt_chance: clamp(self.corrupt_chance),
            duplicate_chance: clamp(self.duplicate_chance),
            reorder_chance: clamp(self.reorder_chance),
            burst_chance: clamp(self.burst_chance),
            ..*self
        }
    }
}

/// Statistics about what the injector did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Packets dropped.
    pub dropped: usize,
    /// Packets with a corrupted byte.
    pub corrupted: usize,
    /// Packets duplicated.
    pub duplicated: usize,
    /// Packets delayed/reordered.
    pub reordered: usize,
    /// Packets truncated by the snap length.
    pub truncated: usize,
}

/// Apply faults to a trace, returning the degraded trace and statistics.
/// Deterministic under `config.seed`. Out-of-range probabilities are
/// clamped to [0, 1] (NaN → 0) rather than panicking; use
/// [`FaultConfig::validate`] to reject such configs explicitly.
pub fn inject(trace: &Trace, config: &FaultConfig) -> (Trace, FaultStats) {
    let config = &config.clamped();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xFA_u64.rotate_left(32));
    let mut out: Vec<TracePacket> = Vec::with_capacity(trace.len());
    let mut stats = FaultStats::default();
    for tp in trace.packets() {
        if config.drop_chance > 0.0 && rng.gen_bool(config.drop_chance) {
            stats.dropped += 1;
            continue;
        }
        let mut packet = tp.clone();
        if config.snaplen > 0 && packet.frame.len() > config.snaplen {
            packet.frame.truncate(config.snaplen);
            stats.truncated += 1;
        }
        if config.corrupt_chance > 0.0
            && !packet.frame.is_empty()
            && rng.gen_bool(config.corrupt_chance)
        {
            let at = rng.gen_range(0..packet.frame.len());
            let bit = 1u8 << rng.gen_range(0..8);
            packet.frame[at] ^= bit;
            stats.corrupted += 1;
        }
        if config.reorder_chance > 0.0 && rng.gen_bool(config.reorder_chance) {
            packet.ts_us += rng.gen_range(1..=config.max_delay_us.max(1));
            stats.reordered += 1;
        }
        if config.duplicate_chance > 0.0 && rng.gen_bool(config.duplicate_chance) {
            let mut dup = packet.clone();
            dup.ts_us += rng.gen_range(1..1_000);
            out.push(dup);
            stats.duplicated += 1;
        }
        out.push(packet);
    }
    (Trace::from_packets(out), stats)
}

/// Group `n` serve-path arrivals into bursts: each schedule entry is how
/// many requests arrive back-to-back before the service gets to drain its
/// queue. With `burst_chance = 0` every entry is 1 (a smooth arrival
/// process); otherwise an arrival starts a burst of `2..=max_burst`
/// requests with the configured probability. Deterministic under
/// `config.seed`; the sizes always sum to exactly `n`. Out-of-range
/// chances are clamped like [`inject`] does.
pub fn burst_schedule(n: usize, config: &FaultConfig) -> Vec<usize> {
    let config = config.clamped();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xB0_u64.rotate_left(16));
    let mut out = Vec::new();
    let mut left = n;
    while left > 0 {
        let size = if config.burst_chance > 0.0 && rng.gen_bool(config.burst_chance) {
            rng.gen_range(2..=config.max_burst.max(2))
        } else {
            1
        };
        let size = size.min(left);
        out.push(size);
        left -= size;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netsim::{simulate, SimConfig};

    fn base_trace() -> Trace {
        simulate(&SimConfig { n_sessions: 40, boot_dhcp: false, ..SimConfig::default() }).trace
    }

    #[test]
    fn no_faults_is_identity() {
        let trace = base_trace();
        let (out, stats) = inject(&trace, &FaultConfig::default());
        assert_eq!(stats, FaultStats::default());
        assert_eq!(out.len(), trace.len());
        for (a, b) in out.packets().iter().zip(trace.packets()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn drop_rate_roughly_matches() {
        let trace = base_trace();
        let cfg = FaultConfig { drop_chance: 0.25, ..FaultConfig::default() };
        let (out, stats) = inject(&trace, &cfg);
        let rate = stats.dropped as f64 / trace.len() as f64;
        assert!((rate - 0.25).abs() < 0.05, "drop rate {rate}");
        assert_eq!(out.len(), trace.len() - stats.dropped);
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let trace = base_trace();
        let cfg = FaultConfig { corrupt_chance: 1.0, ..FaultConfig::default() };
        let (out, stats) = inject(&trace, &cfg);
        assert_eq!(stats.corrupted, trace.len());
        let mut total_flipped_bits = 0u32;
        for (a, b) in out.packets().iter().zip(trace.packets()) {
            let flipped: u32 =
                a.frame.iter().zip(&b.frame).map(|(x, y)| (x ^ y).count_ones()).sum();
            total_flipped_bits += flipped;
            assert_eq!(flipped, 1, "exactly one bit per packet");
        }
        assert_eq!(total_flipped_bits as usize, trace.len());
    }

    #[test]
    fn duplicates_and_reorders_keep_time_sorted() {
        let trace = base_trace();
        let cfg =
            FaultConfig { duplicate_chance: 0.3, reorder_chance: 0.3, ..FaultConfig::default() };
        let (out, stats) = inject(&trace, &cfg);
        assert!(stats.duplicated > 0 && stats.reordered > 0);
        assert_eq!(out.len(), trace.len() + stats.duplicated);
        let mut last = 0;
        for p in out.packets() {
            assert!(p.ts_us >= last);
            last = p.ts_us;
        }
    }

    #[test]
    fn snaplen_truncates() {
        let trace = base_trace();
        let cfg = FaultConfig { snaplen: 96, ..FaultConfig::default() };
        let (out, stats) = inject(&trace, &cfg);
        assert!(stats.truncated > 0);
        assert!(out.packets().iter().all(|p| p.frame.len() <= 96));
    }

    #[test]
    fn deterministic_under_seed() {
        let trace = base_trace();
        let cfg = FaultConfig::noisy(7);
        let (a, sa) = inject(&trace, &cfg);
        let (b, sb) = inject(&trace, &cfg);
        assert_eq!(sa, sb);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.packets().iter().zip(b.packets()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn out_of_range_probability_is_rejected_by_validate_and_clamped_by_inject() {
        let cfg = FaultConfig { drop_chance: 1.5, ..FaultConfig::default() };
        let err = cfg.validate().expect_err("1.5 is not a probability");
        let FaultError::OutOfRange { fields } = &err;
        assert_eq!(fields.as_slice(), &[("drop_chance", 1.5)]);
        let msg = err.to_string();
        assert!(msg.contains("drop_chance"), "message names the field: {msg}");
        // inject clamps to 1.0 instead of panicking: every packet drops.
        let trace = base_trace();
        let (out, stats) = inject(&trace, &cfg);
        assert_eq!(out.len(), 0);
        assert_eq!(stats.dropped, trace.len());
        // NaN clamps to 0 (no-op), also without panicking.
        let nan_cfg = FaultConfig { corrupt_chance: f64::NAN, ..FaultConfig::default() };
        assert!(nan_cfg.validate().is_err());
        let (out, stats) = inject(&trace, &nan_cfg);
        assert_eq!(out.len(), trace.len());
        assert_eq!(stats, FaultStats::default());
        assert!(FaultConfig::noisy(1).validate().is_ok());
    }

    #[test]
    fn empty_trace_is_a_no_op() {
        let empty = Trace::from_packets(Vec::new());
        let (out, stats) = inject(&empty, &FaultConfig::noisy(5));
        assert_eq!(out.len(), 0);
        assert_eq!(stats, FaultStats::default());
    }

    #[test]
    fn drop_chance_one_empties_the_trace() {
        let trace = base_trace();
        let cfg = FaultConfig { drop_chance: 1.0, ..FaultConfig::default() };
        let (out, stats) = inject(&trace, &cfg);
        assert_eq!(out.len(), 0);
        assert_eq!(stats.dropped, trace.len());
    }

    #[test]
    fn snaplen_below_ethernet_header_still_truncates_safely() {
        // 8 bytes is shorter than the 14-byte Ethernet header; frames
        // become unparseable but the injector must not panic.
        let trace = base_trace();
        let cfg = FaultConfig { snaplen: 8, corrupt_chance: 1.0, ..FaultConfig::default() };
        let (out, stats) = inject(&trace, &cfg);
        assert_eq!(stats.truncated, trace.len());
        assert!(out.packets().iter().all(|p| p.frame.len() <= 8));
    }

    #[test]
    fn zero_max_delay_with_certain_reorder_does_not_panic() {
        let trace = base_trace();
        let cfg = FaultConfig { reorder_chance: 1.0, max_delay_us: 0, ..FaultConfig::default() };
        let (out, stats) = inject(&trace, &cfg);
        assert_eq!(stats.reordered, trace.len());
        assert_eq!(out.len(), trace.len());
    }

    #[test]
    fn fault_error_is_a_std_error_listing_every_bad_field() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<FaultError>();
        let cfg = FaultConfig {
            drop_chance: -0.1,
            burst_chance: f64::INFINITY,
            ..FaultConfig::default()
        };
        let err = cfg.validate().expect_err("two bad fields");
        let FaultError::OutOfRange { fields } = &err;
        assert_eq!(fields.len(), 2);
        let msg = err.to_string();
        assert!(msg.contains("drop_chance") && msg.contains("burst_chance"), "{msg}");
    }

    #[test]
    fn burst_schedule_sums_to_n_and_is_deterministic() {
        let smooth = burst_schedule(50, &FaultConfig::default());
        assert_eq!(smooth, vec![1; 50]);
        let cfg =
            FaultConfig { burst_chance: 0.4, max_burst: 6, seed: 9, ..FaultConfig::default() };
        let a = burst_schedule(200, &cfg);
        let b = burst_schedule(200, &cfg);
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.iter().sum::<usize>(), 200);
        assert!(a.iter().any(|&s| s > 1), "bursts actually occur");
        assert!(a.iter().all(|&s| (1..=6).contains(&s)));
        // NaN burst chance clamps to 0 (smooth) instead of panicking.
        let nan = FaultConfig { burst_chance: f64::NAN, ..FaultConfig::default() };
        assert_eq!(burst_schedule(5, &nan), vec![1; 5]);
        assert!(burst_schedule(0, &cfg).is_empty());
    }

    #[test]
    fn tokenizer_survives_noisy_traces() {
        // The §4.1.2 tokenizer must degrade gracefully, never panic, on
        // heavily damaged captures.
        let trace = base_trace();
        let (noisy, _) = inject(&trace, &FaultConfig::noisy(3));
        let mut tokenized = 0usize;
        for tp in noisy.packets() {
            if let Ok(p) = tp.parse() {
                // Any parsed packet must tokenize (tested via flow context
                // elsewhere; here we exercise parse on corrupted frames).
                let _ = p.wire_len();
                tokenized += 1;
            }
        }
        // Many packets survive (corruption often hits payload bytes).
        assert!(tokenized > noisy.len() / 3, "{tokenized}/{}", noisy.len());
    }
}
