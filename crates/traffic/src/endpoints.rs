//! Endpoint models: client hosts with device profiles, and a deterministic
//! directory mapping site hostnames to server addresses.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use nfm_net::addr::MacAddr;
use nfm_net::wire::dns::Name;
use nfm_net::wire::tls::suites;
use rand::Rng;

use crate::domains::DomainRegistry;
use crate::label::DeviceClass;

/// The resolver address every client uses.
pub const RESOLVER_ADDR: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 53);

/// The local gateway (DHCP server, NTP relay).
pub const GATEWAY_ADDR: Ipv4Addr = Ipv4Addr::new(192, 168, 0, 1);

/// A client endpoint.
#[derive(Debug, Clone)]
pub struct Host {
    /// Link-layer address.
    pub mac: MacAddr,
    /// IPv4 address on the local network.
    pub ip: Ipv4Addr,
    /// Device profile.
    pub device: DeviceClass,
    /// DHCP hostname the device announces.
    pub hostname: String,
    next_ephemeral: u16,
}

impl Host {
    /// Create host number `index` with the given device class.
    pub fn new(index: u16, device: DeviceClass) -> Host {
        let hostname = format!("{}-{:02}", device.name(), index);
        Host {
            mac: MacAddr::from_index(0x1000 + u64::from(index)),
            ip: Ipv4Addr::new(192, 168, (index / 250) as u8, (index % 250 + 2) as u8),
            device,
            hostname,
            next_ephemeral: 0,
        }
    }

    /// Allocate the next ephemeral source port (49152–65535, wrapping).
    ///
    /// Ports recycle after 16,384 allocations per host; a recycled port can
    /// collide with an earlier five-tuple and inherit that flow's label in
    /// [`crate::netsim`]'s ground-truth map. Real stacks have the same reuse
    /// behaviour; keep per-host session counts below ~16k per simulation
    /// (the standard configurations allocate a few hundred at most).
    pub fn ephemeral_port(&mut self) -> u16 {
        let port = 49152 + (self.next_ephemeral % 16384);
        self.next_ephemeral = self.next_ephemeral.wrapping_add(1);
        port
    }

    /// The TTL this device stamps on outgoing packets (64 for Unix-like,
    /// 128 for the workstation profile — a weak device fingerprint that the
    /// models can pick up, as real traffic classifiers do).
    pub fn ttl(&self) -> u8 {
        match self.device {
            DeviceClass::Workstation => 128,
            DeviceClass::Server => 64,
            _ => 64,
        }
    }

    /// The TLS ciphersuites this device's client stack offers, in order.
    /// Modern devices lead with TLS 1.3 suites; constrained IoT firmware
    /// offers older, weaker suites — exactly the "weak versus strong
    /// clusters" semantic the paper highlights (§1, §3.3).
    pub fn ciphersuites(&self) -> Vec<u16> {
        match self.device {
            DeviceClass::Workstation | DeviceClass::Phone => vec![
                suites::TLS13_AES128_GCM,
                suites::TLS13_AES256_GCM,
                suites::TLS13_CHACHA20,
                suites::ECDHE_ECDSA_AES128_GCM,
                suites::ECDHE_ECDSA_AES256_GCM,
                suites::ECDHE_RSA_AES128_GCM,
                suites::ECDHE_RSA_AES256_GCM,
            ],
            DeviceClass::Camera | DeviceClass::VoiceAssistant => vec![
                suites::ECDHE_RSA_AES128_GCM,
                suites::ECDHE_RSA_AES256_GCM,
                suites::RSA_AES128_CBC_SHA,
            ],
            DeviceClass::Thermostat | DeviceClass::SmartBulb => {
                vec![suites::RSA_AES128_CBC_SHA, suites::RSA_3DES_EDE_CBC_SHA]
            }
            DeviceClass::Server => vec![suites::TLS13_AES128_GCM],
        }
    }

    /// HTTP User-Agent string for this device profile.
    pub fn user_agent(&self) -> &'static str {
        match self.device {
            DeviceClass::Workstation => "Mozilla/5.0 (X11; Linux x86_64) nfm-browser/1.0",
            DeviceClass::Phone => "Mozilla/5.0 (Mobile; rv:1.0) nfm-mobile/1.0",
            DeviceClass::Camera => "ipcam-fw/2.3",
            DeviceClass::Thermostat => "thermo-connect/0.9",
            DeviceClass::SmartBulb => "bulb-iot/1.1",
            DeviceClass::VoiceAssistant => "assistant-os/4.0",
            DeviceClass::Server => "nfm-agent/1.0",
        }
    }
}

/// Deterministic hostname→server-address directory for every host in a
/// [`DomainRegistry`] — the synthetic internet's authoritative data.
#[derive(Debug, Clone)]
pub struct ServerDirectory {
    by_name: HashMap<Name, Ipv4Addr>,
}

impl ServerDirectory {
    /// Assign every site host an address in 198.18.0.0/15 (the benchmark
    /// address range), deterministically from insertion order.
    pub fn build(registry: &DomainRegistry) -> ServerDirectory {
        let mut by_name = HashMap::new();
        let mut counter: u32 = 0;
        for site in registry.sites() {
            for host in &site.hosts {
                let offset = counter % (1 << 17);
                let addr = Ipv4Addr::new(
                    198,
                    (18 + (offset >> 16)) as u8,
                    ((offset >> 8) & 0xff) as u8,
                    (offset & 0xff) as u8,
                );
                by_name.insert(host.clone(), addr);
                counter += 1;
            }
        }
        ServerDirectory { by_name }
    }

    /// Resolve a host name.
    pub fn resolve(&self, name: &Name) -> Option<Ipv4Addr> {
        self.by_name.get(name).copied()
    }

    /// Number of registered hosts.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// True when no hosts are registered.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }

    /// The MAC a server presents (derived from its IP).
    pub fn server_mac(addr: Ipv4Addr) -> MacAddr {
        MacAddr::from_index(0x2000_0000 + u64::from(u32::from(addr)))
    }
}

/// Build a mixed population of client hosts: `n_general` workstations/phones
/// plus one of each IoT device class per `n_iot_sets`.
pub fn standard_population(n_general: u16, n_iot_sets: u16) -> Vec<Host> {
    let mut hosts = Vec::new();
    let mut index = 0;
    for i in 0..n_general {
        let device = if i % 3 == 2 { DeviceClass::Phone } else { DeviceClass::Workstation };
        hosts.push(Host::new(index, device));
        index += 1;
    }
    for _ in 0..n_iot_sets {
        for device in [
            DeviceClass::Camera,
            DeviceClass::Thermostat,
            DeviceClass::SmartBulb,
            DeviceClass::VoiceAssistant,
        ] {
            hosts.push(Host::new(index, device));
            index += 1;
        }
    }
    hosts
}

/// Pick a random client index from a population.
pub fn sample_host<R: Rng + ?Sized>(rng: &mut R, hosts: &[Host]) -> usize {
    rng.gen_range(0..hosts.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hosts_have_distinct_identities() {
        let a = Host::new(1, DeviceClass::Workstation);
        let b = Host::new(2, DeviceClass::Camera);
        assert_ne!(a.mac, b.mac);
        assert_ne!(a.ip, b.ip);
        assert_ne!(a.hostname, b.hostname);
    }

    #[test]
    fn ephemeral_ports_in_range_and_advance() {
        let mut h = Host::new(1, DeviceClass::Phone);
        let p1 = h.ephemeral_port();
        let p2 = h.ephemeral_port();
        assert!(p1 >= 49152);
        assert_ne!(p1, p2);
        // Wraps without panicking.
        for _ in 0..20_000 {
            let p = h.ephemeral_port();
            assert!(p >= 49152);
        }
    }

    #[test]
    fn iot_suites_are_weaker() {
        let bulb = Host::new(1, DeviceClass::SmartBulb);
        let laptop = Host::new(2, DeviceClass::Workstation);
        assert!(bulb.ciphersuites().iter().all(|&s| !nfm_net::wire::tls::suites::is_strong(s)));
        assert!(laptop.ciphersuites().iter().all(|&s| nfm_net::wire::tls::suites::is_strong(s)));
    }

    #[test]
    fn directory_resolves_every_host() {
        let reg = DomainRegistry::generate(3, 2, 1.0);
        let dir = ServerDirectory::build(&reg);
        assert!(!dir.is_empty());
        for site in reg.sites() {
            for host in &site.hosts {
                let addr = dir.resolve(host).expect("every host registered");
                assert_eq!(addr.octets()[0], 198);
            }
        }
        assert_eq!(dir.resolve(&Name::parse_str("missing.example").unwrap()), None);
    }

    #[test]
    fn directory_is_deterministic() {
        let reg = DomainRegistry::generate(3, 2, 1.0);
        let d1 = ServerDirectory::build(&reg);
        let d2 = ServerDirectory::build(&reg);
        for site in reg.sites() {
            for host in &site.hosts {
                assert_eq!(d1.resolve(host), d2.resolve(host));
            }
        }
    }

    #[test]
    fn standard_population_mixes_devices() {
        let hosts = standard_population(6, 2);
        assert_eq!(hosts.len(), 6 + 8);
        let phones = hosts.iter().filter(|h| h.device == DeviceClass::Phone).count();
        let cams = hosts.iter().filter(|h| h.device == DeviceClass::Camera).count();
        assert_eq!(phones, 2);
        assert_eq!(cams, 2);
    }
}
