//! Statistical distributions used by the traffic models, implemented from
//! scratch over a [`rand::Rng`] so the whole generator is dependency-light
//! and deterministic under a seed.
//!
//! The shapes follow the traffic-generation literature the paper cites
//! (Harpoon, Tmix): Zipf for object/domain popularity, log-normal for flow
//! and object sizes, Pareto for heavy-tailed durations, exponential for
//! Poisson arrival processes.

use rand::Rng;

/// Sample `U(0,1)` excluding exact zero (safe for logs).
fn unit_open<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen();
        if u > 0.0 {
            return u;
        }
    }
}

/// Exponential distribution with the given rate (events per unit time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Create with `rate > 0`.
    pub fn new(rate: f64) -> Exponential {
        assert!(rate > 0.0, "rate must be positive");
        Exponential { rate }
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    /// Draw one sample via inversion.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        -unit_open(rng).ln() / self.rate
    }
}

/// Log-normal distribution parameterised by the underlying normal's
/// `mu` and `sigma`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Create with `sigma >= 0`.
    pub fn new(mu: f64, sigma: f64) -> LogNormal {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        LogNormal { mu, sigma }
    }

    /// Construct from the desired median and a multiplicative spread factor
    /// (`sigma = ln(spread)`), which reads more naturally for sizes:
    /// `LogNormal::from_median(1200.0, 2.0)` has median 1200 and ~68% of
    /// mass within a factor 2.
    pub fn from_median(median: f64, spread: f64) -> LogNormal {
        assert!(median > 0.0 && spread >= 1.0);
        LogNormal::new(median.ln(), spread.ln())
    }

    /// Draw a standard normal via Box–Muller, then exponentiate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1 = unit_open(rng);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.mu + self.sigma * z).exp()
    }

    /// Median (`e^mu`).
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }
}

/// Pareto (type I) distribution: heavy-tailed durations and sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    scale: f64,
    shape: f64,
}

impl Pareto {
    /// Create with minimum value `scale > 0` and tail index `shape > 0`.
    pub fn new(scale: f64, shape: f64) -> Pareto {
        assert!(scale > 0.0 && shape > 0.0);
        Pareto { scale, shape }
    }

    /// Draw by inversion.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.scale / unit_open(rng).powf(1.0 / self.shape)
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s`, sampled by
/// inverting a precomputed CDF (exact for the bounded supports we use).
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Create over `n >= 1` ranks with exponent `s >= 0` (0 = uniform).
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n >= 1, "need at least one rank");
        assert!(s >= 0.0, "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when there is a single rank.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draw a 0-based rank (0 is the most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// A categorical distribution over arbitrary weights.
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    cdf: Vec<f64>,
}

impl Categorical {
    /// Create from non-negative weights with a positive sum.
    pub fn new(weights: &[f64]) -> Categorical {
        assert!(!weights.is_empty(), "need at least one weight");
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0, "weights must be non-negative");
            acc += w;
            cdf.push(acc);
        }
        assert!(acc > 0.0, "weights must not all be zero");
        for v in &mut cdf {
            *v /= acc;
        }
        Categorical { cdf }
    }

    /// Draw an index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// A homogeneous Poisson arrival process: an iterator of event times with
/// exponential inter-arrivals.
#[derive(Debug, Clone)]
pub struct PoissonProcess {
    interarrival: Exponential,
    now_us: u64,
}

impl PoissonProcess {
    /// Create with `rate_per_sec` events per second, starting at `start_us`.
    pub fn new(rate_per_sec: f64, start_us: u64) -> PoissonProcess {
        PoissonProcess { interarrival: Exponential::new(rate_per_sec), now_us: start_us }
    }

    /// Advance to and return the next event time in microseconds.
    pub fn next_event<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        let gap_s = self.interarrival.sample(rng);
        self.now_us += (gap_s * 1e6).max(1.0) as u64;
        self.now_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn exponential_mean_close() {
        let d = Exponential::new(2.0);
        let mut r = rng();
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn lognormal_median_close() {
        let d = LogNormal::from_median(1000.0, 2.0);
        assert!((d.median() - 1000.0).abs() < 1e-9);
        let mut r = rng();
        let mut samples: Vec<f64> = (0..10_001).map(|_| d.sample(&mut r)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[5000];
        assert!((median / 1000.0 - 1.0).abs() < 0.1, "median {median}");
    }

    #[test]
    fn pareto_respects_scale() {
        let d = Pareto::new(100.0, 1.5);
        let mut r = rng();
        for _ in 0..1000 {
            assert!(d.sample(&mut r) >= 100.0);
        }
    }

    #[test]
    fn zipf_rank_ordering() {
        let d = Zipf::new(50, 1.0);
        let mut r = rng();
        let mut counts = vec![0usize; 50];
        for _ in 0..50_000 {
            counts[d.sample(&mut r)] += 1;
        }
        // Rank 0 clearly beats rank 10, which beats rank 40.
        assert!(counts[0] > counts[10] * 2, "{} vs {}", counts[0], counts[10]);
        assert!(counts[10] > counts[40], "{} vs {}", counts[10], counts[40]);
        // Zipf(s=1): count[0]/count[1] ≈ 2.
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((ratio - 2.0).abs() < 0.4, "ratio {ratio}");
    }

    #[test]
    fn zipf_s_zero_is_uniform() {
        let d = Zipf::new(10, 0.0);
        let mut r = rng();
        let mut counts = vec![0usize; 10];
        for _ in 0..50_000 {
            counts[d.sample(&mut r)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 5000.0).abs() < 400.0, "count {c}");
        }
    }

    #[test]
    fn categorical_proportions() {
        let d = Categorical::new(&[1.0, 3.0, 0.0, 6.0]);
        let mut r = rng();
        let mut counts = [0usize; 4];
        for _ in 0..50_000 {
            counts[d.sample(&mut r)] += 1;
        }
        assert_eq!(counts[2], 0);
        assert!((counts[3] as f64 / counts[1] as f64 - 2.0).abs() < 0.2);
        assert!((counts[1] as f64 / counts[0] as f64 - 3.0).abs() < 0.4);
    }

    #[test]
    fn poisson_process_monotone_and_rate() {
        let mut p = PoissonProcess::new(100.0, 0);
        let mut r = rng();
        let mut last = 0;
        let mut events = 0;
        loop {
            let t = p.next_event(&mut r);
            assert!(t > last);
            last = t;
            events += 1;
            if t > 1_000_000 {
                break;
            }
        }
        // ~100 events per simulated second.
        assert!((60..160).contains(&events), "events {events}");
    }

    #[test]
    fn deterministic_under_seed() {
        let d = Zipf::new(100, 1.2);
        let a: Vec<usize> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..50).map(|_| d.sample(&mut r)).collect()
        };
        let b: Vec<usize> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..50).map(|_| d.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_zero_rate() {
        let _ = Exponential::new(0.0);
    }
}
