//! Attack/anomaly session generators for the §4.3 zero-day experiments.
//! Each returns a [`Session`] labelled with its [`AnomalyClass`]; OOD
//! experiments hold entire classes out of training.

use std::net::Ipv4Addr;

use nfm_net::packet::Packet;
use nfm_net::wire::dns::{Message, Name, Rcode, Rdata, Record, RecordType};
use nfm_net::wire::tcp::{Flags, Repr as TcpRepr};
use rand::Rng;

use crate::apps::{udp_exchange, Session, SessionCtx, TcpConversation};
use crate::domains::{DomainRegistry, SiteCategory};
use crate::endpoints::{ServerDirectory, RESOLVER_ADDR};
use crate::label::{AnomalyClass, AppClass, TrafficLabel};

fn label(ctx: &SessionCtx<'_>, app: AppClass, anomaly: AnomalyClass) -> TrafficLabel {
    TrafficLabel { app, device: ctx.client.device, anomaly: Some(anomaly) }
}

/// Horizontal SYN scan: probe a spread of ports on one victim; most answer
/// RST, a few answer SYN-ACK and get RST'd by the scanner.
pub fn port_scan<R: Rng + ?Sized>(rng: &mut R, ctx: &mut SessionCtx<'_>) -> Session {
    let victim = Ipv4Addr::new(198, 18, rng.gen_range(0..4), rng.gen_range(1..255));
    let victim_mac = ServerDirectory::server_mac(victim);
    let mut packets = Vec::new();
    let mut t = 0u64;
    let n_ports = rng.gen_range(20..60);
    let base_port: u16 = rng.gen_range(1..1000);
    for i in 0..n_ports {
        // Stride the probed ports; wrap the whole offset so large scans
        // stay in the low-port range without duplicating probes early.
        let dst_port = base_port + (i * 7) % 1024;
        let sport = ctx.client.ephemeral_port();
        let syn = Packet::tcp_v4(
            ctx.client.mac,
            victim_mac,
            ctx.client.ip,
            victim,
            TcpRepr {
                src_port: sport,
                dst_port,
                seq: rng.gen(),
                ack: 0,
                flags: Flags::SYN,
                window: 1024,
            },
            ctx.client.ttl(),
            vec![],
        );
        packets.push((t, syn));
        t += rng.gen_range(200..2_000); // rapid-fire probes
        let open = rng.gen_bool(0.1);
        let reply_flags = if open { Flags::SYN_ACK } else { Flags(Flags::RST.0 | Flags::ACK.0) };
        let reply = Packet::tcp_v4(
            victim_mac,
            ctx.client.mac,
            victim,
            ctx.client.ip,
            TcpRepr {
                src_port: dst_port,
                dst_port: sport,
                seq: rng.gen(),
                ack: 1,
                flags: reply_flags,
                window: 0,
            },
            64,
            vec![],
        );
        packets.push((t, reply));
        t += rng.gen_range(100..500);
    }
    packets.sort_by_key(|(ts, _)| *ts);
    Session { label: label(ctx, AppClass::Web, AnomalyClass::PortScan), packets }
}

/// DNS tunnel: a stream of queries whose leftmost label is high-entropy
/// encoded data under an attacker-controlled domain; answers carry TXT.
pub fn dns_tunnel<R: Rng + ?Sized>(rng: &mut R, ctx: &mut SessionCtx<'_>) -> Session {
    let tunnel_domain = Name::parse_str("c2relay.net").expect("valid");
    let mut packets = Vec::new();
    let mut t = 0u64;
    let n_queries = rng.gen_range(15..40);
    for _ in 0..n_queries {
        // Base32-ish random payload label, much longer than organic labels.
        let chunk: String =
            (0..rng.gen_range(24..48)).map(|_| char::from(b'a' + rng.gen_range(0..26))).collect();
        let qname = Name::parse_str(&format!("{chunk}.{tunnel_domain}")).expect("valid");
        let id: u16 = rng.gen();
        let query = Message::query(id, qname.clone(), RecordType::Txt);
        let reply_data: Vec<u8> = (0..rng.gen_range(30..120)).map(|_| rng.gen()).collect();
        let response = Message::response(
            &query,
            Rcode::NoError,
            vec![Record {
                name: qname,
                rtype: RecordType::Txt,
                ttl: 1,
                rdata: Rdata::Txt(reply_data),
            }],
        );
        let mut pkts = udp_exchange(
            ctx.client,
            RESOLVER_ADDR,
            53,
            (ctx.rtt_us / 8).max(1_000),
            t,
            query.emit(),
            Some(response.emit()),
        );
        t = pkts.last().map(|(ts, _)| ts + rng.gen_range(5_000..60_000)).unwrap_or(t);
        packets.append(&mut pkts);
    }
    Session { label: label(ctx, AppClass::Dns, AnomalyClass::DnsTunnel), packets }
}

/// C2 beacon: short TLS-less TCP check-ins to a fixed server at a fixed
/// interval with small jitter — the periodicity is the tell.
pub fn beacon<R: Rng + ?Sized>(rng: &mut R, ctx: &mut SessionCtx<'_>) -> Session {
    let c2 = Ipv4Addr::new(198, 19, 77, rng.gen_range(1..255));
    let period_us: u64 = rng.gen_range(20..60) * 100_000; // 2–6 s
    let mut packets = Vec::new();
    let mut t = 0u64;
    let rtt = ctx.rtt_us;
    for _ in 0..rng.gen_range(5..12) {
        let mut conv = TcpConversation::new(rng, ctx.client, c2, 8443, rtt, t);
        conv.handshake();
        let ping: Vec<u8> = (0..rng.gen_range(40..90)).map(|_| rng.gen()).collect();
        conv.client_send(&ping);
        let pong: Vec<u8> = (0..rng.gen_range(20..60)).map(|_| rng.gen()).collect();
        conv.server_send(&pong);
        conv.close();
        let pkts = conv.finish();
        t = pkts.last().map(|(ts, _)| *ts).unwrap_or(t);
        packets.extend(pkts);
        // Fixed period with ±5% jitter.
        let jitter = (period_us / 20).max(1);
        t += period_us + rng.gen_range(0..jitter * 2) - jitter;
    }
    Session { label: label(ctx, AppClass::Tls, AnomalyClass::Beacon), packets }
}

/// Data exfiltration: one long connection uploading far more than any
/// benign client session.
pub fn exfil<R: Rng + ?Sized>(rng: &mut R, ctx: &mut SessionCtx<'_>) -> Session {
    let sink = Ipv4Addr::new(198, 19, 99, rng.gen_range(1..255));
    let rtt = ctx.rtt_us;
    let mut conv = TcpConversation::new(rng, ctx.client, sink, 443, rtt, 0);
    conv.handshake();
    // Looks TLS-ish at the front, then sustained upload.
    let hello: Vec<u8> = (0..220).map(|_| rng.gen()).collect();
    conv.client_send(&hello);
    let sh: Vec<u8> = (0..1800).map(|_| rng.gen()).collect();
    conv.server_send(&sh);
    let total = rng.gen_range(150_000..400_000);
    let mut sent = 0;
    while sent < total {
        let burst = rng.gen_range(10_000..40_000).min(total - sent);
        let data: Vec<u8> = (0..burst).map(|_| rng.gen()).collect();
        conv.client_send(&data);
        conv.wait(rng.gen_range(10_000..100_000));
        sent += burst;
    }
    conv.close();
    Session { label: label(ctx, AppClass::Tls, AnomalyClass::Exfil), packets: conv.finish() }
}

/// Amplification victim traffic: a flood of large NTP-like UDP responses
/// from many time servers that the victim never asked for.
pub fn amplification<R: Rng + ?Sized>(
    rng: &mut R,
    ctx: &mut SessionCtx<'_>,
    registry: &DomainRegistry,
) -> Session {
    let mut packets = Vec::new();
    let mut t = 0u64;
    let n = rng.gen_range(30..80);
    let time_sites: Vec<_> = registry.sites_in(SiteCategory::Time).collect();
    for _ in 0..n {
        let site = time_sites[rng.gen_range(0..time_sites.len())];
        let host = &site.hosts[rng.gen_range(0..site.hosts.len())];
        let server = ctx.directory.resolve(host).expect("time hosts registered");
        let burst: Vec<u8> = (0..rng.gen_range(440..480)).map(|_| rng.gen()).collect();
        let p = Packet::udp_v4(
            ServerDirectory::server_mac(server),
            ctx.client.mac,
            server,
            ctx.client.ip,
            123,
            rng.gen_range(1024..65535),
            64,
            burst,
        );
        packets.push((t, p));
        t += rng.gen_range(500..5_000);
    }
    Session { label: label(ctx, AppClass::Ntp, AnomalyClass::Amplification), packets }
}

/// Generate one anomaly session of the given class.
pub fn generate<R: Rng + ?Sized>(
    rng: &mut R,
    ctx: &mut SessionCtx<'_>,
    registry: &DomainRegistry,
    class: AnomalyClass,
) -> Session {
    match class {
        AnomalyClass::PortScan => port_scan(rng, ctx),
        AnomalyClass::DnsTunnel => dns_tunnel(rng, ctx),
        AnomalyClass::Beacon => beacon(rng, ctx),
        AnomalyClass::Exfil => exfil(rng, ctx),
        AnomalyClass::Amplification => amplification(rng, ctx, registry),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoints::Host;
    use crate::label::DeviceClass;
    use nfm_net::flow::FlowTable;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(class: AnomalyClass, seed: u64) -> Session {
        let reg = DomainRegistry::generate(5, 2, 1.0);
        let dir = ServerDirectory::build(&reg);
        let mut host = Host::new(1, DeviceClass::Workstation);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ctx = SessionCtx { client: &mut host, directory: &dir, rtt_us: 15_000 };
        generate(&mut rng, &mut ctx, &reg, class)
    }

    #[test]
    fn every_class_generates_and_is_labeled() {
        for (i, class) in AnomalyClass::ALL.iter().enumerate() {
            let s = run(*class, i as u64 + 1);
            assert_eq!(s.label.anomaly, Some(*class));
            assert!(s.label.is_malicious());
            assert!(!s.packets.is_empty());
            // Packets are all emittable/parseable.
            for (_, p) in &s.packets {
                assert!(nfm_net::Packet::parse(&p.emit()).is_ok());
            }
        }
    }

    #[test]
    fn port_scan_touches_many_ports() {
        let s = run(AnomalyClass::PortScan, 10);
        let mut ports: Vec<u16> =
            s.packets.iter().filter_map(|(_, p)| p.transport.dst_port()).collect();
        ports.sort_unstable();
        ports.dedup();
        assert!(ports.len() > 15, "distinct ports {}", ports.len());
    }

    #[test]
    fn dns_tunnel_labels_are_long_and_high_entropy() {
        let s = run(AnomalyClass::DnsTunnel, 11);
        let queries: Vec<Message> = s
            .packets
            .iter()
            .filter_map(|(_, p)| Message::parse(p.transport.payload()).ok())
            .filter(|m| !m.is_response)
            .collect();
        assert!(queries.len() >= 15);
        for q in &queries {
            let first_label = &q.questions[0].name.labels()[0];
            assert!(first_label.len() >= 24, "tunnel label {first_label}");
        }
    }

    #[test]
    fn beacon_intervals_are_regular() {
        let s = run(AnomalyClass::Beacon, 12);
        // Collect SYN times (one per check-in).
        let syn_times: Vec<u64> = s
            .packets
            .iter()
            .filter(|(_, p)| match &p.transport {
                nfm_net::packet::Transport::Tcp { repr, .. } => repr.flags == Flags::SYN,
                _ => false,
            })
            .map(|(ts, _)| *ts)
            .collect();
        assert!(syn_times.len() >= 5);
        let gaps: Vec<i64> = syn_times.windows(2).map(|w| w[1] as i64 - w[0] as i64).collect();
        let mean = gaps.iter().sum::<i64>() / gaps.len() as i64;
        for g in &gaps {
            let dev = (g - mean).abs() as f64 / mean as f64;
            assert!(dev < 0.25, "gap {g} vs mean {mean}");
        }
    }

    #[test]
    fn exfil_is_extremely_upload_heavy() {
        let s = run(AnomalyClass::Exfil, 13);
        let mut table = FlowTable::new();
        for (i, (ts, p)) in s.packets.iter().enumerate() {
            table.push(i, *ts, p);
        }
        let f = &table.flows()[0];
        assert!(f.stats.fwd_bytes > 100_000);
        assert!(f.stats.fwd_bytes > f.stats.bwd_bytes * 20);
    }

    #[test]
    fn amplification_is_unsolicited_inbound() {
        let s = run(AnomalyClass::Amplification, 14);
        // All packets flow server→client with src port 123 and large payloads.
        for (_, p) in &s.packets {
            assert_eq!(p.transport.src_port(), Some(123));
            assert!(p.transport.payload().len() > 400);
        }
    }
}
