//! Ground-truth labels attached to generated traffic. These are the targets
//! of the downstream tasks (application classification, device
//! classification, anomaly detection) in the NetGLUE benchmark.

use std::fmt;

/// Application class of a flow — the NorBERT-style classification target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AppClass {
    /// DNS lookup traffic.
    Dns,
    /// Plain HTTP browsing.
    Web,
    /// TLS-wrapped web traffic.
    Tls,
    /// Mail (SMTP/IMAP).
    Mail,
    /// NTP time sync.
    Ntp,
    /// Video streaming.
    Video,
    /// IoT telemetry/control.
    Iot,
    /// Bulk transfer (backup/sync).
    Bulk,
    /// DHCP configuration.
    Dhcp,
}

impl AppClass {
    /// All classes, stable order (defines classifier label ids).
    pub const ALL: [AppClass; 9] = [
        AppClass::Dns,
        AppClass::Web,
        AppClass::Tls,
        AppClass::Mail,
        AppClass::Ntp,
        AppClass::Video,
        AppClass::Iot,
        AppClass::Bulk,
        AppClass::Dhcp,
    ];

    /// Dense label id.
    pub fn id(&self) -> usize {
        Self::ALL.iter().position(|c| c == self).expect("member of ALL")
    }

    /// Inverse of [`AppClass::id`].
    pub fn from_id(id: usize) -> Option<AppClass> {
        Self::ALL.get(id).copied()
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            AppClass::Dns => "dns",
            AppClass::Web => "web",
            AppClass::Tls => "tls",
            AppClass::Mail => "mail",
            AppClass::Ntp => "ntp",
            AppClass::Video => "video",
            AppClass::Iot => "iot",
            AppClass::Bulk => "bulk",
            AppClass::Dhcp => "dhcp",
        }
    }
}

impl fmt::Display for AppClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Device class of the endpoint that originated a flow (Sivanathan-style
/// IoT device classification ground truth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DeviceClass {
    /// General-purpose workstation/laptop.
    Workstation,
    /// Mobile phone.
    Phone,
    /// IP camera.
    Camera,
    /// Smart thermostat.
    Thermostat,
    /// Smart light bulb.
    SmartBulb,
    /// Voice assistant speaker.
    VoiceAssistant,
    /// Server (responder side).
    Server,
}

impl DeviceClass {
    /// All classes, stable order.
    pub const ALL: [DeviceClass; 7] = [
        DeviceClass::Workstation,
        DeviceClass::Phone,
        DeviceClass::Camera,
        DeviceClass::Thermostat,
        DeviceClass::SmartBulb,
        DeviceClass::VoiceAssistant,
        DeviceClass::Server,
    ];

    /// Dense label id.
    pub fn id(&self) -> usize {
        Self::ALL.iter().position(|c| c == self).expect("member of ALL")
    }

    /// Inverse of [`DeviceClass::id`].
    pub fn from_id(id: usize) -> Option<DeviceClass> {
        Self::ALL.get(id).copied()
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            DeviceClass::Workstation => "workstation",
            DeviceClass::Phone => "phone",
            DeviceClass::Camera => "camera",
            DeviceClass::Thermostat => "thermostat",
            DeviceClass::SmartBulb => "bulb",
            DeviceClass::VoiceAssistant => "assistant",
            DeviceClass::Server => "server",
        }
    }
}

impl fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Anomaly/attack class for injected malicious sessions (§4.3's zero-day
/// detection experiments hold some of these out of training).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AnomalyClass {
    /// Horizontal TCP port scan.
    PortScan,
    /// DNS tunneling (exfiltration over query names).
    DnsTunnel,
    /// Periodic command-and-control beaconing.
    Beacon,
    /// Large outbound data exfiltration.
    Exfil,
    /// Reflection/amplification victim traffic.
    Amplification,
}

impl AnomalyClass {
    /// All classes, stable order.
    pub const ALL: [AnomalyClass; 5] = [
        AnomalyClass::PortScan,
        AnomalyClass::DnsTunnel,
        AnomalyClass::Beacon,
        AnomalyClass::Exfil,
        AnomalyClass::Amplification,
    ];

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            AnomalyClass::PortScan => "portscan",
            AnomalyClass::DnsTunnel => "dnstunnel",
            AnomalyClass::Beacon => "beacon",
            AnomalyClass::Exfil => "exfil",
            AnomalyClass::Amplification => "amplification",
        }
    }
}

impl fmt::Display for AnomalyClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Complete ground-truth label for one flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrafficLabel {
    /// Application class.
    pub app: AppClass,
    /// Originating device class.
    pub device: DeviceClass,
    /// Anomaly class when the flow is malicious.
    pub anomaly: Option<AnomalyClass>,
}

impl TrafficLabel {
    /// A benign flow label.
    pub fn benign(app: AppClass, device: DeviceClass) -> TrafficLabel {
        TrafficLabel { app, device, anomaly: None }
    }

    /// True when the flow is part of an attack.
    pub fn is_malicious(&self) -> bool {
        self.anomaly.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        for c in AppClass::ALL {
            assert_eq!(AppClass::from_id(c.id()), Some(c));
        }
        for c in DeviceClass::ALL {
            assert_eq!(DeviceClass::from_id(c.id()), Some(c));
        }
        assert_eq!(AppClass::from_id(99), None);
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = AppClass::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), AppClass::ALL.len());
    }

    #[test]
    fn malicious_flag() {
        let benign = TrafficLabel::benign(AppClass::Web, DeviceClass::Workstation);
        assert!(!benign.is_malicious());
        let bad = TrafficLabel { anomaly: Some(AnomalyClass::Beacon), ..benign };
        assert!(bad.is_malicious());
    }
}
