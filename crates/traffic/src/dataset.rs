//! Labeled datasets for the downstream tasks: per-flow examples extracted
//! from simulated traces, environment configurations with distribution-shift
//! knobs, and deterministic splits.
//!
//! The NorBERT evaluation condition (paper §3.4) — "fine-tuned on a labeled
//! dataset, evaluated on an *independent* labeled dataset" — is reproduced by
//! two [`Environment`]s that differ in seed, site population, popularity
//! skew, and mix, while keeping the label semantics fixed.

use nfm_net::capture::TracePacket;
use nfm_net::flow::{FlowKey, FlowStats, FlowTable};

use crate::label::{AnomalyClass, TrafficLabel};
use crate::netsim::{simulate, AppMix, LabeledTrace, SimConfig};

/// One labeled example: the packets of a single bidirectional flow.
#[derive(Debug, Clone)]
pub struct LabeledFlow {
    /// Canonical flow key.
    pub key: FlowKey,
    /// The flow's packets, time-ordered (owned copies from the trace).
    pub packets: Vec<TracePacket>,
    /// Aggregate statistics.
    pub stats: FlowStats,
    /// Ground truth.
    pub label: TrafficLabel,
}

/// Extract per-flow labeled examples from a labeled trace. Flows without a
/// label (shouldn't happen for simulator output) are dropped; flows shorter
/// than `min_packets` are dropped as noise.
pub fn extract_flows(lt: &LabeledTrace, min_packets: usize) -> Vec<LabeledFlow> {
    let table = FlowTable::from_trace(lt.trace.packets().iter());
    let mut out = Vec::with_capacity(table.len());
    for flow in table.flows() {
        if flow.packets.len() < min_packets {
            continue;
        }
        let Some(label) = lt.label_of(&flow.key) else { continue };
        let packets = flow.packets.iter().map(|fp| lt.trace.packets()[fp.index].clone()).collect();
        out.push(LabeledFlow {
            key: flow.key.canonical(),
            packets,
            stats: flow.stats.clone(),
            label,
        });
    }
    out
}

/// A named environment: a full simulator configuration. Environments model
/// "places traffic was collected" — the paper's independent datasets.
#[derive(Debug, Clone)]
pub struct Environment {
    /// Display name.
    pub name: &'static str,
    /// The simulator configuration.
    pub config: SimConfig,
}

impl Environment {
    /// Environment A: the "home" network labels are collected from.
    pub fn env_a(n_sessions: usize) -> Environment {
        Environment {
            name: "env-A",
            config: SimConfig {
                seed: 0xA11CE,
                registry_seed: 10,
                n_sessions,
                sessions_per_sec: 5.0,
                zipf_s: 1.1,
                n_general_hosts: 8,
                n_iot_sets: 2,
                ..SimConfig::default()
            },
        }
    }

    /// Environment B: an *independent* deployment — different seed, different
    /// site population, different popularity skew and mix. Label semantics
    /// (what makes a flow DNS/web/video/…) are unchanged; everything
    /// superficial shifts.
    pub fn env_b(n_sessions: usize) -> Environment {
        // Different application proportions: more TLS and video, less web.
        let mix = AppMix { weights: [2.0, 0.8, 4.0, 0.7, 1.4, 1.2, 2.5, 0.6, 0.0] };
        Environment {
            name: "env-B",
            config: SimConfig {
                seed: 0xB0B,
                registry_seed: 77,
                n_sessions,
                sessions_per_sec: 9.0,
                zipf_s: 0.7,
                n_general_hosts: 12,
                n_iot_sets: 3,
                mix,
                ..SimConfig::default()
            },
        }
    }

    /// A pre-training corpus environment: a *mixture* resembling "all the
    /// unlabeled traffic an operator can cheaply collect" — it spans both
    /// deployments' characteristics (abundant unlabeled data, paper §3.2).
    pub fn pretrain_mix(n_sessions: usize) -> Vec<Environment> {
        vec![
            Environment {
                name: "pretrain-a-like",
                config: SimConfig {
                    seed: 0xFEED_0001,
                    registry_seed: 10,
                    n_sessions: n_sessions / 2,
                    zipf_s: 1.1,
                    ..Environment::env_a(0).config
                },
            },
            Environment {
                name: "pretrain-b-like",
                config: SimConfig {
                    seed: 0xFEED_0002,
                    registry_seed: 77,
                    n_sessions: n_sessions - n_sessions / 2,
                    zipf_s: 0.7,
                    ..Environment::env_b(0).config
                },
            },
        ]
    }

    /// Simulate this environment.
    pub fn simulate(&self) -> LabeledTrace {
        simulate(&self.config)
    }
}

/// Configuration for anomaly-detection datasets: which classes are "known"
/// (appear in training) and which are zero-days (eval only), per §4.3.
#[derive(Debug, Clone)]
pub struct OodSplit {
    /// Classes present in the training trace.
    pub known: Vec<AnomalyClass>,
    /// Classes held out entirely until evaluation.
    pub zero_day: Vec<AnomalyClass>,
}

impl Default for OodSplit {
    fn default() -> Self {
        OodSplit {
            known: vec![AnomalyClass::PortScan, AnomalyClass::Amplification],
            zero_day: vec![AnomalyClass::DnsTunnel, AnomalyClass::Beacon, AnomalyClass::Exfil],
        }
    }
}

impl OodSplit {
    /// The training environment: benign traffic plus the known attacks.
    pub fn train_env(&self, n_sessions: usize) -> Environment {
        Environment {
            name: "ood-train",
            config: SimConfig {
                seed: 0x0D_0001,
                anomaly_fraction: 0.15,
                anomaly_classes: self.known.clone(),
                n_sessions,
                ..Environment::env_a(0).config
            },
        }
    }

    /// The evaluation environment: benign traffic plus zero-day attacks.
    pub fn eval_env(&self, n_sessions: usize) -> Environment {
        Environment {
            name: "ood-eval",
            config: SimConfig {
                seed: 0x0D_0002,
                anomaly_fraction: 0.2,
                anomaly_classes: self.zero_day.clone(),
                n_sessions,
                ..Environment::env_a(0).config
            },
        }
    }
}

/// Deterministically split examples into train/validation by hashing the
/// flow key (stable across runs, independent of input order).
pub fn split_train_val(
    flows: Vec<LabeledFlow>,
    val_fraction: f64,
) -> (Vec<LabeledFlow>, Vec<LabeledFlow>) {
    let mut train = Vec::new();
    let mut val = Vec::new();
    let threshold = (val_fraction.clamp(0.0, 1.0) * 1000.0) as u64;
    for flow in flows {
        // FNV-style hash of the canonical key.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        match flow.key.src_ip {
            std::net::IpAddr::V4(a) => mix(u32::from(a) as u64),
            std::net::IpAddr::V6(a) => mix(u128::from(a) as u64),
        }
        match flow.key.dst_ip {
            std::net::IpAddr::V4(a) => mix(u32::from(a) as u64),
            std::net::IpAddr::V6(a) => mix(u128::from(a) as u64),
        }
        mix(flow.key.src_port as u64);
        mix(flow.key.dst_port as u64);
        mix(flow.key.protocol as u64);
        if h % 1000 < threshold {
            val.push(flow);
        } else {
            train.push(flow);
        }
    }
    (train, val)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::AppClass;

    #[test]
    fn extract_flows_yields_labeled_examples() {
        let env = Environment::env_a(40);
        let lt = env.simulate();
        let flows = extract_flows(&lt, 1);
        assert!(!flows.is_empty());
        for f in &flows {
            assert!(!f.packets.is_empty());
            assert_eq!(f.key, f.key.canonical());
        }
        // Multiple app classes present.
        let mut apps: Vec<AppClass> = flows.iter().map(|f| f.label.app).collect();
        apps.sort_unstable();
        apps.dedup();
        assert!(apps.len() >= 4, "{apps:?}");
    }

    #[test]
    fn min_packets_filters() {
        let env = Environment::env_a(30);
        let lt = env.simulate();
        let all = extract_flows(&lt, 1);
        let long = extract_flows(&lt, 5);
        assert!(long.len() < all.len());
        assert!(long.iter().all(|f| f.packets.len() >= 5));
    }

    #[test]
    fn environments_differ_but_share_semantics() {
        let a = Environment::env_a(30).simulate();
        let b = Environment::env_b(30).simulate();
        // Site populations differ.
        assert_ne!(
            a.registry.sites()[0].domain.to_string(),
            b.registry.sites()[0].domain.to_string()
        );
        // Both produce app-labeled flows.
        assert!(extract_flows(&a, 1).iter().any(|f| f.label.app == AppClass::Tls));
        assert!(extract_flows(&b, 1).iter().any(|f| f.label.app == AppClass::Tls));
    }

    #[test]
    fn split_is_deterministic_and_disjoint() {
        let env = Environment::env_a(40);
        let lt = env.simulate();
        let flows = extract_flows(&lt, 1);
        let n = flows.len();
        let (t1, v1) = split_train_val(flows.clone(), 0.25);
        let (t2, v2) = split_train_val(flows, 0.25);
        assert_eq!(t1.len(), t2.len());
        assert_eq!(v1.len(), v2.len());
        assert_eq!(t1.len() + v1.len(), n);
        assert!(!v1.is_empty() && !t1.is_empty());
        // Disjoint keys.
        for v in &v1 {
            assert!(t1.iter().all(|t| t.key != v.key));
        }
    }

    #[test]
    fn ood_split_envs_use_right_classes() {
        let split = OodSplit::default();
        let train = split.train_env(40).simulate();
        for l in train.labels.values() {
            if let Some(a) = l.anomaly {
                assert!(split.known.contains(&a));
            }
        }
        let eval = split.eval_env(40).simulate();
        let mut saw_zero_day = false;
        for l in eval.labels.values() {
            if let Some(a) = l.anomaly {
                assert!(split.zero_day.contains(&a));
                saw_zero_day = true;
            }
        }
        assert!(saw_zero_day);
    }
}
