//! Checkpoint-based warm restart under corruption: bit flips and
//! truncation of a saved classifier checkpoint must surface typed errors
//! from the retrying load path, and the cluster supervisor must degrade —
//! never panic — when its restart artifact is unusable.

use std::path::PathBuf;

use nfm_core::baselines::MajorityBaseline;
use nfm_core::cluster::{ClusterConfig, ClusterSupervisor, ReplicaHealth};
use nfm_core::pipeline::{
    FineTuneConfig, FmClassifier, FoundationModel, PipelineConfig, TextExample,
};
use nfm_core::serve::{load_classifier_with_retry, Fallback, Responder, RetryPolicy, ServeError};
use nfm_model::pretrain::{PretrainConfig, TaskMix};
use nfm_model::tokenize::field::FieldTokenizer;
use nfm_net::capture::Trace;
use nfm_traffic::faults::{ReplicaFault, ReplicaFaultKind};
use nfm_traffic::netsim::{simulate, SimConfig};

fn tiny_classifier() -> (FmClassifier, Trace) {
    let lt = simulate(&SimConfig {
        n_sessions: 30,
        n_general_hosts: 3,
        n_iot_sets: 1,
        ..SimConfig::default()
    });
    let tok = FieldTokenizer::new();
    let cfg = PipelineConfig {
        d_model: 16,
        n_heads: 2,
        n_layers: 1,
        d_ff: 32,
        max_len: 48,
        pretrain: PretrainConfig {
            epochs: 1,
            tasks: TaskMix::mlm_only(),
            ..PretrainConfig::default()
        },
        ..PipelineConfig::default()
    };
    let (fm, _) =
        FoundationModel::pretrain_on(&[&lt.trace], &tok, &cfg).expect("pretraining failed");
    let train: Vec<TextExample> = (0..10)
        .map(|i| TextExample {
            tokens: vec![if i % 2 == 0 { "PORT_53" } else { "PORT_443" }.to_string()],
            label: i % 2,
        })
        .collect();
    let clf = FmClassifier::fine_tune(
        &fm,
        &train,
        2,
        &FineTuneConfig { epochs: 2, ..FineTuneConfig::default() },
    )
    .expect("fine-tuning failed");
    (clf, lt.trace)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nfm_warm_restart_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn bit_flipped_checkpoint_is_a_typed_error() {
    let (clf, _) = tiny_classifier();
    let dir = temp_dir("flip");
    let path = dir.join("clf.nfmc");
    clf.save(&path).expect("save");
    let clean = std::fs::read(&path).expect("read");
    let policy = RetryPolicy { max_retries: 2, ..RetryPolicy::default() };
    // Flip one bit at several positions spread across the record: header,
    // early payload, middle, and tail must all be caught (magic/kind checks
    // or the CRC) and come back as a typed error, never a panic.
    for frac in [0, 1, 2, 3] {
        let mut bytes = clean.clone();
        let at = (bytes.len() - 1) * frac / 3;
        bytes[at] ^= 0x10;
        std::fs::write(&path, &bytes).expect("write");
        let err = load_classifier_with_retry(&path, &policy)
            .err()
            .unwrap_or_else(|| panic!("bit flip at byte {at} must fail the load"));
        let ServeError::ModelLoad { attempts, source } = &err;
        assert_eq!(*attempts, 3, "initial try plus two retries");
        assert!(!source.to_string().is_empty());
    }
    // The pristine bytes still load (the flips really were the cause).
    std::fs::write(&path, &clean).expect("write");
    assert!(load_classifier_with_retry(&path, &policy).is_ok());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_checkpoint_is_a_typed_error() {
    let (clf, _) = tiny_classifier();
    let dir = temp_dir("trunc");
    let path = dir.join("clf.nfmc");
    clf.save(&path).expect("save");
    let clean = std::fs::read(&path).expect("read");
    let policy = RetryPolicy { max_retries: 0, ..RetryPolicy::default() };
    // Truncations at every scale: empty file, inside the header, inside
    // the payload, one byte short.
    for keep in [0, 3, 16, clean.len() / 2, clean.len() - 1] {
        std::fs::write(&path, &clean[..keep]).expect("write");
        let err = load_classifier_with_retry(&path, &policy)
            .err()
            .unwrap_or_else(|| panic!("truncation to {keep} bytes must fail the load"));
        let ServeError::ModelLoad { attempts, .. } = &err;
        assert_eq!(*attempts, 1);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn supervisor_without_usable_checkpoint_or_peer_degrades_gracefully() {
    let (clf, trace) = tiny_classifier();
    let dir = temp_dir("nopeer");
    let majority = || Fallback::Majority(MajorityBaseline::fit(&[], 2));
    // Single replica: after its checkpoint is corrupted and it crashes,
    // there is no peer to clone from — the supervisor must keep answering
    // from its own fallback, with the replica staying down.
    let mut cluster =
        ClusterSupervisor::new(vec![(clf, majority())], majority(), &dir, ClusterConfig::default())
            .expect("cluster");
    let path = cluster.checkpoint_path(0).to_path_buf();
    let mut bytes = std::fs::read(&path).expect("read checkpoint");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).expect("write checkpoint");
    let faults = [ReplicaFault { replica: 0, at_burst: 1, kind: ReplicaFaultKind::Crash }];
    let schedule = vec![1usize; 64];
    let responses = cluster.serve_trace(&trace, &FieldTokenizer::new(), &schedule, &faults);
    let stats = cluster.stats();
    assert!(!responses.is_empty());
    assert!(stats.restarts_attempted >= 1, "restarts were tried");
    assert!(stats.restart_load_errors >= 1, "the corrupted checkpoint failed its load");
    assert_eq!(stats.restarts_ok, 0, "nothing could actually restart");
    assert_eq!(stats.peer_clones, 0, "no peer exists to clone");
    assert_eq!(cluster.replica_health(0), ReplicaHealth::Down);
    // Post-crash arrivals are all answered by the supervisor fallback.
    assert!(stats.answered_supervisor > 0);
    assert_eq!(stats.answered(), stats.arrived - stats.shed);
    assert!(responses.iter().any(|r| r.responder == Responder::Fallback));
    std::fs::remove_dir_all(&dir).ok();
}
