//! Property-based invariants for metrics, reporting, and the serving
//! layer: AUROC rank statistics, confusion-matrix identities, table
//! rendering, and the circuit breaker's admit/deny state machine.

use nfm_core::metrics::{auroc, mean_std, Confusion};
use nfm_core::report::Table;
use nfm_core::serve::{
    retry_with_backoff, BreakerConfig, BreakerState, CircuitBreaker, RetryPolicy,
};
use proptest::prelude::*;

/// One externally visible circuit-breaker operation.
#[derive(Debug, Clone, Copy)]
enum BreakerOp {
    Acquire,
    Success,
    Failure,
}

fn arb_breaker_op() -> impl Strategy<Value = BreakerOp> {
    (0u8..3).prop_map(|v| match v {
        0 => BreakerOp::Acquire,
        1 => BreakerOp::Success,
        _ => BreakerOp::Failure,
    })
}

fn arb_breaker_config() -> impl Strategy<Value = BreakerConfig> {
    (1usize..6, 0usize..10, 1usize..4).prop_map(|(failure_threshold, cooldown, probes_to_close)| {
        BreakerConfig { failure_threshold, cooldown, probes_to_close }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn auroc_is_in_unit_interval(
        pos in proptest::collection::vec(-100.0f64..100.0, 1..40),
        neg in proptest::collection::vec(-100.0f64..100.0, 1..40),
    ) {
        let a = auroc(&pos, &neg);
        prop_assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn auroc_complementary(
        pos in proptest::collection::vec(-10.0f64..10.0, 1..20),
        neg in proptest::collection::vec(-10.0f64..10.0, 1..20),
    ) {
        // Swapping the classes reflects the score around 0.5.
        let a = auroc(&pos, &neg);
        let b = auroc(&neg, &pos);
        prop_assert!((a + b - 1.0).abs() < 1e-9, "{a} + {b}");
    }

    #[test]
    fn auroc_invariant_under_monotone_transform(
        pos in proptest::collection::vec(0.001f64..10.0, 1..20),
        neg in proptest::collection::vec(0.001f64..10.0, 1..20),
    ) {
        // AUROC is a rank statistic: x → ln(x) must not change it.
        let a = auroc(&pos, &neg);
        let lp: Vec<f64> = pos.iter().map(|v| v.ln()).collect();
        let ln: Vec<f64> = neg.iter().map(|v| v.ln()).collect();
        let b = auroc(&lp, &ln);
        prop_assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn perfectly_separated_scores_give_extremes(
        pos in proptest::collection::vec(10.0f64..20.0, 1..10),
        neg in proptest::collection::vec(-20.0f64..-10.0, 1..10),
    ) {
        prop_assert_eq!(auroc(&pos, &neg), 1.0);
        prop_assert_eq!(auroc(&neg, &pos), 0.0);
    }

    #[test]
    fn confusion_identities(
        pairs in proptest::collection::vec((0usize..4, 0usize..4), 1..60),
    ) {
        let truths: Vec<usize> = pairs.iter().map(|p| p.0).collect();
        let preds: Vec<usize> = pairs.iter().map(|p| p.1).collect();
        let c = Confusion::from_pairs(4, &truths, &preds);
        prop_assert_eq!(c.total(), pairs.len());
        prop_assert!((0.0..=1.0).contains(&c.accuracy()));
        prop_assert!((0.0..=1.0).contains(&c.macro_f1()));
        // Sum over the matrix equals total.
        let sum: usize = c.counts().iter().map(|r| r.iter().sum::<usize>()).sum();
        prop_assert_eq!(sum, pairs.len());
        // Per-class precision/recall bounded.
        for k in 0..4 {
            if let Some(p) = c.precision(k) {
                prop_assert!((0.0..=1.0).contains(&p));
            }
            if let Some(r) = c.recall(k) {
                prop_assert!((0.0..=1.0).contains(&r));
            }
        }
    }

    #[test]
    fn perfect_predictions_maximize_all_metrics(
        truths in proptest::collection::vec(0usize..5, 1..40),
    ) {
        let c = Confusion::from_pairs(5, &truths, &truths);
        prop_assert_eq!(c.accuracy(), 1.0);
        prop_assert_eq!(c.macro_f1(), 1.0);
    }

    #[test]
    fn mean_std_sane(values in proptest::collection::vec(-1e3f64..1e3, 0..50)) {
        let (mean, std) = mean_std(&values);
        prop_assert!(std >= 0.0);
        if !values.is_empty() {
            let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
        }
    }

    #[test]
    fn table_render_and_csv_have_all_rows(
        rows in proptest::collection::vec(("[a-z]{1,8}", "[0-9]{1,4}"), 0..20),
    ) {
        let mut t = Table::new(&["name", "value"]);
        for (a, b) in &rows {
            t.row(&[a.clone(), b.clone()]);
        }
        let rendered = t.render();
        prop_assert_eq!(rendered.lines().count(), 2 + rows.len());
        let csv = t.to_csv();
        prop_assert_eq!(csv.lines().count(), 1 + rows.len());
    }

    #[test]
    fn breaker_never_panics_and_never_admits_while_open(
        config in arb_breaker_config(),
        ops in proptest::collection::vec(arb_breaker_op(), 0..200),
    ) {
        let mut b = CircuitBreaker::new(config);
        let mut trips_seen = 0usize;
        for op in ops {
            match op {
                BreakerOp::Acquire => {
                    let admitted = b.try_acquire();
                    // The admit decision must agree with the post-call
                    // state: admitted ⟹ not open, denied ⟹ still open.
                    if admitted {
                        prop_assert_ne!(b.state(), BreakerState::Open);
                    } else {
                        prop_assert_eq!(b.state(), BreakerState::Open);
                    }
                }
                BreakerOp::Success => b.on_success(),
                BreakerOp::Failure => b.on_failure(),
            }
            // Trip count is monotone, and recoveries never outnumber trips.
            prop_assert!(b.trips >= trips_seen);
            trips_seen = b.trips;
            prop_assert!(b.recoveries <= b.trips);
        }
    }

    #[test]
    fn breaker_open_denies_until_cooldown_elapses(config in arb_breaker_config()) {
        let mut b = CircuitBreaker::new(config);
        for _ in 0..config.failure_threshold {
            b.on_failure();
        }
        prop_assert_eq!(b.state(), BreakerState::Open);
        // Exactly cooldown−1 denials, then the next acquire half-opens.
        let mut denials = 0usize;
        loop {
            if b.try_acquire() {
                break;
            }
            denials += 1;
            prop_assert!(denials <= config.cooldown.max(1), "cooldown must terminate");
        }
        prop_assert_eq!(b.state(), BreakerState::HalfOpen);
        prop_assert_eq!(denials, config.cooldown.max(1) - 1);
        // A failed probe re-opens; sustained success closes.
        b.on_failure();
        prop_assert_eq!(b.state(), BreakerState::Open);
        while !b.try_acquire() {}
        for _ in 0..config.probes_to_close {
            b.on_success();
        }
        prop_assert_eq!(b.state(), BreakerState::Closed);
        prop_assert_eq!(b.trips, 2);
        prop_assert_eq!(b.recoveries, 1);
    }

    #[test]
    fn retry_accounting_is_exact(
        max_retries in 0usize..6,
        backoff_base in 0u64..1_000,
        backoff_factor in 0u64..5,
        fail_first in 0usize..10,
    ) {
        let policy = RetryPolicy { max_retries, backoff_base, backoff_factor };
        let (result, log) = retry_with_backoff(&policy, |attempt| {
            if attempt < fail_first { Err(attempt) } else { Ok(attempt) }
        });
        prop_assert!(log.attempts >= 1 && log.attempts <= max_retries + 1);
        match result {
            Ok(a) => {
                prop_assert_eq!(a, fail_first);
                prop_assert_eq!(log.attempts, fail_first + 1);
            }
            Err(_) => prop_assert_eq!(log.attempts, max_retries + 1),
        }
        // Backoff total matches the policy's closed form.
        let expected: u64 = (0..log.attempts.saturating_sub(1))
            .map(|r| policy.backoff_cost(r))
            .fold(0u64, u64::saturating_add);
        prop_assert_eq!(log.backoff_cost, expected);
    }
}
