//! Property-based invariants for metrics, reporting, and the serving
//! layer: AUROC rank statistics, confusion-matrix identities, table
//! rendering, the circuit breaker's admit/deny state machine, and the
//! micro-batched serving path's bitwise equivalence to one-at-a-time
//! serving under arbitrary fault schedules.

use std::sync::OnceLock;

use nfm_core::baselines::MajorityBaseline;
use nfm_core::metrics::{auroc, mean_std, Confusion};
use nfm_core::ood::PageHinkley;
use nfm_core::pipeline::{
    FineTuneConfig, FmBackbone, FmClassifier, FoundationModel, TaskHead, TextExample,
};
use nfm_core::report::Table;
use nfm_core::serve::{
    retry_with_backoff, BreakerConfig, BreakerState, CircuitBreaker, Fallback, MultiTaskServer,
    QuarantineBuffer, Responder, Response, RetryPolicy, ServeConfig, ServeEngine, ServeRequest,
    TaskSet,
};
use nfm_model::nn::transformer::{Encoder, EncoderConfig};
use nfm_model::vocab::Vocab;
use nfm_tensor::layers::Module;
use nfm_traffic::faults::{DriftFaultConfig, FaultError};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One externally visible circuit-breaker operation.
#[derive(Debug, Clone, Copy)]
enum BreakerOp {
    Acquire,
    Success,
    Failure,
}

fn arb_breaker_op() -> impl Strategy<Value = BreakerOp> {
    (0u8..3).prop_map(|v| match v {
        0 => BreakerOp::Acquire,
        1 => BreakerOp::Success,
        _ => BreakerOp::Failure,
    })
}

fn arb_breaker_config() -> impl Strategy<Value = BreakerConfig> {
    (1usize..6, 0usize..10, 1usize..4).prop_map(|(failure_threshold, cooldown, probes_to_close)| {
        BreakerConfig { failure_threshold, cooldown, probes_to_close }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn auroc_is_in_unit_interval(
        pos in proptest::collection::vec(-100.0f64..100.0, 1..40),
        neg in proptest::collection::vec(-100.0f64..100.0, 1..40),
    ) {
        let a = auroc(&pos, &neg);
        prop_assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn auroc_complementary(
        pos in proptest::collection::vec(-10.0f64..10.0, 1..20),
        neg in proptest::collection::vec(-10.0f64..10.0, 1..20),
    ) {
        // Swapping the classes reflects the score around 0.5.
        let a = auroc(&pos, &neg);
        let b = auroc(&neg, &pos);
        prop_assert!((a + b - 1.0).abs() < 1e-9, "{a} + {b}");
    }

    #[test]
    fn auroc_invariant_under_monotone_transform(
        pos in proptest::collection::vec(0.001f64..10.0, 1..20),
        neg in proptest::collection::vec(0.001f64..10.0, 1..20),
    ) {
        // AUROC is a rank statistic: x → ln(x) must not change it.
        let a = auroc(&pos, &neg);
        let lp: Vec<f64> = pos.iter().map(|v| v.ln()).collect();
        let ln: Vec<f64> = neg.iter().map(|v| v.ln()).collect();
        let b = auroc(&lp, &ln);
        prop_assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn perfectly_separated_scores_give_extremes(
        pos in proptest::collection::vec(10.0f64..20.0, 1..10),
        neg in proptest::collection::vec(-20.0f64..-10.0, 1..10),
    ) {
        prop_assert_eq!(auroc(&pos, &neg), 1.0);
        prop_assert_eq!(auroc(&neg, &pos), 0.0);
    }

    #[test]
    fn confusion_identities(
        pairs in proptest::collection::vec((0usize..4, 0usize..4), 1..60),
    ) {
        let truths: Vec<usize> = pairs.iter().map(|p| p.0).collect();
        let preds: Vec<usize> = pairs.iter().map(|p| p.1).collect();
        let c = Confusion::from_pairs(4, &truths, &preds);
        prop_assert_eq!(c.total(), pairs.len());
        prop_assert!((0.0..=1.0).contains(&c.accuracy()));
        prop_assert!((0.0..=1.0).contains(&c.macro_f1()));
        // Sum over the matrix equals total.
        let sum: usize = c.counts().iter().map(|r| r.iter().sum::<usize>()).sum();
        prop_assert_eq!(sum, pairs.len());
        // Per-class precision/recall bounded.
        for k in 0..4 {
            if let Some(p) = c.precision(k) {
                prop_assert!((0.0..=1.0).contains(&p));
            }
            if let Some(r) = c.recall(k) {
                prop_assert!((0.0..=1.0).contains(&r));
            }
        }
    }

    #[test]
    fn perfect_predictions_maximize_all_metrics(
        truths in proptest::collection::vec(0usize..5, 1..40),
    ) {
        let c = Confusion::from_pairs(5, &truths, &truths);
        prop_assert_eq!(c.accuracy(), 1.0);
        prop_assert_eq!(c.macro_f1(), 1.0);
    }

    #[test]
    fn mean_std_sane(values in proptest::collection::vec(-1e3f64..1e3, 0..50)) {
        let (mean, std) = mean_std(&values);
        prop_assert!(std >= 0.0);
        if !values.is_empty() {
            let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
        }
    }

    #[test]
    fn table_render_and_csv_have_all_rows(
        rows in proptest::collection::vec(("[a-z]{1,8}", "[0-9]{1,4}"), 0..20),
    ) {
        let mut t = Table::new(&["name", "value"]);
        for (a, b) in &rows {
            t.row(&[a.clone(), b.clone()]);
        }
        let rendered = t.render();
        prop_assert_eq!(rendered.lines().count(), 2 + rows.len());
        let csv = t.to_csv();
        prop_assert_eq!(csv.lines().count(), 1 + rows.len());
    }

    #[test]
    fn breaker_never_panics_and_never_admits_while_open(
        config in arb_breaker_config(),
        ops in proptest::collection::vec(arb_breaker_op(), 0..200),
    ) {
        let mut b = CircuitBreaker::new(config);
        let mut trips_seen = 0usize;
        for op in ops {
            match op {
                BreakerOp::Acquire => {
                    let admitted = b.try_acquire();
                    // The admit decision must agree with the post-call
                    // state: admitted ⟹ not open, denied ⟹ still open.
                    if admitted {
                        prop_assert_ne!(b.state(), BreakerState::Open);
                    } else {
                        prop_assert_eq!(b.state(), BreakerState::Open);
                    }
                }
                BreakerOp::Success => b.on_success(),
                BreakerOp::Failure => b.on_failure(),
            }
            // Trip count is monotone, and recoveries never outnumber trips.
            prop_assert!(b.trips >= trips_seen);
            trips_seen = b.trips;
            prop_assert!(b.recoveries <= b.trips);
        }
    }

    #[test]
    fn breaker_open_denies_until_cooldown_elapses(config in arb_breaker_config()) {
        let mut b = CircuitBreaker::new(config);
        for _ in 0..config.failure_threshold {
            b.on_failure();
        }
        prop_assert_eq!(b.state(), BreakerState::Open);
        // Exactly cooldown−1 denials, then the next acquire half-opens.
        let mut denials = 0usize;
        loop {
            if b.try_acquire() {
                break;
            }
            denials += 1;
            prop_assert!(denials <= config.cooldown.max(1), "cooldown must terminate");
        }
        prop_assert_eq!(b.state(), BreakerState::HalfOpen);
        prop_assert_eq!(denials, config.cooldown.max(1) - 1);
        // A failed probe re-opens; sustained success closes.
        b.on_failure();
        prop_assert_eq!(b.state(), BreakerState::Open);
        while !b.try_acquire() {}
        for _ in 0..config.probes_to_close {
            b.on_success();
        }
        prop_assert_eq!(b.state(), BreakerState::Closed);
        prop_assert_eq!(b.trips, 2);
        prop_assert_eq!(b.recoveries, 1);
    }

    #[test]
    fn retry_accounting_is_exact(
        max_retries in 0usize..6,
        backoff_base in 0u64..1_000,
        backoff_factor in 0u64..5,
        fail_first in 0usize..10,
    ) {
        let policy = RetryPolicy { max_retries, backoff_base, backoff_factor };
        let (result, log) = retry_with_backoff(&policy, |attempt| {
            if attempt < fail_first { Err(attempt) } else { Ok(attempt) }
        });
        prop_assert!(log.attempts >= 1 && log.attempts <= max_retries + 1);
        match result {
            Ok(a) => {
                prop_assert_eq!(a, fail_first);
                prop_assert_eq!(log.attempts, fail_first + 1);
            }
            Err(_) => prop_assert_eq!(log.attempts, max_retries + 1),
        }
        // Backoff total matches the policy's closed form.
        let expected: u64 = (0..log.attempts.saturating_sub(1))
            .map(|r| policy.backoff_cost(r))
            .fold(0u64, u64::saturating_add);
        prop_assert_eq!(log.backoff_cost, expected);
    }

    #[test]
    fn quarantine_bounded_and_seed_deterministic(
        capacity in 0usize..12,
        seed in 0u64..1_000,
        labels in proptest::collection::vec(0usize..6, 0..80),
    ) {
        let mut a = QuarantineBuffer::new(capacity, seed);
        let mut b = QuarantineBuffer::new(capacity, seed);
        for (i, &label) in labels.iter().enumerate() {
            let ex = TextExample { tokens: vec![format!("TOK_{i}")], label };
            a.offer(ex.clone());
            b.offer(ex);
            // Capacity is a hard bound at every step, and below capacity
            // nothing is ever evicted.
            prop_assert!(a.len() <= capacity);
            prop_assert_eq!(a.len(), capacity.min(i + 1));
        }
        // Same seed, same offer stream → identical retained set.
        prop_assert_eq!(a.items(), b.items());
        prop_assert_eq!(a.offered(), labels.len() as u64);
        prop_assert_eq!(a.evicted(), labels.len() as u64 - a.len() as u64);
        // Draining empties the buffer and restarts the reservoir epoch.
        let drained = a.drain();
        prop_assert_eq!(drained.len(), capacity.min(labels.len()));
        prop_assert!(a.is_empty());
        prop_assert_eq!(a.offered(), 0);
    }

    #[test]
    fn page_hinkley_never_trips_on_iid_stream(
        base in 200i64..1_500,
        warmup in 1u64..32,
        lambda in 500i64..10_000,
        noise in proptest::collection::vec(-200i64..=200, 0..400),
    ) {
        // With delta at least the stream's worst-case deviation from the
        // running mean (noise ±200 around a fixed base, so |x − mean| is
        // always < 500 once the integer mean is seeded), every cumulative
        // increment is negative: an i.i.d. stream can never trip the test,
        // at any lambda — the false-positive bound drift detection rests on.
        let mut ph = PageHinkley::new(500, lambda, warmup);
        for &n in &noise {
            prop_assert!(!ph.update(base + n));
            prop_assert_eq!(ph.level_milli(), 0);
        }
        prop_assert!(!ph.tripped());
    }

    #[test]
    fn drift_fault_config_validate_accepts_exactly_its_domain(
        mix_shift in prop_oneof![
            4 => -2.0f64..2.0,
            1 => Just(f64::NAN),
            1 => Just(f64::INFINITY),
            1 => Just(f64::NEG_INFINITY),
        ],
        label_flip_chance in prop_oneof![
            4 => -2.0f64..2.0,
            1 => Just(f64::NAN),
            1 => Just(f64::INFINITY),
            1 => Just(f64::NEG_INFINITY),
        ],
        onset_burst in 0usize..100,
        seed in 0u64..1_000,
    ) {
        let cfg = DriftFaultConfig { onset_burst, mix_shift, label_flip_chance, seed };
        let in_domain =
            |v: f64| v.is_finite() && (0.0..=1.0).contains(&v);
        match cfg.validate() {
            Ok(()) => {
                prop_assert!(in_domain(mix_shift) && in_domain(label_flip_chance));
            }
            Err(FaultError::OutOfRange { fields }) => {
                // Exactly the offending fields, in declaration order.
                let mut expected = Vec::new();
                if !in_domain(mix_shift) {
                    expected.push("mix_shift");
                }
                if !in_domain(label_flip_chance) {
                    expected.push("label_flip_chance");
                }
                let got: Vec<&str> = fields.iter().map(|(name, _)| *name).collect();
                prop_assert_eq!(got, expected);
            }
        }
    }
}

/// Tokens the serve fixture's vocabulary is built from.
const FIXTURE_TOKENS: [&str; 7] =
    ["PORT_53", "PORT_443", "IP4", "PROTO_UDP", "PROTO_TCP", "LEN_64", "TTL_64"];

/// A tiny fine-tuned classifier plus a pool of serve requests with unique
/// flow ids. Built once: the encoder is randomly initialized directly (no
/// pretraining — batching identity does not care how good the weights are)
/// and fine-tuned for one epoch so the head is non-degenerate.
fn serve_fixture() -> &'static (FmClassifier, Vec<ServeRequest>) {
    static FIXTURE: OnceLock<(FmClassifier, Vec<ServeRequest>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let seqs: Vec<Vec<String>> = vec![FIXTURE_TOKENS.iter().map(|t| t.to_string()).collect()];
        let vocab = Vocab::from_sequences(&seqs, 1);
        let config = EncoderConfig {
            vocab: vocab.len(),
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            d_ff: 32,
            max_len: 32,
        };
        let mut rng = StdRng::seed_from_u64(0xBA7C);
        let fm = FoundationModel { encoder: Encoder::new(&mut rng, config), vocab, max_len: 32 };
        let train: Vec<TextExample> = (0..8)
            .map(|i| TextExample {
                tokens: vec![if i % 2 == 0 { "PORT_53" } else { "PORT_443" }.to_string()],
                label: i % 2,
            })
            .collect();
        let clf = FmClassifier::fine_tune(
            &fm,
            &train,
            2,
            &FineTuneConfig { epochs: 1, ..FineTuneConfig::default() },
        )
        .expect("fine-tuning failed");
        // Request pool: varied lengths (1..=40 tokens, some past max_len so
        // clamping is exercised), unique flow ids for response matching.
        let pool: Vec<ServeRequest> = (0..24)
            .map(|i| {
                let len = 1 + (i * 7) % 40;
                let tokens: Vec<String> = (0..len)
                    .map(|j| FIXTURE_TOKENS[(i + j) % FIXTURE_TOKENS.len()].to_string())
                    .collect();
                ServeRequest { flow: i, tokens, tasks: TaskSet::ALL }
            })
            .collect();
        (clf, pool)
    })
}

/// One step of a serve-engine fault schedule.
#[derive(Debug, Clone)]
enum ServeRound {
    /// NaN-poison every encoder weight (model failures, breaker trips).
    Poison,
    /// Restore the original weights (half-open probes recover).
    Heal,
    /// Submit the given pool indices, then drain the queue.
    Traffic(Vec<usize>),
}

fn arb_serve_round(pool_len: usize) -> impl Strategy<Value = ServeRound> {
    prop_oneof![
        1 => Just(ServeRound::Poison),
        1 => Just(ServeRound::Heal),
        4 => proptest::collection::vec(0..pool_len, 1..12).prop_map(ServeRound::Traffic),
    ]
}

fn arb_serve_config() -> impl Strategy<Value = ServeConfig> {
    (
        (2usize..=16, 0usize..16, prop_oneof![Just(u64::MAX), 0u64..400_000]),
        (1usize..5, 1usize..6, 1usize..3),
        (0usize..3, prop_oneof![Just(u64::MAX), Just(2_000_000u64), 10_000u64..300_000]),
    )
        .prop_map(|((cap, mark, bcb), (thresh, cool, probes), (retries, deadline))| {
            ServeConfig {
                queue_capacity: cap,
                shed_watermark: mark,
                deadline_budget: deadline,
                batch_cost_budget: bcb,
                breaker: BreakerConfig {
                    failure_threshold: thresh,
                    cooldown: cool,
                    probes_to_close: probes,
                },
                retry: RetryPolicy { max_retries: retries, ..RetryPolicy::default() },
                ..ServeConfig::default()
            }
        })
}

/// Apply one fault-schedule round to an engine; traffic rounds return the
/// drained responses.
fn apply_round(
    engine: &mut ServeEngine,
    round: &ServeRound,
    pool: &[ServeRequest],
    snapshot: &[Vec<f32>],
) -> Vec<Response> {
    match round {
        ServeRound::Poison => {
            engine.model_mut().encoder.visit_params(&mut |p, _| p.fill(f32::NAN));
            Vec::new()
        }
        ServeRound::Heal => {
            let mut slot = 0usize;
            engine.model_mut().encoder.visit_params(&mut |p, _| {
                p.copy_from_slice(&snapshot[slot]);
                slot += 1;
            });
            Vec::new()
        }
        ServeRound::Traffic(idxs) => {
            for &i in idxs {
                engine.submit(pool[i].clone());
            }
            engine.drain_queue()
        }
    }
}

proptest! {
    // Each case runs several full forward passes; keep the case count
    // moderate so the suite stays fast.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole invariant: for every batch size, batch cost budget,
    /// deadline, breaker/retry configuration, and fault schedule, the
    /// micro-batched serving path answers bitwise identically —
    /// flow-for-flow, cost-for-cost — to the unbatched path, and to
    /// repeated [`ServeEngine::serve_one`] over the admitted requests.
    #[test]
    fn batched_serving_is_bitwise_identical_to_unbatched(
        config in arb_serve_config(),
        max_batch in 1usize..=8,
        rounds in proptest::collection::vec(arb_serve_round(24), 1..6),
    ) {
        let (clf, pool) = serve_fixture();
        let snapshot: Vec<Vec<f32>> = {
            let mut params = Vec::new();
            let mut clf = clf.clone();
            clf.encoder.visit_params(&mut |p, _| params.push(p.to_vec()));
            params
        };
        let mk = |max_batch: usize| {
            ServeEngine::new(
                clf.clone(),
                Fallback::Majority(MajorityBaseline::fit(&[], 2)),
                ServeConfig { max_batch, ..config },
            )
        };
        let mut batched = mk(max_batch);
        let mut single = mk(1);
        let mut hedged = mk(1); // answers via serve_one, no queue
        let mut responses_batched = Vec::new();
        let mut responses_single = Vec::new();
        let mut responses_hedged = Vec::new();
        for round in &rounds {
            let rb = apply_round(&mut batched, round, pool, &snapshot);
            let rs = apply_round(&mut single, round, pool, &snapshot);
            // The hedged engine replays exactly the requests the single
            // engine admitted this round (shedding happens at submit time,
            // which serve_one bypasses).
            if let ServeRound::Traffic(_) = round {
                for r in &rs {
                    responses_hedged.push(hedged.serve_one(pool[r.flow].clone()));
                }
            } else {
                apply_round(&mut hedged, round, pool, &snapshot);
            }
            responses_batched.extend(rb);
            responses_single.extend(rs);
        }
        prop_assert_eq!(&responses_batched, &responses_single,
            "batched vs unbatched responses");
        prop_assert_eq!(batched.stats(), single.stats(), "batched vs unbatched stats");
        prop_assert_eq!(&responses_hedged, &responses_single, "serve_one vs drained responses");
        // Sanity: the schedule space actually produces model answers.
        let model_answers = responses_single
            .iter()
            .filter(|r| r.responder == Responder::Model)
            .count();
        prop_assert!(model_answers <= responses_single.len());
    }
}

/// Shared backbone + per-task heads for the multi-task fan-out proptest.
/// Class counts differ across tasks so head costs and argmax ranges differ.
fn multitask_fixture() -> &'static (FmBackbone, Vec<TaskHead>, Vec<ServeRequest>) {
    static FIXTURE: OnceLock<(FmBackbone, Vec<TaskHead>, Vec<ServeRequest>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let (clf, pool) = serve_fixture();
        let backbone = clf.backbone();
        let cfg = FineTuneConfig { epochs: 1, ..FineTuneConfig::default() };
        let heads: Vec<TaskHead> = [("alpha", 2usize), ("beta", 3), ("gamma", 4)]
            .iter()
            .map(|&(name, n)| {
                let train: Vec<TextExample> = (0..9)
                    .map(|i| TextExample {
                        tokens: vec![FIXTURE_TOKENS[i % FIXTURE_TOKENS.len()].to_string()],
                        label: i % n,
                    })
                    .collect();
                TaskHead::fine_tune(&backbone, name, &train, n, &cfg)
                    .expect("head fine-tuning failed")
            })
            .collect();
        (backbone, heads, pool.clone())
    })
}

/// One step of a multi-task fault schedule.
#[derive(Debug, Clone)]
enum FanoutRound {
    /// NaN-poison one task's head (that lane fails; others are untouched).
    PoisonHead(usize),
    /// Restore one task's original head weights.
    HealHead(usize),
    /// Submit pool requests with the given per-request task masks, then
    /// drain every lane.
    Traffic(Vec<(usize, u64)>),
}

fn arb_fanout_round(pool_len: usize, n_tasks: usize) -> impl Strategy<Value = FanoutRound> {
    let full = (1u64 << n_tasks) - 1;
    prop_oneof![
        1 => (0..n_tasks).prop_map(FanoutRound::PoisonHead),
        1 => (0..n_tasks).prop_map(FanoutRound::HealHead),
        4 => proptest::collection::vec((0..pool_len, 1..=full), 1..12)
            .prop_map(FanoutRound::Traffic),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The multi-task tentpole invariant: for every serving configuration,
    /// random per-request task subset, and per-head fault schedule, the
    /// shared-encoder fan-out server answers every task bitwise identically
    /// — flow-for-flow, cost-for-cost, stat-for-stat — to K independent
    /// single-task engines fed the same per-task request streams.
    #[test]
    fn multitask_fanout_is_bitwise_identical_to_independent_engines(
        config in arb_serve_config(),
        max_batch in 1usize..=8,
        rounds in proptest::collection::vec(arb_fanout_round(24, 3), 1..6),
    ) {
        let (backbone, heads, pool) = multitask_fixture();
        let config = ServeConfig { max_batch, ..config };
        let n_tasks = heads.len();
        let poisoned: Vec<TaskHead> = heads
            .iter()
            .map(|h| {
                let mut bad = h.clone();
                bad.network_mut().visit_params(&mut |p, _| p.fill(f32::NAN));
                bad
            })
            .collect();
        let mut server = MultiTaskServer::new(
            backbone.clone(),
            heads
                .iter()
                .map(|h| (h.clone(), Fallback::Majority(MajorityBaseline::fit(&[], h.n_classes))))
                .collect(),
            config,
        );
        let mut solo: Vec<ServeEngine> = heads
            .iter()
            .map(|h| {
                ServeEngine::new(
                    backbone.attach(h),
                    Fallback::Majority(MajorityBaseline::fit(&[], h.n_classes)),
                    config,
                )
            })
            .collect();
        let mut fanned: Vec<Vec<Response>> = vec![Vec::new(); n_tasks];
        let mut independent: Vec<Vec<Response>> = vec![Vec::new(); n_tasks];
        for round in &rounds {
            match round {
                FanoutRound::PoisonHead(k) => {
                    server.replace_head(*k, poisoned[*k].clone());
                    solo[*k].replace_model(backbone.attach(&poisoned[*k]));
                }
                FanoutRound::HealHead(k) => {
                    server.replace_head(*k, heads[*k].clone());
                    solo[*k].replace_model(backbone.attach(&heads[*k]));
                }
                FanoutRound::Traffic(items) => {
                    for &(i, mask) in items {
                        let mut req = pool[i].clone();
                        req.tasks = TaskSet::from_mask(mask);
                        // Fan-out side: one submit reaches every selected lane.
                        server.submit(req.clone());
                        // Independent side: each engine sees only its stream.
                        for (k, eng) in solo.iter_mut().enumerate() {
                            if req.tasks.contains(k) {
                                eng.submit(req.clone());
                            }
                        }
                    }
                    for (k, mut r) in server.drain().into_iter().enumerate() {
                        fanned[k].append(&mut r);
                    }
                    for (k, eng) in solo.iter_mut().enumerate() {
                        independent[k].append(&mut eng.drain_queue());
                    }
                }
            }
        }
        for k in 0..n_tasks {
            prop_assert_eq!(&fanned[k], &independent[k],
                "task {} responses diverge from its standalone engine", k);
            prop_assert_eq!(server.task_stats()[k], solo[k].stats(),
                "task {} stats diverge from its standalone engine", k);
        }
    }
}
