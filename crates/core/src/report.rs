//! Plain-text table emitters for experiment binaries: aligned console
//! tables and CSV, so every experiment prints "the same rows the paper
//! reports" in a greppable form.

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create with column headers.
    pub fn new(header: &[&str]) -> Table {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: append a row of displayable items.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// The column headers.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// The data rows, in insertion order.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned console table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<w$}");
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ =
            writeln!(out, "{}", self.header.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }
}

/// Format a fraction as a fixed-precision string (e.g. `0.934`).
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a count with thousands separators.
pub fn count(n: usize) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(&["model", "f1"]);
        t.row(&["fm".into(), "0.93".into()]);
        t.row(&["gru-random".into(), "0.61".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("model"));
        assert!(lines[1].starts_with("---"));
        // Columns align: "0.93" starts at the same offset in both data rows.
        let off2 = lines[2].find("0.93").unwrap();
        let off3 = lines[3].find("0.61").unwrap();
        assert_eq!(off2, off3);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["x,y".into(), "quote\"d".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"quote\"\"d\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(0.93456), "0.935");
        assert_eq!(count(1234567), "1,234,567");
        assert_eq!(count(42), "42");
    }
}
