//! Supervised multi-replica serving: the cluster layer above
//! [`ServeEngine`]. PR 3 made a *single* engine robust to hostile requests;
//! this module makes the *service* robust to the failure of whole replicas,
//! which is what serving heavy traffic from millions of users (ROADMAP
//! north star) actually requires.
//!
//! A [`ClusterSupervisor`] owns N replicas, each a full [`ServeEngine`]
//! (queue, breaker, retry, fallback) around its own copy of the model, and
//! adds four cluster-level controls:
//!
//! 1. **Routing + failover** — each request is routed round-robin across
//!    routable replicas (`Healthy` first, then `Degraded`); when a
//!    request's natural target is not routable it fails over to the next
//!    one, and when *no* replica is routable the supervisor itself answers
//!    from its own [`Fallback`] tier so availability never reaches zero.
//! 2. **Deterministic health probes** — every `probe_interval` ticks the
//!    supervisor classifies a fixed canary context on every replica within
//!    a probe budget. Crashes, deadline overruns (stalled replicas), and
//!    non-finite logits (corrupted weights) all fail the probe;
//!    consecutive failures walk the replica down a
//!    `Healthy → Degraded → Down` state machine, and one passing probe
//!    restores it.
//! 3. **Hedged dispatch** — when a replica answers past its deadline
//!    budget and hedging is enabled, the supervisor re-issues the request
//!    to a second healthy replica and keeps the better answer.
//! 4. **Supervised warm restart** — a `Down` replica is restarted with
//!    exponential backoff from its last good checkpoint via
//!    [`load_classifier_with_retry`]; a checkpoint that fails its CRC is a
//!    typed error, not a panic, and the supervisor falls back to cloning
//!    the model from a healthy peer before giving up and doubling the
//!    backoff.
//!
//! Everything is metered in the same deterministic cost units as the
//! engine, faults arrive on a seeded schedule
//! ([`nfm_traffic::faults::replica_fault_schedule`]), and every counter is
//! an integer — so a full chaos sweep (E16) reproduces bit for bit.

use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};

use nfm_model::tokenize::Tokenizer;
use nfm_net::capture::Trace;
use nfm_tensor::checkpoint::CheckpointError;
use nfm_tensor::layers::Module;
use nfm_traffic::faults::{ReplicaFault, ReplicaFaultKind};

use crate::ood::DriftMonitor;
use crate::pipeline::{FineTuneConfig, FmClassifier, TextExample};
use crate::serve::{
    assemble_requests, load_classifier_with_retry, Fallback, IngestStats, Responder, Response,
    RetryPolicy, ServeConfig, ServeEngine, ServeRequest, ServeStats,
};

/// Errors surfaced by cluster construction instead of panics.
#[derive(Debug)]
pub enum ClusterError {
    /// A cluster needs at least one replica.
    NoReplicas,
    /// A replica checkpoint could not be written at construction.
    Checkpoint(CheckpointError),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::NoReplicas => write!(f, "cluster needs at least one replica"),
            ClusterError::Checkpoint(e) => write!(f, "replica checkpoint failed: {e}"),
        }
    }
}

impl Error for ClusterError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClusterError::NoReplicas => None,
            ClusterError::Checkpoint(e) => Some(e),
        }
    }
}

/// A replica's position in the probe-driven state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaHealth {
    /// Passing probes; preferred routing target.
    Healthy,
    /// Recently failed a probe (or on post-restart probation); routed to
    /// only when no healthy replica exists.
    Degraded,
    /// Crashed or persistently failing probes; receives no traffic until a
    /// supervised restart brings it back.
    Down,
}

impl ReplicaHealth {
    /// Short name for events and report tables.
    pub fn name(&self) -> &'static str {
        match self {
            ReplicaHealth::Healthy => "healthy",
            ReplicaHealth::Degraded => "degraded",
            ReplicaHealth::Down => "down",
        }
    }

    /// Ordering for the probe state machine: probe failures may only move a
    /// replica toward `Down`, never back up (a crashed replica must not be
    /// "promoted" to `Degraded` by its first failed probe).
    fn severity(&self) -> u8 {
        match self {
            ReplicaHealth::Healthy => 0,
            ReplicaHealth::Degraded => 1,
            ReplicaHealth::Down => 2,
        }
    }
}

/// Cluster-supervisor knobs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Per-replica engine configuration (each replica derives its own shed
    /// seed from `serve.seed`, so replicas shed independently but
    /// reproducibly).
    pub serve: ServeConfig,
    /// Probe every replica once per this many ticks (bursts); `0` disables
    /// probing.
    pub probe_interval: usize,
    /// Cost budget for one health probe on an unimpaired replica. The
    /// default, `u64::MAX`, is a sentinel meaning *auto*: construction
    /// resolves it to 1.5× the canary's inference cost on the replica
    /// model, so an unimpaired replica always passes while any stall
    /// factor (≥ 2) shrinks the budget below one canary inference and
    /// fails the probe. Finite values are used as-is; stall detection
    /// requires the budget to be finite and within `stall_factor`× of the
    /// canary cost.
    pub probe_budget: u64,
    /// Token context classified by every probe.
    pub canary: Vec<String>,
    /// Consecutive probe failures that mark a replica `Degraded`.
    pub degraded_after: usize,
    /// Consecutive probe failures that mark a replica `Down`.
    pub down_after: usize,
    /// Re-issue deadline-missed requests to a second healthy replica.
    pub hedge: bool,
    /// Ticks before the first restart attempt of a `Down` replica.
    pub restart_backoff_base: usize,
    /// Backoff multiplier after each failed restart attempt.
    pub restart_backoff_factor: usize,
    /// Retry policy for checkpoint loads during warm restart.
    pub restart_retry: RetryPolicy,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            serve: ServeConfig::default(),
            probe_interval: 4,
            probe_budget: u64::MAX,
            canary: vec!["PORT_443".to_string(), "IP4".to_string()],
            degraded_after: 1,
            down_after: 2,
            hedge: true,
            restart_backoff_base: 2,
            restart_backoff_factor: 2,
            restart_retry: RetryPolicy::default(),
        }
    }
}

/// Availability accounting for the cluster. All counters are integers, so
/// two runs with the same seeds agree exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Requests that reached cluster routing.
    pub arrived: usize,
    /// Requests whose final answer came from a replica's model path.
    pub answered_model: usize,
    /// Requests whose final answer came from a replica's fallback tier.
    pub answered_fallback: usize,
    /// Requests answered by the supervisor's own fallback because no
    /// replica was routable.
    pub answered_supervisor: usize,
    /// Requests shed by replica admission control.
    pub shed: usize,
    /// Requests routed away from their natural round-robin target. Serving
    /// a request on its natural target while that target is merely
    /// `Degraded` is not a failover.
    pub failovers: usize,
    /// Hedged re-dispatches issued.
    pub hedges: usize,
    /// Hedges whose secondary answer (model path) replaced the primary's.
    pub hedge_wins: usize,
    /// Health probes issued.
    pub probes: usize,
    /// Health probes failed.
    pub probe_failures: usize,
    /// Transitions into `Degraded`.
    pub to_degraded: usize,
    /// Transitions into `Down`.
    pub to_down: usize,
    /// Transitions back to `Healthy`.
    pub to_healthy: usize,
    /// Replica crashes injected.
    pub crashes_injected: usize,
    /// Replica stalls injected.
    pub stalls_injected: usize,
    /// Weight corruptions injected.
    pub corruptions_injected: usize,
    /// Supervised restarts attempted.
    pub restarts_attempted: usize,
    /// Supervised restarts that brought a replica back.
    pub restarts_ok: usize,
    /// Restart attempts whose checkpoint load failed (e.g. CRC mismatch).
    pub restart_load_errors: usize,
    /// Restarts recovered by cloning a healthy peer's model instead.
    pub peer_clones: usize,
    /// Capture packets that failed to parse during ingest.
    pub malformed_packets: usize,
    /// Flows assembled from parseable packets.
    pub flows_assembled: usize,
    /// Flows dropped for producing no tokens.
    pub empty_contexts: usize,
    /// Background adaptations started (detector tripped with enough
    /// quarantined traffic).
    pub adaptations_started: usize,
    /// Adaptations whose fine-tune failed (e.g. diverged past the guard).
    pub adaptations_failed: usize,
    /// Candidates rejected by the shadow evaluation (worse than incumbent).
    pub candidates_rejected: usize,
    /// Canary rollouts started (candidate deployed to one replica).
    pub rollouts_started: usize,
    /// Rollouts completed fleet-wide after the canary verified.
    pub rollouts_completed: usize,
    /// Canary rollbacks (candidate failed verification on the canary).
    pub rollbacks: usize,
    /// Quarantined examples drained into adaptation attempts.
    pub quarantine_drained: usize,
}

impl ClusterStats {
    /// Requests that received any answer (replica model, replica fallback,
    /// or supervisor fallback).
    pub fn answered(&self) -> usize {
        self.answered_model + self.answered_fallback + self.answered_supervisor
    }

    /// Fraction of arrivals that received an answer (1.0 when nothing
    /// arrived).
    pub fn availability(&self) -> f64 {
        if self.arrived == 0 {
            1.0
        } else {
            self.answered() as f64 / self.arrived as f64
        }
    }

    /// Strict availability: fraction of arrivals answered by a replica's
    /// *model* path (fallback tiers excluded). This is the number the E16
    /// acceptance bar (≥ 0.99 under single-replica failure) is measured on.
    pub fn model_availability(&self) -> f64 {
        if self.arrived == 0 {
            1.0
        } else {
            self.answered_model as f64 / self.arrived as f64
        }
    }
}

/// Self-healing knobs: when a replica's drift detector trips and enough
/// traffic sits in quarantine, the supervisor fine-tunes the incumbent
/// model in the background (quarantine + `replay` against catastrophic
/// forgetting), shadow-evaluates the candidate on `holdout` plus the
/// drained quarantine, and — only if the candidate is no worse — rolls it
/// out through a canary replica before the fleet.
#[derive(Debug, Clone)]
pub struct AdaptConfig {
    /// Minimum quarantined examples (summed across replicas) before an
    /// adaptation starts; trips with less traffic keep accumulating.
    pub min_quarantine: usize,
    /// Replay slice of the original training data mixed into every
    /// adaptation fine-tune so the candidate keeps its old competence.
    pub replay: Vec<TextExample>,
    /// Deterministic held-out examples for the shadow evaluation (compared
    /// alongside the drained quarantine).
    pub holdout: Vec<TextExample>,
    /// Fine-tune settings for the background adaptation pass.
    pub fine_tune: FineTuneConfig,
    /// Ticks to wait before retrying after a failed/rejected adaptation or
    /// a rollback.
    pub backoff_base: usize,
    /// Backoff multiplier per consecutive failure.
    pub backoff_factor: usize,
    /// Ticks of quiet after a completed rollout before the next adaptation
    /// may start.
    pub cooldown: usize,
    /// Adapt the classification head only: the background fine-tune runs
    /// with the encoder frozen, so the candidate differs from the incumbent
    /// in head weights alone. This is the shared-backbone serving
    /// contract — a drifted task can be repaired and canary-rolled without
    /// perturbing the encoder other tasks share (see
    /// [`TaskHead`](crate::pipeline::TaskHead) and
    /// [`MultiTaskServer`](crate::serve::MultiTaskServer)).
    pub head_only: bool,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            min_quarantine: 32,
            replay: Vec::new(),
            holdout: Vec::new(),
            fine_tune: FineTuneConfig::default(),
            backoff_base: 4,
            backoff_factor: 2,
            cooldown: 8,
            head_only: false,
        }
    }
}

/// An in-flight canary rollout.
struct Rollout {
    candidate: FmClassifier,
    incumbent: FmClassifier,
    canary: usize,
    /// Examples the candidate was fitted on — the fleet's drift monitors
    /// recalibrate against these once the rollout completes.
    recal: Vec<TextExample>,
}

/// Supervisor-side adaptation state.
struct AdaptState {
    config: AdaptConfig,
    rollout: Option<Rollout>,
    backoff: usize,
    not_before: usize,
}

/// One managed replica: an engine plus the supervisor's view of it.
struct Replica {
    engine: ServeEngine,
    health: ReplicaHealth,
    crashed: bool,
    stall_factor: u64,
    probe_failures: usize,
    backoff: usize,
    restart_due: Option<usize>,
    checkpoint: PathBuf,
}

/// The cluster supervisor: N replicas, health probes, failover, hedging,
/// and supervised warm restarts. See the module docs for the full design.
pub struct ClusterSupervisor {
    replicas: Vec<Replica>,
    fallback: Fallback,
    config: ClusterConfig,
    stats: ClusterStats,
    tick: usize,
    rr: usize,
    adapt: Option<AdaptState>,
}

impl ClusterSupervisor {
    /// Build a supervisor over one engine per `(model, fallback)` pair,
    /// saving each replica's model to `<checkpoint_dir>/replica_<i>.nfmc`
    /// as its warm-restart artifact. `supervisor_fallback` answers when no
    /// replica is routable. Each replica's shed RNG is derived from
    /// `config.serve.seed` and its index, so replicas behave independently
    /// but reproducibly.
    pub fn new(
        replicas: Vec<(FmClassifier, Fallback)>,
        supervisor_fallback: Fallback,
        checkpoint_dir: &Path,
        config: ClusterConfig,
    ) -> Result<ClusterSupervisor, ClusterError> {
        if replicas.is_empty() {
            return Err(ClusterError::NoReplicas);
        }
        let mut config = config;
        if config.probe_budget == u64::MAX {
            // Auto probe budget: 1.5× one canary inference. Healthy
            // replicas fit (cost ≤ 1.5×cost); a stalled replica's shrunk
            // budget (1.5×cost / factor, factor ≥ 2) cannot, so stalls are
            // detectable without any per-model tuning.
            let cost = replicas[0].0.inference_cost(config.canary.len());
            config.probe_budget = cost.saturating_add(cost / 2);
        }
        std::fs::create_dir_all(checkpoint_dir)
            .map_err(|e| ClusterError::Checkpoint(CheckpointError::Io(e.to_string())))?;
        let mut managed = Vec::with_capacity(replicas.len());
        for (i, (clf, fallback)) in replicas.into_iter().enumerate() {
            let checkpoint = checkpoint_dir.join(format!("replica_{i}.nfmc"));
            clf.save(&checkpoint).map_err(ClusterError::Checkpoint)?;
            let serve = ServeConfig {
                seed: config.serve.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ..config.serve
            };
            managed.push(Replica {
                engine: ServeEngine::new(clf, fallback, serve),
                health: ReplicaHealth::Healthy,
                crashed: false,
                stall_factor: 1,
                probe_failures: 0,
                backoff: config.restart_backoff_base.max(1),
                restart_due: None,
                checkpoint,
            });
        }
        nfm_obs::gauge!("cluster.healthy_replicas").set(managed.len() as f64);
        Ok(ClusterSupervisor {
            replicas: managed,
            fallback: supervisor_fallback,
            config,
            stats: ClusterStats::default(),
            tick: 0,
            rr: 0,
            adapt: None,
        })
    }

    /// Number of replicas (in any health state).
    pub fn n_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// A replica's current health.
    pub fn replica_health(&self, replica: usize) -> ReplicaHealth {
        self.replicas[replica].health
    }

    /// Replicas currently `Healthy`.
    pub fn healthy_count(&self) -> usize {
        self.replicas.iter().filter(|r| r.health == ReplicaHealth::Healthy).count()
    }

    /// The cumulative tick counter (one tick per burst across every
    /// [`ClusterSupervisor::serve_trace`] call). Fault `at_burst` times are
    /// matched against this counter, so harnesses that serve multiple
    /// traces through one supervisor schedule faults relative to it.
    pub fn tick(&self) -> usize {
        self.tick
    }

    /// Path of a replica's warm-restart checkpoint — exposed so chaos
    /// harnesses can corrupt the file on disk and exercise the CRC path.
    pub fn checkpoint_path(&self, replica: usize) -> &Path {
        &self.replicas[replica].checkpoint
    }

    /// Cumulative cluster statistics.
    pub fn stats(&self) -> ClusterStats {
        self.stats
    }

    /// One replica's engine-level statistics.
    pub fn replica_stats(&self, replica: usize) -> ServeStats {
        self.replicas[replica].engine.stats()
    }

    /// One replica's currently served model.
    pub fn replica_model(&self, replica: usize) -> &FmClassifier {
        self.replicas[replica].engine.model()
    }

    /// Arm the self-healing loop: every replica gets a clone of `monitor`
    /// (scoring its own traffic independently but from identical
    /// calibration), and the supervisor starts watching for trips to
    /// schedule background adaptation and canary-gated rollouts.
    pub fn enable_adaptation(&mut self, monitor: DriftMonitor, config: AdaptConfig) {
        for r in &mut self.replicas {
            r.engine.enable_drift(monitor.clone());
        }
        self.adapt = Some(AdaptState {
            backoff: config.backoff_base.max(1),
            config,
            rollout: None,
            not_before: 0,
        });
    }

    /// Whether any replica's drift detector is currently tripped.
    pub fn drift_tripped(&self) -> bool {
        self.replicas.iter().any(|r| r.engine.drift_monitor().is_some_and(|m| m.tripped()))
    }

    /// Examples currently quarantined across the fleet.
    pub fn quarantined_total(&self) -> usize {
        self.replicas.iter().map(|r| r.engine.quarantine().len()).sum()
    }

    /// Apply delayed ground-truth labels to every replica (see
    /// [`ServeEngine::record_feedback`]); returns how many times detectors
    /// newly tripped across the fleet.
    pub fn apply_feedback(&mut self, truth: &dyn Fn(&[String]) -> Option<usize>) -> usize {
        self.replicas.iter_mut().map(|r| r.engine.record_feedback(truth)).sum()
    }

    /// The self-healing step, run once per tick: advance an in-flight
    /// canary rollout, or start a new background adaptation when a drift
    /// detector has tripped with enough quarantined traffic.
    fn maybe_adapt(&mut self) {
        let Some(mut state) = self.adapt.take() else { return };
        match state.rollout.take() {
            Some(rollout) => self.advance_rollout(&mut state, rollout),
            None => self.maybe_start_adaptation(&mut state),
        }
        self.adapt = Some(state);
    }

    /// The least-impaired replica — adaptation's incumbent source and the
    /// canary target.
    fn least_impaired(&self) -> usize {
        (0..self.replicas.len()).min_by_key(|&i| self.replicas[i].health.severity()).unwrap_or(0)
    }

    /// Begin an adaptation cycle if warranted: drain every quarantine, warm
    /// fine-tune the incumbent on quarantine + replay, shadow-evaluate the
    /// candidate, and deploy it to one canary replica only if it is no
    /// worse than the incumbent.
    fn maybe_start_adaptation(&mut self, state: &mut AdaptState) {
        if self.tick < state.not_before {
            return;
        }
        let tripped =
            self.replicas.iter().any(|r| r.engine.drift_monitor().is_some_and(|m| m.tripped()));
        if !tripped || self.quarantined_total() < state.config.min_quarantine {
            return;
        }
        self.stats.adaptations_started += 1;
        nfm_obs::counter!("adapt.started").inc();
        let mut fresh: Vec<TextExample> = Vec::new();
        for r in &mut self.replicas {
            fresh.append(&mut r.engine.quarantine_mut().drain());
        }
        self.stats.quarantine_drained += fresh.len();
        nfm_obs::counter!("adapt.quarantine_drained").add(fresh.len() as u64);
        nfm_obs::event(
            "adapt.start",
            &[
                ("tick", nfm_obs::Value::U(self.tick as u64)),
                ("quarantined", nfm_obs::Value::U(fresh.len() as u64)),
            ],
        );
        let canary = self.least_impaired();
        let incumbent = self.replicas[canary].engine.model().clone();
        let mut train = fresh.clone();
        train.extend(state.config.replay.iter().cloned());
        let mut ft = state.config.fine_tune.clone();
        if state.config.head_only {
            // Head-only repair: freeze the encoder so the candidate shares
            // the incumbent's backbone bitwise and only the head moves.
            ft.freeze_encoder = true;
        }
        let candidate = match FmClassifier::fine_tune_from(&incumbent, &train, &ft) {
            Ok(clf) => clf,
            Err(e) => {
                self.stats.adaptations_failed += 1;
                nfm_obs::counter!("adapt.failed").inc();
                nfm_obs::event("adapt.failed", &[("error", nfm_obs::Value::S(&e.to_string()))]);
                self.adapt_backoff(state);
                return;
            }
        };
        // Shadow evaluation: integer correct-counts on the deterministic
        // holdout plus the traffic that triggered the adaptation. The
        // candidate must be at least as good as the incumbent.
        let mut eval: Vec<&TextExample> = state.config.holdout.iter().collect();
        eval.extend(fresh.iter());
        let correct = |clf: &FmClassifier| -> usize {
            eval.iter().filter(|e| clf.predict(&e.tokens) == e.label).count()
        };
        let cand_correct = correct(&candidate);
        let inc_correct = correct(&incumbent);
        if cand_correct < inc_correct {
            self.stats.candidates_rejected += 1;
            nfm_obs::counter!("adapt.rejected").inc();
            nfm_obs::event(
                "adapt.rejected",
                &[
                    ("candidate_correct", nfm_obs::Value::U(cand_correct as u64)),
                    ("incumbent_correct", nfm_obs::Value::U(inc_correct as u64)),
                    ("eval_n", nfm_obs::Value::U(eval.len() as u64)),
                ],
            );
            self.adapt_backoff(state);
            return;
        }
        // Canary deploy: one replica serves the candidate; the fleet keeps
        // the incumbent, so model availability never dips.
        self.replicas[canary].engine.replace_model(candidate.clone());
        self.stats.rollouts_started += 1;
        nfm_obs::counter!("rollout.started").inc();
        nfm_obs::event(
            "rollout.canary",
            &[
                ("replica", nfm_obs::Value::U(canary as u64)),
                ("candidate_correct", nfm_obs::Value::U(cand_correct as u64)),
                ("incumbent_correct", nfm_obs::Value::U(inc_correct as u64)),
            ],
        );
        state.rollout = Some(Rollout { candidate, incumbent, canary, recal: train });
    }

    /// One tick after the canary deploy, verify the canary replica still
    /// answers its health probe; promote the candidate fleet-wide (with
    /// checkpoint refresh and monitor recalibration) or roll it back.
    fn advance_rollout(&mut self, state: &mut AdaptState, rollout: Rollout) {
        let canary = rollout.canary;
        let healthy = self.probe_one(canary) && self.replicas[canary].health != ReplicaHealth::Down;
        if !healthy {
            self.replicas[canary].engine.replace_model(rollout.incumbent.clone());
            self.stats.rollbacks += 1;
            nfm_obs::counter!("rollout.rollbacks").inc();
            nfm_obs::event("rollout.rollback", &[("replica", nfm_obs::Value::U(canary as u64))]);
            self.adapt_backoff(state);
            return;
        }
        // Fleet-wide promotion: swap every other replica, refresh the
        // warm-restart checkpoints, and recalibrate every drift monitor
        // against the candidate + the traffic it was fitted on so the
        // detectors measure drift from the *new* distribution.
        let drift_config =
            self.replicas.iter().find_map(|r| r.engine.drift_monitor().map(|m| m.config()));
        for i in 0..self.replicas.len() {
            if i != canary {
                self.replicas[i].engine.replace_model(rollout.candidate.clone());
            }
            if let Err(e) = rollout.candidate.save(&self.replicas[i].checkpoint) {
                nfm_obs::event(
                    "rollout.checkpoint_error",
                    &[
                        ("replica", nfm_obs::Value::U(i as u64)),
                        ("error", nfm_obs::Value::S(&e.to_string())),
                    ],
                );
            }
        }
        if let Some(cfg) = drift_config {
            let monitor = DriftMonitor::calibrate(&rollout.candidate, &rollout.recal, cfg);
            for r in &mut self.replicas {
                r.engine.enable_drift(monitor.clone());
            }
        }
        self.stats.rollouts_completed += 1;
        nfm_obs::counter!("rollout.completed").inc();
        nfm_obs::event(
            "rollout.completed",
            &[
                ("tick", nfm_obs::Value::U(self.tick as u64)),
                ("canary", nfm_obs::Value::U(canary as u64)),
            ],
        );
        state.backoff = state.config.backoff_base.max(1);
        state.not_before = self.tick + state.config.cooldown;
    }

    /// Exponential backoff after a failed/rejected adaptation or rollback.
    fn adapt_backoff(&mut self, state: &mut AdaptState) {
        state.not_before = self.tick + state.backoff;
        state.backoff = state.backoff.saturating_mul(state.config.backoff_factor.max(2));
    }

    fn transition(&mut self, replica: usize, to: ReplicaHealth, cause: &str) {
        let from = self.replicas[replica].health;
        if from == to {
            return;
        }
        self.replicas[replica].health = to;
        match to {
            ReplicaHealth::Healthy => self.stats.to_healthy += 1,
            ReplicaHealth::Degraded => self.stats.to_degraded += 1,
            ReplicaHealth::Down => self.stats.to_down += 1,
        }
        nfm_obs::counter!("cluster.transitions").inc();
        nfm_obs::event(
            "cluster.replica.transition",
            &[
                ("replica", nfm_obs::Value::U(replica as u64)),
                ("from", nfm_obs::Value::S(from.name())),
                ("to", nfm_obs::Value::S(to.name())),
                ("cause", nfm_obs::Value::S(cause)),
            ],
        );
        nfm_obs::gauge!("cluster.healthy_replicas").set(self.healthy_count() as f64);
    }

    /// Apply one injected fault to its replica, as a chaos harness (or the
    /// seeded schedule in [`ClusterSupervisor::serve_trace`]) would.
    pub fn inject(&mut self, fault: &ReplicaFault) {
        let i = fault.replica;
        if i >= self.replicas.len() {
            return;
        }
        nfm_obs::counter!("cluster.faults_injected").inc();
        match fault.kind {
            ReplicaFaultKind::Crash => {
                self.stats.crashes_injected += 1;
                self.replicas[i].crashed = true;
                self.transition(i, ReplicaHealth::Down, "crash");
                let backoff = self.replicas[i].backoff;
                self.replicas[i].restart_due = Some(self.tick + backoff);
            }
            ReplicaFaultKind::Stall { factor } => {
                self.stats.stalls_injected += 1;
                let factor = factor.max(2);
                self.replicas[i].stall_factor = factor;
                let base = self.config.serve.deadline_budget;
                self.replicas[i].engine.set_deadline_budget(base / factor);
            }
            ReplicaFaultKind::CorruptWeights => {
                self.stats.corruptions_injected += 1;
                self.replicas[i].engine.model_mut().encoder.visit_params(&mut |p, _| {
                    p.fill(f32::NAN);
                });
            }
        }
    }

    /// Probe one replica: classify the canary context within the probe
    /// budget (shrunk by any stall factor, modelling the slow box). A crash,
    /// a deadline overrun, or non-finite logits fail the probe.
    fn probe_one(&mut self, i: usize) -> bool {
        self.stats.probes += 1;
        nfm_obs::counter!("cluster.probes").inc();
        let ok = if self.replicas[i].crashed {
            false
        } else {
            let budget = self.config.probe_budget / self.replicas[i].stall_factor;
            match self.replicas[i].engine.model().logits_within(&self.config.canary, budget) {
                Ok((logits, _)) => logits.iter().all(|v| v.is_finite()),
                Err(_) => false,
            }
        };
        if ok {
            self.replicas[i].probe_failures = 0;
            if !self.replicas[i].crashed {
                self.transition(i, ReplicaHealth::Healthy, "probe_pass");
            }
        } else {
            self.replicas[i].probe_failures += 1;
            self.stats.probe_failures += 1;
            nfm_obs::counter!("cluster.probe_failures").inc();
            let target = if self.replicas[i].crashed
                || self.replicas[i].probe_failures >= self.config.down_after
            {
                ReplicaHealth::Down
            } else if self.replicas[i].probe_failures >= self.config.degraded_after {
                ReplicaHealth::Degraded
            } else {
                self.replicas[i].health
            };
            // Failures only walk the ladder downward.
            if target.severity() > self.replicas[i].health.severity() {
                self.transition(i, target, "probe_fail");
            }
            if self.replicas[i].health == ReplicaHealth::Down
                && self.replicas[i].restart_due.is_none()
            {
                // A non-crash Down (stall, corruption) also warrants a
                // supervised restart: reload from the last good checkpoint.
                let backoff = self.replicas[i].backoff;
                self.replicas[i].restart_due = Some(self.tick + backoff);
            }
        }
        ok
    }

    fn probe_all(&mut self) {
        for i in 0..self.replicas.len() {
            self.probe_one(i);
        }
    }

    /// Attempt every due supervised restart. Load failures (a corrupted
    /// checkpoint fails its CRC inside [`load_classifier_with_retry`]) fall
    /// back to cloning a healthy peer's model; with no healthy peer the
    /// replica stays `Down` and its backoff doubles.
    fn restart_due(&mut self) {
        for i in 0..self.replicas.len() {
            let due = matches!(self.replicas[i].restart_due, Some(t) if self.tick >= t);
            if !due {
                continue;
            }
            self.stats.restarts_attempted += 1;
            nfm_obs::counter!("cluster.restarts_attempted").inc();
            let loaded = load_classifier_with_retry(
                &self.replicas[i].checkpoint,
                &self.config.restart_retry,
            );
            let model = match loaded {
                Ok((clf, _log)) => Some(clf),
                Err(e) => {
                    self.stats.restart_load_errors += 1;
                    nfm_obs::counter!("cluster.restart_load_errors").inc();
                    nfm_obs::event(
                        "cluster.restart.load_error",
                        &[
                            ("replica", nfm_obs::Value::U(i as u64)),
                            ("error", nfm_obs::Value::S(&e.to_string())),
                        ],
                    );
                    // Checkpoint unusable: clone a healthy peer instead.
                    let peer = (0..self.replicas.len())
                        .find(|&p| p != i && self.replicas[p].health == ReplicaHealth::Healthy);
                    peer.map(|p| {
                        self.stats.peer_clones += 1;
                        nfm_obs::counter!("cluster.peer_clones").inc();
                        self.replicas[p].engine.model().clone()
                    })
                }
            };
            match model {
                Some(clf) => {
                    self.replicas[i].engine.replace_model(clf);
                    self.replicas[i].engine.set_deadline_budget(self.config.serve.deadline_budget);
                    self.replicas[i].crashed = false;
                    self.replicas[i].stall_factor = 1;
                    self.replicas[i].probe_failures = 0;
                    self.replicas[i].restart_due = None;
                    self.replicas[i].backoff = self.config.restart_backoff_base.max(1);
                    self.stats.restarts_ok += 1;
                    nfm_obs::counter!("cluster.restarts_ok").inc();
                    // Probation: the next passing probe promotes to Healthy.
                    self.transition(i, ReplicaHealth::Degraded, "restart");
                }
                None => {
                    let backoff = self.replicas[i]
                        .backoff
                        .saturating_mul(self.config.restart_backoff_factor.max(2));
                    self.replicas[i].backoff = backoff;
                    self.replicas[i].restart_due = Some(self.tick + backoff);
                }
            }
        }
    }

    /// Pick the routing target for the next request: round-robin over
    /// `Healthy` replicas, then `Degraded` ones. `None` means the
    /// supervisor must answer itself. Counts a failover only when the
    /// request actually moved off its natural round-robin target — a
    /// cluster running steadily on degraded replicas is degraded, not
    /// failing over on every request.
    fn route(&mut self) -> Option<usize> {
        let n = self.replicas.len();
        let natural = self.rr % n;
        self.rr = self.rr.wrapping_add(1);
        for tier in [ReplicaHealth::Healthy, ReplicaHealth::Degraded] {
            for off in 0..n {
                let i = (natural + off) % n;
                if self.replicas[i].health == tier {
                    if i != natural {
                        self.stats.failovers += 1;
                        nfm_obs::counter!("cluster.failovers").inc();
                    }
                    return Some(i);
                }
            }
        }
        None
    }

    /// Answer one request from the supervisor's own fallback tier (no
    /// replica was routable).
    fn supervisor_answer(&mut self, request: &ServeRequest) -> Response {
        self.stats.answered_supervisor += 1;
        nfm_obs::counter!("cluster.answered_supervisor").inc();
        Response {
            flow: request.flow,
            class: self.fallback.predict(&request.tokens),
            responder: Responder::Fallback,
            cost: 0,
            retries: 0,
            deadline_missed: false,
        }
    }

    /// Run one cluster tick: apply this tick's faults, attempt due
    /// restarts, probe on the probe cadence, route and serve one burst of
    /// requests, then hedge deadline-missed answers. Returns the tick's
    /// responses in a deterministic order (replica-drain order, hedged
    /// answers substituted in place).
    fn run_tick(&mut self, burst: &[ServeRequest], faults: &[ReplicaFault]) -> Vec<Response> {
        let tick = self.tick;
        for fault in faults.iter().filter(|f| f.at_burst == tick) {
            self.inject(fault);
        }
        self.restart_due();
        if self.config.probe_interval > 0 && self.tick.is_multiple_of(self.config.probe_interval) {
            self.probe_all();
        }
        self.maybe_adapt();

        // Route the whole burst before any replica drains: bursts — not
        // average load — drive per-replica shedding, as in the engine.
        // Shed is taken from each engine's own counter (delta across the
        // tick), not inferred from submitted-minus-drained counts, so it
        // stays honest even when responses are consumed out of band.
        let shed_before: Vec<usize> = self.replicas.iter().map(|r| r.engine.stats().shed).collect();
        let mut routed: Vec<Vec<ServeRequest>> =
            (0..self.replicas.len()).map(|_| Vec::new()).collect();
        let mut responses = Vec::with_capacity(burst.len());
        for request in burst {
            self.stats.arrived += 1;
            nfm_obs::counter!("cluster.arrived").inc();
            match self.route() {
                Some(i) => {
                    self.replicas[i].engine.submit(request.clone());
                    routed[i].push(request.clone());
                }
                None => {
                    let r = self.supervisor_answer(request);
                    responses.push(r);
                }
            }
        }
        for (i, routed_i) in routed.iter().enumerate() {
            if routed_i.is_empty() {
                continue;
            }
            let drained = self.replicas[i].engine.drain_queue();
            let shed = self.replicas[i].engine.stats().shed - shed_before[i];
            self.stats.shed += shed;
            if shed > 0 {
                nfm_obs::counter!("cluster.shed").add(shed as u64);
            }
            for response in drained {
                let finalized = self.maybe_hedge(i, routed_i, response);
                match finalized.responder {
                    Responder::Model => {
                        self.stats.answered_model += 1;
                        nfm_obs::counter!("cluster.answered_model").inc();
                    }
                    Responder::Fallback => {
                        self.stats.answered_fallback += 1;
                        nfm_obs::counter!("cluster.answered_fallback").inc();
                    }
                }
                responses.push(finalized);
            }
        }
        self.tick += 1;
        responses
    }

    /// Re-issue a deadline-missed response's request to a second healthy
    /// replica; keep the secondary's answer when its model path succeeds.
    fn maybe_hedge(
        &mut self,
        primary: usize,
        routed: &[ServeRequest],
        response: Response,
    ) -> Response {
        if !self.config.hedge || !response.deadline_missed {
            return response;
        }
        let secondary = (0..self.replicas.len())
            .find(|&p| p != primary && self.replicas[p].health == ReplicaHealth::Healthy);
        let Some(p) = secondary else {
            return response;
        };
        let Some(request) = routed.iter().find(|r| r.flow == response.flow) else {
            return response;
        };
        self.stats.hedges += 1;
        nfm_obs::counter!("cluster.hedges").inc();
        // `serve_one` bypasses the secondary's queue and admission control:
        // requests this tick already routed to the secondary (but not yet
        // drained) stay queued, and the answer is guaranteed to belong to
        // the hedged request's flow — a queue drain here would steal and
        // discard the secondary's own pending work.
        let hedged = self.replicas[p].engine.serve_one(request.clone());
        if hedged.responder == Responder::Model {
            self.stats.hedge_wins += 1;
            nfm_obs::counter!("cluster.hedge_wins").inc();
            hedged
        } else {
            response
        }
    }

    /// Serve every flow in `trace` across the cluster. `schedule` groups
    /// arrivals into bursts exactly as in [`ServeEngine::serve_trace`];
    /// each burst is one cluster tick (faults strike, restarts fire, and
    /// probes run on tick boundaries). Requests left after the schedule
    /// arrive one per tick. Statistics accumulate across calls.
    ///
    /// Every arrived request gets exactly one [`Response`] unless a replica
    /// shed it; nothing panics on malformed capture bytes.
    pub fn serve_trace(
        &mut self,
        trace: &Trace,
        tokenizer: &dyn Tokenizer,
        schedule: &[usize],
        faults: &[ReplicaFault],
    ) -> Vec<Response> {
        let (requests, ingest) = assemble_requests(trace, tokenizer, self.config.serve.max_tokens);
        self.fold_ingest(ingest);
        let mut responses = Vec::with_capacity(requests.len());
        let mut pending = requests.into_iter();
        let mut exhausted = false;
        for &burst in schedule {
            let mut batch = Vec::with_capacity(burst.min(1024));
            for _ in 0..burst {
                match pending.next() {
                    Some(r) => batch.push(r),
                    None => {
                        exhausted = true;
                        break;
                    }
                }
            }
            responses.extend(self.run_tick(&batch, faults));
            if exhausted {
                break;
            }
        }
        for request in pending {
            let batch = [request];
            responses.extend(self.run_tick(&batch, faults));
        }
        responses
    }

    fn fold_ingest(&mut self, ingest: IngestStats) {
        self.stats.malformed_packets += ingest.malformed_packets;
        self.stats.flows_assembled += ingest.flows_assembled;
        self.stats.empty_contexts += ingest.empty_contexts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::MajorityBaseline;
    use crate::pipeline::{FineTuneConfig, FoundationModel, PipelineConfig, TextExample};
    use nfm_model::pretrain::{PretrainConfig, TaskMix};
    use nfm_model::tokenize::field::FieldTokenizer;
    use nfm_traffic::netsim::{simulate, SimConfig};

    fn tiny_parts() -> (FmClassifier, Trace) {
        let lt = simulate(&SimConfig {
            n_sessions: 30,
            n_general_hosts: 3,
            n_iot_sets: 1,
            ..SimConfig::default()
        });
        let tok = FieldTokenizer::new();
        let cfg = PipelineConfig {
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            d_ff: 32,
            max_len: 48,
            pretrain: PretrainConfig {
                epochs: 1,
                tasks: TaskMix::mlm_only(),
                ..PretrainConfig::default()
            },
            ..PipelineConfig::default()
        };
        let (fm, _) =
            FoundationModel::pretrain_on(&[&lt.trace], &tok, &cfg).expect("pretraining failed");
        let train: Vec<TextExample> = (0..10)
            .map(|i| TextExample {
                tokens: vec![if i % 2 == 0 { "PORT_53" } else { "PORT_443" }.to_string()],
                label: i % 2,
            })
            .collect();
        let clf = FmClassifier::fine_tune(
            &fm,
            &train,
            2,
            &FineTuneConfig { epochs: 2, ..FineTuneConfig::default() },
        )
        .expect("fine-tuning failed");
        (clf, lt.trace)
    }

    fn majority() -> Fallback {
        Fallback::Majority(MajorityBaseline::fit(&[], 2))
    }

    fn build(clf: &FmClassifier, n: usize, dir: &Path, config: ClusterConfig) -> ClusterSupervisor {
        let replicas = (0..n).map(|_| (clf.clone(), majority())).collect();
        ClusterSupervisor::new(replicas, majority(), dir, config).expect("cluster")
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nfm_cluster_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    #[test]
    fn empty_cluster_is_a_typed_error() {
        let dir = temp_dir("empty");
        let Err(err) =
            ClusterSupervisor::new(Vec::new(), majority(), &dir, ClusterConfig::default())
        else {
            panic!("empty replica set must be rejected");
        };
        assert!(matches!(err, ClusterError::NoReplicas));
        assert!(err.to_string().contains("at least one replica"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn healthy_cluster_answers_everything_from_the_model() {
        let (clf, trace) = tiny_parts();
        let dir = temp_dir("healthy");
        let mut cluster = build(&clf, 3, &dir, ClusterConfig::default());
        let responses = cluster.serve_trace(&trace, &FieldTokenizer::new(), &[], &[]);
        let stats = cluster.stats();
        assert!(stats.arrived > 0);
        assert_eq!(stats.answered(), responses.len());
        assert_eq!(stats.answered_model, stats.arrived, "healthy cluster: all model answers");
        assert_eq!(stats.answered_supervisor, 0);
        assert!((stats.availability() - 1.0).abs() < 1e-12);
        assert!((stats.model_availability() - 1.0).abs() < 1e-12);
        assert_eq!(cluster.healthy_count(), 3);
        // Round-robin spreads load across every replica.
        for i in 0..3 {
            assert!(cluster.replica_stats(i).admitted > 0, "replica {i} got traffic");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_fails_over_and_warm_restarts_from_checkpoint() {
        let (clf, trace) = tiny_parts();
        let dir = temp_dir("crash");
        let mut cluster = build(&clf, 3, &dir, ClusterConfig::default());
        let faults = [ReplicaFault { replica: 0, at_burst: 2, kind: ReplicaFaultKind::Crash }];
        let schedule = vec![1usize; 64];
        let responses = cluster.serve_trace(&trace, &FieldTokenizer::new(), &schedule, &faults);
        let stats = cluster.stats();
        assert!(!responses.is_empty());
        assert_eq!(stats.crashes_injected, 1);
        assert!(stats.to_down >= 1, "crash marks the replica down");
        assert!(stats.failovers >= 1, "traffic fails over off the crashed replica");
        assert_eq!(stats.restarts_attempted, stats.restarts_ok, "checkpoint restores cleanly");
        assert!(stats.restarts_ok >= 1, "supervised restart fired");
        assert_eq!(stats.answered(), stats.arrived - stats.shed);
        assert_eq!(
            cluster.replica_health(0),
            ReplicaHealth::Healthy,
            "restarted replica passes probes again"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_checkpoint_falls_back_to_peer_clone() {
        let (clf, trace) = tiny_parts();
        let dir = temp_dir("peer");
        let mut cluster = build(&clf, 3, &dir, ClusterConfig::default());
        // Corrupt replica 0's warm-restart artifact before it crashes: the
        // CRC check must fail the load and the supervisor clones a peer.
        let path = cluster.checkpoint_path(0).to_path_buf();
        let mut bytes = std::fs::read(&path).expect("read checkpoint");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).expect("write checkpoint");
        let faults = [ReplicaFault { replica: 0, at_burst: 1, kind: ReplicaFaultKind::Crash }];
        let schedule = vec![1usize; 64];
        cluster.serve_trace(&trace, &FieldTokenizer::new(), &schedule, &faults);
        let stats = cluster.stats();
        assert!(stats.restart_load_errors >= 1, "CRC mismatch surfaced as a load error");
        assert!(stats.peer_clones >= 1, "a healthy peer donated its model");
        assert!(stats.restarts_ok >= 1);
        assert_eq!(cluster.replica_health(0), ReplicaHealth::Healthy);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn all_replicas_down_routes_to_supervisor_fallback() {
        let (clf, trace) = tiny_parts();
        let dir = temp_dir("alldown");
        // Backoff long enough that no restart completes within the run.
        let config = ClusterConfig { restart_backoff_base: 100_000, ..ClusterConfig::default() };
        let mut cluster = build(&clf, 2, &dir, config);
        let faults = [
            ReplicaFault { replica: 0, at_burst: 0, kind: ReplicaFaultKind::Crash },
            ReplicaFault { replica: 1, at_burst: 0, kind: ReplicaFaultKind::Crash },
        ];
        let responses = cluster.serve_trace(&trace, &FieldTokenizer::new(), &[], &faults);
        let stats = cluster.stats();
        assert!(!responses.is_empty());
        assert_eq!(stats.answered_supervisor, stats.arrived, "supervisor answers everything");
        assert!((stats.availability() - 1.0).abs() < 1e-12, "availability never reaches zero");
        assert_eq!(stats.model_availability(), 0.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hedges_in_multi_request_bursts_lose_no_answers() {
        let (clf, trace) = tiny_parts();
        let dir = temp_dir("hedge_burst");
        // A stalled replica 0 misses every deadline while bursts of 3 keep
        // all three replicas' queues non-empty at hedge time. Probing is
        // disabled so the stall stays undetected and hedging alone must
        // cover it; a deep queue rules out genuine shedding.
        let config = ClusterConfig {
            serve: ServeConfig {
                queue_capacity: 1024,
                shed_watermark: 1024,
                deadline_budget: clf.inference_cost(64) * 2,
                ..ServeConfig::default()
            },
            probe_interval: 0,
            ..ClusterConfig::default()
        };
        let mut cluster = build(&clf, 3, &dir, config);
        let faults = [ReplicaFault {
            replica: 0,
            at_burst: 0,
            kind: ReplicaFaultKind::Stall { factor: 64 },
        }];
        let schedule = vec![3usize; 64];
        let responses = cluster.serve_trace(&trace, &FieldTokenizer::new(), &schedule, &faults);
        let stats = cluster.stats();
        assert!(stats.hedges >= 1, "a stalled primary must trigger hedges");
        assert_eq!(stats.shed, 0, "nothing sheds under a deep queue");
        assert_eq!(responses.len(), stats.arrived, "no answer may be lost to a hedge drain");
        let mut flows: Vec<usize> = responses.iter().map(|r| r.flow).collect();
        flows.sort_unstable();
        let before = flows.len();
        flows.dedup();
        assert_eq!(flows.len(), before, "every flow answered exactly once, by its own answer");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn identical_chaos_runs_are_bitwise_identical() {
        let (clf, trace) = tiny_parts();
        let faults = [
            ReplicaFault { replica: 1, at_burst: 3, kind: ReplicaFaultKind::Crash },
            ReplicaFault { replica: 2, at_burst: 5, kind: ReplicaFaultKind::CorruptWeights },
        ];
        let schedule = vec![2usize; 48];
        let run = |tag: &str| {
            let dir = temp_dir(tag);
            let mut cluster = build(&clf, 3, &dir, ClusterConfig::default());
            let r = cluster.serve_trace(&trace, &FieldTokenizer::new(), &schedule, &faults);
            let s = cluster.stats();
            std::fs::remove_dir_all(&dir).ok();
            (r, s)
        };
        let (ra, sa) = run("det_a");
        let (rb, sb) = run("det_b");
        assert_eq!(sa, sb, "stats must reproduce exactly");
        assert_eq!(ra, rb, "every response must reproduce exactly");
        assert!(sa.corruptions_injected == 1 && sa.crashes_injected == 1);
    }

    #[test]
    fn label_drift_triggers_adaptation_and_canary_rollout() {
        let (clf, trace) = tiny_parts();
        let tok = FieldTokenizer::new();
        // Calibrate on the traffic the cluster will actually serve so the
        // score detector stays quiet; this test drives the feedback signal.
        let (requests, _) = assemble_requests(&trace, &tok, ServeConfig::default().max_tokens);
        let reference: Vec<TextExample> = requests
            .iter()
            .map(|r| TextExample { tokens: r.tokens.clone(), label: clf.predict(&r.tokens) })
            .collect();
        let drift_cfg = crate::ood::DriftConfig {
            lambda_milli: 1_000_000,
            quarantine_threshold_milli: 1_000_000,
            err_warmup: 4,
            err_lambda_milli: 2_000,
            ..crate::ood::DriftConfig::default()
        };
        let monitor = DriftMonitor::calibrate(&clf, &reference, drift_cfg);
        let dir = temp_dir("adapt");
        let mut cluster = build(&clf, 3, &dir, ClusterConfig::default());
        cluster.enable_adaptation(
            monitor,
            AdaptConfig {
                min_quarantine: 4,
                fine_tune: FineTuneConfig { epochs: 4, ..FineTuneConfig::default() },
                ..AdaptConfig::default()
            },
        );
        let schedule = vec![2usize; 64];
        let oracle = clf.clone();
        let agree = |t: &[String]| Some(oracle.predict(t));
        let flip = |t: &[String]| Some(1 - oracle.predict(t));
        // Phase 1: ground truth agrees with the incumbent — nothing adapts.
        for _ in 0..2 {
            cluster.serve_trace(&trace, &tok, &schedule, &[]);
            cluster.apply_feedback(&agree);
        }
        assert_eq!(cluster.stats().adaptations_started, 0, "no drift, no adaptation");
        // Phase 2: every label flips, so every answer is suddenly wrong.
        for _ in 0..6 {
            cluster.serve_trace(&trace, &tok, &schedule, &[]);
            cluster.apply_feedback(&flip);
        }
        let stats = cluster.stats();
        assert!(stats.adaptations_started >= 1, "label drift must schedule an adaptation");
        assert!(stats.quarantine_drained >= 4, "adaptation must consume quarantined traffic");
        assert!(stats.rollouts_started >= 1, "an accepted candidate must start a rollout");
        assert!(stats.rollouts_completed >= 1, "the canary must pass and promote fleet-wide");
        assert_eq!(stats.rollbacks, 0, "healthy canary must not roll back");
        // The promoted candidate must beat the incumbent on the new labels.
        let flipped: Vec<TextExample> = reference
            .iter()
            .map(|e| TextExample { tokens: e.tokens.clone(), label: 1 - e.label })
            .collect();
        let acc =
            |m: &FmClassifier| flipped.iter().filter(|e| m.predict(&e.tokens) == e.label).count();
        assert!(
            acc(cluster.replica_model(0)) > acc(&clf),
            "rolled-out model must outperform the incumbent on drifted labels"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn head_only_adaptation_leaves_backbone_untouched() {
        use nfm_tensor::layers::Module;
        let (clf, trace) = tiny_parts();
        let tok = FieldTokenizer::new();
        let (requests, _) = assemble_requests(&trace, &tok, ServeConfig::default().max_tokens);
        let reference: Vec<TextExample> = requests
            .iter()
            .map(|r| TextExample { tokens: r.tokens.clone(), label: clf.predict(&r.tokens) })
            .collect();
        let drift_cfg = crate::ood::DriftConfig {
            lambda_milli: 1_000_000,
            quarantine_threshold_milli: 1_000_000,
            err_warmup: 4,
            err_lambda_milli: 2_000,
            ..crate::ood::DriftConfig::default()
        };
        let monitor = DriftMonitor::calibrate(&clf, &reference, drift_cfg);
        let dir = temp_dir("adapt_head_only");
        let mut cluster = build(&clf, 3, &dir, ClusterConfig::default());
        cluster.enable_adaptation(
            monitor,
            AdaptConfig {
                min_quarantine: 4,
                // A hotter, longer head-only fit: with the encoder frozen
                // only the head can absorb the flipped labels.
                fine_tune: FineTuneConfig { epochs: 8, lr: 1e-2, ..FineTuneConfig::default() },
                head_only: true,
                ..AdaptConfig::default()
            },
        );
        let schedule = vec![2usize; 64];
        let oracle = clf.clone();
        let agree = |t: &[String]| Some(oracle.predict(t));
        let flip = |t: &[String]| Some(1 - oracle.predict(t));
        // Establish a healthy error baseline, then flip every label.
        for _ in 0..2 {
            cluster.serve_trace(&trace, &tok, &schedule, &[]);
            cluster.apply_feedback(&agree);
        }
        for _ in 0..6 {
            cluster.serve_trace(&trace, &tok, &schedule, &[]);
            cluster.apply_feedback(&flip);
        }
        let stats = cluster.stats();
        assert!(stats.adaptations_started >= 1, "label drift must schedule an adaptation");
        assert!(stats.rollouts_started >= 1, "a head-only candidate must still roll out");
        // The rolled-out model's encoder is bitwise the incumbent's: only
        // the head moved. This is the multi-task contract — repairing one
        // task can never perturb the backbone other tasks share.
        let enc_bits = |c: &FmClassifier| {
            let mut out = Vec::new();
            let mut enc = c.encoder.clone();
            enc.visit_params(&mut |p, _| out.extend(p.iter().map(|v| v.to_bits())));
            out
        };
        let want = enc_bits(&clf);
        for i in 0..3 {
            assert_eq!(
                enc_bits(cluster.replica_model(i)),
                want,
                "replica {i}'s encoder must be bitwise the pre-adaptation backbone"
            );
        }
        // And the head really did move: the promoted model beats the frozen
        // incumbent on the flipped labels despite the identical backbone.
        let flipped: Vec<TextExample> = reference
            .iter()
            .map(|e| TextExample { tokens: e.tokens.clone(), label: 1 - e.label })
            .collect();
        let acc =
            |m: &FmClassifier| flipped.iter().filter(|e| m.predict(&e.tokens) == e.label).count();
        assert!(
            acc(cluster.replica_model(0)) > acc(&clf),
            "head-only candidate must still outperform the incumbent on drifted labels"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
