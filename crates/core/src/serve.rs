//! Robust streaming inference: the serving half of the paper's operational
//! story (§4.3). Training fault tolerance (E14) keeps the model *producible*;
//! this module keeps it *answerable* when live traffic is messy — malformed
//! packets, bursts, and partial model failures.
//!
//! [`ServeEngine`] pulls [`TracePacket`]s from a capture source, assembles
//! bidirectional flows, and classifies each flow with a fine-tuned
//! [`FmClassifier`] under four explicit robustness controls:
//!
//! 1. **Bounded admission queue with deterministic load shedding** — above a
//!    watermark, arrivals are shed with a probability that rises with queue
//!    occupancy, decided by a seeded RNG; at capacity they are shed
//!    outright. The same seed and arrival order reproduce the same shed
//!    decisions bit for bit.
//! 2. **Per-request deadline budgets** — deadlines are metered in the
//!    deterministic cost units of
//!    [`Encoder::forward_inference_within`](nfm_model::nn::transformer::Encoder::forward_inference_within)
//!    (a multiply-accumulate proxy for wall time), so a request that misses
//!    its deadline misses it identically on every run.
//! 3. **Retry with backoff** — transient model faults are retried a bounded
//!    number of times, each retry charging a growing backoff cost against
//!    the request's remaining budget. The same policy drives
//!    [`load_model_with_retry`] for checkpoint loads.
//! 4. **Circuit breaker with graceful degradation** — after K consecutive
//!    failed requests the breaker opens and traffic is answered by the
//!    [`Fallback`] baseline (GRU or class-prior heuristic from
//!    [`crate::baselines`]) instead of being dropped; after a cooldown the
//!    breaker half-opens and probes the model, closing again once probes
//!    succeed.
//!
//! Every admitted request gets a response — from the model or the fallback —
//! and nothing in this module panics on hostile input.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::path::Path;

use nfm_model::context::flow_context;
use nfm_model::nn::transformer::InferError;
use nfm_model::tokenize::Tokenizer;
use nfm_net::capture::{Trace, TracePacket};
use nfm_net::flow::FlowTable;
use nfm_tensor::checkpoint::CheckpointError;
use nfm_tensor::scratch::ScratchArena;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::baselines::{GruBaseline, MajorityBaseline};
use crate::ood::DriftMonitor;
use crate::pipeline::{
    argmax_nan_tolerant, CostedLogits, FmBackbone, FmClassifier, FoundationModel, TaskHead,
    TextExample,
};

/// Histogram bucket edges for micro-batch sizes (`serve.batch.size`).
const BATCH_SIZE_EDGES: &[u64] = &[1, 2, 4, 8, 16, 32, 64];
/// Buckets for per-request drift scores (milli-units: confidence part spans
/// 0..=1000, distance part 0..=4000).
const DRIFT_EDGES: &[u64] = &[250, 500, 1_000, 1_500, 2_000, 3_000, 4_000, 5_000];

/// Errors surfaced by the serving engine instead of panics.
#[derive(Debug)]
pub enum ServeError {
    /// A model checkpoint could not be loaded even after retries.
    ModelLoad {
        /// Load attempts made (initial try plus retries).
        attempts: usize,
        /// The final load failure.
        source: CheckpointError,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::ModelLoad { attempts, source } => {
                write!(f, "model load failed after {attempts} attempt(s): {source}")
            }
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::ModelLoad { source, .. } => Some(source),
        }
    }
}

/// Bounded-retry policy with exponential backoff, metered in the same
/// deterministic cost units as inference deadlines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 disables retrying).
    pub max_retries: usize,
    /// Backoff charged before the first retry.
    pub backoff_base: u64,
    /// Multiplier applied to the backoff on each further retry.
    pub backoff_factor: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 2, backoff_base: 1024, backoff_factor: 2 }
    }
}

impl RetryPolicy {
    /// Backoff cost charged before retry number `retry` (0-based):
    /// `backoff_base * backoff_factor^retry`, saturating.
    pub fn backoff_cost(&self, retry: usize) -> u64 {
        let mut cost = self.backoff_base;
        for _ in 0..retry {
            cost = cost.saturating_mul(self.backoff_factor);
        }
        cost
    }
}

/// What [`retry_with_backoff`] did: attempts made and total backoff charged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryLog {
    /// Attempts made (1 = first try succeeded).
    pub attempts: usize,
    /// Total backoff cost accumulated across retries.
    pub backoff_cost: u64,
}

/// Run `op` until it succeeds or the policy's retries are exhausted,
/// charging exponential backoff between attempts. `op` receives the
/// 0-based attempt number. Returns the final result plus a [`RetryLog`];
/// deterministic (the "backoff" is cost accounting, not wall-clock sleep),
/// so retry behavior is reproducible in tests and chaos sweeps.
pub fn retry_with_backoff<T, E>(
    policy: &RetryPolicy,
    mut op: impl FnMut(usize) -> Result<T, E>,
) -> (Result<T, E>, RetryLog) {
    let mut log = RetryLog::default();
    loop {
        let attempt = log.attempts;
        log.attempts += 1;
        match op(attempt) {
            Ok(v) => return (Ok(v), log),
            Err(e) => {
                if attempt >= policy.max_retries {
                    return (Err(e), log);
                }
                log.backoff_cost = log.backoff_cost.saturating_add(policy.backoff_cost(attempt));
            }
        }
    }
}

/// Load a [`FoundationModel`] checkpoint, retrying transient faults (partial
/// writes, racing replacements) under `policy`. A fault that persists
/// through every retry becomes a typed [`ServeError::ModelLoad`].
pub fn load_model_with_retry(
    path: &Path,
    policy: &RetryPolicy,
) -> Result<(FoundationModel, RetryLog), ServeError> {
    let (result, log) = retry_with_backoff(policy, |_| FoundationModel::load(path));
    match result {
        Ok(model) => Ok((model, log)),
        Err(source) => Err(ServeError::ModelLoad { attempts: log.attempts, source }),
    }
}

/// Load a fine-tuned [`FmClassifier`] checkpoint, retrying transient faults
/// under `policy` — the warm-restart path for cluster replicas. A fault that
/// persists through every retry (e.g. a CRC mismatch from a corrupted file)
/// becomes a typed [`ServeError::ModelLoad`].
pub fn load_classifier_with_retry(
    path: &Path,
    policy: &RetryPolicy,
) -> Result<(FmClassifier, RetryLog), ServeError> {
    let (result, log) = retry_with_backoff(policy, |_| FmClassifier::load(path));
    match result {
        Ok(clf) => Ok((clf, log)),
        Err(source) => Err(ServeError::ModelLoad { attempts: log.attempts, source }),
    }
}

/// Circuit-breaker thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failed requests that trip the breaker open.
    pub failure_threshold: usize,
    /// Requests answered by the fallback while open before half-opening.
    pub cooldown: usize,
    /// Consecutive successful half-open probes required to close again.
    pub probes_to_close: usize,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { failure_threshold: 3, cooldown: 8, probes_to_close: 2 }
    }
}

/// The breaker's position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests go to the model.
    Closed,
    /// Tripped: requests go straight to the fallback until the cooldown
    /// elapses.
    Open,
    /// Probing: requests go to the model; failures re-open, sustained
    /// success closes.
    HalfOpen,
}

/// A consecutive-failure circuit breaker with half-open recovery probes.
/// Pure state machine — no clocks, no randomness — so its transitions are
/// exactly reproducible.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    /// Thresholds.
    pub config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: usize,
    cooldown_left: usize,
    probe_successes: usize,
    /// Times the breaker transitioned to [`BreakerState::Open`].
    pub trips: usize,
    /// Times a half-open probe run closed the breaker again.
    pub recoveries: usize,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            cooldown_left: 0,
            probe_successes: 0,
            trips: 0,
            recoveries: 0,
        }
    }

    /// Current position.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Ask to send one request to the model. `false` means the caller must
    /// answer with the fallback. While open, each denied request counts
    /// down the cooldown; when it elapses the breaker half-opens and admits
    /// the next request as a probe.
    pub fn try_acquire(&mut self) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if self.cooldown_left > 1 {
                    self.cooldown_left -= 1;
                    false
                } else {
                    self.state = BreakerState::HalfOpen;
                    self.probe_successes = 0;
                    nfm_obs::event(
                        "serve.breaker.transition",
                        &[("to", nfm_obs::Value::S("half_open"))],
                    );
                    true
                }
            }
        }
    }

    /// Report that a model-answered request succeeded.
    pub fn on_success(&mut self) {
        match self.state {
            BreakerState::Closed => self.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                self.probe_successes += 1;
                if self.probe_successes >= self.config.probes_to_close {
                    self.state = BreakerState::Closed;
                    self.consecutive_failures = 0;
                    self.recoveries += 1;
                    nfm_obs::counter!("serve.breaker.recoveries").inc();
                    nfm_obs::event(
                        "serve.breaker.transition",
                        &[
                            ("to", nfm_obs::Value::S("closed")),
                            ("recoveries", nfm_obs::Value::U(self.recoveries as u64)),
                        ],
                    );
                }
            }
            BreakerState::Open => {}
        }
    }

    /// Report that a model-answered request failed (after any retries).
    pub fn on_failure(&mut self) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.trip();
                }
            }
            BreakerState::HalfOpen => self.trip(),
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self) {
        self.state = BreakerState::Open;
        self.cooldown_left = self.config.cooldown.max(1);
        self.consecutive_failures = 0;
        self.probe_successes = 0;
        self.trips += 1;
        nfm_obs::counter!("serve.breaker.trips").inc();
        nfm_obs::event(
            "serve.breaker.transition",
            &[("to", nfm_obs::Value::S("open")), ("trips", nfm_obs::Value::U(self.trips as u64))],
        );
    }
}

/// The graceful-degradation tier that answers when the model cannot: the
/// GRU flow baseline or the O(1) class-prior heuristic, both from
/// [`crate::baselines`]. Fallback prediction never fails.
pub enum Fallback {
    /// GRU classifier trained on labeled flows (boxed: a trained GRU is
    /// orders of magnitude larger than the majority prior).
    Gru(Box<GruBaseline>),
    /// Majority-class prior — the cheapest possible responder.
    Majority(MajorityBaseline),
}

impl Fallback {
    /// Answer a request from its flow tokens.
    pub fn predict(&self, tokens: &[String]) -> usize {
        match self {
            Fallback::Gru(m) => m.predict(tokens),
            Fallback::Majority(m) => m.predict(),
        }
    }

    /// Display name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Fallback::Gru(_) => "gru",
            Fallback::Majority(_) => "majority",
        }
    }
}

/// Serving-engine knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Hard cap on queued requests; arrivals beyond it are always shed.
    pub queue_capacity: usize,
    /// Occupancy at which probabilistic shedding begins (≥ capacity
    /// disables the probabilistic band, leaving pure tail drop).
    pub shed_watermark: usize,
    /// Per-request deadline, in deterministic inference-cost units.
    pub deadline_budget: u64,
    /// Token cap per flow context.
    pub max_tokens: usize,
    /// Seed for the shed decision RNG.
    pub seed: u64,
    /// Retry policy for transient model faults.
    pub retry: RetryPolicy,
    /// Circuit-breaker thresholds.
    pub breaker: BreakerConfig,
    /// Requests per micro-batch when draining the queue (≤ 1 disables
    /// batching and serves strictly one request at a time).
    pub max_batch: usize,
    /// Cap on the summed planned inference cost of one micro-batch, in the
    /// same deterministic units as `deadline_budget`. A batch always takes
    /// at least one request, so a tiny cap degrades to unbatched serving
    /// rather than stalling.
    pub batch_cost_budget: u64,
    /// Capacity of the drift quarantine buffer (and of the recent-answer
    /// window scored by ground-truth feedback). 0 disables capture.
    pub quarantine_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 32,
            shed_watermark: 24,
            deadline_budget: u64::MAX,
            max_tokens: 64,
            seed: 17,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            max_batch: 1,
            batch_cost_budget: u64::MAX,
            quarantine_capacity: 256,
        }
    }
}

/// Who produced a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Responder {
    /// The foundation-model classifier.
    Model,
    /// The degradation baseline.
    Fallback,
}

/// One answered request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Flow index within the serve call's assembly order.
    pub flow: usize,
    /// Predicted class id.
    pub class: usize,
    /// Who answered.
    pub responder: Responder,
    /// Deadline-budget cost units spent (inference plus retry backoff).
    pub cost: u64,
    /// Model retries attempted for this request.
    pub retries: usize,
    /// True when the model path was abandoned for running out of budget.
    pub deadline_missed: bool,
}

/// Availability accounting for the serve path. All counters are integers,
/// so two runs with the same seed agree exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests that reached admission control.
    pub arrived: usize,
    /// Requests admitted to the queue.
    pub admitted: usize,
    /// Requests shed by admission control (watermark or capacity).
    pub shed: usize,
    /// Admitted requests answered by the model.
    pub answered_model: usize,
    /// Admitted requests answered by the fallback baseline.
    pub answered_fallback: usize,
    /// Requests whose model path ran out of deadline budget.
    pub deadline_misses: usize,
    /// Model attempts that produced non-finite logits.
    pub model_failures: usize,
    /// Model retries attempted across all requests.
    pub retries: usize,
    /// Circuit-breaker trips (to open).
    pub breaker_trips: usize,
    /// Circuit-breaker recoveries (half-open probes closing it).
    pub breaker_recoveries: usize,
    /// Capture packets that failed to parse during ingest.
    pub malformed_packets: usize,
    /// Flows assembled from parseable packets.
    pub flows_assembled: usize,
    /// Flows dropped because no packet produced any tokens.
    pub empty_contexts: usize,
    /// Deepest queue occupancy observed after an admission.
    pub queue_peak: usize,
    /// Times the drift detector newly tripped (score or feedback signal).
    pub drift_trips: usize,
    /// Examples captured into the quarantine buffer (cumulative offers,
    /// including feedback-driven recaptures; the buffer itself is bounded).
    pub quarantined: usize,
}

impl ServeStats {
    /// Answered requests (model plus fallback).
    pub fn answered(&self) -> usize {
        self.answered_model + self.answered_fallback
    }

    /// Fraction of arrivals that received an answer (1.0 when nothing
    /// arrived).
    pub fn availability(&self) -> f64 {
        if self.arrived == 0 {
            1.0
        } else {
            self.answered() as f64 / self.arrived as f64
        }
    }

    /// Fraction of arrivals shed by admission control.
    pub fn shed_rate(&self) -> f64 {
        if self.arrived == 0 {
            0.0
        } else {
            self.shed as f64 / self.arrived as f64
        }
    }
}

/// The set of task lanes a request fans out to, as a bitmask (bit `k` =
/// task `k`; up to 64 lanes). Single-task engines ignore it; a
/// [`MultiTaskServer`] runs the shared encoder once and answers exactly
/// the selected tasks. Defaults to every task, so single-task callers
/// never have to think about it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskSet(u64);

impl TaskSet {
    /// Every task lane.
    pub const ALL: TaskSet = TaskSet(u64::MAX);

    /// The single task `k` (clamped to the 64 supported lanes).
    pub fn only(k: usize) -> TaskSet {
        TaskSet(1u64 << k.min(63))
    }

    /// A set from a raw bitmask (bit `k` = task `k`), e.g. one entry of
    /// [`nfm_traffic::faults::task_mask_schedule`]. An empty mask is kept
    /// as-is: the request fans out to no lane and produces no response.
    pub fn from_mask(mask: u64) -> TaskSet {
        TaskSet(mask)
    }

    /// The raw bitmask.
    pub fn mask(&self) -> u64 {
        self.0
    }

    /// Whether task `k` is selected.
    pub fn contains(&self, k: usize) -> bool {
        k < 64 && self.0 & (1u64 << k) != 0
    }

    /// Selected tasks among the first `n_tasks` lanes.
    pub fn count(&self, n_tasks: usize) -> usize {
        (0..n_tasks.min(64)).filter(|&k| self.contains(k)).count()
    }
}

impl Default for TaskSet {
    fn default() -> Self {
        TaskSet::ALL
    }
}

/// One classifiable unit of work: a flow and its token context. Built by
/// [`assemble_requests`], routed by a cluster supervisor, and offered to an
/// engine via [`ServeEngine::submit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeRequest {
    /// Flow index within its capture's assembly order.
    pub flow: usize,
    /// Token context for the flow.
    pub tokens: Vec<String>,
    /// Task lanes this request fans out to (multi-task serving only).
    pub tasks: TaskSet,
}

/// Ingest accounting from [`assemble_requests`]. All-integer, so two runs
/// over the same capture agree exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Capture packets that failed to parse.
    pub malformed_packets: usize,
    /// Flows assembled from parseable packets.
    pub flows_assembled: usize,
    /// Flows dropped because no packet produced any tokens.
    pub empty_contexts: usize,
}

/// Assemble flows from a capture and build one request per flow with a
/// non-empty token context. Unparseable packets are counted and skipped —
/// never a panic — which is exactly the corrupted/truncated regime the chaos
/// harnesses drive. Factored out of [`ServeEngine`] so a cluster supervisor
/// can assemble a capture once and route each request to a replica.
pub fn assemble_requests(
    trace: &Trace,
    tokenizer: &dyn Tokenizer,
    max_tokens: usize,
) -> (Vec<ServeRequest>, IngestStats) {
    let mut stats = IngestStats::default();
    let mut table = FlowTable::new();
    for (i, tp) in trace.packets().iter().enumerate() {
        match tp.parse() {
            Ok(parsed) => table.push(i, tp.ts_us, &parsed),
            Err(_) => {
                stats.malformed_packets += 1;
                nfm_obs::counter!("serve.malformed_packets").inc();
            }
        }
    }
    stats.flows_assembled = table.len();
    nfm_obs::counter!("serve.flows_assembled").add(table.len() as u64);
    let mut requests = Vec::with_capacity(table.len());
    for (flow_idx, flow) in table.flows().iter().enumerate() {
        let packets: Vec<TracePacket> =
            flow.packets.iter().map(|fp| trace.packets()[fp.index].clone()).collect();
        let tokens = flow_context(&packets, tokenizer, max_tokens);
        if tokens.is_empty() {
            stats.empty_contexts += 1;
            nfm_obs::counter!("serve.empty_contexts").inc();
            continue;
        }
        requests.push(ServeRequest { flow: flow_idx, tokens, tasks: TaskSet::ALL });
    }
    (requests, stats)
}

/// A bounded capture buffer for drifted traffic: examples the drift monitor
/// flags are held here (with the model's own predictions as heuristic
/// labels until ground-truth feedback relabels them) to seed background
/// adaptation. Eviction is uniform reservoir sampling (Algorithm R) under a
/// seeded RNG, so the retained set over any offer stream is reproducible
/// and no traffic era can monopolize the buffer.
#[derive(Debug, Clone)]
pub struct QuarantineBuffer {
    capacity: usize,
    items: Vec<TextExample>,
    rng: StdRng,
    offered: u64,
    evicted: u64,
}

impl QuarantineBuffer {
    /// New buffer; a capacity of 0 disables capture entirely.
    pub fn new(capacity: usize, seed: u64) -> QuarantineBuffer {
        QuarantineBuffer {
            capacity,
            items: Vec::with_capacity(capacity.min(1024)),
            rng: StdRng::seed_from_u64(seed ^ 0x0D_u64.rotate_left(48)),
            offered: 0,
            evicted: 0,
        }
    }

    /// Offer one example. While below capacity it is always kept; past
    /// capacity it replaces a uniformly drawn resident with probability
    /// `capacity / offered` (reservoir sampling), so every offer in the
    /// stream is retained with equal probability.
    pub fn offer(&mut self, example: TextExample) {
        self.offered += 1;
        if self.items.len() < self.capacity {
            self.items.push(example);
            return;
        }
        self.evicted += 1;
        if self.capacity == 0 {
            return;
        }
        let slot = self.rng.gen_range(0..self.offered);
        if (slot as usize) < self.capacity {
            self.items[slot as usize] = example;
        }
    }

    /// Take every captured example, leaving the buffer empty and starting a
    /// fresh reservoir epoch (the offer counter restarts so post-drain
    /// traffic is sampled uniformly among itself).
    pub fn drain(&mut self) -> Vec<TextExample> {
        self.offered = 0;
        std::mem::take(&mut self.items)
    }

    /// Captured examples, oldest slot first.
    pub fn items(&self) -> &[TextExample] {
        &self.items
    }

    /// Mutable captured examples — the feedback path relabels in place.
    pub fn items_mut(&mut self) -> &mut [TextExample] {
        &mut self.items
    }

    /// Currently held examples.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer holds nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Examples offered since the last drain.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Offers that displaced (or failed to displace) a resident — i.e.
    /// offers arriving while the buffer was full.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }
}

/// The synchronous streaming inference engine. See the module docs for the
/// robustness controls; see [`ServeEngine::serve_trace`] for the lifecycle.
pub struct ServeEngine {
    clf: FmClassifier,
    fallback: Fallback,
    config: ServeConfig,
    breaker: CircuitBreaker,
    shed_rng: StdRng,
    stats: ServeStats,
    queue: VecDeque<ServeRequest>,
    arena: ScratchArena,
    drift: Option<DriftMonitor>,
    quarantine: QuarantineBuffer,
    /// Recent model-answered requests (label = the model's prediction)
    /// awaiting ground-truth feedback; bounded by `quarantine_capacity`.
    recent: VecDeque<TextExample>,
}

impl ServeEngine {
    /// Build an engine around a fine-tuned classifier and a fallback tier.
    /// A zero queue capacity is promoted to 1 (a queue that admits nothing
    /// cannot serve anything).
    pub fn new(clf: FmClassifier, fallback: Fallback, config: ServeConfig) -> ServeEngine {
        let mut config = config;
        config.queue_capacity = config.queue_capacity.max(1);
        ServeEngine {
            breaker: CircuitBreaker::new(config.breaker),
            shed_rng: StdRng::seed_from_u64(config.seed ^ 0x5E_u64.rotate_left(40)),
            stats: ServeStats::default(),
            queue: VecDeque::with_capacity(config.queue_capacity),
            arena: ScratchArena::new(),
            drift: None,
            quarantine: QuarantineBuffer::new(config.quarantine_capacity, config.seed),
            recent: VecDeque::new(),
            clf,
            fallback,
            config,
        }
    }

    /// Cumulative statistics (breaker counters folded in).
    pub fn stats(&self) -> ServeStats {
        let mut s = self.stats;
        s.breaker_trips = self.breaker.trips;
        s.breaker_recoveries = self.breaker.recoveries;
        s
    }

    /// The circuit breaker (for inspection).
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Mutable access to the served model — the hot-swap/chaos hook. An
    /// operator (or a chaos harness) can poison or replace weights between
    /// [`ServeEngine::serve_trace`] calls; the breaker and fallback decide
    /// what traffic notices.
    pub fn model_mut(&mut self) -> &mut FmClassifier {
        &mut self.clf
    }

    /// The served model.
    pub fn model(&self) -> &FmClassifier {
        &self.clf
    }

    /// Swap in a replacement model — the warm-restart path. The breaker is
    /// re-armed (the old model's failure streak says nothing about the new
    /// weights) but its cumulative trip/recovery counters are preserved so
    /// [`ServeEngine::stats`] stays monotonic across restarts.
    pub fn replace_model(&mut self, clf: FmClassifier) {
        self.clf = clf;
        let (trips, recoveries) = (self.breaker.trips, self.breaker.recoveries);
        self.breaker = CircuitBreaker::new(self.config.breaker);
        self.breaker.trips = trips;
        self.breaker.recoveries = recoveries;
    }

    /// Arm (or replace) the streaming drift monitor: every model-answered
    /// request is scored, suspicious traffic is quarantined, and trips are
    /// surfaced via [`ServeStats::drift_trips`] and `drift.*` telemetry.
    pub fn enable_drift(&mut self, monitor: DriftMonitor) {
        self.drift = Some(monitor);
    }

    /// The drift monitor, if armed.
    pub fn drift_monitor(&self) -> Option<&DriftMonitor> {
        self.drift.as_ref()
    }

    /// Mutable drift monitor — the adaptation layer re-arms tests here.
    pub fn drift_monitor_mut(&mut self) -> Option<&mut DriftMonitor> {
        self.drift.as_mut()
    }

    /// The quarantine buffer of drift-flagged traffic.
    pub fn quarantine(&self) -> &QuarantineBuffer {
        &self.quarantine
    }

    /// Mutable quarantine buffer — the adaptation layer drains it for
    /// fine-tuning.
    pub fn quarantine_mut(&mut self) -> &mut QuarantineBuffer {
        &mut self.quarantine
    }

    /// Apply delayed ground-truth labels. `truth` maps a token context to
    /// its true class when the oracle knows it. Quarantined examples are
    /// relabeled in place; every recent model answer with known truth feeds
    /// the label-drift (feedback error) test, and misclassified answers are
    /// captured into quarantine under their true label. Returns how many
    /// times the detector newly tripped.
    pub fn record_feedback(&mut self, truth: &dyn Fn(&[String]) -> Option<usize>) -> usize {
        if self.drift.is_none() {
            self.recent.clear();
            return 0;
        }
        for ex in self.quarantine.items_mut() {
            if let Some(t) = truth(&ex.tokens) {
                ex.label = t;
            }
        }
        let mut trips = 0usize;
        while let Some(ex) = self.recent.pop_front() {
            let Some(t) = truth(&ex.tokens) else { continue };
            let correct = t == ex.label;
            nfm_obs::counter!("drift.feedback").inc();
            let newly =
                self.drift.as_mut().map(|mon| mon.observe_feedback(correct)).unwrap_or(false);
            if !correct {
                nfm_obs::counter!("drift.feedback_errors").inc();
                self.stats.quarantined += 1;
                nfm_obs::counter!("drift.quarantined").inc();
                self.quarantine.offer(TextExample { tokens: ex.tokens, label: t });
            }
            if newly {
                trips += 1;
                self.stats.drift_trips += 1;
                nfm_obs::counter!("drift.trips").inc();
                let level = self.drift.as_ref().map(|m| m.level_milli()).unwrap_or(0);
                nfm_obs::event(
                    "drift.trip",
                    &[
                        ("signal", nfm_obs::Value::S("feedback")),
                        ("level_milli", nfm_obs::Value::U(level.max(0) as u64)),
                    ],
                );
            }
        }
        trips
    }

    /// Current per-request deadline budget, in deterministic cost units.
    pub fn deadline_budget(&self) -> u64 {
        self.config.deadline_budget
    }

    /// Replace the per-request deadline budget. The cluster layer models a
    /// stalled replica by shrinking its budget: every cost unit takes
    /// `factor`× as long on a slow box, so the wall-clock deadline buys
    /// `1/factor` of the compute.
    pub fn set_deadline_budget(&mut self, budget: u64) {
        self.config.deadline_budget = budget;
    }

    /// Offer one pre-assembled request to admission control — the cluster
    /// routing entry point. Drain answered work with
    /// [`ServeEngine::drain_queue`].
    pub fn submit(&mut self, request: ServeRequest) {
        self.offer(request);
    }

    /// Answer one request immediately, bypassing the admission queue (and
    /// its shedding) entirely — the cluster layer's hedge path. Requests
    /// already queued on this engine are untouched, and the returned
    /// response always belongs to `request`'s flow.
    pub fn serve_one(&mut self, request: ServeRequest) -> Response {
        self.answer(request, None)
    }

    /// Answer every queued request, in admission order. With
    /// `max_batch > 1` the queue drains in micro-batches: each batch's
    /// token sequences run through the model as one packed forward pass
    /// ([`FmClassifier::logits_batch_within`]) with scratch buffers reused
    /// across batches, and every request is then settled individually
    /// against the breaker/retry/deadline state machine. Responses and
    /// statistics are bitwise identical to serving the same requests one
    /// at a time via [`ServeEngine::serve_one`].
    pub fn drain_queue(&mut self) -> Vec<Response> {
        let mut responses = Vec::with_capacity(self.queue.len());
        if self.config.max_batch <= 1 {
            while let Some(req) = self.queue.pop_front() {
                responses.push(self.answer(req, None));
            }
            return responses;
        }
        while !self.queue.is_empty() {
            let batch = self.next_batch();
            let precomputed = self.run_batch(&batch);
            for (req, pre) in batch.into_iter().zip(precomputed) {
                responses.push(self.answer(req, pre));
            }
        }
        responses
    }

    /// Pop the next micro-batch off the queue: up to `max_batch` requests
    /// whose summed planned inference cost (the same deterministic units
    /// as `deadline_budget`) stays within `batch_cost_budget`. The first
    /// request of a batch is always taken, so an over-budget single
    /// request degrades to unbatched serving rather than wedging the
    /// queue.
    fn next_batch(&mut self) -> Vec<ServeRequest> {
        let mut batch = Vec::new();
        let mut planned = 0u64;
        while batch.len() < self.config.max_batch {
            let Some(front) = self.queue.front() else { break };
            let cost = self.clf.inference_cost(front.tokens.len());
            if !batch.is_empty() && planned.saturating_add(cost) > self.config.batch_cost_budget {
                break;
            }
            planned = planned.saturating_add(cost);
            batch.push(self.queue.pop_front().expect("front() was Some"));
        }
        batch
    }

    /// Run one micro-batch through the packed forward pass, returning the
    /// per-request model outcome to replay inside [`ServeEngine::answer`].
    /// `None` entries mean "compute lazily": a single-request batch gains
    /// nothing from packing, and while the breaker is open most requests
    /// will be denied before ever touching the model, so eager batch
    /// compute would be wasted work (the half-open probe computes lazily
    /// and identically).
    #[allow(clippy::type_complexity)]
    fn run_batch(
        &mut self,
        batch: &[ServeRequest],
    ) -> Vec<Option<Result<(Vec<f32>, u64), InferError>>> {
        if batch.len() <= 1 || self.breaker.state() == BreakerState::Open {
            return batch.iter().map(|_| None).collect();
        }
        let tokens: Vec<&[String]> = batch.iter().map(|r| r.tokens.as_slice()).collect();
        let budget = self.config.deadline_budget;
        let results = self.clf.logits_batch_within(&tokens, budget, &mut self.arena);
        nfm_obs::counter!("serve.batch.count").inc();
        nfm_obs::counter!("serve.batch.requests").add(batch.len() as u64);
        nfm_obs::histogram!("serve.batch.size", nfm_obs::Unit::Count, BATCH_SIZE_EDGES)
            .observe(batch.len() as u64);
        results.into_iter().map(Some).collect()
    }

    /// Assemble `trace` into requests via [`assemble_requests`], folding the
    /// ingest accounting into this engine's statistics.
    fn ingest(&mut self, trace: &Trace, tokenizer: &dyn Tokenizer) -> Vec<ServeRequest> {
        let (requests, ingest) = assemble_requests(trace, tokenizer, self.config.max_tokens);
        self.stats.malformed_packets += ingest.malformed_packets;
        self.stats.flows_assembled += ingest.flows_assembled;
        self.stats.empty_contexts += ingest.empty_contexts;
        requests
    }

    /// Admission control for one arrival. Below the watermark the request
    /// is admitted; between watermark and capacity it is shed with a
    /// probability that rises linearly with occupancy (seeded RNG, so the
    /// decision sequence is reproducible); at capacity it is always shed.
    fn offer(&mut self, request: ServeRequest) {
        self.stats.arrived += 1;
        let occupancy = self.queue.len();
        let capacity = self.config.queue_capacity;
        let watermark = self.config.shed_watermark.min(capacity);
        let shed = if occupancy >= capacity {
            true
        } else if occupancy >= watermark {
            let band = (capacity - watermark + 1) as f64;
            let depth = (occupancy - watermark + 1) as f64;
            self.shed_rng.gen_bool(depth / band)
        } else {
            false
        };
        nfm_obs::counter!("serve.arrived").inc();
        if shed {
            self.stats.shed += 1;
            nfm_obs::counter!("serve.shed").inc();
        } else {
            self.stats.admitted += 1;
            self.queue.push_back(request);
            self.stats.queue_peak = self.stats.queue_peak.max(self.queue.len());
            nfm_obs::counter!("serve.admitted").inc();
        }
        nfm_obs::gauge!("serve.queue.depth").set(self.queue.len() as f64);
    }

    /// Answer one admitted request: model first (under the breaker, the
    /// deadline budget, and the retry policy), fallback otherwise. Always
    /// returns a response.
    ///
    /// `pre` is an optional precomputed model outcome from the batched
    /// forward pass, evaluated at the full `deadline_budget`. Because the
    /// model is deterministic, every retry of the single-request path
    /// recomputes the exact same logits at the exact same cost, so one
    /// budget-level result replays the whole retry ladder: an attempt with
    /// `remaining` budget succeeds iff the precomputed cost fits, and
    /// fails with a deadline error otherwise (the serve state machine
    /// matches the error variant only, so the replayed error's accounting
    /// fields never influence a response). With `pre = None` the model is
    /// invoked lazily — and only if the breaker admits the request.
    /// Score one model answer against the drift monitor (when armed):
    /// quarantine suspicious traffic, remember the answer for delayed
    /// feedback, and surface trips. The monitor's embedding forward pass is
    /// monitoring overhead — it is not charged against the request's
    /// deadline budget, which covers only the serving-path inference.
    fn score_drift(&mut self, request: &ServeRequest, class: usize, logits: &[f32]) {
        let Some(mon) = self.drift.as_mut() else { return };
        let obs = mon.observe(&self.clf, &request.tokens, logits);
        nfm_obs::counter!("drift.scored").inc();
        nfm_obs::histogram!("drift.score_milli", nfm_obs::Unit::Milli, DRIFT_EDGES)
            .observe(obs.score_milli.max(0) as u64);
        nfm_obs::gauge!("drift.level_milli").set(mon.level_milli() as f64);
        if obs.tripped_now {
            self.stats.drift_trips += 1;
            nfm_obs::counter!("drift.trips").inc();
            nfm_obs::event(
                "drift.trip",
                &[
                    ("signal", nfm_obs::Value::S("score")),
                    ("observed", nfm_obs::Value::U(mon.observed())),
                    ("level_milli", nfm_obs::Value::U(mon.level_milli().max(0) as u64)),
                ],
            );
        }
        if obs.quarantine {
            self.stats.quarantined += 1;
            nfm_obs::counter!("drift.quarantined").inc();
            self.quarantine.offer(TextExample { tokens: request.tokens.clone(), label: class });
        }
        if self.config.quarantine_capacity > 0 {
            self.recent.push_back(TextExample { tokens: request.tokens.clone(), label: class });
            while self.recent.len() > self.config.quarantine_capacity {
                self.recent.pop_front();
            }
        }
    }

    fn answer(
        &mut self,
        request: ServeRequest,
        pre: Option<Result<(Vec<f32>, u64), InferError>>,
    ) -> Response {
        let budget = self.config.deadline_budget;
        let mut remaining = budget;
        let mut retries_used = 0usize;
        let mut deadline_missed = false;
        if self.breaker.try_acquire() {
            let pre = pre.unwrap_or_else(|| self.clf.logits_within(&request.tokens, budget));
            loop {
                let attempt = match &pre {
                    Ok((logits, cost)) => {
                        if *cost <= remaining {
                            Ok((logits.clone(), *cost))
                        } else {
                            Err(InferError::DeadlineExceeded {
                                spent: 0,
                                needed: *cost,
                                budget: remaining,
                            })
                        }
                    }
                    Err(e) => Err(e.clone()),
                };
                match attempt {
                    Ok((logits, spent)) => {
                        remaining = remaining.saturating_sub(spent);
                        if logits.iter().all(|v| v.is_finite()) {
                            self.breaker.on_success();
                            self.stats.answered_model += 1;
                            nfm_obs::counter!("serve.answered_model").inc();
                            nfm_obs::histogram!(
                                "serve.request.cost",
                                nfm_obs::Unit::Cost,
                                nfm_obs::COST_EDGES
                            )
                            .observe(budget - remaining);
                            let class = argmax_nan_tolerant(&logits);
                            self.score_drift(&request, class, &logits);
                            return Response {
                                flow: request.flow,
                                class,
                                responder: Responder::Model,
                                cost: budget - remaining,
                                retries: retries_used,
                                deadline_missed: false,
                            };
                        }
                        // Non-finite logits: the model itself is unhealthy
                        // (e.g. NaN-poisoned weights). Retry within budget,
                        // then report one failure to the breaker.
                        self.stats.model_failures += 1;
                        nfm_obs::counter!("serve.model_failures").inc();
                        if retries_used < self.config.retry.max_retries {
                            let backoff = self.config.retry.backoff_cost(retries_used);
                            retries_used += 1;
                            self.stats.retries += 1;
                            nfm_obs::counter!("serve.retries").inc();
                            if remaining <= backoff {
                                deadline_missed = true;
                                self.stats.deadline_misses += 1;
                                nfm_obs::counter!("serve.deadline_misses").inc();
                                self.breaker.on_failure();
                                break;
                            }
                            remaining -= backoff;
                            continue;
                        }
                        self.breaker.on_failure();
                        break;
                    }
                    Err(InferError::DeadlineExceeded { .. }) => {
                        // A deadline miss is load, not model health: the
                        // fallback answers but the breaker is not charged.
                        deadline_missed = true;
                        self.stats.deadline_misses += 1;
                        nfm_obs::counter!("serve.deadline_misses").inc();
                        break;
                    }
                    Err(InferError::EmptyInput) => break,
                }
            }
        }
        self.stats.answered_fallback += 1;
        nfm_obs::counter!("serve.answered_fallback").inc();
        nfm_obs::histogram!("serve.request.cost", nfm_obs::Unit::Cost, nfm_obs::COST_EDGES)
            .observe(budget - remaining);
        Response {
            flow: request.flow,
            class: self.fallback.predict(&request.tokens),
            responder: Responder::Fallback,
            cost: budget - remaining,
            retries: retries_used,
            deadline_missed,
        }
    }

    /// Serve every flow in `trace`. `schedule` groups arrivals into bursts
    /// (e.g. from [`nfm_traffic::faults::burst_schedule`]): all requests of
    /// a burst hit admission control before the queue drains, so bursts —
    /// not average load — drive shedding. A short (or empty) schedule makes
    /// the remaining requests arrive one by one. Statistics accumulate
    /// across calls, which is how a chaos harness interleaves traffic with
    /// weight poisoning/healing.
    ///
    /// Every admitted request gets exactly one [`Response`]; the method
    /// never panics on malformed capture bytes.
    pub fn serve_trace(
        &mut self,
        trace: &Trace,
        tokenizer: &dyn Tokenizer,
        schedule: &[usize],
    ) -> Vec<Response> {
        let requests = self.ingest(trace, tokenizer);
        let mut responses = Vec::with_capacity(requests.len());
        let mut pending = requests.into_iter();
        let mut exhausted = false;
        for &burst in schedule {
            for _ in 0..burst {
                match pending.next() {
                    Some(r) => self.offer(r),
                    None => {
                        exhausted = true;
                        break;
                    }
                }
            }
            responses.append(&mut self.drain_queue());
            if exhausted {
                break;
            }
        }
        for request in pending {
            self.offer(request);
            responses.append(&mut self.drain_queue());
        }
        responses
    }
}

/// All-integer accounting for the shared fan-out path of a
/// [`MultiTaskServer`] — the compute-sharing ledger on top of the
/// per-task [`ServeStats`]. `head_rows` is what K independent engines
/// would have paid in *encoder* forwards; `encoder_rows` is what the
/// shared backbone actually ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MultiTaskStats {
    /// Fan-out requests submitted to the server.
    pub submitted: usize,
    /// `(request, task)` pairs offered to per-task admission control.
    pub lane_offers: usize,
    /// Shared micro-batches run through the packed encoder forward.
    pub batches: usize,
    /// Packed encoder rows computed (one per distinct flow per batch).
    pub encoder_rows: usize,
    /// Per-task head rows computed across all lanes.
    pub head_rows: usize,
}

/// Multi-task serving with shared-encoder fan-out: one frozen
/// [`FmBackbone`] plus K lightweight [`TaskHead`]s, so answering K tasks
/// for a flow costs ~1 packed encoder forward + K head GEMMs instead of
/// K encoder forwards — the paper's amortization argument (§3) at
/// serving time.
///
/// Semantically the server is K independent [`ServeEngine`]s (the
/// *lanes*), one per task, each with its own admission queue, shed RNG,
/// circuit breaker, retry/deadline state machine, [`ServeStats`], drift
/// monitor, and quarantine buffer — all seeded exactly as a standalone
/// engine with the same [`ServeConfig`] would be. Only the *compute* is
/// shared: [`MultiTaskServer::drain`] collects every lane's queued work,
/// runs the packed encoder forward once per distinct flow
/// ([`FmBackbone::pooled_batch_within`], pooled embeddings cached in the
/// engine's [`ScratchArena`]), fans the pooled rows out to each task's
/// head, and replays each lane's answers through the unchanged
/// [`ServeEngine`] state machine. Responses and statistics are therefore
/// bitwise identical to K standalone engines fed the same per-task
/// request streams — the invariant `exp_e19` and the multi-task
/// proptests assert.
///
/// Per-request deadline budgets stay per-task-honest: each lane's answer
/// is charged its own encoder spend plus its own head cost, exactly as
/// its standalone engine would charge, while the shared micro-batch is
/// capped by the *true fan-out cost* (encoder once + every selected
/// head) against `batch_cost_budget`.
pub struct MultiTaskServer {
    backbone: FmBackbone,
    heads: Vec<TaskHead>,
    lanes: Vec<ServeEngine>,
    arena: ScratchArena,
    config: ServeConfig,
    stats: MultiTaskStats,
}

impl MultiTaskServer {
    /// Build a fan-out server from a shared backbone and one
    /// `(head, fallback)` pair per task. Lane `k` serves task `k` with
    /// exactly the state a standalone [`ServeEngine`] over
    /// [`FmBackbone::attach`]`(&heads[k])` would have. At most 64 tasks
    /// (the [`TaskSet`] width) are kept; extras are dropped.
    pub fn new(
        backbone: FmBackbone,
        tasks: Vec<(TaskHead, Fallback)>,
        config: ServeConfig,
    ) -> MultiTaskServer {
        let mut config = config;
        config.queue_capacity = config.queue_capacity.max(1);
        let mut tasks = tasks;
        tasks.truncate(64);
        let mut heads = Vec::with_capacity(tasks.len());
        let mut lanes = Vec::with_capacity(tasks.len());
        for (head, fallback) in tasks {
            lanes.push(ServeEngine::new(backbone.attach(&head), fallback, config));
            heads.push(head);
        }
        MultiTaskServer {
            backbone,
            heads,
            lanes,
            arena: ScratchArena::new(),
            config,
            stats: MultiTaskStats::default(),
        }
    }

    /// Number of task lanes.
    pub fn n_tasks(&self) -> usize {
        self.lanes.len()
    }

    /// Task names, lane order.
    pub fn task_names(&self) -> Vec<&str> {
        self.heads.iter().map(|h| h.name.as_str()).collect()
    }

    /// The shared backbone.
    pub fn backbone(&self) -> &FmBackbone {
        &self.backbone
    }

    /// Task `k`'s head.
    pub fn head(&self, k: usize) -> Option<&TaskHead> {
        self.heads.get(k)
    }

    /// Task `k`'s serving lane (for inspection: breaker, drift monitor,
    /// quarantine). Lane model mutation must go through
    /// [`MultiTaskServer::replace_head`] so the lane's classifier and the
    /// fan-out head stay the same weights.
    pub fn lane(&self, k: usize) -> Option<&ServeEngine> {
        self.lanes.get(k)
    }

    /// Cumulative per-task statistics, lane order — each entry is what
    /// the corresponding standalone engine would report.
    pub fn task_stats(&self) -> Vec<ServeStats> {
        self.lanes.iter().map(|l| l.stats()).collect()
    }

    /// The shared fan-out compute ledger.
    pub fn stats(&self) -> MultiTaskStats {
        self.stats
    }

    /// Deterministic cost (multiply-accumulate units) of fanning one
    /// `n_tokens`-token request out to the selected `tasks`: the shared
    /// encoder forward once, plus each selected head. This is the true
    /// marginal cost of the request, and what the shared micro-batch
    /// charges against `batch_cost_budget`.
    pub fn fanout_cost(&self, n_tokens: usize, tasks: TaskSet) -> u64 {
        let d_model = self.backbone.d_model();
        let heads: u64 = self
            .heads
            .iter()
            .enumerate()
            .filter(|&(k, _)| tasks.contains(k))
            .map(|(_, h)| h.head_cost(d_model))
            .sum();
        self.backbone.encoder_cost(n_tokens).saturating_add(heads)
    }

    /// Replace the per-request deadline budget on every lane (see
    /// [`ServeEngine::set_deadline_budget`]).
    pub fn set_deadline_budget(&mut self, budget: u64) {
        self.config.deadline_budget = budget;
        for lane in &mut self.lanes {
            lane.set_deadline_budget(budget);
        }
    }

    /// Arm (or replace) task `k`'s drift monitor — monitors are per task,
    /// so one task drifting never trips or quarantines another.
    pub fn enable_drift(&mut self, k: usize, monitor: DriftMonitor) {
        if let Some(lane) = self.lanes.get_mut(k) {
            lane.enable_drift(monitor);
        }
    }

    /// Task `k`'s quarantine buffer of drift-flagged traffic.
    pub fn quarantine(&self, k: usize) -> Option<&QuarantineBuffer> {
        self.lanes.get(k).map(|l| l.quarantine())
    }

    /// Mutable quarantine buffer for task `k` — the per-head adaptation
    /// path drains exactly one task's capture.
    pub fn quarantine_mut(&mut self, k: usize) -> Option<&mut QuarantineBuffer> {
        self.lanes.get_mut(k).map(|l| l.quarantine_mut())
    }

    /// Apply delayed ground-truth labels for task `k` only (see
    /// [`ServeEngine::record_feedback`]); labels for one task never feed
    /// another task's label-drift test. Returns how many times task `k`'s
    /// detector newly tripped.
    pub fn record_feedback(
        &mut self,
        k: usize,
        truth: &dyn Fn(&[String]) -> Option<usize>,
    ) -> usize {
        self.lanes.get_mut(k).map(|l| l.record_feedback(truth)).unwrap_or(0)
    }

    /// Hot-swap task `k`'s head — the single-head rollout path: the lane's
    /// classifier is rebuilt from the unchanged shared backbone plus the
    /// new head (breaker re-armed exactly like
    /// [`ServeEngine::replace_model`]), and no other lane is touched, so
    /// every other task's answers stay bitwise identical.
    pub fn replace_head(&mut self, k: usize, head: TaskHead) {
        if k >= self.heads.len() {
            return;
        }
        self.lanes[k].replace_model(self.backbone.attach(&head));
        self.heads[k] = head;
    }

    /// Offer one request to the admission control of every lane in its
    /// [`TaskSet`]. Each lane decides shedding independently with its own
    /// seeded RNG — exactly the decision a standalone engine receiving
    /// that task's request stream would make.
    pub fn submit(&mut self, request: ServeRequest) {
        self.stats.submitted += 1;
        nfm_obs::counter!("serve.task.submitted").inc();
        let fanout = request.tasks.count(self.lanes.len());
        nfm_obs::histogram!("serve.task.fanout", nfm_obs::Unit::Count, BATCH_SIZE_EDGES)
            .observe(fanout as u64);
        for k in 0..self.lanes.len() {
            if request.tasks.contains(k) {
                self.stats.lane_offers += 1;
                nfm_obs::counter!("serve.task.lane_offers").inc();
                self.lanes[k].offer(request.clone());
            }
        }
    }

    /// Answer every queued request on every lane. Returns one response
    /// vector per task (lane order), each in that lane's admission order
    /// and bitwise identical to what the corresponding standalone engine's
    /// [`ServeEngine::drain_queue`] would return.
    ///
    /// The drain dissolves the lanes' queues into a list of *distinct*
    /// flows, chunks it into shared micro-batches (up to `max_batch`
    /// flows whose summed [`MultiTaskServer::fanout_cost`] fits
    /// `batch_cost_budget`; the first flow is always taken), runs the
    /// packed encoder forward once per chunk with pooled embeddings
    /// cached in the scratch arena, gathers each task's pending rows out
    /// of the pooled cache ([`ScratchArena::take_gather`]) for one head
    /// GEMM per task per chunk, and finally replays every lane's answers
    /// in admission order through the unchanged breaker/retry/deadline
    /// state machine.
    pub fn drain(&mut self) -> Vec<Vec<Response>> {
        let mut out: Vec<Vec<Response>> = self.lanes.iter().map(|_| Vec::new()).collect();
        // Dissolve every lane's queue (admission order preserved per lane).
        let pending: Vec<Vec<ServeRequest>> =
            self.lanes.iter_mut().map(|l| l.queue.drain(..).collect()).collect();
        if pending.iter().all(|p| p.is_empty()) {
            return out;
        }
        // Distinct flows in first-appearance order, with the union of the
        // lanes that queued each one.
        let mut uniq: Vec<ServeRequest> = Vec::new();
        let mut need: Vec<u64> = Vec::new();
        let mut index: std::collections::HashMap<(usize, Vec<String>), usize> =
            std::collections::HashMap::new();
        let mut uniq_of: Vec<Vec<usize>> = Vec::with_capacity(pending.len());
        for (k, reqs) in pending.iter().enumerate() {
            let mut map = Vec::with_capacity(reqs.len());
            for r in reqs {
                let key = (r.flow, r.tokens.clone());
                let u = *index.entry(key).or_insert_with(|| {
                    uniq.push(r.clone());
                    need.push(0);
                    uniq.len() - 1
                });
                need[u] |= 1u64 << k;
                map.push(u);
            }
            uniq_of.push(map);
        }
        // Per-(lane, unique) precomputed outcomes, filled chunk by chunk.
        let budget = self.config.deadline_budget;
        let d_model = self.backbone.d_model();
        let mut lane_pre: Vec<std::collections::HashMap<usize, CostedLogits>> =
            self.lanes.iter().map(|_| std::collections::HashMap::new()).collect();
        let max_batch = self.config.max_batch.max(1);
        let mut start = 0usize;
        while start < uniq.len() {
            // Chunk boundary: mirror `next_batch`, but charge the true
            // fan-out cost of each flow (encoder once + selected heads).
            let mut end = start + 1;
            let mut planned =
                self.fanout_cost(uniq[start].tokens.len(), TaskSet::from_mask(need[start]));
            while end < uniq.len() && end - start < max_batch {
                let cost = self.fanout_cost(uniq[end].tokens.len(), TaskSet::from_mask(need[end]));
                if planned.saturating_add(cost) > self.config.batch_cost_budget {
                    break;
                }
                planned = planned.saturating_add(cost);
                end += 1;
            }
            let chunk = &uniq[start..end];
            let tokens: Vec<&[String]> = chunk.iter().map(|r| r.tokens.as_slice()).collect();
            let pb = self.backbone.pooled_batch_within(&tokens, budget, &mut self.arena);
            self.stats.batches += 1;
            self.stats.encoder_rows += pb.rows.len();
            nfm_obs::counter!("serve.task.batches").inc();
            nfm_obs::counter!("serve.task.encoder_rows").add(pb.rows.len() as u64);
            // Encoder-level refusals replay identically on every lane.
            for (local, err) in &pb.refused {
                let u = start + local;
                for (k, pre) in lane_pre.iter_mut().enumerate() {
                    if need[u] & (1u64 << k) != 0 {
                        pre.insert(u, Err(err.clone()));
                    }
                }
            }
            // Fan the pooled rows out: one gathered head GEMM per task.
            for (k, pre) in lane_pre.iter_mut().enumerate() {
                let head_cost = self.heads[k].head_cost(d_model);
                let mut rows = Vec::new();
                let mut us = Vec::new();
                for (row, &(local, enc_spent)) in pb.rows.iter().enumerate() {
                    let u = start + local;
                    if need[u] & (1u64 << k) == 0 {
                        continue;
                    }
                    if enc_spent + head_cost > budget {
                        pre.insert(
                            u,
                            Err(InferError::DeadlineExceeded {
                                spent: enc_spent,
                                needed: head_cost,
                                budget,
                            }),
                        );
                    } else {
                        rows.push(row);
                        us.push((u, enc_spent));
                    }
                }
                if rows.is_empty() {
                    continue;
                }
                let sub = self.arena.take_gather(&pb.pooled, &rows);
                let logits_m = self.heads[k].logits_batch(&sub);
                self.arena.put(sub);
                self.stats.head_rows += us.len();
                nfm_obs::counter!("serve.task.head_rows").add(us.len() as u64);
                for (j, &(u, enc_spent)) in us.iter().enumerate() {
                    pre.insert(u, Ok((logits_m.row(j).to_vec(), enc_spent + head_cost)));
                }
            }
            self.arena.put(pb.pooled);
            start = end;
        }
        nfm_obs::event(
            "serve.task.drain",
            &[
                ("tasks", nfm_obs::Value::U(self.lanes.len() as u64)),
                ("flows", nfm_obs::Value::U(uniq.len() as u64)),
                ("encoder_rows", nfm_obs::Value::U(self.stats.encoder_rows as u64)),
                ("head_rows", nfm_obs::Value::U(self.stats.head_rows as u64)),
            ],
        );
        // Settle every lane in admission order through the unchanged
        // serve state machine.
        for (k, reqs) in pending.into_iter().enumerate() {
            for (pos, req) in reqs.into_iter().enumerate() {
                let u = uniq_of[k][pos];
                let pre = lane_pre[k].get(&u).cloned();
                out[k].push(self.lanes[k].answer(req, pre));
            }
        }
        out
    }

    /// Offer pre-assembled requests in bursts (like
    /// [`ServeEngine::serve_trace`]'s schedule semantics) and drain
    /// between bursts. Returns one response vector per task, each bitwise
    /// identical to a standalone engine fed that task's stream with the
    /// same schedule.
    pub fn serve_requests(
        &mut self,
        requests: Vec<ServeRequest>,
        schedule: &[usize],
    ) -> Vec<Vec<Response>> {
        let mut out: Vec<Vec<Response>> = self.lanes.iter().map(|_| Vec::new()).collect();
        let fold = |out: &mut Vec<Vec<Response>>, drained: Vec<Vec<Response>>| {
            for (k, mut v) in drained.into_iter().enumerate() {
                out[k].append(&mut v);
            }
        };
        let mut pending = requests.into_iter();
        let mut exhausted = false;
        for &burst in schedule {
            for _ in 0..burst {
                match pending.next() {
                    Some(r) => self.submit(r),
                    None => {
                        exhausted = true;
                        break;
                    }
                }
            }
            let drained = self.drain();
            fold(&mut out, drained);
            if exhausted {
                break;
            }
        }
        for request in pending {
            self.submit(request);
            let drained = self.drain();
            fold(&mut out, drained);
        }
        out
    }

    /// Serve every flow in `trace` on every task: assemble once
    /// ([`assemble_requests`], ingest accounting folded into every lane's
    /// statistics, mirroring K standalone engines each ingesting the
    /// capture), then run the burst schedule via
    /// [`MultiTaskServer::serve_requests`].
    pub fn serve_trace(
        &mut self,
        trace: &Trace,
        tokenizer: &dyn Tokenizer,
        schedule: &[usize],
    ) -> Vec<Vec<Response>> {
        let (requests, ingest) = assemble_requests(trace, tokenizer, self.config.max_tokens);
        for lane in &mut self.lanes {
            lane.stats.malformed_packets += ingest.malformed_packets;
            lane.stats.flows_assembled += ingest.flows_assembled;
            lane.stats.empty_contexts += ingest.empty_contexts;
        }
        self.serve_requests(requests, schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{FineTuneConfig, PipelineConfig, TextExample};
    use nfm_model::pretrain::{PretrainConfig, TaskMix};
    use nfm_model::tokenize::field::FieldTokenizer;
    use nfm_tensor::layers::Module;
    use nfm_traffic::faults::{burst_schedule, inject, FaultConfig};
    use nfm_traffic::netsim::{simulate, SimConfig};

    fn tiny_engine_parts() -> (FmClassifier, Fallback, Trace) {
        let lt = simulate(&SimConfig {
            n_sessions: 30,
            n_general_hosts: 3,
            n_iot_sets: 1,
            ..SimConfig::default()
        });
        let tok = FieldTokenizer::new();
        let cfg = PipelineConfig {
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            d_ff: 32,
            max_len: 48,
            pretrain: PretrainConfig {
                epochs: 1,
                tasks: TaskMix::mlm_only(),
                ..PretrainConfig::default()
            },
            ..PipelineConfig::default()
        };
        let (fm, _) =
            FoundationModel::pretrain_on(&[&lt.trace], &tok, &cfg).expect("pretraining failed");
        let train: Vec<TextExample> = (0..10)
            .map(|i| TextExample {
                tokens: vec![if i % 2 == 0 { "PORT_53" } else { "PORT_443" }.to_string()],
                label: i % 2,
            })
            .collect();
        let clf = FmClassifier::fine_tune(
            &fm,
            &train,
            2,
            &FineTuneConfig { epochs: 2, ..FineTuneConfig::default() },
        )
        .expect("fine-tuning failed");
        let fallback = Fallback::Majority(MajorityBaseline::fit(&train, 2));
        (clf, fallback, lt.trace)
    }

    fn drain(engine: &mut ServeEngine, trace: &Trace) -> Vec<Response> {
        engine.serve_trace(trace, &FieldTokenizer::new(), &[])
    }

    #[test]
    fn breaker_walks_closed_open_half_open_closed() {
        let cfg = BreakerConfig { failure_threshold: 3, cooldown: 2, probes_to_close: 2 };
        let mut b = CircuitBreaker::new(cfg);
        assert_eq!(b.state(), BreakerState::Closed);
        // Two failures + a success: consecutive counter resets, still closed.
        assert!(b.try_acquire());
        b.on_failure();
        b.on_failure();
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips, 0);
        // Three consecutive failures trip it.
        b.on_failure();
        b.on_failure();
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips, 1);
        // Cooldown: one denied request, then the next is a half-open probe.
        assert!(!b.try_acquire());
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.try_acquire());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Two successful probes close it again.
        b.on_success();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.recoveries, 1);
    }

    #[test]
    fn breaker_half_open_failure_reopens() {
        let cfg = BreakerConfig { failure_threshold: 1, cooldown: 1, probes_to_close: 1 };
        let mut b = CircuitBreaker::new(cfg);
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips, 1);
        // cooldown=1: the very next request probes.
        assert!(b.try_acquire());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips, 2, "a failed probe counts as a fresh trip");
        assert!(b.try_acquire());
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.recoveries, 1);
    }

    #[test]
    fn retry_with_backoff_recovers_from_transient_faults() {
        let policy = RetryPolicy { max_retries: 3, backoff_base: 10, backoff_factor: 2 };
        // Fails twice, then succeeds.
        let (result, log) =
            retry_with_backoff(
                &policy,
                |attempt| {
                    if attempt < 2 {
                        Err("transient")
                    } else {
                        Ok(attempt)
                    }
                },
            );
        assert_eq!(result, Ok(2));
        assert_eq!(log.attempts, 3);
        assert_eq!(log.backoff_cost, 10 + 20);
        // Permanent fault: retries exhaust.
        let (result, log) = retry_with_backoff(&policy, |_| Err::<(), _>("permanent"));
        assert_eq!(result, Err("permanent"));
        assert_eq!(log.attempts, 4, "initial try plus three retries");
        assert_eq!(log.backoff_cost, 10 + 20 + 40);
        // max_retries = 0 means a single attempt and no backoff.
        let zero = RetryPolicy { max_retries: 0, ..policy };
        let (_, log) = retry_with_backoff(&zero, |_| Err::<(), _>("x"));
        assert_eq!(log, RetryLog { attempts: 1, backoff_cost: 0 });
    }

    #[test]
    fn load_model_with_retry_reports_typed_error() {
        let dir = std::env::temp_dir().join(format!("nfm_serve_load_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("missing.nfmc");
        let policy = RetryPolicy { max_retries: 2, ..RetryPolicy::default() };
        let err = load_model_with_retry(&path, &policy).expect_err("no file on disk");
        let ServeError::ModelLoad { attempts, .. } = &err;
        assert_eq!(*attempts, 3);
        assert!(err.to_string().contains("model load failed"));
        assert!(std::error::Error::source(&err).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_admitted_request_is_answered() {
        let (clf, fallback, trace) = tiny_engine_parts();
        let mut engine = ServeEngine::new(clf, fallback, ServeConfig::default());
        let responses = drain(&mut engine, &trace);
        let stats = engine.stats();
        assert!(stats.arrived > 0);
        assert_eq!(stats.admitted, responses.len());
        assert_eq!(stats.answered(), stats.admitted);
        assert_eq!(stats.arrived, stats.admitted + stats.shed);
        // A healthy model under an infinite deadline answers everything.
        assert_eq!(stats.answered_model, stats.admitted);
        assert_eq!(stats.deadline_misses, 0);
        assert!((stats.availability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn burst_overload_sheds_deterministically() {
        let (clf, fallback, trace) = tiny_engine_parts();
        let config = ServeConfig { queue_capacity: 4, shed_watermark: 2, ..ServeConfig::default() };
        let tok = FieldTokenizer::new();
        // One giant burst: everything arrives before the queue drains.
        let run = |clf: FmClassifier, fallback: Fallback| {
            let mut engine = ServeEngine::new(clf, fallback, config);
            let responses = engine.serve_trace(&trace, &tok, &[usize::MAX]);
            (responses, engine.stats())
        };
        let (ra, sa) = run(clf.clone(), Fallback::Majority(MajorityBaseline::fit(&[], 2)));
        let (rb, sb) = run(clf, fallback);
        assert!(sa.shed > 0, "a burst larger than the queue must shed");
        assert_eq!(sa.admitted, ra.len());
        assert_eq!(sa.answered(), sa.admitted);
        // Same seed, same arrivals → bitwise-identical shed decisions.
        assert_eq!(sa, sb);
        assert_eq!(
            ra.iter().map(|r| r.flow).collect::<Vec<_>>(),
            rb.iter().map(|r| r.flow).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn smooth_arrivals_do_not_shed() {
        let (clf, fallback, trace) = tiny_engine_parts();
        let config = ServeConfig { queue_capacity: 4, shed_watermark: 2, ..ServeConfig::default() };
        let mut engine = ServeEngine::new(clf, fallback, config);
        let n = {
            // schedule of all-1s: the queue never holds more than one item.
            let ones = vec![1usize; 10_000];
            engine.serve_trace(&trace, &FieldTokenizer::new(), &ones).len()
        };
        let stats = engine.stats();
        assert_eq!(stats.shed, 0, "no bursts, no shedding");
        assert_eq!(stats.admitted, n);
    }

    #[test]
    fn nan_poisoned_model_trips_breaker_and_fallback_answers() {
        let (clf, fallback, trace) = tiny_engine_parts();
        let config = ServeConfig {
            breaker: BreakerConfig { failure_threshold: 2, cooldown: 3, probes_to_close: 1 },
            retry: RetryPolicy { max_retries: 1, ..RetryPolicy::default() },
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(clf, fallback, config);
        // Phase 1: healthy.
        let healthy = drain(&mut engine, &trace);
        assert!(healthy.iter().all(|r| r.responder == Responder::Model));
        // Phase 2: poison every encoder weight — logits go NaN.
        let snapshot: Vec<Vec<f32>> = {
            let mut params = Vec::new();
            engine.model_mut().encoder.visit_params(&mut |p, _| params.push(p.to_vec()));
            params
        };
        engine.model_mut().encoder.visit_params(&mut |p, _| p.fill(f32::NAN));
        let degraded = drain(&mut engine, &trace);
        assert!(!degraded.is_empty());
        assert!(degraded.iter().all(|r| r.responder == Responder::Fallback));
        let mid = engine.stats();
        assert!(mid.breaker_trips >= 1, "breaker must trip");
        assert!(mid.model_failures >= config.breaker.failure_threshold);
        assert!(mid.retries > 0, "transient-fault retries were attempted");
        assert_eq!(mid.answered_model + mid.answered_fallback, mid.admitted);
        // Phase 3: heal the weights; half-open probes recover the breaker.
        let mut slot = 0usize;
        engine.model_mut().encoder.visit_params(&mut |p, _| {
            p.copy_from_slice(&snapshot[slot]);
            slot += 1;
        });
        let recovered = drain(&mut engine, &trace);
        let end = engine.stats();
        assert!(end.breaker_recoveries >= 1, "half-open probes must close the breaker");
        assert!(
            recovered.iter().filter(|r| r.responder == Responder::Model).count()
                > recovered.len() / 2,
            "most post-heal requests are model-answered"
        );
        assert_eq!(engine.breaker().state(), BreakerState::Closed);
    }

    #[test]
    fn starvation_deadline_routes_to_fallback_without_tripping_breaker() {
        let (clf, fallback, trace) = tiny_engine_parts();
        let config = ServeConfig { deadline_budget: 3, ..ServeConfig::default() };
        let mut engine = ServeEngine::new(clf, fallback, config);
        let responses = drain(&mut engine, &trace);
        let stats = engine.stats();
        assert!(!responses.is_empty());
        assert!(responses.iter().all(|r| r.responder == Responder::Fallback));
        assert!(responses.iter().all(|r| r.deadline_missed));
        assert_eq!(stats.deadline_misses, stats.admitted);
        assert_eq!(stats.breaker_trips, 0, "deadline misses are load, not model health");
        assert_eq!(stats.answered(), stats.admitted);
    }

    #[test]
    fn corrupted_and_truncated_captures_never_panic_and_still_serve() {
        let (clf, fallback, trace) = tiny_engine_parts();
        let (noisy, _) = inject(
            &trace,
            &FaultConfig {
                corrupt_chance: 0.6,
                snaplen: 40,
                reorder_chance: 0.3,
                duplicate_chance: 0.2,
                seed: 11,
                ..FaultConfig::default()
            },
        );
        let mut engine = ServeEngine::new(clf, fallback, ServeConfig::default());
        let schedule = burst_schedule(
            10_000,
            &FaultConfig { burst_chance: 0.5, max_burst: 16, seed: 3, ..FaultConfig::default() },
        );
        let responses = engine.serve_trace(&noisy, &FieldTokenizer::new(), &schedule);
        let stats = engine.stats();
        assert!(stats.malformed_packets > 0, "corruption produced unparseable packets");
        assert_eq!(stats.answered(), stats.admitted);
        assert_eq!(responses.len(), stats.admitted);
    }

    #[test]
    fn identical_runs_are_bitwise_identical() {
        let (clf, _, trace) = tiny_engine_parts();
        let (noisy, _) = inject(&trace, &FaultConfig::noisy(5));
        let config = ServeConfig {
            queue_capacity: 6,
            shed_watermark: 3,
            deadline_budget: 2_000_000,
            ..ServeConfig::default()
        };
        let schedule = burst_schedule(
            10_000,
            &FaultConfig { burst_chance: 0.4, max_burst: 12, seed: 8, ..FaultConfig::default() },
        );
        let run = |clf: FmClassifier| {
            let mut engine =
                ServeEngine::new(clf, Fallback::Majority(MajorityBaseline::fit(&[], 2)), config);
            let r = engine.serve_trace(&noisy, &FieldTokenizer::new(), &schedule);
            (r, engine.stats())
        };
        let (ra, sa) = run(clf.clone());
        let (rb, sb) = run(clf);
        assert_eq!(sa, sb, "stats must reproduce exactly");
        assert_eq!(ra, rb, "every response must reproduce exactly");
    }

    #[test]
    fn batched_drain_queue_matches_unbatched_and_serve_one_bitwise() {
        let (clf, _, trace) = tiny_engine_parts();
        let tok = FieldTokenizer::new();
        let (requests, _) = assemble_requests(&trace, &tok, 64);
        assert!(requests.len() > 8, "need a non-trivial batch");
        let config =
            ServeConfig { queue_capacity: 256, shed_watermark: 256, ..ServeConfig::default() };
        let run = |max_batch: usize, batch_cost_budget: u64| {
            let mut engine = ServeEngine::new(
                clf.clone(),
                Fallback::Majority(MajorityBaseline::fit(&[], 2)),
                ServeConfig { max_batch, batch_cost_budget, ..config },
            );
            for r in requests.iter().cloned() {
                engine.submit(r);
            }
            (engine.drain_queue(), engine.stats())
        };
        let (r1, s1) = run(1, u64::MAX);
        // serve_one on a fresh engine answers identically (admission stats
        // aside — serve_one bypasses the queue).
        let mut solo = ServeEngine::new(
            clf.clone(),
            Fallback::Majority(MajorityBaseline::fit(&[], 2)),
            config,
        );
        let r_solo: Vec<Response> = requests.iter().cloned().map(|r| solo.serve_one(r)).collect();
        assert_eq!(r1, r_solo, "queued and hedged paths agree");
        for (max_batch, batch_cost_budget) in
            [(4, u64::MAX), (8, u64::MAX), (requests.len() + 1, u64::MAX), (8, 1), (8, 250_000)]
        {
            let (rb, sb) = run(max_batch, batch_cost_budget);
            assert_eq!(r1, rb, "batched responses (max_batch={max_batch})");
            assert_eq!(s1, sb, "batched stats (max_batch={max_batch})");
        }
    }

    #[test]
    fn batched_serve_trace_matches_unbatched_under_faults() {
        let (clf, _, trace) = tiny_engine_parts();
        let (noisy, _) = inject(&trace, &FaultConfig::noisy(5));
        let schedule = burst_schedule(
            10_000,
            &FaultConfig { burst_chance: 0.4, max_burst: 12, seed: 8, ..FaultConfig::default() },
        );
        let tok = FieldTokenizer::new();
        let base = ServeConfig {
            queue_capacity: 6,
            shed_watermark: 3,
            deadline_budget: 2_000_000,
            breaker: BreakerConfig { failure_threshold: 2, cooldown: 3, probes_to_close: 1 },
            retry: RetryPolicy { max_retries: 1, ..RetryPolicy::default() },
            ..ServeConfig::default()
        };
        let run = |max_batch: usize| {
            let mut engine = ServeEngine::new(
                clf.clone(),
                Fallback::Majority(MajorityBaseline::fit(&[], 2)),
                ServeConfig { max_batch, ..base },
            );
            // Healthy traffic, then NaN-poisoned weights (breaker trips,
            // fallback answers), then healed weights (half-open recovery).
            let mut all = engine.serve_trace(&noisy, &tok, &schedule);
            let snapshot: Vec<Vec<f32>> = {
                let mut params = Vec::new();
                engine.model_mut().encoder.visit_params(&mut |p, _| params.push(p.to_vec()));
                params
            };
            engine.model_mut().encoder.visit_params(&mut |p, _| p.fill(f32::NAN));
            all.extend(engine.serve_trace(&noisy, &tok, &schedule));
            let mut slot = 0usize;
            engine.model_mut().encoder.visit_params(&mut |p, _| {
                p.copy_from_slice(&snapshot[slot]);
                slot += 1;
            });
            all.extend(engine.serve_trace(&noisy, &tok, &schedule));
            (all, engine.stats())
        };
        let (r1, s1) = run(1);
        let (r8, s8) = run(8);
        assert!(s1.breaker_trips >= 1, "fault schedule must exercise the breaker");
        assert!(s1.shed > 0, "bursts against a short queue must shed");
        assert_eq!(s1, s8, "stats identical across batching modes");
        assert_eq!(r1, r8, "responses identical across batching modes");
    }

    #[test]
    fn gru_fallback_answers_when_breaker_is_open() {
        use crate::baselines::{BaselineConfig, BaselineKind};
        let (clf, _, trace) = tiny_engine_parts();
        let train: Vec<TextExample> = (0..12)
            .map(|i| TextExample {
                tokens: vec![format!("tok{}", i % 3), "IP4".to_string()],
                label: i % 3,
            })
            .collect();
        let gru = GruBaseline::train(
            &train,
            3,
            BaselineKind::GruRandom,
            &BaselineConfig { epochs: 2, d_embed: 8, d_hidden: 8, ..BaselineConfig::default() },
        );
        let mut engine = ServeEngine::new(
            clf,
            Fallback::Gru(Box::new(gru)),
            ServeConfig {
                breaker: BreakerConfig { failure_threshold: 1, cooldown: 1000, probes_to_close: 1 },
                retry: RetryPolicy { max_retries: 0, ..RetryPolicy::default() },
                ..ServeConfig::default()
            },
        );
        assert_eq!(engine.model().n_classes, 2);
        engine.model_mut().encoder.visit_params(&mut |p, _| p.fill(f32::NAN));
        let responses = drain(&mut engine, &trace);
        assert!(!responses.is_empty());
        assert!(responses.iter().all(|r| r.responder == Responder::Fallback));
        // GRU fallback produces in-range classes for its own task.
        assert!(responses.iter().all(|r| r.class < 3));
        assert_eq!(engine.stats().answered(), engine.stats().admitted);
    }

    /// A tiny two-task fixture: shared backbone plus heads with *different*
    /// class counts, so per-task head costs and argmax ranges differ.
    /// Fallbacks are returned separately (majority priors are `Copy`) so
    /// tests can assemble `(head, fallback)` lists as many times as needed.
    fn tiny_multitask_parts() -> (FmBackbone, Vec<TaskHead>, Vec<MajorityBaseline>, Trace) {
        let (clf, _, trace) = tiny_engine_parts();
        let backbone = clf.backbone();
        let mk_train = |n_classes: usize| -> Vec<TextExample> {
            (0..12)
                .map(|i| TextExample {
                    tokens: vec![format!("PORT_{}", 40 + i % 4), "IP4".to_string()],
                    label: i % n_classes,
                })
                .collect()
        };
        let cfg = FineTuneConfig { epochs: 2, ..FineTuneConfig::default() };
        let mut heads = Vec::new();
        let mut priors = Vec::new();
        for (name, n_classes) in [("coarse", 2usize), ("fine", 3usize)] {
            let train = mk_train(n_classes);
            let head = TaskHead::fine_tune(&backbone, name, &train, n_classes, &cfg)
                .expect("head fine-tune failed");
            priors.push(MajorityBaseline::fit(&train, n_classes));
            heads.push(head);
        }
        (backbone, heads, priors, trace)
    }

    fn task_list(heads: &[TaskHead], priors: &[MajorityBaseline]) -> Vec<(TaskHead, Fallback)> {
        heads.iter().cloned().zip(priors.iter().map(|&p| Fallback::Majority(p))).collect()
    }

    /// Mirror of [`MultiTaskServer::serve_requests`]'s burst loop for one
    /// standalone engine: lane `k` sees exactly the requests whose task set
    /// contains `k`, offered and drained on the same burst boundaries.
    fn run_standalone(
        engine: &mut ServeEngine,
        k: usize,
        requests: &[ServeRequest],
        schedule: &[usize],
    ) -> Vec<Response> {
        let mut out = Vec::new();
        let mut pending = requests.iter().cloned();
        let mut exhausted = false;
        for &burst in schedule {
            for _ in 0..burst {
                match pending.next() {
                    Some(r) => {
                        if r.tasks.contains(k) {
                            engine.offer(r);
                        }
                    }
                    None => {
                        exhausted = true;
                        break;
                    }
                }
            }
            out.append(&mut engine.drain_queue());
            if exhausted {
                break;
            }
        }
        for r in pending {
            if r.tasks.contains(k) {
                engine.offer(r);
            }
            out.append(&mut engine.drain_queue());
        }
        out
    }

    #[test]
    fn fanout_matches_independent_engines_bitwise() {
        let (backbone, heads, priors, trace) = tiny_multitask_parts();
        let tok = FieldTokenizer::new();
        // Deadline tight enough that long flows refuse at the encoder plan
        // while short ones pass; batching and shedding both exercised.
        let config = ServeConfig {
            queue_capacity: 8,
            shed_watermark: 5,
            deadline_budget: backbone.encoder_cost(40) + 64,
            max_batch: 4,
            batch_cost_budget: 3 * backbone.encoder_cost(40),
            seed: 41,
            ..ServeConfig::default()
        };
        let (mut requests, _) = assemble_requests(&trace, &tok, config.max_tokens);
        let masks = nfm_traffic::faults::task_mask_schedule(requests.len(), 2, 0.4, 77);
        for (r, &m) in requests.iter_mut().zip(&masks) {
            r.tasks = TaskSet::from_mask(m);
        }
        let schedule = [6usize, 0, 9, 3, 7];

        let mut server = MultiTaskServer::new(backbone.clone(), task_list(&heads, &priors), config);
        let fanned = server.serve_requests(requests.clone(), &schedule);

        for (k, head) in heads.iter().enumerate() {
            let mut solo =
                ServeEngine::new(backbone.attach(head), Fallback::Majority(priors[k]), config);
            let want = run_standalone(&mut solo, k, &requests, &schedule);
            assert_eq!(fanned[k], want, "task {k} responses diverge from a standalone engine");
            assert_eq!(
                server.task_stats()[k],
                solo.stats(),
                "task {k} stats diverge from a standalone engine"
            );
        }
        let mt = server.stats();
        assert_eq!(mt.submitted, requests.len());
        assert!(mt.batches > 0 && mt.encoder_rows > 0 && mt.head_rows > 0);
        let agg = server.task_stats();
        assert!(agg.iter().any(|s| s.answered_model > 0), "some flows fit the deadline");
        assert!(
            agg.iter().any(|s| s.deadline_misses > 0),
            "some flows must exceed the deadline budget"
        );
        assert!(
            mt.encoder_rows <= mt.head_rows,
            "shared encoder rows must not exceed the fanned-out head rows"
        );
        assert!(
            mt.lane_offers > requests.len(),
            "with 40% full fan-out, some requests hit both lanes"
        );
    }

    #[test]
    fn replace_head_swaps_one_lane_only() {
        let (backbone, heads, priors, trace) = tiny_multitask_parts();
        let tok = FieldTokenizer::new();
        let config = ServeConfig { seed: 13, max_batch: 4, ..ServeConfig::default() };
        let (requests, _) = assemble_requests(&trace, &tok, config.max_tokens);

        // Fine-tune a replacement head for task 0 on inverted labels.
        let retrain: Vec<TextExample> = (0..10)
            .map(|i| TextExample {
                tokens: vec![format!("PORT_{}", 40 + i % 4)],
                label: (i + 1) % 2,
            })
            .collect();
        let swapped = heads[0]
            .fine_tune_from(
                &backbone,
                &retrain,
                &FineTuneConfig { epochs: 3, lr: 3e-2, ..FineTuneConfig::default() },
            )
            .expect("head refresh failed");

        let mut before = MultiTaskServer::new(backbone.clone(), task_list(&heads, &priors), config);
        let baseline = before.serve_requests(requests.clone(), &[4, 4]);

        let mut after = MultiTaskServer::new(backbone.clone(), task_list(&heads, &priors), config);
        after.replace_head(0, swapped);
        let patched = after.serve_requests(requests, &[4, 4]);

        assert_ne!(baseline[0], patched[0], "task 0 must serve the new head");
        assert_eq!(baseline[1], patched[1], "task 1 is untouched by task 0's rollout");
    }
}
