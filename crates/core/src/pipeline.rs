//! The foundation-model pipeline: pretrain on unlabeled traces → fine-tune
//! on a small labeled set → evaluate anywhere. This is the paper's central
//! proposal made concrete.

use nfm_model::context::{contexts_from_trace, flow_context, ContextStrategy};
use nfm_model::nn::heads::ClsHead;
use nfm_model::nn::transformer::{Encoder, EncoderConfig};
use nfm_model::pretrain::{encode_context, pretrain, PretrainConfig, PretrainStats};
use nfm_model::tokenize::Tokenizer;
use nfm_model::vocab::Vocab;
use nfm_net::capture::Trace;
use nfm_tensor::layers::Module;
use nfm_tensor::loss::softmax_cross_entropy;
use nfm_tensor::matrix::Matrix;
use nfm_tensor::optim::{clip_global_norm, Adam, Schedule};
use nfm_traffic::dataset::LabeledFlow;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Pipeline hyperparameters.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Model dimension.
    pub d_model: usize,
    /// Attention heads.
    pub n_heads: usize,
    /// Encoder layers.
    pub n_layers: usize,
    /// Feed-forward dimension.
    pub d_ff: usize,
    /// Maximum sequence length.
    pub max_len: usize,
    /// Minimum token frequency for the vocabulary.
    pub min_freq: usize,
    /// Pre-training context strategy.
    pub context: ContextStrategy,
    /// Pre-training configuration.
    pub pretrain: PretrainConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            d_model: 32,
            n_heads: 4,
            n_layers: 2,
            d_ff: 64,
            max_len: 96,
            min_freq: 2,
            context: ContextStrategy::Flow,
            pretrain: PretrainConfig::default(),
        }
    }
}

/// A pre-trained network foundation model: encoder plus vocabulary.
#[derive(Debug, Clone)]
pub struct FoundationModel {
    /// The pre-trained encoder.
    pub encoder: Encoder,
    /// The vocabulary it was trained with.
    pub vocab: Vocab,
    /// Sequence-length cap.
    pub max_len: usize,
}

impl FoundationModel {
    /// Pre-train a foundation model on unlabeled traces.
    pub fn pretrain_on(
        traces: &[&Trace],
        tokenizer: &dyn Tokenizer,
        config: &PipelineConfig,
    ) -> (FoundationModel, PretrainStats) {
        let mut contexts = Vec::new();
        for trace in traces {
            contexts.extend(contexts_from_trace(
                trace,
                tokenizer,
                config.context,
                config.max_len - 2,
            ));
        }
        assert!(!contexts.is_empty(), "no pretraining contexts extracted");
        let vocab = Vocab::from_sequences(&contexts, config.min_freq);
        let enc_cfg = EncoderConfig {
            vocab: vocab.len(),
            d_model: config.d_model,
            n_heads: config.n_heads,
            n_layers: config.n_layers,
            d_ff: config.d_ff,
            max_len: config.max_len,
        };
        let (encoder, _mlm, stats) = pretrain(&contexts, &vocab, enc_cfg, &config.pretrain);
        (FoundationModel { encoder, vocab, max_len: config.max_len }, stats)
    }

    /// Encode a token sequence to model input ids.
    pub fn encode(&self, tokens: &[String]) -> Vec<usize> {
        encode_context(&self.vocab, tokens, self.max_len)
    }

    /// [CLS] embedding for a token sequence.
    pub fn embed(&self, tokens: &[String]) -> Vec<f32> {
        self.encoder.cls_embedding(&self.encode(tokens))
    }
}

/// One labeled training example: a token sequence and its class id.
#[derive(Debug, Clone)]
pub struct TextExample {
    /// Tokens (pre-vocabulary).
    pub tokens: Vec<String>,
    /// Dense class label.
    pub label: usize,
}

/// Convert labeled flows into classification examples with a caller-chosen
/// label extractor (app class, device class, malicious flag, …).
pub fn examples_from_flows(
    flows: &[LabeledFlow],
    tokenizer: &dyn Tokenizer,
    max_tokens: usize,
    label_fn: impl Fn(&LabeledFlow) -> Option<usize>,
) -> Vec<TextExample> {
    flows
        .iter()
        .filter_map(|f| {
            let label = label_fn(f)?;
            let tokens = flow_context(&f.packets, tokenizer, max_tokens);
            if tokens.is_empty() {
                None
            } else {
                Some(TextExample { tokens, label })
            }
        })
        .collect()
}

/// How the per-token hidden states are pooled into one vector for
/// classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pooling {
    /// Use the [CLS] (first) position.
    Cls,
    /// Mean over all positions — exposes token geometry directly and is
    /// more robust for small models.
    Mean,
}

/// Fine-tuning hyperparameters.
#[derive(Debug, Clone)]
pub struct FineTuneConfig {
    /// Epochs over the labeled set.
    pub epochs: usize,
    /// Peak learning rate.
    pub lr: f32,
    /// Sequences per optimizer step.
    pub batch_size: usize,
    /// Seed for shuffling and head init.
    pub seed: u64,
    /// Train only the head, keeping the encoder frozen.
    pub freeze_encoder: bool,
    /// Keep the token-embedding table at its pre-trained values (encoder
    /// layers and head still adapt). Preserves the geometry of tokens the
    /// labeled set never contains — important for transfer to independent
    /// datasets.
    pub freeze_embeddings: bool,
    /// Pooling strategy feeding the head.
    pub pooling: Pooling,
}

impl Default for FineTuneConfig {
    fn default() -> Self {
        FineTuneConfig {
            epochs: 4,
            lr: 1e-3,
            batch_size: 8,
            seed: 7,
            freeze_encoder: false,
            freeze_embeddings: false,
            pooling: Pooling::Cls,
        }
    }
}

fn pool(hidden: &Matrix, pooling: Pooling) -> Matrix {
    match pooling {
        Pooling::Cls => hidden.rows_slice(0, 1),
        Pooling::Mean => {
            let mut out = Matrix::zeros(1, hidden.cols());
            for r in 0..hidden.rows() {
                for (o, v) in out.row_mut(0).iter_mut().zip(hidden.row(r)) {
                    *o += v;
                }
            }
            out.scale(1.0 / hidden.rows() as f32);
            out
        }
    }
}

fn unpool(dpooled: &Matrix, rows: usize, pooling: Pooling) -> Matrix {
    let mut dhidden = Matrix::zeros(rows, dpooled.cols());
    match pooling {
        Pooling::Cls => dhidden.row_mut(0).copy_from_slice(dpooled.row(0)),
        Pooling::Mean => {
            let scale = 1.0 / rows as f32;
            for r in 0..rows {
                for (d, v) in dhidden.row_mut(r).iter_mut().zip(dpooled.row(0)) {
                    *d = v * scale;
                }
            }
        }
    }
    dhidden
}

/// A fine-tuned classifier: encoder copy plus classification head.
#[derive(Debug, Clone)]
pub struct FmClassifier {
    /// The (possibly fine-tuned) encoder.
    pub encoder: Encoder,
    head: ClsHead,
    /// Vocabulary shared with the foundation model.
    pub vocab: Vocab,
    /// Sequence cap.
    pub max_len: usize,
    /// Number of classes.
    pub n_classes: usize,
    /// Pooling strategy (fixed at fine-tune time).
    pub pooling: Pooling,
}

impl FmClassifier {
    /// Fine-tune `fm` on labeled examples.
    pub fn fine_tune(
        fm: &FoundationModel,
        examples: &[TextExample],
        n_classes: usize,
        config: &FineTuneConfig,
    ) -> FmClassifier {
        assert!(!examples.is_empty(), "need labeled examples");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut encoder = fm.encoder.clone();
        let mut head = ClsHead::new(&mut rng, encoder.config.d_model, n_classes);

        let encoded: Vec<(Vec<usize>, usize)> = examples
            .iter()
            .map(|e| (encode_context(&fm.vocab, &e.tokens, fm.max_len), e.label))
            .collect();
        let steps = (encoded.len().div_ceil(config.batch_size) * config.epochs).max(1);
        let schedule =
            Schedule::WarmupLinear { peak: config.lr, warmup: steps / 10 + 1, total: steps + 1 };
        let mut opt_enc = Adam::new(schedule);
        let mut opt_head = Adam::new(schedule);

        let mut order: Vec<usize> = (0..encoded.len()).collect();
        for _ in 0..config.epochs {
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            for batch in order.chunks(config.batch_size) {
                encoder.zero_grad();
                head.zero_grad();
                for &idx in batch {
                    let (ids, label) = &encoded[idx];
                    let hidden = encoder.forward(ids);
                    let pooled = pool(&hidden, config.pooling);
                    let logits = head.forward(&pooled);
                    let (_, dlogits) = softmax_cross_entropy(&logits, &[*label]);
                    let dpooled = head.backward(&dlogits);
                    if !config.freeze_encoder {
                        let dhidden = unpool(&dpooled, hidden.rows(), config.pooling);
                        encoder.backward(&dhidden);
                    }
                }
                clip_global_norm(&mut head, 5.0);
                opt_head.step(&mut head);
                if !config.freeze_encoder {
                    if config.freeze_embeddings {
                        encoder.zero_token_embedding_grads();
                    }
                    clip_global_norm(&mut encoder, 5.0);
                    opt_enc.step(&mut encoder);
                }
            }
        }
        FmClassifier {
            encoder,
            head,
            vocab: fm.vocab.clone(),
            max_len: fm.max_len,
            n_classes,
            pooling: config.pooling,
        }
    }

    /// Raw logits for a token sequence.
    pub fn logits(&self, tokens: &[String]) -> Vec<f32> {
        let ids = encode_context(&self.vocab, tokens, self.max_len);
        let hidden = self.encoder.forward_inference(&ids);
        let pooled = pool(&hidden, self.pooling);
        self.head.forward_inference(&pooled).row(0).to_vec()
    }

    /// Predicted class id.
    pub fn predict(&self, tokens: &[String]) -> usize {
        let logits = self.logits(tokens);
        logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty logits")
    }

    /// Softmax class probabilities.
    pub fn probabilities(&self, tokens: &[String]) -> Vec<f32> {
        let mut m = Matrix::from_vec(1, self.n_classes, self.logits(tokens));
        m.softmax_rows();
        m.row(0).to_vec()
    }

    /// Pooled embedding (pre-head), used by the OOD detectors. Uses the
    /// same pooling the head was trained with.
    pub fn embed(&self, tokens: &[String]) -> Vec<f32> {
        let ids = encode_context(&self.vocab, tokens, self.max_len);
        let hidden = self.encoder.forward_inference(&ids);
        pool(&hidden, self.pooling).row(0).to_vec()
    }

    /// Evaluate on examples, returning the confusion matrix.
    pub fn evaluate(&self, examples: &[TextExample]) -> crate::metrics::Confusion {
        let mut c = crate::metrics::Confusion::new(self.n_classes);
        for e in examples {
            c.add(e.label, self.predict(&e.tokens));
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfm_model::tokenize::field::FieldTokenizer;
    use nfm_traffic::netsim::{simulate, SimConfig};

    fn tiny_fm() -> (FoundationModel, Trace) {
        let lt = simulate(&SimConfig { n_sessions: 30, n_general_hosts: 3, n_iot_sets: 1, ..SimConfig::default() });
        let tok = FieldTokenizer::new();
        let cfg = PipelineConfig {
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            d_ff: 32,
            max_len: 48,
            pretrain: PretrainConfig {
                epochs: 1,
                tasks: nfm_model::pretrain::TaskMix::mlm_only(),
                ..PretrainConfig::default()
            },
            ..PipelineConfig::default()
        };
        let (fm, stats) = FoundationModel::pretrain_on(&[&lt.trace], &tok, &cfg);
        assert!(!stats.mlm_loss.is_empty());
        (fm, lt.trace)
    }

    #[test]
    fn pretrain_produces_usable_model() {
        let (fm, _) = tiny_fm();
        assert!(fm.vocab.len() > 10);
        let emb = fm.embed(&["IP4".to_string(), "PROTO_UDP".to_string()]);
        assert_eq!(emb.len(), 16);
        assert!(emb.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn fine_tune_learns_separable_labels() {
        let (fm, _) = tiny_fm();
        // Synthetic separable task over tokens the vocab knows.
        let mk = |t: &str, label: usize| TextExample {
            tokens: vec![t.to_string(), "IP4".to_string(), "PROTO_UDP".to_string()],
            label,
        };
        let train: Vec<TextExample> = (0..30)
            .map(|i| if i % 2 == 0 { mk("PORT_53", 0) } else { mk("PORT_443", 1) })
            .collect();
        let clf = FmClassifier::fine_tune(
            &fm,
            &train,
            2,
            &FineTuneConfig { epochs: 8, ..FineTuneConfig::default() },
        );
        let acc = clf.evaluate(&train).accuracy();
        assert!(acc > 0.9, "training accuracy {acc}");
        let probs = clf.probabilities(&train[0].tokens);
        assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn frozen_encoder_only_trains_head() {
        let (fm, _) = tiny_fm();
        let train: Vec<TextExample> = (0..10)
            .map(|i| TextExample {
                tokens: vec![if i % 2 == 0 { "PORT_53" } else { "PORT_443" }.to_string()],
                label: i % 2,
            })
            .collect();
        let clf = FmClassifier::fine_tune(
            &fm,
            &train,
            2,
            &FineTuneConfig { freeze_encoder: true, epochs: 3, ..FineTuneConfig::default() },
        );
        // Encoder unchanged relative to the foundation model.
        assert_eq!(
            clf.encoder.token_embeddings().data(),
            fm.encoder.token_embeddings().data()
        );
    }

    #[test]
    fn mean_pooling_trains_and_differs_from_cls() {
        let (fm, _) = tiny_fm();
        let train: Vec<TextExample> = (0..20)
            .map(|i| TextExample {
                tokens: vec![
                    if i % 2 == 0 { "PORT_53" } else { "PORT_443" }.to_string(),
                    "IP4".to_string(),
                    "PROTO_UDP".to_string(),
                ],
                label: i % 2,
            })
            .collect();
        let cls = FmClassifier::fine_tune(
            &fm,
            &train,
            2,
            &FineTuneConfig { epochs: 6, pooling: Pooling::Cls, ..FineTuneConfig::default() },
        );
        let mean = FmClassifier::fine_tune(
            &fm,
            &train,
            2,
            &FineTuneConfig { epochs: 6, pooling: Pooling::Mean, ..FineTuneConfig::default() },
        );
        // Both learn the trivial rule.
        assert!(cls.evaluate(&train).accuracy() > 0.9);
        assert!(mean.evaluate(&train).accuracy() > 0.9);
        // Embeddings reflect the chosen pooling (different vectors).
        let e_cls = cls.embed(&train[0].tokens);
        let e_mean = mean.embed(&train[0].tokens);
        assert_ne!(e_cls, e_mean);
        assert_eq!(mean.pooling, Pooling::Mean);
    }

    #[test]
    fn frozen_embeddings_table_is_preserved() {
        let (fm, _) = tiny_fm();
        let train: Vec<TextExample> = (0..12)
            .map(|i| TextExample {
                tokens: vec![if i % 2 == 0 { "PORT_53" } else { "PORT_443" }.to_string()],
                label: i % 2,
            })
            .collect();
        let clf = FmClassifier::fine_tune(
            &fm,
            &train,
            2,
            &FineTuneConfig { epochs: 4, freeze_embeddings: true, ..FineTuneConfig::default() },
        );
        // Token table identical to the pre-trained one even though the
        // encoder layers trained.
        assert_eq!(
            clf.encoder.token_embeddings().data(),
            fm.encoder.token_embeddings().data()
        );
    }

    #[test]
    fn examples_from_flows_respects_label_fn() {
        let lt = simulate(&SimConfig { n_sessions: 20, n_general_hosts: 3, n_iot_sets: 1, ..SimConfig::default() });
        let flows = nfm_traffic::dataset::extract_flows(&lt, 1);
        let tok = FieldTokenizer::new();
        let all = examples_from_flows(&flows, &tok, 48, |f| Some(f.label.app.id()));
        assert_eq!(all.len(), flows.len());
        let only_dns = examples_from_flows(&flows, &tok, 48, |f| {
            (f.label.app == nfm_traffic::AppClass::Dns).then_some(0)
        });
        assert!(only_dns.len() < all.len());
        assert!(!only_dns.is_empty());
    }
}
