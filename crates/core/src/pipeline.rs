//! The foundation-model pipeline: pretrain on unlabeled traces → fine-tune
//! on a small labeled set → evaluate anywhere. This is the paper's central
//! proposal made concrete.
//!
//! All fallible entry points return typed errors (`PipelineError`) instead
//! of panicking, so operational deployments (the paper's §4.3 concern) can
//! degrade gracefully: empty inputs, diverged training runs, and corrupted
//! checkpoints are reported, never `panic!`ed.

use std::error::Error;
use std::fmt;
use std::path::Path;

use nfm_model::checkpoint::{
    read_cls_head, read_encoder, read_vocab, write_cls_head, write_encoder, write_vocab,
};
use nfm_model::context::{contexts_from_trace, flow_context, ContextStrategy};
use nfm_model::guard::{GuardConfig, TrainError, TrainGuard};
use nfm_model::nn::heads::ClsHead;
use nfm_model::nn::transformer::{Encoder, EncoderConfig, InferError};
use nfm_model::pretrain::{encode_context, epoch_seed, pretrain, PretrainConfig, PretrainStats};
use nfm_model::tokenize::Tokenizer;
use nfm_model::vocab::Vocab;
use nfm_net::capture::Trace;
use nfm_tensor::checkpoint::{
    load_record, save_record, ByteReader, ByteWriter, CheckpointError, KIND_CLASSIFIER, KIND_MODEL,
    KIND_TASK_HEAD,
};
use nfm_tensor::layers::Module;
use nfm_tensor::loss::softmax_cross_entropy;
use nfm_tensor::matrix::Matrix;
use nfm_tensor::optim::{clip_global_norm, Adam, Schedule};
use nfm_tensor::pool as tpool;
use nfm_tensor::scratch::ScratchArena;
use nfm_traffic::dataset::LabeledFlow;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Errors surfaced by the pipeline instead of panics.
#[derive(Debug)]
pub enum PipelineError {
    /// No pre-training contexts could be extracted from the given traces.
    NoContexts,
    /// No labeled examples were provided for fine-tuning.
    NoExamples,
    /// Training failed (empty corpus, unrecoverable divergence, snapshot
    /// I/O failure).
    Train(TrainError),
    /// A model file could not be saved or loaded.
    Checkpoint(CheckpointError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::NoContexts => {
                write!(f, "no pretraining contexts could be extracted from the given traces")
            }
            PipelineError::NoExamples => {
                write!(f, "no labeled examples provided for fine-tuning")
            }
            PipelineError::Train(e) => write!(f, "training failed: {e}"),
            PipelineError::Checkpoint(e) => write!(f, "checkpoint failed: {e}"),
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Train(e) => Some(e),
            PipelineError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TrainError> for PipelineError {
    fn from(e: TrainError) -> Self {
        PipelineError::Train(e)
    }
}

impl From<CheckpointError> for PipelineError {
    fn from(e: CheckpointError) -> Self {
        PipelineError::Checkpoint(e)
    }
}

/// Pipeline hyperparameters.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Model dimension.
    pub d_model: usize,
    /// Attention heads.
    pub n_heads: usize,
    /// Encoder layers.
    pub n_layers: usize,
    /// Feed-forward dimension.
    pub d_ff: usize,
    /// Maximum sequence length.
    pub max_len: usize,
    /// Minimum token frequency for the vocabulary.
    pub min_freq: usize,
    /// Pre-training context strategy.
    pub context: ContextStrategy,
    /// Pre-training configuration.
    pub pretrain: PretrainConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            d_model: 32,
            n_heads: 4,
            n_layers: 2,
            d_ff: 64,
            max_len: 96,
            min_freq: 2,
            context: ContextStrategy::Flow,
            pretrain: PretrainConfig::default(),
        }
    }
}

/// A pre-trained network foundation model: encoder plus vocabulary.
#[derive(Debug, Clone)]
pub struct FoundationModel {
    /// The pre-trained encoder.
    pub encoder: Encoder,
    /// The vocabulary it was trained with.
    pub vocab: Vocab,
    /// Sequence-length cap.
    pub max_len: usize,
}

impl FoundationModel {
    /// Pre-train a foundation model on unlabeled traces.
    pub fn pretrain_on(
        traces: &[&Trace],
        tokenizer: &dyn Tokenizer,
        config: &PipelineConfig,
    ) -> Result<(FoundationModel, PretrainStats), PipelineError> {
        let mut contexts = Vec::new();
        for trace in traces {
            contexts.extend(contexts_from_trace(
                trace,
                tokenizer,
                config.context,
                config.max_len - 2,
            ));
        }
        if contexts.is_empty() {
            return Err(PipelineError::NoContexts);
        }
        let vocab = Vocab::from_sequences(&contexts, config.min_freq);
        let enc_cfg = EncoderConfig {
            vocab: vocab.len(),
            d_model: config.d_model,
            n_heads: config.n_heads,
            n_layers: config.n_layers,
            d_ff: config.d_ff,
            max_len: config.max_len,
        };
        let (encoder, _mlm, stats) = pretrain(&contexts, &vocab, enc_cfg, &config.pretrain)?;
        Ok((FoundationModel { encoder, vocab, max_len: config.max_len }, stats))
    }

    /// Serialize the model (vocabulary + encoder weights) to a versioned,
    /// checksummed checkpoint file. Writes atomically (tmp + rename).
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let mut w = ByteWriter::new();
        w.put_u64(self.max_len as u64);
        write_vocab(&mut w, &self.vocab);
        let mut encoder = self.encoder.clone();
        write_encoder(&mut w, &mut encoder);
        save_record(path, KIND_MODEL, &w.into_bytes())
    }

    /// Load a model previously written by [`FoundationModel::save`].
    /// Returns a typed error (never panics) on truncation, corruption, or
    /// version mismatch.
    pub fn load(path: &Path) -> Result<FoundationModel, CheckpointError> {
        let payload = load_record(path, KIND_MODEL)?;
        let mut r = ByteReader::new(&payload);
        let max_len = r.get_count()?;
        let vocab = read_vocab(&mut r)?;
        let encoder = read_encoder(&mut r)?;
        if r.remaining() != 0 {
            return Err(CheckpointError::Malformed(format!(
                "{} trailing bytes after model payload",
                r.remaining()
            )));
        }
        Ok(FoundationModel { encoder, vocab, max_len })
    }

    /// Encode a token sequence to model input ids.
    pub fn encode(&self, tokens: &[String]) -> Vec<usize> {
        encode_context(&self.vocab, tokens, self.max_len)
    }

    /// `[CLS]` embedding for a token sequence.
    pub fn embed(&self, tokens: &[String]) -> Vec<f32> {
        self.encoder.cls_embedding(&self.encode(tokens))
    }
}

/// One labeled training example: a token sequence and its class id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextExample {
    /// Tokens (pre-vocabulary).
    pub tokens: Vec<String>,
    /// Dense class label.
    pub label: usize,
}

/// Convert labeled flows into classification examples with a caller-chosen
/// label extractor (app class, device class, malicious flag, …).
pub fn examples_from_flows(
    flows: &[LabeledFlow],
    tokenizer: &dyn Tokenizer,
    max_tokens: usize,
    label_fn: impl Fn(&LabeledFlow) -> Option<usize>,
) -> Vec<TextExample> {
    flows
        .iter()
        .filter_map(|f| {
            let label = label_fn(f)?;
            let tokens = flow_context(&f.packets, tokenizer, max_tokens);
            if tokens.is_empty() {
                None
            } else {
                Some(TextExample { tokens, label })
            }
        })
        .collect()
}

/// How the per-token hidden states are pooled into one vector for
/// classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pooling {
    /// Use the `[CLS]` (first) position.
    Cls,
    /// Mean over all positions — exposes token geometry directly and is
    /// more robust for small models.
    Mean,
}

/// Fine-tuning hyperparameters.
#[derive(Debug, Clone)]
pub struct FineTuneConfig {
    /// Epochs over the labeled set.
    pub epochs: usize,
    /// Peak learning rate.
    pub lr: f32,
    /// Sequences per optimizer step.
    pub batch_size: usize,
    /// Seed for shuffling and head init.
    pub seed: u64,
    /// Train only the head, keeping the encoder frozen.
    pub freeze_encoder: bool,
    /// Keep the token-embedding table at its pre-trained values (encoder
    /// layers and head still adapt). Preserves the geometry of tokens the
    /// labeled set never contains — important for transfer to independent
    /// datasets.
    pub freeze_embeddings: bool,
    /// Pooling strategy feeding the head.
    pub pooling: Pooling,
    /// Divergence-guard thresholds and retry policy.
    pub guard: GuardConfig,
}

impl Default for FineTuneConfig {
    fn default() -> Self {
        FineTuneConfig {
            epochs: 4,
            lr: 1e-3,
            batch_size: 8,
            seed: 7,
            freeze_encoder: false,
            freeze_embeddings: false,
            pooling: Pooling::Cls,
            guard: GuardConfig::default(),
        }
    }
}

/// Argmax with NaN treated as −∞ and ties resolving to the lowest index —
/// a degraded model still yields a deterministic answer.
pub(crate) fn argmax_nan_tolerant(logits: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in logits.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

fn pool(hidden: &Matrix, pooling: Pooling) -> Matrix {
    match pooling {
        Pooling::Cls => hidden.rows_slice(0, 1),
        Pooling::Mean => {
            let mut out = Matrix::zeros(1, hidden.cols());
            for r in 0..hidden.rows() {
                for (o, v) in out.row_mut(0).iter_mut().zip(hidden.row(r)) {
                    *o += v;
                }
            }
            out.scale(1.0 / hidden.rows() as f32);
            out
        }
    }
}

fn unpool(dpooled: &Matrix, rows: usize, pooling: Pooling) -> Matrix {
    let mut dhidden = Matrix::zeros(rows, dpooled.cols());
    match pooling {
        Pooling::Cls => dhidden.row_mut(0).copy_from_slice(dpooled.row(0)),
        Pooling::Mean => {
            let scale = 1.0 / rows as f32;
            for r in 0..rows {
                for (d, v) in dhidden.row_mut(r).iter_mut().zip(dpooled.row(0)) {
                    *d = v * scale;
                }
            }
        }
    }
    dhidden
}

/// Forward/backward a shard of fine-tuning examples on private replicas of
/// the encoder and head, returning accumulated gradients (in `visit_params`
/// order; encoder grads are empty when the encoder is frozen) and the
/// shard's loss sum. The caller reduces shards in fixed order, so the
/// summed gradient is bitwise identical at every thread count.
fn run_fine_tune_shard(
    encoder: &Encoder,
    head: &ClsHead,
    idxs: &[usize],
    encoded: &[(Vec<usize>, usize)],
    pooling: Pooling,
    freeze_encoder: bool,
) -> (Vec<Vec<f32>>, Vec<Vec<f32>>, f32) {
    let mut enc = encoder.clone();
    let mut hd = head.clone();
    enc.zero_grad();
    hd.zero_grad();
    let mut loss_sum = 0.0f32;
    for &idx in idxs {
        let (ids, label) = &encoded[idx];
        let hidden = enc.forward(ids);
        let pooled = pool(&hidden, pooling);
        let logits = hd.forward(&pooled);
        let (loss, dlogits) = softmax_cross_entropy(&logits, &[*label]);
        loss_sum += loss;
        let dpooled = hd.backward(&dlogits);
        if !freeze_encoder {
            let dhidden = unpool(&dpooled, hidden.rows(), pooling);
            enc.backward(&dhidden);
        }
    }
    let enc_grads = if freeze_encoder { Vec::new() } else { enc.export_grads() };
    (enc_grads, hd.export_grads(), loss_sum)
}

/// One request's outcome from the deadline-aware logits paths: the logits
/// plus the cost actually spent, or the typed refusal.
pub type CostedLogits = Result<(Vec<f32>, u64), InferError>;

/// A fine-tuned classifier: encoder copy plus classification head.
#[derive(Debug, Clone)]
pub struct FmClassifier {
    /// The (possibly fine-tuned) encoder.
    pub encoder: Encoder,
    head: ClsHead,
    /// Vocabulary shared with the foundation model.
    pub vocab: Vocab,
    /// Sequence cap.
    pub max_len: usize,
    /// Number of classes.
    pub n_classes: usize,
    /// Pooling strategy (fixed at fine-tune time).
    pub pooling: Pooling,
}

impl FmClassifier {
    /// Fine-tune `fm` on labeled examples.
    ///
    /// Runs under a [`TrainGuard`]: each optimizer step's mean loss and
    /// pre-clip gradient norm are checked for NaN/Inf/explosion. A tripped
    /// guard rolls the epoch back to its starting weights, halves the
    /// learning rate, and reshuffles; after `guard.max_retries` failed
    /// attempts the run aborts with [`TrainError::Diverged`].
    pub fn fine_tune(
        fm: &FoundationModel,
        examples: &[TextExample],
        n_classes: usize,
        config: &FineTuneConfig,
    ) -> Result<FmClassifier, PipelineError> {
        if examples.is_empty() {
            return Err(PipelineError::NoExamples);
        }
        let mut init_rng = StdRng::seed_from_u64(config.seed);
        let encoder = fm.encoder.clone();
        let head = ClsHead::new(&mut init_rng, encoder.config.d_model, n_classes);
        Self::fine_tune_loop(
            encoder,
            head,
            fm.vocab.clone(),
            fm.max_len,
            examples,
            n_classes,
            config,
        )
    }

    /// Warm-start fine-tuning from an existing classifier: the encoder and
    /// head continue from `base`'s weights instead of a freshly initialized
    /// head. This is the serving-adaptation path — a cluster re-fits its
    /// incumbent model on quarantined + replay traffic without retraining
    /// from the foundation model. Class count and pooling are inherited
    /// from `base` (a head cannot change shape mid-flight), so
    /// `config.pooling` is ignored.
    pub fn fine_tune_from(
        base: &FmClassifier,
        examples: &[TextExample],
        config: &FineTuneConfig,
    ) -> Result<FmClassifier, PipelineError> {
        if examples.is_empty() {
            return Err(PipelineError::NoExamples);
        }
        let mut config = config.clone();
        config.pooling = base.pooling;
        Self::fine_tune_loop(
            base.encoder.clone(),
            base.head.clone(),
            base.vocab.clone(),
            base.max_len,
            examples,
            base.n_classes,
            &config,
        )
    }

    /// The guard-supervised training loop shared by
    /// [`FmClassifier::fine_tune`] (fresh head) and
    /// [`FmClassifier::fine_tune_from`] (warm start).
    fn fine_tune_loop(
        mut encoder: Encoder,
        mut head: ClsHead,
        vocab: Vocab,
        max_len: usize,
        examples: &[TextExample],
        n_classes: usize,
        config: &FineTuneConfig,
    ) -> Result<FmClassifier, PipelineError> {
        // Span cost = MAC delta over the run (deterministic work units).
        let macs = nfm_obs::global().counter("tensor.matmul.macs", nfm_obs::Unit::Macs);
        let macs_at_start = macs.get();
        let mut run_span = nfm_obs::span!("finetune.run");

        let encoded: Vec<(Vec<usize>, usize)> = examples
            .iter()
            .map(|e| (encode_context(&vocab, &e.tokens, max_len), e.label))
            .collect();
        let steps = (encoded.len().div_ceil(config.batch_size) * config.epochs).max(1);
        let schedule =
            Schedule::WarmupLinear { peak: config.lr, warmup: steps / 10 + 1, total: steps + 1 };
        let mut opt_enc = Adam::new(schedule);
        let mut opt_head = Adam::new(schedule);

        let mut guard = TrainGuard::new(config.guard);
        let mut lr_scale = 1.0f32;
        let mut total_retries = 0u64;
        let mut global_step = 0u64;

        for epoch in 0..config.epochs {
            let mut attempt = 0usize;
            loop {
                // Epoch-start snapshot for guard rollback.
                let snapshot =
                    (encoder.clone(), head.clone(), opt_enc.clone(), opt_head.clone(), global_step);
                // Batch order is a pure function of (seed, epoch, retries).
                let mut order: Vec<usize> = (0..encoded.len()).collect();
                let mut rng = StdRng::seed_from_u64(epoch_seed(config.seed, epoch, total_retries));
                for i in (1..order.len()).rev() {
                    order.swap(i, rng.gen_range(0..=i));
                }
                let mut tripped: Option<(u64, String)> = None;
                let mut epoch_loss = 0.0f64;
                let mut epoch_steps = 0usize;
                'batches: for batch in order.chunks(config.batch_size) {
                    encoder.zero_grad();
                    head.zero_grad();
                    // Fixed microbatch shards (boundaries depend only on
                    // the batch length) run on replicas in parallel; the
                    // reduction below folds them in shard order. Work-gated:
                    // forward+backward ≈ 3× the inference MACs, and below
                    // the gate the spawn + model-clone + grad-reduce
                    // overhead beats any parallel win.
                    let batch_work: usize = batch
                        .iter()
                        .map(|&idx| 3 * encoder.inference_cost(encoded[idx].0.len()) as usize)
                        .sum();
                    let shards = tpool::shard_ranges(batch.len(), tpool::REDUCE_SHARDS);
                    let results = tpool::par_map_work(shards.len(), batch_work, |s| {
                        run_fine_tune_shard(
                            &encoder,
                            &head,
                            &batch[shards[s].clone()],
                            &encoded,
                            config.pooling,
                            config.freeze_encoder,
                        )
                    });
                    let mut batch_loss = 0.0f32;
                    for (enc_g, head_g, loss) in results {
                        if !config.freeze_encoder {
                            encoder.accumulate_grads(&enc_g);
                        }
                        head.accumulate_grads(&head_g);
                        batch_loss += loss;
                    }
                    let step = global_step;
                    global_step += 1;
                    let mean_loss = batch_loss / batch.len().max(1) as f32;
                    let mut grad_norm = clip_global_norm(&mut head, 5.0);
                    if !config.freeze_encoder {
                        if config.freeze_embeddings {
                            encoder.zero_token_embedding_grads();
                        }
                        grad_norm = grad_norm.max(clip_global_norm(&mut encoder, 5.0));
                    }
                    epoch_loss += mean_loss as f64;
                    epoch_steps += 1;
                    nfm_obs::counter!("finetune.steps").inc();
                    nfm_obs::histogram!(
                        "finetune.grad_norm_milli",
                        nfm_obs::Unit::Milli,
                        nfm_obs::NORM_EDGES
                    )
                    .observe((grad_norm as f64 * 1000.0) as u64);
                    if let Some(cause) = guard.inspect(mean_loss, grad_norm) {
                        tripped = Some((step, cause));
                        break 'batches;
                    }
                    opt_head.step(&mut head);
                    if !config.freeze_encoder {
                        opt_enc.step(&mut encoder);
                    }
                }
                match tripped {
                    None => {
                        nfm_obs::counter!("finetune.epochs").inc();
                        let mean = if epoch_steps > 0 {
                            (epoch_loss / epoch_steps as f64) as f32
                        } else {
                            0.0
                        };
                        nfm_obs::event(
                            "finetune.epoch",
                            &[
                                ("epoch", nfm_obs::Value::U(epoch as u64)),
                                ("mean_loss", nfm_obs::Value::F32(mean)),
                            ],
                        );
                        break;
                    }
                    Some((step, cause)) => {
                        attempt += 1;
                        total_retries += 1;
                        let (e, h, oe, oh, gs) = snapshot;
                        encoder = e;
                        head = h;
                        opt_enc = oe;
                        opt_head = oh;
                        global_step = gs;
                        lr_scale *= config.guard.lr_backoff;
                        opt_enc.set_lr_scale(lr_scale);
                        opt_head.set_lr_scale(lr_scale);
                        nfm_obs::counter!("finetune.rollbacks").inc();
                        nfm_obs::event(
                            "finetune.guard.rollback",
                            &[
                                ("epoch", nfm_obs::Value::U(epoch as u64)),
                                ("step", nfm_obs::Value::U(step)),
                                ("cause", nfm_obs::Value::S(&cause)),
                                ("lr_scale", nfm_obs::Value::F32(lr_scale)),
                            ],
                        );
                        guard.record(
                            epoch,
                            step,
                            cause,
                            format!(
                                "rolled back to epoch {epoch} start; lr_scale {lr_scale:.4}; reshuffled"
                            ),
                        );
                        if attempt > config.guard.max_retries {
                            return Err(PipelineError::Train(TrainError::Diverged {
                                attempts: attempt,
                                log: guard.events,
                            }));
                        }
                    }
                }
            }
        }
        run_span.add_cost(macs.get().saturating_sub(macs_at_start));
        Ok(FmClassifier { encoder, head, vocab, max_len, n_classes, pooling: config.pooling })
    }

    /// Serialize the fine-tuned classifier (vocabulary + encoder + head +
    /// pooling) to a versioned, checksummed checkpoint file. Writes
    /// atomically (tmp + rename). This is the artifact a cluster replica
    /// warm-restarts from.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let mut w = ByteWriter::new();
        w.put_u64(self.max_len as u64);
        w.put_u64(self.n_classes as u64);
        w.put_u8(match self.pooling {
            Pooling::Cls => 0,
            Pooling::Mean => 1,
        });
        write_vocab(&mut w, &self.vocab);
        let mut encoder = self.encoder.clone();
        write_encoder(&mut w, &mut encoder);
        let mut head = self.head.clone();
        write_cls_head(&mut w, &mut head);
        save_record(path, KIND_CLASSIFIER, &w.into_bytes())
    }

    /// Load a classifier previously written by [`FmClassifier::save`].
    /// Returns a typed error (never panics) on truncation, corruption, or
    /// version mismatch — the contract [`crate::serve::load_classifier_with_retry`]
    /// builds its retry loop on.
    pub fn load(path: &Path) -> Result<FmClassifier, CheckpointError> {
        let payload = load_record(path, KIND_CLASSIFIER)?;
        let mut r = ByteReader::new(&payload);
        let max_len = r.get_count()?;
        let n_classes = r.get_count()?;
        let pooling = match r.get_u8()? {
            0 => Pooling::Cls,
            1 => Pooling::Mean,
            tag => {
                return Err(CheckpointError::Malformed(format!("unknown pooling tag {tag}")));
            }
        };
        let vocab = read_vocab(&mut r)?;
        let encoder = read_encoder(&mut r)?;
        let head = read_cls_head(&mut r)?;
        if r.remaining() != 0 {
            return Err(CheckpointError::Malformed(format!(
                "{} trailing bytes after classifier payload",
                r.remaining()
            )));
        }
        Ok(FmClassifier { encoder, head, vocab, max_len, n_classes, pooling })
    }

    /// Raw logits for a token sequence.
    pub fn logits(&self, tokens: &[String]) -> Vec<f32> {
        let ids = encode_context(&self.vocab, tokens, self.max_len);
        let hidden = self.encoder.forward_inference(&ids);
        let pooled = pool(&hidden, self.pooling);
        self.head.forward_inference(&pooled).row(0).to_vec()
    }

    /// Predicted class id. NaN logits compare as −∞ (a degraded model
    /// still yields a deterministic answer instead of panicking); ties
    /// resolve to the lowest class index.
    pub fn predict(&self, tokens: &[String]) -> usize {
        argmax_nan_tolerant(&self.logits(tokens))
    }

    /// Deterministic inference cost (multiply-accumulate units) of
    /// classifying a `n_tokens`-token sequence: encoder plus head. The
    /// serving path budgets request deadlines against this proxy, so the
    /// same request costs the same on every run.
    pub fn inference_cost(&self, n_tokens: usize) -> u64 {
        // encode_context adds [CLS]/[SEP] framing; mirror it so callers can
        // budget from raw token counts.
        let t = (n_tokens + 2).min(self.max_len);
        let head = (self.encoder.config.d_model * self.n_classes) as u64;
        self.encoder.inference_cost(t) + head
    }

    /// Deadline-aware logits: computes within `budget` cost units or
    /// returns a typed [`InferError`] without finishing the forward pass.
    /// On success also reports the cost actually spent. Never panics —
    /// empty post-encoding sequences surface as [`InferError::EmptyInput`].
    pub fn logits_within(
        &self,
        tokens: &[String],
        budget: u64,
    ) -> Result<(Vec<f32>, u64), InferError> {
        let ids = encode_context(&self.vocab, tokens, self.max_len);
        let head_cost = (self.encoder.config.d_model * self.n_classes) as u64;
        let (hidden, spent) = self.encoder.forward_inference_within(&ids, budget)?;
        if spent + head_cost > budget {
            return Err(InferError::DeadlineExceeded { spent, needed: head_cost, budget });
        }
        let pooled = pool(&hidden, self.pooling);
        let logits = self.head.forward_inference(&pooled).row(0).to_vec();
        Ok((logits, spent + head_cost))
    }

    /// Deadline-aware predict: argmax of [`FmClassifier::logits_within`]
    /// (NaN-tolerant, ties to the lowest class), plus the cost spent.
    pub fn predict_within(
        &self,
        tokens: &[String],
        budget: u64,
    ) -> Result<(usize, u64), InferError> {
        let (logits, spent) = self.logits_within(tokens, budget)?;
        Ok((argmax_nan_tolerant(&logits), spent))
    }

    /// Deadline-aware logits for a whole micro-batch, element-wise bitwise
    /// identical to calling [`FmClassifier::logits_within`] per request
    /// with the same `budget`.
    ///
    /// Each request's charge schedule is first replayed without compute
    /// ([`Encoder::plan_inference_cost`] plus the head check), so requests
    /// the budget cannot cover get their exact deterministic
    /// [`InferError::DeadlineExceeded`] without holding up the batch. The
    /// affordable remainder runs through one packed
    /// [`Encoder::forward_inference_batch`] — the layer projections and the
    /// classifier head each execute as a single GEMM across the batch —
    /// with scratch matrices drawn from `arena`. Per-request cost
    /// accounting is unchanged: each request is charged its own encoder
    /// spend plus the head cost, never a batch-amortised share.
    pub fn logits_batch_within(
        &self,
        batch: &[&[String]],
        budget: u64,
        arena: &mut ScratchArena,
    ) -> Vec<CostedLogits> {
        let head_cost = (self.encoder.config.d_model * self.n_classes) as u64;
        let encoded: Vec<Vec<usize>> =
            batch.iter().map(|t| encode_context(&self.vocab, t, self.max_len)).collect();
        let mut results: Vec<Option<CostedLogits>> = (0..batch.len()).map(|_| None).collect();
        let mut run: Vec<(usize, u64)> = Vec::with_capacity(batch.len());
        for (i, ids) in encoded.iter().enumerate() {
            match self.encoder.plan_inference_cost(ids.len(), budget) {
                Err(e) => results[i] = Some(Err(e)),
                Ok(enc_spent) if enc_spent + head_cost > budget => {
                    results[i] = Some(Err(InferError::DeadlineExceeded {
                        spent: enc_spent,
                        needed: head_cost,
                        budget,
                    }));
                }
                Ok(enc_spent) => run.push((i, enc_spent)),
            }
        }
        if !run.is_empty() {
            // Per-request results are independent of batch composition (the
            // bitwise test below packs every prefix), so a big batch can be
            // sharded across workers — one spawn per drain instead of one
            // per kernel — and still produce the same bits at every thread
            // count. The gate is the batch's own deterministic cost
            // estimate: small drains keep the single packed pass and the
            // engine's warm arena.
            let threads = tpool::effective_threads().min(run.len());
            let total_work: u64 =
                run.iter().map(|&(_, s)| s).sum::<u64>() + head_cost * run.len() as u64;
            if threads > 1 && total_work as usize >= tpool::PAR_WORK_MIN {
                let shards = tpool::shard_ranges(run.len(), threads);
                let encoded = &encoded;
                let run = &run;
                let shard_out = tpool::par_map(shards.len(), |s| {
                    let mut local = ScratchArena::new();
                    self.packed_forward(encoded, &run[shards[s].clone()], head_cost, &mut local)
                });
                for (i, r) in shard_out.into_iter().flatten() {
                    results[i] = Some(Ok(r));
                }
            } else {
                for (i, r) in self.packed_forward(&encoded, &run, head_cost, arena) {
                    results[i] = Some(Ok(r));
                }
            }
        }
        results.into_iter().map(|r| r.expect("every request resolved")).collect()
    }

    /// One packed forward over `run` (indices into `encoded` plus their
    /// planned encoder spend): the layer projections and the classifier
    /// head each execute as a single GEMM across the shard, with scratch
    /// drawn from `arena`. Returns `(request_index, (logits, spent))` per
    /// entry, bitwise identical to per-request [`FmClassifier::logits_within`].
    fn packed_forward(
        &self,
        encoded: &[Vec<usize>],
        run: &[(usize, u64)],
        head_cost: u64,
        arena: &mut ScratchArena,
    ) -> Vec<(usize, (Vec<f32>, u64))> {
        let seqs: Vec<&[usize]> = run.iter().map(|&(i, _)| encoded[i].as_slice()).collect();
        let (hidden, bounds) = self.encoder.forward_inference_batch(&seqs, arena);
        let mut pooled = arena.take(run.len(), self.encoder.config.d_model);
        for (j, _) in run.iter().enumerate() {
            // Pool straight off the packed hidden rows — the same
            // per-element operations `pool` applies to a materialised
            // row slice (CLS copy, or ascending-row sum then scale), so
            // the same bits without the copies.
            let (r0, r1) = (bounds[j], bounds[j + 1]);
            let prow = pooled.row_mut(j);
            match self.pooling {
                Pooling::Cls => prow.copy_from_slice(hidden.row(r0)),
                Pooling::Mean => {
                    for r in r0..r1 {
                        for (o, v) in prow.iter_mut().zip(hidden.row(r)) {
                            *o += v;
                        }
                    }
                    let inv = 1.0 / (r1 - r0) as f32;
                    for o in prow.iter_mut() {
                        *o *= inv;
                    }
                }
            }
        }
        arena.put(hidden);
        let logits_m = self.head.forward_inference(&pooled);
        arena.put(pooled);
        run.iter()
            .enumerate()
            .map(|(j, &(i, enc_spent))| (i, (logits_m.row(j).to_vec(), enc_spent + head_cost)))
            .collect()
    }

    /// Predicted class ids for a batch of sequences. Examples are sharded
    /// across the worker pool (inference only reads `&self`), and results
    /// come back in input order, so the output is identical to mapping
    /// [`FmClassifier::predict`] sequentially. The dispatch is work-gated
    /// on the batch's deterministic MAC estimate so small batches skip the
    /// thread-spawn overhead.
    pub fn predict_batch(&self, batch: &[Vec<String>]) -> Vec<usize> {
        let work: usize = batch.iter().map(|t| self.inference_cost(t.len()) as usize).sum();
        tpool::par_map_work(batch.len(), work, |i| self.predict(&batch[i]))
    }

    /// Softmax class probabilities.
    pub fn probabilities(&self, tokens: &[String]) -> Vec<f32> {
        let mut m = Matrix::from_vec(1, self.n_classes, self.logits(tokens));
        m.softmax_rows();
        m.row(0).to_vec()
    }

    /// Pooled embedding (pre-head), used by the OOD detectors. Uses the
    /// same pooling the head was trained with.
    pub fn embed(&self, tokens: &[String]) -> Vec<f32> {
        let ids = encode_context(&self.vocab, tokens, self.max_len);
        let hidden = self.encoder.forward_inference(&ids);
        pool(&hidden, self.pooling).row(0).to_vec()
    }

    /// Evaluate on examples, returning the confusion matrix. Predictions
    /// run example-parallel; the confusion matrix accumulates integer
    /// counts, so the result never depends on the thread count.
    pub fn evaluate(&self, examples: &[TextExample]) -> crate::metrics::Confusion {
        let work: usize =
            examples.iter().map(|e| self.inference_cost(e.tokens.len()) as usize).sum();
        let preds =
            tpool::par_map_work(examples.len(), work, |i| self.predict(&examples[i].tokens));
        let mut c = crate::metrics::Confusion::new(self.n_classes);
        for (e, p) in examples.iter().zip(preds) {
            c.add(e.label, p);
        }
        c
    }

    /// The shared backbone view of this classifier — its encoder,
    /// vocabulary, sequence cap, and pooling, cloned without the head.
    /// Heads fine-tuned against this backbone ([`TaskHead::fine_tune`])
    /// share one encoder forward at serving time
    /// ([`crate::serve::MultiTaskServer`]).
    pub fn backbone(&self) -> FmBackbone {
        FmBackbone {
            encoder: self.encoder.clone(),
            vocab: self.vocab.clone(),
            max_len: self.max_len,
            pooling: self.pooling,
        }
    }
}

/// The shared half of a multi-task deployment: the pre-trained encoder,
/// its vocabulary, the sequence cap, and the pooling strategy every task
/// head reads its embedding through. [`TaskHead`]s are trained against a
/// *frozen* backbone, so serving K tasks costs one encoder forward plus K
/// head GEMMs instead of K encoder forwards — the paper's amortization
/// argument (§3) made operational by [`crate::serve::MultiTaskServer`].
#[derive(Debug, Clone)]
pub struct FmBackbone {
    /// The shared encoder. Frozen with respect to task heads: head-only
    /// fine-tuning never updates it.
    pub encoder: Encoder,
    /// Vocabulary shared by every task.
    pub vocab: Vocab,
    /// Sequence cap.
    pub max_len: usize,
    /// Pooling strategy every head reads the hidden states through.
    pub pooling: Pooling,
}

/// The packed pooled embeddings for one micro-batch, produced by
/// [`FmBackbone::pooled_batch_within`]. `pooled` is drawn from the
/// caller's [`ScratchArena`]; return it with [`ScratchArena::put`] once
/// the task heads have consumed it.
#[derive(Debug)]
pub struct PooledBatch {
    /// Arena-backed pooled embeddings, one row per affordable request.
    pub pooled: Matrix,
    /// `(request index, encoder cost spent)` for each row of `pooled`.
    pub rows: Vec<(usize, u64)>,
    /// Requests the budget could not cover, with their typed refusals.
    pub refused: Vec<(usize, InferError)>,
}

impl FmBackbone {
    /// Wrap a pre-trained foundation model as a serving backbone with the
    /// pooling its heads will be trained with.
    pub fn from_model(fm: &FoundationModel, pooling: Pooling) -> FmBackbone {
        FmBackbone {
            encoder: fm.encoder.clone(),
            vocab: fm.vocab.clone(),
            max_len: fm.max_len,
            pooling,
        }
    }

    /// Model dimension of the shared encoder.
    pub fn d_model(&self) -> usize {
        self.encoder.config.d_model
    }

    /// Deterministic encoder cost (multiply-accumulate units) of embedding
    /// an `n_tokens`-token sequence, mirroring the `[CLS]`/`[SEP]` framing
    /// `encode_context` adds — the shared, paid-once part of
    /// [`FmClassifier::inference_cost`].
    pub fn encoder_cost(&self, n_tokens: usize) -> u64 {
        let t = (n_tokens + 2).min(self.max_len);
        self.encoder.inference_cost(t)
    }

    /// Reattach a task head, producing the single-task classifier a
    /// standalone [`crate::serve::ServeEngine`] would serve. Because heads
    /// are trained with the encoder frozen, this reconstructs exactly the
    /// classifier head-only fine-tuning produced — the identity `exp_e19`
    /// and the multi-task proptests assert bitwise.
    pub fn attach(&self, head: &TaskHead) -> FmClassifier {
        FmClassifier {
            encoder: self.encoder.clone(),
            head: head.head.clone(),
            vocab: self.vocab.clone(),
            max_len: self.max_len,
            n_classes: head.n_classes,
            pooling: self.pooling,
        }
    }

    /// Run the shared encoder once for a whole micro-batch and pool each
    /// request's hidden states, under a per-request deadline `budget`.
    ///
    /// Each request's charge schedule is first replayed without compute
    /// ([`Encoder::plan_inference_cost`]), so requests the budget cannot
    /// cover surface their exact deterministic [`InferError`] in
    /// `refused` without holding up the batch. The affordable remainder
    /// runs through one packed [`Encoder::forward_inference_batch`], and
    /// pooling applies the same per-element operations as the
    /// single-request path, so every row of `pooled` is bitwise identical
    /// to what [`FmClassifier::logits_within`] pools for that request.
    pub fn pooled_batch_within(
        &self,
        batch: &[&[String]],
        budget: u64,
        arena: &mut ScratchArena,
    ) -> PooledBatch {
        let encoded: Vec<Vec<usize>> =
            batch.iter().map(|t| encode_context(&self.vocab, t, self.max_len)).collect();
        let mut refused = Vec::new();
        let mut run: Vec<(usize, u64)> = Vec::with_capacity(batch.len());
        for (i, ids) in encoded.iter().enumerate() {
            match self.encoder.plan_inference_cost(ids.len(), budget) {
                Err(e) => refused.push((i, e)),
                Ok(enc_spent) => run.push((i, enc_spent)),
            }
        }
        let mut pooled = arena.take(run.len(), self.d_model());
        if !run.is_empty() {
            let seqs: Vec<&[usize]> = run.iter().map(|&(i, _)| encoded[i].as_slice()).collect();
            let (hidden, bounds) = self.encoder.forward_inference_batch(&seqs, arena);
            for (j, _) in run.iter().enumerate() {
                // Pool straight off the packed hidden rows — the same
                // per-element operations as the single-request `pool`, so
                // the same bits without the copies.
                let (r0, r1) = (bounds[j], bounds[j + 1]);
                let prow = pooled.row_mut(j);
                match self.pooling {
                    Pooling::Cls => prow.copy_from_slice(hidden.row(r0)),
                    Pooling::Mean => {
                        for r in r0..r1 {
                            for (o, v) in prow.iter_mut().zip(hidden.row(r)) {
                                *o += v;
                            }
                        }
                        let inv = 1.0 / (r1 - r0) as f32;
                        for o in prow.iter_mut() {
                            *o *= inv;
                        }
                    }
                }
            }
            arena.put(hidden);
        }
        PooledBatch { pooled, rows: run, refused }
    }
}

/// A lightweight per-task classification head detached from its shared
/// [`FmBackbone`]: the trainable half of the multi-task split. Heads are
/// fine-tuned with the encoder frozen, checkpoint independently
/// ([`nfm_tensor::checkpoint::KIND_TASK_HEAD`]), and can be hot-swapped
/// one at a time — drift on one task refits and rolls out that task's
/// head without touching the backbone or any other task.
#[derive(Debug, Clone)]
pub struct TaskHead {
    /// Task display name (also labels `serve.task.*` telemetry).
    pub name: String,
    head: ClsHead,
    /// Number of classes this head predicts.
    pub n_classes: usize,
    /// Pooling the head was trained with (always its backbone's).
    pub pooling: Pooling,
}

impl TaskHead {
    /// Fine-tune a fresh head for one task against a frozen shared
    /// backbone. This is [`FmClassifier::fine_tune`] with
    /// `freeze_encoder` forced on and the backbone's pooling — the same
    /// training loop, divergence guard, and seeding — so the head that
    /// comes back, reattached via [`FmBackbone::attach`], is bitwise
    /// identical to the classifier head-only fine-tuning produces.
    pub fn fine_tune(
        backbone: &FmBackbone,
        name: &str,
        examples: &[TextExample],
        n_classes: usize,
        config: &FineTuneConfig,
    ) -> Result<TaskHead, PipelineError> {
        if examples.is_empty() {
            return Err(PipelineError::NoExamples);
        }
        let mut config = config.clone();
        config.freeze_encoder = true;
        config.pooling = backbone.pooling;
        let mut init_rng = StdRng::seed_from_u64(config.seed);
        let head = ClsHead::new(&mut init_rng, backbone.d_model(), n_classes);
        let clf = FmClassifier::fine_tune_loop(
            backbone.encoder.clone(),
            head,
            backbone.vocab.clone(),
            backbone.max_len,
            examples,
            n_classes,
            &config,
        )?;
        Ok(TaskHead {
            name: name.to_string(),
            head: clf.head,
            n_classes,
            pooling: backbone.pooling,
        })
    }

    /// Continue training this head (warm start) against the same frozen
    /// backbone — the single-head adaptation path: drift on one task
    /// refits that task's head on quarantined + replay traffic while the
    /// backbone and every other head stay bitwise untouched.
    pub fn fine_tune_from(
        &self,
        backbone: &FmBackbone,
        examples: &[TextExample],
        config: &FineTuneConfig,
    ) -> Result<TaskHead, PipelineError> {
        if examples.is_empty() {
            return Err(PipelineError::NoExamples);
        }
        let mut config = config.clone();
        config.freeze_encoder = true;
        config.pooling = backbone.pooling;
        let clf = FmClassifier::fine_tune_loop(
            backbone.encoder.clone(),
            self.head.clone(),
            backbone.vocab.clone(),
            backbone.max_len,
            examples,
            self.n_classes,
            &config,
        )?;
        Ok(TaskHead {
            name: self.name.clone(),
            head: clf.head,
            n_classes: self.n_classes,
            pooling: backbone.pooling,
        })
    }

    /// Detach the head of an existing fine-tuned classifier (e.g. one
    /// trained with `freeze_encoder` before heads were first-class).
    pub fn from_classifier(clf: &FmClassifier, name: &str) -> TaskHead {
        TaskHead {
            name: name.to_string(),
            head: clf.head.clone(),
            n_classes: clf.n_classes,
            pooling: clf.pooling,
        }
    }

    /// Deterministic head cost in the same multiply-accumulate units as
    /// [`FmClassifier::inference_cost`]: the per-task, paid-per-head part
    /// of a fan-out request.
    pub fn head_cost(&self, d_model: usize) -> u64 {
        (d_model * self.n_classes) as u64
    }

    /// Mutable access to the head network — the chaos hook (mirroring
    /// [`crate::serve::ServeEngine::model_mut`]) fault-injection tests use
    /// to poison per-task weights. Serving code must treat heads as
    /// immutable and roll new ones via
    /// [`crate::serve::MultiTaskServer::replace_head`].
    pub fn network_mut(&mut self) -> &mut ClsHead {
        &mut self.head
    }

    /// Logits for a matrix of pooled embeddings (one request per row), as
    /// one GEMM across the rows — bitwise identical per row to the
    /// single-request head forward inside [`FmClassifier::logits_within`].
    pub fn logits_batch(&self, pooled: &Matrix) -> Matrix {
        self.head.forward_inference(pooled)
    }

    /// Serialize the head (name + class count + pooling + weights) to a
    /// versioned, checksummed [`nfm_tensor::checkpoint::KIND_TASK_HEAD`]
    /// record. Writes atomically (tmp + rename). Orders of magnitude
    /// smaller than a full classifier checkpoint: per-task rollouts ship
    /// only the head.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let mut w = ByteWriter::new();
        w.put_str(&self.name);
        w.put_u64(self.n_classes as u64);
        w.put_u8(match self.pooling {
            Pooling::Cls => 0,
            Pooling::Mean => 1,
        });
        let mut head = self.head.clone();
        write_cls_head(&mut w, &mut head);
        save_record(path, KIND_TASK_HEAD, &w.into_bytes())
    }

    /// Load a head previously written by [`TaskHead::save`]. Returns a
    /// typed error (never panics) on truncation, corruption, version
    /// mismatch, or a head whose declared class count contradicts its
    /// weight shapes.
    pub fn load(path: &Path) -> Result<TaskHead, CheckpointError> {
        let payload = load_record(path, KIND_TASK_HEAD)?;
        let mut r = ByteReader::new(&payload);
        let name = r.get_str()?;
        let n_classes = r.get_count()?;
        let pooling = match r.get_u8()? {
            0 => Pooling::Cls,
            1 => Pooling::Mean,
            tag => {
                return Err(CheckpointError::Malformed(format!("unknown pooling tag {tag}")));
            }
        };
        let head = read_cls_head(&mut r)?;
        if r.remaining() != 0 {
            return Err(CheckpointError::Malformed(format!(
                "{} trailing bytes after task-head payload",
                r.remaining()
            )));
        }
        if head.dims().1 != n_classes {
            return Err(CheckpointError::Malformed(format!(
                "task head declares {} classes but its weights produce {}",
                n_classes,
                head.dims().1
            )));
        }
        Ok(TaskHead { name, head, n_classes, pooling })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfm_model::tokenize::field::FieldTokenizer;
    use nfm_traffic::netsim::{simulate, SimConfig};

    fn tiny_fm() -> (FoundationModel, Trace) {
        let lt = simulate(&SimConfig {
            n_sessions: 30,
            n_general_hosts: 3,
            n_iot_sets: 1,
            ..SimConfig::default()
        });
        let tok = FieldTokenizer::new();
        let cfg = PipelineConfig {
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            d_ff: 32,
            max_len: 48,
            pretrain: PretrainConfig {
                epochs: 1,
                tasks: nfm_model::pretrain::TaskMix::mlm_only(),
                ..PretrainConfig::default()
            },
            ..PipelineConfig::default()
        };
        let (fm, stats) =
            FoundationModel::pretrain_on(&[&lt.trace], &tok, &cfg).expect("pretraining failed");
        assert!(!stats.mlm_loss.is_empty());
        (fm, lt.trace)
    }

    #[test]
    fn pretrain_produces_usable_model() {
        let (fm, _) = tiny_fm();
        assert!(fm.vocab.len() > 10);
        let emb = fm.embed(&["IP4".to_string(), "PROTO_UDP".to_string()]);
        assert_eq!(emb.len(), 16);
        assert!(emb.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn empty_inputs_are_typed_errors() {
        let tok = FieldTokenizer::new();
        let err = FoundationModel::pretrain_on(&[], &tok, &PipelineConfig::default());
        assert!(matches!(err, Err(PipelineError::NoContexts)));

        let (fm, _) = tiny_fm();
        let err = FmClassifier::fine_tune(&fm, &[], 2, &FineTuneConfig::default());
        assert!(matches!(err, Err(PipelineError::NoExamples)));
        // Errors render human-readable messages.
        let msg = format!("{}", PipelineError::NoContexts);
        assert!(msg.contains("contexts"));
    }

    #[test]
    fn model_save_load_round_trip_is_bitwise() {
        let (fm, _) = tiny_fm();
        let dir = std::env::temp_dir().join(format!("nfm_pipeline_ckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("model.nfmc");
        fm.save(&path).expect("save");
        let loaded = FoundationModel::load(&path).expect("load");
        assert_eq!(loaded.max_len, fm.max_len);
        assert_eq!(loaded.vocab.len(), fm.vocab.len());
        let toks = vec!["IP4".to_string(), "PROTO_UDP".to_string()];
        let a = fm.embed(&toks);
        let b = loaded.embed(&toks);
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "loaded model must be bitwise identical"
        );

        // Corrupting the file yields a typed error, never a panic.
        let mut bytes = std::fs::read(&path).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).expect("write");
        assert!(FoundationModel::load(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn classifier_save_load_round_trip_is_bitwise() {
        let (fm, _) = tiny_fm();
        let train: Vec<TextExample> = (0..10)
            .map(|i| TextExample {
                tokens: vec![if i % 2 == 0 { "PORT_53" } else { "PORT_443" }.to_string()],
                label: i % 2,
            })
            .collect();
        let clf = FmClassifier::fine_tune(
            &fm,
            &train,
            2,
            &FineTuneConfig { pooling: Pooling::Mean, ..FineTuneConfig::default() },
        )
        .expect("fine-tuning failed");
        let dir = std::env::temp_dir().join(format!("nfm_clf_ckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("clf.nfmc");
        clf.save(&path).expect("save");
        let loaded = FmClassifier::load(&path).expect("load");
        assert_eq!(loaded.max_len, clf.max_len);
        assert_eq!(loaded.n_classes, clf.n_classes);
        assert_eq!(loaded.pooling, clf.pooling);
        let toks = &train[0].tokens;
        let (a, b) = (clf.logits(toks), loaded.logits(toks));
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "loaded classifier must be bitwise identical"
        );
        // A foundation-model record is rejected by kind, not mangled.
        let fm_path = dir.join("fm.nfmc");
        fm.save(&fm_path).expect("save fm");
        assert!(matches!(FmClassifier::load(&fm_path), Err(CheckpointError::WrongKind { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn logits_batch_within_matches_logits_within_bitwise() {
        let (fm, _) = tiny_fm();
        let train: Vec<TextExample> = (0..10)
            .map(|i| TextExample {
                tokens: vec![if i % 2 == 0 { "PORT_53" } else { "PORT_443" }.to_string()],
                label: i % 2,
            })
            .collect();
        let long: Vec<String> = (0..60).map(|i| format!("tok{}", i % 7)).collect();
        let batch: Vec<Vec<String>> = vec![
            vec!["PORT_53".to_string()],
            vec!["IP4".to_string(), "PROTO_UDP".to_string(), "PORT_443".to_string()],
            long, // clamps to max_len
            vec!["PORT_443".to_string(), "PORT_53".to_string()],
        ];
        let refs: Vec<&[String]> = batch.iter().map(|t| t.as_slice()).collect();
        for pooling in [Pooling::Cls, Pooling::Mean] {
            let clf = FmClassifier::fine_tune(
                &fm,
                &train,
                2,
                &FineTuneConfig { pooling, ..FineTuneConfig::default() },
            )
            .expect("fine-tuning failed");
            let mid = clf.inference_cost(batch[0].len());
            let max = clf.inference_cost(60);
            let mut arena = ScratchArena::new();
            // Budgets cover: everything fits, nothing fits, exact-fit
            // boundary, and a mix where short requests fit but long ones
            // exceed the deadline.
            for budget in [u64::MAX, 0, mid, mid - 1, mid + 1, max, max - 1] {
                // Two passes per budget: the second runs on a warm arena.
                for pass in 0..2 {
                    let got = clf.logits_batch_within(&refs, budget, &mut arena);
                    for (i, tokens) in batch.iter().enumerate() {
                        let want = clf.logits_within(tokens, budget);
                        match (&got[i], &want) {
                            (Ok((gl, gc)), Ok((wl, wc))) => {
                                assert_eq!(gc, wc, "cost (req {i}, budget {budget})");
                                assert_eq!(
                                    gl.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                                    wl.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                                    "logits must be bitwise identical \
                                     (req {i}, budget {budget}, pass {pass})"
                                );
                            }
                            (Err(ge), Err(we)) => {
                                assert_eq!(ge, we, "error (req {i}, budget {budget})");
                            }
                            (g, w) => panic!(
                                "outcome diverged for req {i} at budget {budget}: \
                                 batch={g:?} single={w:?}"
                            ),
                        }
                    }
                }
            }
            assert!(arena.available() > 0, "arena retains warm buffers");
        }
    }

    #[test]
    fn predict_tolerates_nan_logits() {
        let (fm, _) = tiny_fm();
        let train: Vec<TextExample> = (0..10)
            .map(|i| TextExample {
                tokens: vec![if i % 2 == 0 { "PORT_53" } else { "PORT_443" }.to_string()],
                label: i % 2,
            })
            .collect();
        let mut clf = FmClassifier::fine_tune(&fm, &train, 2, &FineTuneConfig::default())
            .expect("fine-tuning failed");
        // Poison the head so every logit is NaN: predict must still return
        // a deterministic class (0) instead of panicking.
        clf.head.visit_params(&mut |p, _| p.fill(f32::NAN));
        let logits = clf.logits(&train[0].tokens);
        assert!(logits.iter().all(|v| v.is_nan()));
        assert_eq!(clf.predict(&train[0].tokens), 0);
    }

    #[test]
    fn predict_within_budget_agrees_with_predict_and_misses_deadlines() {
        let (fm, _) = tiny_fm();
        let train: Vec<TextExample> = (0..10)
            .map(|i| TextExample {
                tokens: vec![if i % 2 == 0 { "PORT_53" } else { "PORT_443" }.to_string()],
                label: i % 2,
            })
            .collect();
        let clf = FmClassifier::fine_tune(&fm, &train, 2, &FineTuneConfig::default())
            .expect("fine-tuning failed");
        let tokens = &train[0].tokens;
        let cost = clf.inference_cost(tokens.len());
        let (class, spent) = clf.predict_within(tokens, cost).expect("budget covers the cost");
        assert_eq!(class, clf.predict(tokens));
        assert_eq!(spent, cost, "cost model matches metered spend");
        // A budget one unit short is a deterministic deadline miss.
        let err = clf.predict_within(tokens, cost - 1).expect_err("short budget");
        assert!(matches!(err, InferError::DeadlineExceeded { .. }));
        assert_eq!(clf.predict_within(tokens, cost - 1).unwrap_err(), err);
    }

    #[test]
    fn fine_tune_learns_separable_labels() {
        let (fm, _) = tiny_fm();
        // Synthetic separable task over tokens the vocab knows.
        let mk = |t: &str, label: usize| TextExample {
            tokens: vec![t.to_string(), "IP4".to_string(), "PROTO_UDP".to_string()],
            label,
        };
        let train: Vec<TextExample> = (0..30)
            .map(|i| if i % 2 == 0 { mk("PORT_53", 0) } else { mk("PORT_443", 1) })
            .collect();
        let clf = FmClassifier::fine_tune(
            &fm,
            &train,
            2,
            &FineTuneConfig { epochs: 8, ..FineTuneConfig::default() },
        )
        .expect("fine-tuning failed");
        let acc = clf.evaluate(&train).accuracy();
        assert!(acc > 0.9, "training accuracy {acc}");
        let probs = clf.probabilities(&train[0].tokens);
        assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn frozen_encoder_only_trains_head() {
        let (fm, _) = tiny_fm();
        let train: Vec<TextExample> = (0..10)
            .map(|i| TextExample {
                tokens: vec![if i % 2 == 0 { "PORT_53" } else { "PORT_443" }.to_string()],
                label: i % 2,
            })
            .collect();
        let clf = FmClassifier::fine_tune(
            &fm,
            &train,
            2,
            &FineTuneConfig { freeze_encoder: true, epochs: 3, ..FineTuneConfig::default() },
        )
        .expect("fine-tuning failed");
        // Encoder unchanged relative to the foundation model.
        assert_eq!(clf.encoder.token_embeddings().data(), fm.encoder.token_embeddings().data());
    }

    #[test]
    fn mean_pooling_trains_and_differs_from_cls() {
        let (fm, _) = tiny_fm();
        let train: Vec<TextExample> = (0..20)
            .map(|i| TextExample {
                tokens: vec![
                    if i % 2 == 0 { "PORT_53" } else { "PORT_443" }.to_string(),
                    "IP4".to_string(),
                    "PROTO_UDP".to_string(),
                ],
                label: i % 2,
            })
            .collect();
        let cls = FmClassifier::fine_tune(
            &fm,
            &train,
            2,
            &FineTuneConfig { epochs: 6, pooling: Pooling::Cls, ..FineTuneConfig::default() },
        )
        .expect("fine-tuning failed");
        let mean = FmClassifier::fine_tune(
            &fm,
            &train,
            2,
            &FineTuneConfig { epochs: 6, pooling: Pooling::Mean, ..FineTuneConfig::default() },
        )
        .expect("fine-tuning failed");
        // Both learn the trivial rule.
        assert!(cls.evaluate(&train).accuracy() > 0.9);
        assert!(mean.evaluate(&train).accuracy() > 0.9);
        // Embeddings reflect the chosen pooling (different vectors).
        let e_cls = cls.embed(&train[0].tokens);
        let e_mean = mean.embed(&train[0].tokens);
        assert_ne!(e_cls, e_mean);
        assert_eq!(mean.pooling, Pooling::Mean);
    }

    #[test]
    fn frozen_embeddings_table_is_preserved() {
        let (fm, _) = tiny_fm();
        let train: Vec<TextExample> = (0..12)
            .map(|i| TextExample {
                tokens: vec![if i % 2 == 0 { "PORT_53" } else { "PORT_443" }.to_string()],
                label: i % 2,
            })
            .collect();
        let clf = FmClassifier::fine_tune(
            &fm,
            &train,
            2,
            &FineTuneConfig { epochs: 4, freeze_embeddings: true, ..FineTuneConfig::default() },
        )
        .expect("fine-tuning failed");
        // Token table identical to the pre-trained one even though the
        // encoder layers trained.
        assert_eq!(clf.encoder.token_embeddings().data(), fm.encoder.token_embeddings().data());
    }

    #[test]
    fn fine_tune_weights_identical_across_thread_counts() {
        let (fm, _) = tiny_fm();
        let train: Vec<TextExample> = (0..20)
            .map(|i| TextExample {
                tokens: vec![
                    if i % 2 == 0 { "PORT_53" } else { "PORT_443" }.to_string(),
                    "IP4".to_string(),
                ],
                label: i % 2,
            })
            .collect();
        let cfg = FineTuneConfig { epochs: 2, ..FineTuneConfig::default() };
        tpool::set_threads(1);
        let mut seq = FmClassifier::fine_tune(&fm, &train, 2, &cfg).expect("1-thread run");
        tpool::set_threads(4);
        let mut par = FmClassifier::fine_tune(&fm, &train, 2, &cfg).expect("4-thread run");
        tpool::set_threads(0);
        let bits = |c: &mut FmClassifier| {
            let mut out = Vec::new();
            c.encoder.visit_params(&mut |p, _| out.extend(p.iter().map(|v| v.to_bits())));
            c.head.visit_params(&mut |p, _| out.extend(p.iter().map(|v| v.to_bits())));
            out
        };
        assert_eq!(
            bits(&mut seq),
            bits(&mut par),
            "fine-tuned weights must be bitwise identical across thread counts"
        );
        // Batched predict agrees with sequential predict, in input order.
        let batch: Vec<Vec<String>> = train.iter().map(|e| e.tokens.clone()).collect();
        let expect: Vec<usize> = train.iter().map(|e| seq.predict(&e.tokens)).collect();
        tpool::set_threads(4);
        let got = par.predict_batch(&batch);
        tpool::set_threads(0);
        assert_eq!(got, expect);
    }

    #[test]
    fn examples_from_flows_respects_label_fn() {
        let lt = simulate(&SimConfig {
            n_sessions: 20,
            n_general_hosts: 3,
            n_iot_sets: 1,
            ..SimConfig::default()
        });
        let flows = nfm_traffic::dataset::extract_flows(&lt, 1);
        let tok = FieldTokenizer::new();
        let all = examples_from_flows(&flows, &tok, 48, |f| Some(f.label.app.id()));
        assert_eq!(all.len(), flows.len());
        let only_dns = examples_from_flows(&flows, &tok, 48, |f| {
            (f.label.app == nfm_traffic::AppClass::Dns).then_some(0)
        });
        assert!(only_dns.len() < all.len());
        assert!(!only_dns.is_empty());
    }

    fn head_train(n_classes: usize) -> Vec<TextExample> {
        (0..12)
            .map(|i| TextExample {
                tokens: vec![format!("PORT_{}", 40 + i % 4), "IP4".to_string()],
                label: i % n_classes,
            })
            .collect()
    }

    #[test]
    fn task_head_fine_tune_matches_frozen_classifier_bitwise() {
        let (fm, _) = tiny_fm();
        let train = head_train(3);
        let cfg = FineTuneConfig {
            epochs: 2,
            freeze_encoder: true,
            pooling: Pooling::Mean,
            ..FineTuneConfig::default()
        };
        // Head-only fine-tuning through the classifier API...
        let clf = FmClassifier::fine_tune(&fm, &train, 3, &cfg).expect("classifier fine-tune");
        // ...and through the backbone/head split.
        let backbone = clf.backbone();
        let head = TaskHead::fine_tune(&backbone, "t", &train, 3, &cfg).expect("head fine-tune");
        let mut reattached = backbone.attach(&head);
        let mut direct = clf;
        let bits = |c: &mut FmClassifier| {
            let mut out = Vec::new();
            c.encoder.visit_params(&mut |p, _| out.extend(p.iter().map(|v| v.to_bits())));
            c.head.visit_params(&mut |p, _| out.extend(p.iter().map(|v| v.to_bits())));
            out
        };
        assert_eq!(
            bits(&mut direct),
            bits(&mut reattached),
            "backbone.attach(head) must reconstruct head-only fine-tuning bitwise"
        );
        // The backbone itself is bitwise the pre-trained encoder: freezing
        // really froze it.
        let mut enc_bits = Vec::new();
        let mut fm_enc = fm.encoder.clone();
        fm_enc.visit_params(&mut |p, _| enc_bits.extend(p.iter().map(|v| v.to_bits())));
        let mut bb_bits = Vec::new();
        let mut bb_enc = backbone.encoder.clone();
        bb_enc.visit_params(&mut |p, _| bb_bits.extend(p.iter().map(|v| v.to_bits())));
        assert_eq!(enc_bits, bb_bits);
    }

    #[test]
    fn task_head_save_load_round_trip_is_bitwise() {
        let (fm, _) = tiny_fm();
        let train = head_train(2);
        let cfg = FineTuneConfig { epochs: 1, pooling: Pooling::Mean, ..FineTuneConfig::default() };
        let clf = FmClassifier::fine_tune(&fm, &train, 2, &cfg).expect("fine-tune");
        let backbone = clf.backbone();
        let head = TaskHead::fine_tune(&backbone, "roundtrip", &train, 2, &cfg).expect("head");
        let dir = std::env::temp_dir().join(format!("nfm_task_head_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("head.nfmc");
        head.save(&path).expect("save");
        let loaded = TaskHead::load(&path).expect("load");
        assert_eq!(loaded.name, "roundtrip");
        assert_eq!(loaded.n_classes, 2);
        assert_eq!(loaded.pooling, Pooling::Mean);
        let toks: Vec<String> = vec!["PORT_41".to_string(), "IP4".to_string()];
        let a = backbone.attach(&head).logits_within(&toks, u64::MAX).expect("logits");
        let b = backbone.attach(&loaded).logits_within(&toks, u64::MAX).expect("logits");
        assert_eq!(
            a.0.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.0.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
        assert_eq!(a.1, b.1);
        // Corruption is a typed error, not a panic.
        let bytes = std::fs::read(&path).expect("read");
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xFF;
        std::fs::write(&path, &corrupt).expect("write");
        assert!(TaskHead::load(&path).is_err());
        // Truncation too.
        std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("write");
        assert!(TaskHead::load(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pooled_fanout_matches_logits_within_bitwise() {
        let (fm, _) = tiny_fm();
        let cfg = FineTuneConfig {
            epochs: 1,
            freeze_encoder: true,
            pooling: Pooling::Mean,
            ..FineTuneConfig::default()
        };
        let clf = FmClassifier::fine_tune(&fm, &head_train(2), 2, &cfg).expect("fine-tune");
        let backbone = clf.backbone();
        let heads: Vec<TaskHead> = [("a", 2usize), ("b", 3), ("c", 5)]
            .iter()
            .map(|&(name, n)| {
                TaskHead::fine_tune(&backbone, name, &head_train(n), n, &cfg).expect("head")
            })
            .collect();
        // Varied-length contexts (some past max_len, some unknown tokens)
        // so every budget rung splits the batch differently.
        let contexts: Vec<Vec<String>> = (0..12)
            .map(|i| {
                let len = 1 + (i * 7) % 60;
                (0..len).map(|j| format!("PORT_{}", 40 + (i + j) % 6)).collect()
            })
            .collect();
        let batch: Vec<&[String]> = contexts.iter().map(|t| t.as_slice()).collect();
        // Budget ladder: from refuse-everything to afford-everything.
        let full = backbone.encoder_cost(64) + 1024;
        let d_model = backbone.d_model();
        for budget in [0, backbone.encoder_cost(4), backbone.encoder_cost(12), full] {
            let mut arena = ScratchArena::new();
            let pb = backbone.pooled_batch_within(&batch, budget, &mut arena);
            assert_eq!(pb.rows.len() + pb.refused.len(), batch.len());
            for head in &heads {
                let single = backbone.attach(head);
                let head_cost = head.head_cost(d_model);
                // Refusals carry the exact error logits_within reports.
                for (i, err) in &pb.refused {
                    let want = single.logits_within(&contexts[*i], budget);
                    assert_eq!(want.unwrap_err(), err.clone());
                }
                let logits_m = head.logits_batch(&pb.pooled);
                for (row, &(i, enc_spent)) in pb.rows.iter().enumerate() {
                    let want = single.logits_within(&contexts[i], budget);
                    if enc_spent + head_cost > budget {
                        let err = want.unwrap_err();
                        assert_eq!(
                            err,
                            InferError::DeadlineExceeded {
                                spent: enc_spent,
                                needed: head_cost,
                                budget,
                            }
                        );
                    } else {
                        let (logits, spent) = want.expect("affordable");
                        assert_eq!(spent, enc_spent + head_cost);
                        assert_eq!(
                            logits.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                            logits_m.row(row).iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                            "fan-out logits diverge at budget {budget}"
                        );
                    }
                }
            }
        }
    }
}
