//! Interpretability for network foundation models (paper §4.4): occlusion
//! attributions at token and field-group granularity (the paper's
//! "superpixel" analogy), attention rollout, and a deletion-curve fidelity
//! metric to compare explanation granularities.

use std::collections::BTreeMap;

use nfm_model::pretrain::encode_context;
use nfm_tensor::matrix::Matrix;

use crate::pipeline::FmClassifier;

/// One attribution: a unit of input and its importance for the predicted
/// class.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribution {
    /// Human-readable unit (token text or field-group name).
    pub unit: String,
    /// Indices of the tokens in the unit.
    pub token_indices: Vec<usize>,
    /// Importance: probability drop when the unit is occluded.
    pub importance: f64,
}

fn predicted_prob(clf: &FmClassifier, tokens: &[String], class: usize) -> f64 {
    clf.probabilities(tokens)[class] as f64
}

/// Token-level occlusion: remove each token in turn and measure the drop in
/// the predicted class's probability.
pub fn occlusion_tokens(clf: &FmClassifier, tokens: &[String]) -> Vec<Attribution> {
    let class = clf.predict(tokens);
    let base = predicted_prob(clf, tokens, class);
    (0..tokens.len())
        .map(|i| {
            let mut reduced = tokens.to_vec();
            reduced.remove(i);
            let p = if reduced.is_empty() { 0.0 } else { predicted_prob(clf, &reduced, class) };
            Attribution { unit: tokens[i].clone(), token_indices: vec![i], importance: base - p }
        })
        .collect()
}

/// The field-group ("superpixel") of a token: its family prefix, e.g. all
/// `QD_*` tokens form the "QD" group, all `CS_*` tokens the "CS" group.
pub fn field_group(token: &str) -> String {
    match token.split_once('_') {
        Some((prefix, _)) => prefix.to_string(),
        None => token.to_string(),
    }
}

/// Group-level occlusion: remove whole field groups at a time. This is the
/// network analogue of superpixel explanations — groups of related inputs
/// explained together.
pub fn occlusion_groups(clf: &FmClassifier, tokens: &[String]) -> Vec<Attribution> {
    let class = clf.predict(tokens);
    let base = predicted_prob(clf, tokens, class);
    let mut groups: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, t) in tokens.iter().enumerate() {
        groups.entry(field_group(t)).or_default().push(i);
    }
    groups
        .into_iter()
        .map(|(name, indices)| {
            let reduced: Vec<String> = tokens
                .iter()
                .enumerate()
                .filter(|(i, _)| !indices.contains(i))
                .map(|(_, t)| t.clone())
                .collect();
            let p = if reduced.is_empty() { 0.0 } else { predicted_prob(clf, &reduced, class) };
            Attribution { unit: name, token_indices: indices, importance: base - p }
        })
        .collect()
}

/// Attention rollout (Abnar & Zuidema-style): multiply per-layer,
/// head-averaged attention matrices (with residual mixing) and read the
/// `[CLS]` row — how much each input position feeds the classification.
pub fn attention_rollout(clf: &mut FmClassifier, tokens: &[String]) -> Vec<f64> {
    let ids = encode_context(&clf.vocab, tokens, clf.max_len);
    let t = ids.len();
    // Training-mode forward to capture attention maps (gradients unused).
    let _ = clf.encoder.forward(&ids);
    let layers = clf.encoder.last_attention();
    let mut rollout = Matrix::from_fn(t, t, |r, c| if r == c { 1.0 } else { 0.0 });
    for heads in layers {
        if heads.is_empty() {
            continue;
        }
        // Head average + residual, row-normalized.
        let mut avg = Matrix::zeros(t, t);
        for h in heads {
            avg.add_assign(h);
        }
        avg.scale(1.0 / heads.len() as f32);
        for r in 0..t {
            let row = avg.row_mut(r);
            row[r] += 1.0;
            let sum: f32 = row.iter().sum();
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        rollout = avg.matmul(&rollout);
    }
    // CLS row, skipping CLS itself and the trailing SEP; align with tokens.
    let cls_row = rollout.row(0);
    (0..tokens.len().min(t.saturating_sub(2))).map(|i| cls_row[i + 1] as f64).collect()
}

/// Deletion-curve fidelity: delete units in decreasing-importance order and
/// integrate the predicted-class probability. Lower area = more faithful
/// explanation (important things removed first destroy the prediction
/// fastest). Returns the normalized area in [0, 1].
pub fn deletion_auc(clf: &FmClassifier, tokens: &[String], attributions: &[Attribution]) -> f64 {
    let class = clf.predict(tokens);
    let mut order: Vec<&Attribution> = attributions.iter().collect();
    order.sort_by(|a, b| b.importance.partial_cmp(&a.importance).expect("finite"));
    let mut removed: Vec<usize> = Vec::new();
    let mut curve = vec![predicted_prob(clf, tokens, class)];
    for attr in order {
        removed.extend(&attr.token_indices);
        let reduced: Vec<String> = tokens
            .iter()
            .enumerate()
            .filter(|(i, _)| !removed.contains(i))
            .map(|(_, t)| t.clone())
            .collect();
        let p = if reduced.is_empty() { 0.0 } else { predicted_prob(clf, &reduced, class) };
        curve.push(p);
    }
    // Trapezoidal area normalized by the number of steps.
    if curve.len() < 2 {
        return curve.first().copied().unwrap_or(0.0);
    }
    let mut area = 0.0;
    for w in curve.windows(2) {
        area += (w[0] + w[1]) / 2.0;
    }
    area / (curve.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{FineTuneConfig, FoundationModel, PipelineConfig, TextExample};
    use nfm_model::pretrain::{PretrainConfig, TaskMix};
    use nfm_model::tokenize::field::FieldTokenizer;
    use nfm_traffic::netsim::{simulate, SimConfig};

    fn trained_classifier() -> FmClassifier {
        let lt = simulate(&SimConfig {
            n_sessions: 25,
            n_general_hosts: 3,
            n_iot_sets: 1,
            ..SimConfig::default()
        });
        let tok = FieldTokenizer::new();
        let cfg = PipelineConfig {
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            d_ff: 32,
            max_len: 32,
            pretrain: PretrainConfig {
                epochs: 1,
                tasks: TaskMix::mlm_only(),
                ..PretrainConfig::default()
            },
            ..PipelineConfig::default()
        };
        let (fm, _) =
            FoundationModel::pretrain_on(&[&lt.trace], &tok, &cfg).expect("pretraining failed");
        // Label is decided by the port token — the explanation should find it.
        let train: Vec<TextExample> = (0..30)
            .map(|i| TextExample {
                tokens: vec![
                    "IP4".to_string(),
                    "PROTO_UDP".to_string(),
                    if i % 2 == 0 { "PORT_53" } else { "PORT_443" }.to_string(),
                    "TTL_64".to_string(),
                ],
                label: i % 2,
            })
            .collect();
        FmClassifier::fine_tune(
            &fm,
            &train,
            2,
            &FineTuneConfig { epochs: 10, ..FineTuneConfig::default() },
        )
        .expect("fine-tuning failed")
    }

    #[test]
    fn occlusion_finds_the_decisive_token() {
        let clf = trained_classifier();
        let tokens: Vec<String> =
            ["IP4", "PROTO_UDP", "PORT_53", "TTL_64"].iter().map(|s| s.to_string()).collect();
        let attrs = occlusion_tokens(&clf, &tokens);
        let best =
            attrs.iter().max_by(|a, b| a.importance.partial_cmp(&b.importance).unwrap()).unwrap();
        assert_eq!(best.unit, "PORT_53", "attributions: {attrs:?}");
    }

    #[test]
    fn group_occlusion_groups_by_prefix() {
        let clf = trained_classifier();
        let tokens: Vec<String> = ["IP4", "PROTO_UDP", "PORT_53", "PORT_EPH", "TTL_64"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let attrs = occlusion_groups(&clf, &tokens);
        let port_group = attrs.iter().find(|a| a.unit == "PORT").expect("PORT group exists");
        assert_eq!(port_group.token_indices, vec![2, 3]);
        // The PORT group carries positive label signal (removing it hurts
        // the predicted class); exact ranking against always-present tokens
        // varies with training noise on this 5-token toy input.
        assert!(port_group.importance > 0.0, "{attrs:?}");
        // TTL is identical across classes and carries ~no signal.
        let ttl = attrs.iter().find(|a| a.unit == "TTL").unwrap();
        assert!(ttl.importance < port_group.importance);
    }

    #[test]
    fn field_group_extraction() {
        assert_eq!(field_group("PORT_443"), "PORT");
        assert_eq!(field_group("QD_com"), "QD");
        assert_eq!(field_group("IP4"), "IP4");
    }

    #[test]
    fn rollout_distributes_over_positions() {
        let mut clf = trained_classifier();
        let tokens: Vec<String> =
            ["IP4", "PROTO_UDP", "PORT_53", "TTL_64"].iter().map(|s| s.to_string()).collect();
        let weights = attention_rollout(&mut clf, &tokens);
        assert_eq!(weights.len(), 4);
        assert!(weights.iter().all(|w| *w >= 0.0 && w.is_finite()));
        assert!(weights.iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn deletion_auc_in_unit_range_and_ranks_explanations() {
        let clf = trained_classifier();
        let tokens: Vec<String> =
            ["IP4", "PROTO_UDP", "PORT_53", "TTL_64"].iter().map(|s| s.to_string()).collect();
        let good = occlusion_tokens(&clf, &tokens);
        let auc_good = deletion_auc(&clf, &tokens, &good);
        assert!((0.0..=1.0).contains(&auc_good));
        // A deliberately-bad explanation (reversed importances) must do no
        // better (lower = better).
        let mut bad = good.clone();
        for a in &mut bad {
            a.importance = -a.importance;
        }
        let auc_bad = deletion_auc(&clf, &tokens, &bad);
        assert!(auc_good <= auc_bad + 1e-9, "good {auc_good} vs bad {auc_bad}");
    }
}
