//! Evaluation metrics: confusion matrix, accuracy, macro-averaged
//! precision/recall/F1 (the NorBERT comparison metric), and AUROC for the
//! OOD experiments.

/// A square confusion matrix over `n` classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Confusion {
    n: usize,
    /// counts[true][pred]
    counts: Vec<Vec<usize>>,
}

impl Confusion {
    /// Empty matrix for `n` classes.
    pub fn new(n: usize) -> Confusion {
        Confusion { n, counts: vec![vec![0; n]; n] }
    }

    /// Build from parallel label/prediction slices.
    pub fn from_pairs(n: usize, truths: &[usize], preds: &[usize]) -> Confusion {
        assert_eq!(truths.len(), preds.len());
        let mut c = Confusion::new(n);
        for (&t, &p) in truths.iter().zip(preds) {
            c.add(t, p);
        }
        c
    }

    /// Record one observation.
    pub fn add(&mut self, truth: usize, pred: usize) {
        assert!(truth < self.n && pred < self.n);
        self.counts[truth][pred] += 1;
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.counts.iter().map(|r| r.iter().sum::<usize>()).sum()
    }

    /// Overall accuracy (0 when empty).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.n).map(|i| self.counts[i][i]).sum();
        correct as f64 / total as f64
    }

    /// Per-class precision (None when the class was never predicted).
    pub fn precision(&self, class: usize) -> Option<f64> {
        let predicted: usize = (0..self.n).map(|t| self.counts[t][class]).sum();
        if predicted == 0 {
            None
        } else {
            Some(self.counts[class][class] as f64 / predicted as f64)
        }
    }

    /// Per-class recall (None when the class never occurred).
    pub fn recall(&self, class: usize) -> Option<f64> {
        let actual: usize = self.counts[class].iter().sum();
        if actual == 0 {
            None
        } else {
            Some(self.counts[class][class] as f64 / actual as f64)
        }
    }

    /// Per-class F1 (0 when degenerate; None when the class never occurred).
    pub fn f1(&self, class: usize) -> Option<f64> {
        let r = self.recall(class)?;
        let p = self.precision(class).unwrap_or(0.0);
        if p + r == 0.0 {
            Some(0.0)
        } else {
            Some(2.0 * p * r / (p + r))
        }
    }

    /// Macro-averaged F1 over classes that actually occur.
    pub fn macro_f1(&self) -> f64 {
        let scores: Vec<f64> = (0..self.n).filter_map(|c| self.f1(c)).collect();
        if scores.is_empty() {
            0.0
        } else {
            scores.iter().sum::<f64>() / scores.len() as f64
        }
    }

    /// Raw counts, `counts[truth][pred]`.
    pub fn counts(&self) -> &[Vec<usize>] {
        &self.counts
    }
}

/// Area under the ROC curve for `scores` where higher means "positive".
/// Computed exactly via the rank statistic with midrank tie handling.
pub fn auroc(scores_pos: &[f64], scores_neg: &[f64]) -> f64 {
    let np = scores_pos.len();
    let nn = scores_neg.len();
    if np == 0 || nn == 0 {
        return 0.5;
    }
    let mut all: Vec<(f64, bool)> = scores_pos
        .iter()
        .map(|&s| (s, true))
        .chain(scores_neg.iter().map(|&s| (s, false)))
        .collect();
    all.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite scores"));
    // Midranks.
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < all.len() {
        let mut j = i;
        while j + 1 < all.len() && all[j + 1].0 == all[i].0 {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for item in &all[i..=j] {
            if item.1 {
                rank_sum_pos += midrank;
            }
        }
        i = j + 1;
    }
    (rank_sum_pos - np as f64 * (np as f64 + 1.0) / 2.0) / (np as f64 * nn as f64)
}

/// Mean and sample standard deviation of a slice.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var =
        values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (values.len() - 1) as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let c = Confusion::from_pairs(3, &[0, 1, 2, 0], &[0, 1, 2, 0]);
        assert_eq!(c.accuracy(), 1.0);
        assert_eq!(c.macro_f1(), 1.0);
        assert_eq!(c.f1(0), Some(1.0));
    }

    #[test]
    fn known_confusion_values() {
        // truth:  0 0 0 1 1
        // pred:   0 0 1 1 0
        let c = Confusion::from_pairs(2, &[0, 0, 0, 1, 1], &[0, 0, 1, 1, 0]);
        assert!((c.accuracy() - 0.6).abs() < 1e-9);
        assert!((c.precision(0).unwrap() - 2.0 / 3.0).abs() < 1e-9);
        assert!((c.recall(0).unwrap() - 2.0 / 3.0).abs() < 1e-9);
        assert!((c.precision(1).unwrap() - 0.5).abs() < 1e-9);
        assert!((c.recall(1).unwrap() - 0.5).abs() < 1e-9);
        let f0 = 2.0 / 3.0;
        let f1 = 0.5;
        assert!((c.macro_f1() - (f0 + f1) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn absent_class_excluded_from_macro() {
        let c = Confusion::from_pairs(3, &[0, 0], &[0, 0]);
        assert_eq!(c.f1(2), None);
        assert_eq!(c.macro_f1(), 1.0);
    }

    #[test]
    fn auroc_extremes() {
        assert_eq!(auroc(&[0.9, 0.8], &[0.1, 0.2]), 1.0);
        assert_eq!(auroc(&[0.1, 0.2], &[0.9, 0.8]), 0.0);
        assert_eq!(auroc(&[], &[0.5]), 0.5);
    }

    #[test]
    fn auroc_known_value() {
        // pos: 0.8, 0.4; neg: 0.6, 0.2 → pairs won: (0.8>0.6),(0.8>0.2),(0.4<0.6),(0.4>0.2) = 3/4.
        assert!((auroc(&[0.8, 0.4], &[0.6, 0.2]) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn auroc_handles_ties_as_half() {
        // All equal → 0.5.
        assert!((auroc(&[0.5, 0.5], &[0.5, 0.5]) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn mean_std_values() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-9);
        assert!((s - 1.0).abs() < 1e-9);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        assert_eq!(mean_std(&[5.0]).1, 0.0);
    }
}
