//! The baselines NorBERT compared against (§3.4): GRU classifiers with
//! randomly-initialized embeddings and with frozen GloVe embeddings — both
//! trained only on the labeled data (no pre-training on the unlabeled
//! corpus).

use nfm_model::embed::glove::{Glove, GloveConfig};
use nfm_model::nn::gru::GruClassifier;
use nfm_model::vocab::Vocab;
use nfm_tensor::layers::Module;
use nfm_tensor::loss::softmax_cross_entropy;
use nfm_tensor::optim::{clip_global_norm, Adam, Schedule};
use nfm_tensor::pool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::Confusion;
use crate::pipeline::TextExample;

/// Which baseline variant to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// GRU with randomly-initialized, trainable embeddings.
    GruRandom,
    /// GRU with GloVe embeddings trained on the labeled data only, frozen.
    GruGlove,
}

impl BaselineKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            BaselineKind::GruRandom => "gru-random",
            BaselineKind::GruGlove => "gru-glove",
        }
    }
}

/// Baseline training hyperparameters.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Embedding dimension.
    pub d_embed: usize,
    /// GRU hidden size.
    pub d_hidden: usize,
    /// Epochs over the labeled set.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Sequences per optimizer step.
    pub batch_size: usize,
    /// Maximum tokens per example.
    pub max_len: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            d_embed: 32,
            d_hidden: 32,
            epochs: 6,
            lr: 3e-3,
            batch_size: 8,
            max_len: 96,
            seed: 3,
        }
    }
}

/// A trained GRU baseline.
pub struct GruBaseline {
    model: GruClassifier,
    /// Vocabulary built from the *labeled* training data only.
    pub vocab: Vocab,
    /// Number of classes.
    pub n_classes: usize,
    max_len: usize,
}

impl GruBaseline {
    /// Train a baseline of the given kind on labeled examples. The
    /// vocabulary is built from the training set alone — the baselines see
    /// no unlabeled corpus, which is the crux of the comparison.
    pub fn train(
        examples: &[TextExample],
        n_classes: usize,
        kind: BaselineKind,
        config: &BaselineConfig,
    ) -> GruBaseline {
        assert!(!examples.is_empty());
        let sequences: Vec<Vec<String>> = examples.iter().map(|e| e.tokens.clone()).collect();
        let vocab = Vocab::from_sequences(&sequences, 1);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut model =
            GruClassifier::new(&mut rng, vocab.len(), config.d_embed, config.d_hidden, n_classes);
        if kind == BaselineKind::GruGlove {
            let encoded: Vec<Vec<usize>> = sequences.iter().map(|s| vocab.encode(s)).collect();
            let glove = Glove::train(
                &encoded,
                vocab.len(),
                &GloveConfig { dim: config.d_embed, epochs: 25, ..GloveConfig::default() },
            );
            model = model.with_pretrained_embeddings(glove.embeddings);
        }

        let encoded: Vec<(Vec<usize>, usize)> = examples
            .iter()
            .map(|e| {
                let mut ids = vocab.encode(&e.tokens);
                ids.truncate(config.max_len);
                (ids, e.label)
            })
            .collect();
        let steps = (encoded.len().div_ceil(config.batch_size) * config.epochs).max(1);
        let schedule =
            Schedule::WarmupLinear { peak: config.lr, warmup: steps / 10 + 1, total: steps + 1 };
        let mut opt = Adam::new(schedule);
        let mut order: Vec<usize> = (0..encoded.len()).collect();
        for _ in 0..config.epochs {
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            for batch in order.chunks(config.batch_size) {
                model.zero_grad();
                // Data-parallel microbatches: fixed shard boundaries, each
                // shard trains a replica, gradients fold in shard order —
                // same recipe as the transformer loops, same determinism.
                let shards = pool::shard_ranges(batch.len(), pool::REDUCE_SHARDS);
                let results = pool::par_map(shards.len(), |s| {
                    let mut replica = model.clone();
                    replica.zero_grad();
                    for &idx in &batch[shards[s].clone()] {
                        let (ids, label) = &encoded[idx];
                        if ids.is_empty() {
                            continue;
                        }
                        let logits = replica.forward(ids);
                        let (_, dlogits) = softmax_cross_entropy(&logits, &[*label]);
                        replica.backward(&dlogits);
                    }
                    replica.export_grads()
                });
                for grads in results {
                    model.accumulate_grads(&grads);
                }
                clip_global_norm(&mut model, 5.0);
                opt.step(&mut model);
            }
        }
        GruBaseline { model, vocab, n_classes, max_len: config.max_len }
    }

    /// Predicted class for a token sequence (unknown tokens become `[UNK]` —
    /// exactly what hurts baselines on shifted data).
    pub fn predict(&self, tokens: &[String]) -> usize {
        let mut ids = self.vocab.encode(tokens);
        ids.truncate(self.max_len);
        if ids.is_empty() {
            return 0;
        }
        self.model.forward_inference(&ids).argmax_rows()[0]
    }

    /// Evaluate on examples (predictions run example-parallel; the integer
    /// confusion counts are identical at any thread count).
    pub fn evaluate(&self, examples: &[TextExample]) -> Confusion {
        let preds = pool::par_map(examples.len(), |i| self.predict(&examples[i].tokens));
        let mut c = Confusion::new(self.n_classes);
        for (e, p) in examples.iter().zip(preds) {
            c.add(e.label, p);
        }
        c
    }
}

/// The cheapest graceful-degradation tier: a class-prior heuristic fitted
/// from labeled flow statistics alone. It answers the majority class of its
/// training set in O(1), so the serving path can always produce *some*
/// response even when both the foundation model and the GRU fallback are
/// unavailable. Ties resolve to the lowest class id; an empty fit yields
/// class 0 — deterministic either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MajorityBaseline {
    /// The class this heuristic always answers.
    pub class: usize,
    /// Number of classes in the task.
    pub n_classes: usize,
}

impl MajorityBaseline {
    /// Fit the prior from labeled examples (labels ≥ `n_classes` are
    /// ignored rather than panicking).
    pub fn fit(examples: &[TextExample], n_classes: usize) -> MajorityBaseline {
        let mut counts = vec![0usize; n_classes.max(1)];
        for e in examples {
            if let Some(c) = counts.get_mut(e.label) {
                *c += 1;
            }
        }
        let class = counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .unwrap_or(0);
        MajorityBaseline { class, n_classes: n_classes.max(1) }
    }

    /// The prior's answer (independent of the input by construction).
    pub fn predict(&self) -> usize {
        self.class
    }

    /// Evaluate on examples — the floor any model must beat.
    pub fn evaluate(&self, examples: &[TextExample]) -> Confusion {
        let mut c = Confusion::new(self.n_classes);
        for e in examples {
            c.add(e.label, self.class);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable_examples(n: usize) -> Vec<TextExample> {
        (0..n)
            .map(|i| {
                let label = i % 3;
                let tokens: Vec<String> =
                    (0..6).map(|j| format!("tok{}_{}", label, (i + j) % 4)).collect();
                TextExample { tokens, label }
            })
            .collect()
    }

    #[test]
    fn gru_random_learns_training_set() {
        let train = separable_examples(45);
        let clf = GruBaseline::train(
            &train,
            3,
            BaselineKind::GruRandom,
            &BaselineConfig { epochs: 12, d_embed: 16, d_hidden: 16, ..BaselineConfig::default() },
        );
        let acc = clf.evaluate(&train).accuracy();
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn gru_glove_trains_with_frozen_embeddings() {
        let train = separable_examples(30);
        let clf = GruBaseline::train(
            &train,
            3,
            BaselineKind::GruGlove,
            &BaselineConfig { epochs: 12, d_embed: 16, d_hidden: 16, ..BaselineConfig::default() },
        );
        let acc = clf.evaluate(&train).accuracy();
        assert!(acc > 0.7, "accuracy {acc}");
    }

    #[test]
    fn unknown_tokens_degrade_gracefully() {
        let train = separable_examples(30);
        let clf =
            GruBaseline::train(&train, 3, BaselineKind::GruRandom, &BaselineConfig::default());
        // Completely unseen vocabulary — prediction must still work.
        let pred = clf.predict(&["never-seen".to_string(), "also-new".to_string()]);
        assert!(pred < 3);
    }

    #[test]
    fn majority_baseline_is_deterministic_and_bounded() {
        let mut ex = separable_examples(30); // 10 of each of 3 classes
        ex.push(TextExample { tokens: vec!["t".into()], label: 2 });
        let m = MajorityBaseline::fit(&ex, 3);
        assert_eq!(m.predict(), 2);
        let acc = m.evaluate(&ex).accuracy();
        assert!((acc - 11.0 / 31.0).abs() < 1e-9, "accuracy {acc}");
        // Ties resolve to the lowest class; empty fits answer class 0.
        assert_eq!(MajorityBaseline::fit(&separable_examples(30), 3).predict(), 0);
        assert_eq!(MajorityBaseline::fit(&[], 4).predict(), 0);
        // Out-of-range labels are ignored, not a panic.
        let bad = vec![TextExample { tokens: vec![], label: 99 }];
        assert_eq!(MajorityBaseline::fit(&bad, 2).predict(), 0);
    }

    #[test]
    fn kinds_have_names() {
        assert_eq!(BaselineKind::GruRandom.name(), "gru-random");
        assert_eq!(BaselineKind::GruGlove.name(), "gru-glove");
    }
}
