//! NetGLUE — the benchmark the paper asks the community for (§4.2):
//! "Benchmarks could comprise a dozen of network downstream tasks including
//! device classification, flow classification, performance prediction,
//! congestion prediction, malware detection."
//!
//! Each task turns labeled flows into classification examples with a
//! standard label mapping; the runner in `nfm-bench` evaluates model
//! families across all of them.

use nfm_model::context::first_m_of_n_context;
use nfm_model::tokenize::Tokenizer;
use nfm_traffic::dataset::LabeledFlow;
use nfm_traffic::label::{AppClass, DeviceClass};

use crate::pipeline::{examples_from_flows, TextExample};

/// A NetGLUE task definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Classify the application class of a flow (9-way).
    AppClassification,
    /// Classify the originating device (client flows only, 6-way).
    DeviceClassification,
    /// Detect whether a flow is malicious (binary).
    MalwareDetection,
    /// Predict the flow's eventual size bucket from its first 4 packets
    /// (performance prediction, 4-way).
    PerformancePrediction,
}

impl Task {
    /// All tasks, stable order.
    pub const ALL: [Task; 4] = [
        Task::AppClassification,
        Task::DeviceClassification,
        Task::MalwareDetection,
        Task::PerformancePrediction,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Task::AppClassification => "app-class",
            Task::DeviceClassification => "device-class",
            Task::MalwareDetection => "malware",
            Task::PerformancePrediction => "perf-predict",
        }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        match self {
            Task::AppClassification => AppClass::ALL.len(),
            Task::DeviceClassification => DeviceClass::ALL.len() - 1, // no Server
            Task::MalwareDetection => 2,
            Task::PerformancePrediction => 4,
        }
    }

    /// Human-readable class name.
    pub fn class_name(&self, id: usize) -> String {
        match self {
            Task::AppClassification => {
                AppClass::from_id(id).map(|c| c.name().to_string()).unwrap_or("?".into())
            }
            Task::DeviceClassification => {
                DeviceClass::from_id(id).map(|c| c.name().to_string()).unwrap_or("?".into())
            }
            Task::MalwareDetection => ["benign", "malicious"][id.min(1)].to_string(),
            Task::PerformancePrediction => {
                ["tiny(<2KB)", "small(<16KB)", "medium(<128KB)", "large"][id.min(3)].to_string()
            }
        }
    }

    /// Size bucket for performance prediction.
    pub fn size_bucket(total_bytes: usize) -> usize {
        match total_bytes {
            0..=2047 => 0,
            2048..=16383 => 1,
            16384..=131071 => 2,
            _ => 3,
        }
    }

    /// Build examples for this task from labeled flows.
    ///
    /// Performance prediction deliberately restricts the input to the first
    /// 4 packets (forecasting, not hindsight); every other task sees the
    /// flow context up to `max_tokens`.
    pub fn examples(
        &self,
        flows: &[LabeledFlow],
        tokenizer: &dyn Tokenizer,
        max_tokens: usize,
    ) -> Vec<TextExample> {
        match self {
            Task::AppClassification => {
                examples_from_flows(flows, tokenizer, max_tokens, |f| Some(f.label.app.id()))
            }
            Task::DeviceClassification => examples_from_flows(flows, tokenizer, max_tokens, |f| {
                (f.label.device != DeviceClass::Server).then(|| f.label.device.id())
            }),
            Task::MalwareDetection => examples_from_flows(flows, tokenizer, max_tokens, |f| {
                Some(usize::from(f.label.is_malicious()))
            }),
            Task::PerformancePrediction => flows
                .iter()
                .filter_map(|f| {
                    if f.packets.len() < 5 {
                        return None; // need a future to predict
                    }
                    let tokens = first_m_of_n_context(&f.packets, tokenizer, 12, 4, max_tokens);
                    if tokens.is_empty() {
                        return None;
                    }
                    Some(TextExample { tokens, label: Self::size_bucket(f.stats.total_bytes()) })
                })
                .collect(),
        }
    }
}

/// One row of a NetGLUE report.
#[derive(Debug, Clone)]
pub struct TaskResult {
    /// Task evaluated.
    pub task: Task,
    /// Model family name.
    pub model: String,
    /// Accuracy on the evaluation split.
    pub accuracy: f64,
    /// Macro F1 on the evaluation split.
    pub macro_f1: f64,
    /// Number of evaluation examples.
    pub n_eval: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfm_model::tokenize::field::FieldTokenizer;
    use nfm_traffic::dataset::extract_flows;
    use nfm_traffic::netsim::{simulate, SimConfig};

    fn flows() -> Vec<LabeledFlow> {
        let lt = simulate(&SimConfig {
            n_sessions: 60,
            n_general_hosts: 4,
            n_iot_sets: 1,
            anomaly_fraction: 0.2,
            ..SimConfig::default()
        });
        extract_flows(&lt, 1)
    }

    #[test]
    fn every_task_produces_examples_with_valid_labels() {
        let flows = flows();
        let tok = FieldTokenizer::new();
        for task in Task::ALL {
            let examples = task.examples(&flows, &tok, 64);
            assert!(!examples.is_empty(), "{}", task.name());
            for e in &examples {
                assert!(e.label < task.n_classes(), "{}: label {}", task.name(), e.label);
                assert!(!e.tokens.is_empty());
            }
        }
    }

    #[test]
    fn malware_task_has_both_classes() {
        let flows = flows();
        let tok = FieldTokenizer::new();
        let examples = Task::MalwareDetection.examples(&flows, &tok, 64);
        let malicious = examples.iter().filter(|e| e.label == 1).count();
        let benign = examples.iter().filter(|e| e.label == 0).count();
        assert!(malicious > 0 && benign > 0);
    }

    #[test]
    fn perf_prediction_uses_only_prefixes() {
        let flows = flows();
        let tok = FieldTokenizer::new();
        let examples = Task::PerformancePrediction.examples(&flows, &tok, 256);
        // First-4-packets × 12 tokens cap.
        assert!(examples.iter().all(|e| e.tokens.len() <= 48));
    }

    #[test]
    fn size_buckets_are_monotone() {
        assert_eq!(Task::size_bucket(0), 0);
        assert_eq!(Task::size_bucket(2048), 1);
        assert_eq!(Task::size_bucket(20_000), 2);
        assert_eq!(Task::size_bucket(1_000_000), 3);
    }

    #[test]
    fn names_and_classes() {
        for task in Task::ALL {
            assert!(!task.name().is_empty());
            assert!(task.n_classes() >= 2);
            for id in 0..task.n_classes() {
                assert!(!task.class_name(id).is_empty());
            }
        }
        assert_eq!(Task::DeviceClassification.n_classes(), 6);
    }
}
