//! # nfm-core — the network foundation model
//!
//! The paper's primary proposal made runnable: pre-train a transformer
//! encoder on abundant unlabeled traffic (§3.2) with network-specific
//! objectives (§4.1.4), then fine-tune on small labeled sets for the
//! downstream tasks of §3.1 — plus the OOD detectors of §4.3, the
//! interpretability methods of §4.4, and the NetGLUE benchmark of §4.2.
//!
//! ```no_run
//! use nfm_core::pipeline::{FoundationModel, PipelineConfig};
//! use nfm_model::tokenize::field::FieldTokenizer;
//! use nfm_traffic::netsim::{simulate, SimConfig};
//!
//! let unlabeled = simulate(&SimConfig::default());
//! let tokenizer = FieldTokenizer::new();
//! let (fm, stats) = FoundationModel::pretrain_on(
//!     &[&unlabeled.trace],
//!     &tokenizer,
//!     &PipelineConfig::default(),
//! )
//! .expect("pretraining failed");
//! println!("MLM accuracy after pretraining: {:.3}", stats.final_mlm_accuracy);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod baselines;
pub mod cluster;
pub mod interpret;
pub mod metrics;
pub mod netglue;
pub mod ood;
pub mod pipeline;
pub mod report;
pub mod serve;

pub use baselines::{BaselineConfig, BaselineKind, GruBaseline, MajorityBaseline};
pub use cluster::{
    AdaptConfig, ClusterConfig, ClusterError, ClusterStats, ClusterSupervisor, ReplicaHealth,
};
pub use metrics::{auroc, Confusion};
pub use netglue::Task;
pub use ood::{
    DriftConfig, DriftMonitor, DriftObservation, EmbeddingStats, OodDetector, OodScore, PageHinkley,
};
pub use pipeline::{
    examples_from_flows, FineTuneConfig, FmBackbone, FmClassifier, FoundationModel, PipelineConfig,
    PipelineError, PooledBatch, TaskHead, TextExample,
};
pub use serve::{
    assemble_requests, load_classifier_with_retry, load_model_with_retry, retry_with_backoff,
    BreakerConfig, BreakerState, CircuitBreaker, Fallback, IngestStats, MultiTaskServer,
    MultiTaskStats, QuarantineBuffer, Responder, Response, RetryLog, RetryPolicy, ServeConfig,
    ServeEngine, ServeError, ServeRequest, ServeStats, TaskSet,
};
