//! Out-of-distribution scoring and streaming drift detection (paper §4.3):
//! the paper argues that recent OOD methods answer Sommer & Paxson's
//! objection that ML can only find "activity similar to something previously
//! seen", and that deployed models must notice when the traffic they serve
//! no longer matches the distribution they were fitted on.
//!
//! Two layers live here:
//!
//! * **Batch OOD scores** over a fine-tuned classifier, all
//!   higher-means-more-OOD: negative max-softmax probability (MSP), the
//!   energy score `−log Σ exp(logits)` (Liu et al., cited), and Mahalanobis
//!   distance to the nearest class centroid in `[CLS]`-embedding space
//!   (Lee et al., cited). [`EmbeddingStats`] is checkpointable
//!   ([`OodDetector::save`]/[`OodDetector::load`]) so a serving replica can
//!   reload its calibration without the training set.
//! * **Streaming drift detection**: [`DriftMonitor`] runs two
//!   [`PageHinkley`] cumulative tests — one over a per-request drift score
//!   (prediction confidence + normalized Mahalanobis distance), one over
//!   delayed ground-truth feedback errors — in integer milli-units so a
//!   replayed request stream reproduces trip decisions bitwise.

use std::path::Path;

use nfm_tensor::checkpoint::{
    load_record, save_record, ByteReader, ByteWriter, CheckpointError, KIND_OOD,
};

use crate::pipeline::{FmClassifier, TextExample};

/// Which OOD score to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OodScore {
    /// 1 − max softmax probability.
    MaxSoftmax,
    /// −log Σ exp(logits) (negative free energy).
    Energy,
    /// Mahalanobis distance to the nearest class centroid.
    Mahalanobis,
}

impl OodScore {
    /// All scores, stable order.
    pub const ALL: [OodScore; 3] = [OodScore::MaxSoftmax, OodScore::Energy, OodScore::Mahalanobis];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            OodScore::MaxSoftmax => "max-softmax",
            OodScore::Energy => "energy",
            OodScore::Mahalanobis => "mahalanobis",
        }
    }
}

/// Per-class Gaussian statistics in embedding space (diagonal covariance
/// shared across classes, as in Lee et al.'s tied-covariance variant).
#[derive(Debug, Clone)]
pub struct EmbeddingStats {
    means: Vec<Vec<f32>>,
    /// Shared diagonal variance (regularized).
    var: Vec<f32>,
}

impl EmbeddingStats {
    /// Fit from the training examples' embeddings.
    pub fn fit(clf: &FmClassifier, train: &[TextExample]) -> EmbeddingStats {
        let dim = clf.encoder.config.d_model;
        let n_classes = clf.n_classes;
        let mut sums = vec![vec![0.0f64; dim]; n_classes];
        let mut counts = vec![0usize; n_classes];
        let embeddings: Vec<(usize, Vec<f32>)> =
            train.iter().map(|e| (e.label, clf.embed(&e.tokens))).collect();
        for (label, emb) in &embeddings {
            counts[*label] += 1;
            for (s, v) in sums[*label].iter_mut().zip(emb) {
                *s += *v as f64;
            }
        }
        let means: Vec<Vec<f32>> = sums
            .iter()
            .zip(&counts)
            .map(|(s, &c)| {
                if c == 0 {
                    vec![0.0; dim]
                } else {
                    s.iter().map(|v| (*v / c as f64) as f32).collect()
                }
            })
            .collect();
        let mut var = vec![0.0f64; dim];
        let mut total = 0usize;
        for (label, emb) in &embeddings {
            if counts[*label] == 0 {
                continue;
            }
            total += 1;
            for (i, v) in emb.iter().enumerate() {
                let d = v - means[*label][i];
                var[i] += (d * d) as f64;
            }
        }
        let var: Vec<f32> =
            var.iter().map(|v| ((v / total.max(1) as f64) as f32).max(1e-4)).collect();
        EmbeddingStats { means, var }
    }

    /// Mahalanobis distance (diagonal) from `emb` to the nearest centroid.
    pub fn distance(&self, emb: &[f32]) -> f64 {
        self.means
            .iter()
            .map(|mean| {
                emb.iter()
                    .zip(mean)
                    .zip(&self.var)
                    .map(|((x, m), v)| (((x - m) * (x - m)) / v) as f64)
                    .sum::<f64>()
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// Number of class centroids.
    pub fn n_classes(&self) -> usize {
        self.means.len()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.var.len()
    }

    /// Serialize into a checkpoint byte stream.
    pub fn write(&self, w: &mut ByteWriter) {
        w.put_usize(self.means.len());
        w.put_usize(self.var.len());
        for mean in &self.means {
            w.put_f32_slice(mean);
        }
        w.put_f32_slice(&self.var);
    }

    /// Deserialize from a checkpoint byte stream.
    pub fn read(r: &mut ByteReader) -> Result<EmbeddingStats, CheckpointError> {
        let n_classes = r.get_count()?;
        let dim = r.get_count()?;
        let mut means = Vec::with_capacity(n_classes);
        for _ in 0..n_classes {
            let mean = r.get_f32_vec()?;
            if mean.len() != dim {
                return Err(CheckpointError::Malformed(format!(
                    "embedding centroid length {} != dim {dim}",
                    mean.len()
                )));
            }
            means.push(mean);
        }
        let var = r.get_f32_vec()?;
        if var.len() != dim {
            return Err(CheckpointError::Malformed(format!(
                "embedding variance length {} != dim {dim}",
                var.len()
            )));
        }
        Ok(EmbeddingStats { means, var })
    }
}

/// An OOD detector: embedding statistics fitted once against a classifier,
/// owning its calibration so it can outlive (and be checkpointed apart from)
/// the training set.
#[derive(Debug, Clone)]
pub struct OodDetector {
    stats: EmbeddingStats,
}

impl OodDetector {
    /// Build, fitting embedding statistics from the training set (needed by
    /// the Mahalanobis score).
    pub fn fit(clf: &FmClassifier, train: &[TextExample]) -> OodDetector {
        OodDetector { stats: EmbeddingStats::fit(clf, train) }
    }

    /// Wrap pre-fitted statistics.
    pub fn from_stats(stats: EmbeddingStats) -> OodDetector {
        OodDetector { stats }
    }

    /// The fitted embedding statistics.
    pub fn stats(&self) -> &EmbeddingStats {
        &self.stats
    }

    /// The chosen score for one example (higher = more OOD). The classifier
    /// must be the one (or an architectural twin of the one) the statistics
    /// were fitted against.
    pub fn score(&self, clf: &FmClassifier, tokens: &[String], kind: OodScore) -> f64 {
        match kind {
            OodScore::MaxSoftmax => {
                let probs = clf.probabilities(tokens);
                1.0 - probs.iter().copied().fold(0.0f32, f32::max) as f64
            }
            OodScore::Energy => {
                let logits = clf.logits(tokens);
                // −E = log Σ exp(l); OOD score = −log Σ exp = E.
                let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let lse = max + logits.iter().map(|v| (*v - max).exp()).sum::<f32>().ln();
                -(lse as f64)
            }
            OodScore::Mahalanobis => {
                let emb = clf.embed(tokens);
                self.stats.distance(&emb)
            }
        }
    }

    /// Score a whole set.
    pub fn score_all(
        &self,
        clf: &FmClassifier,
        examples: &[TextExample],
        kind: OodScore,
    ) -> Vec<f64> {
        examples.iter().map(|e| self.score(clf, &e.tokens, kind)).collect()
    }

    /// Persist the fitted statistics as a [`KIND_OOD`] checkpoint record.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let mut w = ByteWriter::new();
        self.stats.write(&mut w);
        save_record(path, KIND_OOD, &w.into_bytes())
    }

    /// Load statistics saved by [`OodDetector::save`].
    pub fn load(path: &Path) -> Result<OodDetector, CheckpointError> {
        let bytes = load_record(path, KIND_OOD)?;
        let mut r = ByteReader::new(&bytes);
        Ok(OodDetector { stats: EmbeddingStats::read(&mut r)? })
    }
}

/// A Page–Hinkley cumulative change-point test in integer milli-units.
///
/// Tracks the running integer mean of the observed signal; after `warmup`
/// observations it accumulates `x − mean − delta` and trips when the
/// accumulated sum rises more than `lambda` above its running minimum.
/// All state is integer, so identical observation streams reproduce trip
/// decisions bitwise at any thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageHinkley {
    n: u64,
    mean_milli: i64,
    cum: i64,
    min_cum: i64,
    delta_milli: i64,
    lambda_milli: i64,
    warmup: u64,
    tripped: bool,
}

impl PageHinkley {
    /// New test: `delta_milli` is the tolerated per-observation deviation,
    /// `lambda_milli` the trip threshold, `warmup` the number of leading
    /// observations used only to seed the running mean.
    pub fn new(delta_milli: i64, lambda_milli: i64, warmup: u64) -> PageHinkley {
        PageHinkley {
            n: 0,
            mean_milli: 0,
            cum: 0,
            min_cum: 0,
            delta_milli,
            lambda_milli,
            warmup,
            tripped: false,
        }
    }

    /// Feed one observation (milli-units); returns whether the test is now
    /// in the tripped state.
    pub fn update(&mut self, x_milli: i64) -> bool {
        self.n += 1;
        // Running integer mean (truncating division keeps state in i64).
        self.mean_milli += (x_milli - self.mean_milli) / self.n as i64;
        if self.n > self.warmup {
            self.cum += x_milli - self.mean_milli - self.delta_milli;
            self.min_cum = self.min_cum.min(self.cum);
            if self.cum - self.min_cum > self.lambda_milli {
                self.tripped = true;
            }
        }
        self.tripped
    }

    /// Whether the test has tripped since the last reset.
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// Current excursion above the running minimum (milli-units): the
    /// quantity compared against `lambda` to decide a trip.
    pub fn level_milli(&self) -> i64 {
        self.cum - self.min_cum
    }

    /// Observations fed so far.
    pub fn observations(&self) -> u64 {
        self.n
    }

    /// Clear all accumulated state (mean, cumulative sums, trip flag).
    pub fn reset(&mut self) {
        self.n = 0;
        self.mean_milli = 0;
        self.cum = 0;
        self.min_cum = 0;
        self.tripped = false;
    }
}

/// Tuning for [`DriftMonitor`]: thresholds are integer milli-units of the
/// per-request drift score (confidence part spans 0..=1000, distance part
/// 0..=[`DriftMonitor::DIST_CLAMP_MILLI`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriftConfig {
    /// Page–Hinkley tolerated deviation for the drift-score stream.
    pub delta_milli: i64,
    /// Page–Hinkley trip threshold for the drift-score stream.
    pub lambda_milli: i64,
    /// Warmup observations before the score test accumulates.
    pub warmup: u64,
    /// Tolerated deviation for the feedback-error stream (errors are fed as
    /// 0 or 1000 per labeled observation).
    pub err_delta_milli: i64,
    /// Trip threshold for the feedback-error stream.
    pub err_lambda_milli: i64,
    /// Warmup observations before the feedback test accumulates.
    pub err_warmup: u64,
    /// Per-request quarantine cutoff: any answered request scoring at or
    /// above this is captured regardless of detector state.
    pub quarantine_threshold_milli: i64,
}

impl Default for DriftConfig {
    fn default() -> DriftConfig {
        DriftConfig {
            delta_milli: 100,
            lambda_milli: 6000,
            warmup: 32,
            err_delta_milli: 150,
            err_lambda_milli: 8000,
            err_warmup: 16,
            quarantine_threshold_milli: 1600,
        }
    }
}

/// What [`DriftMonitor::observe`] concluded about one answered request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriftObservation {
    /// Combined drift score (milli-units): confidence + normalized distance.
    pub score_milli: i64,
    /// Whether the request should be captured into the quarantine buffer.
    pub quarantine: bool,
    /// Whether this observation newly tripped the detector.
    pub tripped_now: bool,
}

/// Streaming drift detector for a serving replica: scores every answered
/// request against calibrated [`EmbeddingStats`] and runs Page–Hinkley
/// tests over the score stream (covariate drift) and the delayed
/// ground-truth error stream (label drift).
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    stats: EmbeddingStats,
    /// Mean calibration-set Mahalanobis distance, milli-units (≥ 1).
    d_ref_milli: i64,
    config: DriftConfig,
    score_ph: PageHinkley,
    err_ph: PageHinkley,
    observed: u64,
    trips: u64,
}

impl DriftMonitor {
    /// Upper clamp on the normalized-distance component (milli-units): keeps
    /// a single wild embedding from saturating the cumulative test.
    pub const DIST_CLAMP_MILLI: i64 = 4000;

    /// Calibrate against a classifier and reference (training) examples:
    /// fits embedding statistics and records the mean reference distance
    /// used to normalize per-request distances.
    pub fn calibrate(
        clf: &FmClassifier,
        reference: &[TextExample],
        config: DriftConfig,
    ) -> DriftMonitor {
        let stats = EmbeddingStats::fit(clf, reference);
        let mut sum = 0.0f64;
        let mut n = 0u64;
        for e in reference {
            let d = stats.distance(&clf.embed(&e.tokens));
            if d.is_finite() {
                sum += d;
                n += 1;
            }
        }
        let d_ref = if n == 0 { 1.0 } else { sum / n as f64 };
        let d_ref_milli = ((d_ref * 1000.0) as i64).max(1);
        DriftMonitor {
            stats,
            d_ref_milli,
            config,
            score_ph: PageHinkley::new(config.delta_milli, config.lambda_milli, config.warmup),
            err_ph: PageHinkley::new(
                config.err_delta_milli,
                config.err_lambda_milli,
                config.err_warmup,
            ),
            observed: 0,
            trips: 0,
        }
    }

    /// Score one answered request. `logits` are the classifier outputs the
    /// serving path already computed; the embedding forward pass is the
    /// monitor's own (monitoring overhead, not charged to the request).
    pub fn observe(
        &mut self,
        clf: &FmClassifier,
        tokens: &[String],
        logits: &[f32],
    ) -> DriftObservation {
        let embedding = clf.embed(tokens);
        self.observe_with_embedding(&embedding, logits)
    }

    /// Score one answered request from an already-computed pooled
    /// embedding — the multi-task path, where one shared encoder forward
    /// produces the embedding every per-task monitor scores, instead of
    /// each monitor re-running the encoder. Identical arithmetic to
    /// [`DriftMonitor::observe`] given the same embedding bits.
    pub fn observe_with_embedding(
        &mut self,
        embedding: &[f32],
        logits: &[f32],
    ) -> DriftObservation {
        // Confidence component: 1000·(1 − max softmax prob), NaN-tolerant.
        let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let conf_milli = if max.is_finite() {
            let sum: f32 = logits.iter().map(|l| (l - max).exp()).sum();
            // max prob = exp(max − max)/sum = 1/sum.
            let p = 1.0 / sum;
            if p.is_finite() {
                (((1.0 - p) as f64) * 1000.0) as i64
            } else {
                1000
            }
        } else {
            1000
        };
        let conf_milli = conf_milli.clamp(0, 1000);
        // Distance component: Mahalanobis distance normalized by the mean
        // calibration distance, clamped so one outlier cannot saturate.
        let d = self.stats.distance(embedding);
        let dist_milli = if d.is_finite() {
            ((d * 1_000_000.0 / self.d_ref_milli as f64) as i64).clamp(0, Self::DIST_CLAMP_MILLI)
        } else {
            Self::DIST_CLAMP_MILLI
        };
        let score_milli = conf_milli + dist_milli;
        let before = self.tripped();
        self.score_ph.update(score_milli);
        let tripped_now = !before && self.tripped();
        if tripped_now {
            self.trips += 1;
        }
        self.observed += 1;
        let quarantine = score_milli >= self.config.quarantine_threshold_milli || self.tripped();
        DriftObservation { score_milli, quarantine, tripped_now }
    }

    /// Feed one delayed ground-truth outcome (label drift signal); returns
    /// whether this observation newly tripped the detector.
    pub fn observe_feedback(&mut self, correct: bool) -> bool {
        let before = self.tripped();
        self.err_ph.update(if correct { 0 } else { 1000 });
        let tripped_now = !before && self.tripped();
        if tripped_now {
            self.trips += 1;
        }
        tripped_now
    }

    /// Whether either cumulative test is currently tripped.
    pub fn tripped(&self) -> bool {
        self.score_ph.tripped() || self.err_ph.tripped()
    }

    /// Larger of the two tests' current excursions (milli-units).
    pub fn level_milli(&self) -> i64 {
        self.score_ph.level_milli().max(self.err_ph.level_milli())
    }

    /// Requests scored so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Cumulative trips (survives [`DriftMonitor::reset`]).
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// The active configuration.
    pub fn config(&self) -> DriftConfig {
        self.config
    }

    /// The calibrated embedding statistics.
    pub fn stats(&self) -> &EmbeddingStats {
        &self.stats
    }

    /// Re-arm both cumulative tests (after an adaptation cycle handled the
    /// trip); calibration statistics are kept.
    pub fn reset(&mut self) {
        self.score_ph.reset();
        self.err_ph.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::auroc;
    use crate::pipeline::{FineTuneConfig, FmClassifier, FoundationModel, PipelineConfig};
    use nfm_model::pretrain::{PretrainConfig, TaskMix};
    use nfm_model::tokenize::field::FieldTokenizer;
    use nfm_traffic::netsim::{simulate, SimConfig};

    fn setup() -> (FmClassifier, Vec<TextExample>) {
        let lt = simulate(&SimConfig {
            n_sessions: 25,
            n_general_hosts: 3,
            n_iot_sets: 1,
            ..SimConfig::default()
        });
        let tok = FieldTokenizer::new();
        let cfg = PipelineConfig {
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            d_ff: 32,
            max_len: 32,
            pretrain: PretrainConfig {
                epochs: 1,
                tasks: TaskMix::mlm_only(),
                ..PretrainConfig::default()
            },
            ..PipelineConfig::default()
        };
        let (fm, _) =
            FoundationModel::pretrain_on(&[&lt.trace], &tok, &cfg).expect("pretraining failed");
        let train: Vec<TextExample> = (0..24)
            .map(|i| TextExample {
                tokens: vec![
                    if i % 2 == 0 { "PORT_53" } else { "PORT_443" }.to_string(),
                    "IP4".to_string(),
                ],
                label: i % 2,
            })
            .collect();
        let clf = FmClassifier::fine_tune(
            &fm,
            &train,
            2,
            &FineTuneConfig { epochs: 6, ..FineTuneConfig::default() },
        )
        .expect("fine-tuning failed");
        (clf, train)
    }

    #[test]
    fn scores_are_finite_and_ordered_sensibly() {
        let (clf, train) = setup();
        let det = OodDetector::fit(&clf, &train);
        for kind in OodScore::ALL {
            let in_dist = det.score(&clf, &train[0].tokens, kind);
            assert!(in_dist.is_finite(), "{kind:?}");
        }
    }

    #[test]
    fn mahalanobis_flags_far_embeddings() {
        let (clf, train) = setup();
        let det = OodDetector::fit(&clf, &train);
        let in_scores: Vec<f64> =
            train.iter().map(|e| det.score(&clf, &e.tokens, OodScore::Mahalanobis)).collect();
        // Gibberish tokens (all [UNK]) land somewhere unusual.
        let odd: Vec<TextExample> = (0..10)
            .map(|i| TextExample {
                tokens: vec![format!("XYZZY_{i}"), "NEVER_SEEN".to_string(), "WAT_9".to_string()],
                label: 0,
            })
            .collect();
        let out_scores = det.score_all(&clf, &odd, OodScore::Mahalanobis);
        let a = auroc(&out_scores, &in_scores);
        assert!(a > 0.8, "auroc {a}");
    }

    #[test]
    fn energy_and_msp_agree_directionally() {
        let (clf, train) = setup();
        let det = OodDetector::fit(&clf, &train);
        // For a confidently-classified example both scores should be low
        // relative to their own scale on an ambiguous one; just check they
        // produce valid numbers across the training set.
        for kind in [OodScore::MaxSoftmax, OodScore::Energy] {
            let scores = det.score_all(&clf, &train, kind);
            assert!(scores.iter().all(|s| s.is_finite()));
        }
    }

    #[test]
    fn embedding_stats_handle_missing_class() {
        let (clf, mut train) = setup();
        // Remove all label-1 examples: stats must still fit.
        train.retain(|e| e.label == 0);
        let stats = EmbeddingStats::fit(&clf, &train);
        let d = stats.distance(&clf.embed(&train[0].tokens));
        assert!(d.is_finite());
    }

    #[test]
    fn detector_checkpoint_roundtrips() {
        let (clf, train) = setup();
        let det = OodDetector::fit(&clf, &train);
        let dir = std::env::temp_dir().join("nfm_ood_roundtrip");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("stats.nfmc");
        det.save(&path).expect("save");
        let loaded = OodDetector::load(&path).expect("load");
        for e in &train {
            let a = det.score(&clf, &e.tokens, OodScore::Mahalanobis);
            let b = loaded.score(&clf, &e.tokens, OodScore::Mahalanobis);
            assert_eq!(a.to_bits(), b.to_bits());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn page_hinkley_trips_on_level_shift_not_steady_stream() {
        let mut ph = PageHinkley::new(50, 2000, 16);
        for _ in 0..200 {
            assert!(!ph.update(1000));
        }
        // A sustained level shift accumulates and trips.
        let mut tripped_at = None;
        for i in 0..200 {
            if ph.update(1400) {
                tripped_at = Some(i);
                break;
            }
        }
        assert!(tripped_at.is_some(), "never tripped on a +400 milli shift");
        ph.reset();
        assert!(!ph.tripped());
        assert_eq!(ph.observations(), 0);
    }

    #[test]
    fn drift_monitor_trips_on_gibberish_not_training_traffic() {
        let (clf, train) = setup();
        let config = DriftConfig { warmup: 8, lambda_milli: 3000, ..DriftConfig::default() };
        let mut mon = DriftMonitor::calibrate(&clf, &train, config);
        // Replayed training traffic: no trip.
        for _ in 0..4 {
            for e in &train {
                let logits = clf.logits(&e.tokens);
                mon.observe(&clf, &e.tokens, &logits);
            }
        }
        assert!(!mon.tripped(), "tripped on in-distribution replay");
        // A sustained stream of unknown-token traffic must trip.
        let mut tripped = false;
        for i in 0..200 {
            let tokens = vec![format!("XYZZY_{}", i % 7), "NEVER_SEEN".to_string()];
            let logits = clf.logits(&tokens);
            let obs = mon.observe(&clf, &tokens, &logits);
            if obs.tripped_now {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "gibberish stream never tripped (level {})", mon.level_milli());
        assert_eq!(mon.trips(), 1);
        mon.reset();
        assert!(!mon.tripped());
    }

    #[test]
    fn feedback_errors_trip_the_label_test() {
        let (clf, train) = setup();
        let config =
            DriftConfig { err_warmup: 8, err_lambda_milli: 3000, ..DriftConfig::default() };
        let mut mon = DriftMonitor::calibrate(&clf, &train, config);
        for _ in 0..64 {
            mon.observe_feedback(true);
        }
        assert!(!mon.tripped());
        let mut tripped = false;
        for _ in 0..64 {
            if mon.observe_feedback(false) {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "sustained errors never tripped the feedback test");
    }
}
