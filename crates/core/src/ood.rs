//! Out-of-distribution scoring for zero-day detection (paper §4.3): the
//! paper argues that recent OOD methods answer Sommer & Paxson's objection
//! that ML can only find "activity similar to something previously seen".
//!
//! Three scores over a fine-tuned classifier, all higher-means-more-OOD:
//! negative max-softmax probability (MSP), the energy score
//! `−log Σ exp(logits)` (Liu et al., cited), and Mahalanobis distance to the
//! nearest class centroid in `[CLS]`-embedding space (Lee et al., cited).

use nfm_tensor::matrix::Matrix;

use crate::pipeline::{FmClassifier, TextExample};

/// Which OOD score to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OodScore {
    /// 1 − max softmax probability.
    MaxSoftmax,
    /// −log Σ exp(logits) (negative free energy).
    Energy,
    /// Mahalanobis distance to the nearest class centroid.
    Mahalanobis,
}

impl OodScore {
    /// All scores, stable order.
    pub const ALL: [OodScore; 3] = [OodScore::MaxSoftmax, OodScore::Energy, OodScore::Mahalanobis];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            OodScore::MaxSoftmax => "max-softmax",
            OodScore::Energy => "energy",
            OodScore::Mahalanobis => "mahalanobis",
        }
    }
}

/// Per-class Gaussian statistics in embedding space (diagonal covariance
/// shared across classes, as in Lee et al.'s tied-covariance variant).
#[derive(Debug, Clone)]
pub struct EmbeddingStats {
    means: Vec<Vec<f32>>,
    /// Shared diagonal variance (regularized).
    var: Vec<f32>,
}

impl EmbeddingStats {
    /// Fit from the training examples' embeddings.
    pub fn fit(clf: &FmClassifier, train: &[TextExample]) -> EmbeddingStats {
        let dim = clf.encoder.config.d_model;
        let n_classes = clf.n_classes;
        let mut sums = vec![vec![0.0f64; dim]; n_classes];
        let mut counts = vec![0usize; n_classes];
        let embeddings: Vec<(usize, Vec<f32>)> =
            train.iter().map(|e| (e.label, clf.embed(&e.tokens))).collect();
        for (label, emb) in &embeddings {
            counts[*label] += 1;
            for (s, v) in sums[*label].iter_mut().zip(emb) {
                *s += *v as f64;
            }
        }
        let means: Vec<Vec<f32>> = sums
            .iter()
            .zip(&counts)
            .map(|(s, &c)| {
                if c == 0 {
                    vec![0.0; dim]
                } else {
                    s.iter().map(|v| (*v / c as f64) as f32).collect()
                }
            })
            .collect();
        let mut var = vec![0.0f64; dim];
        let mut total = 0usize;
        for (label, emb) in &embeddings {
            if counts[*label] == 0 {
                continue;
            }
            total += 1;
            for (i, v) in emb.iter().enumerate() {
                let d = v - means[*label][i];
                var[i] += (d * d) as f64;
            }
        }
        let var: Vec<f32> =
            var.iter().map(|v| ((v / total.max(1) as f64) as f32).max(1e-4)).collect();
        EmbeddingStats { means, var }
    }

    /// Mahalanobis distance (diagonal) from `emb` to the nearest centroid.
    pub fn distance(&self, emb: &[f32]) -> f64 {
        self.means
            .iter()
            .map(|mean| {
                emb.iter()
                    .zip(mean)
                    .zip(&self.var)
                    .map(|((x, m), v)| (((x - m) * (x - m)) / v) as f64)
                    .sum::<f64>()
            })
            .fold(f64::INFINITY, f64::min)
    }
}

/// An OOD detector wrapping a classifier.
pub struct OodDetector<'a> {
    clf: &'a FmClassifier,
    stats: Option<EmbeddingStats>,
}

impl<'a> OodDetector<'a> {
    /// Build, fitting embedding statistics from the training set (needed by
    /// the Mahalanobis score).
    pub fn new(clf: &'a FmClassifier, train: &[TextExample]) -> OodDetector<'a> {
        let stats = Some(EmbeddingStats::fit(clf, train));
        OodDetector { clf, stats }
    }

    /// The chosen score for one example (higher = more OOD).
    pub fn score(&self, tokens: &[String], kind: OodScore) -> f64 {
        match kind {
            OodScore::MaxSoftmax => {
                let probs = self.clf.probabilities(tokens);
                1.0 - probs.iter().copied().fold(0.0f32, f32::max) as f64
            }
            OodScore::Energy => {
                let logits = self.clf.logits(tokens);
                // −E = log Σ exp(l); OOD score = −log Σ exp = E.
                let mut m = Matrix::from_vec(1, logits.len(), logits.clone());
                let max = m.data().iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let lse = max + m.data_mut().iter().map(|v| (*v - max).exp()).sum::<f32>().ln();
                -(lse as f64)
            }
            OodScore::Mahalanobis => {
                let emb = self.clf.embed(tokens);
                self.stats.as_ref().expect("stats fitted in new()").distance(&emb)
            }
        }
    }

    /// Score a whole set.
    pub fn score_all(&self, examples: &[TextExample], kind: OodScore) -> Vec<f64> {
        examples.iter().map(|e| self.score(&e.tokens, kind)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::auroc;
    use crate::pipeline::{FineTuneConfig, FmClassifier, FoundationModel, PipelineConfig};
    use nfm_model::pretrain::{PretrainConfig, TaskMix};
    use nfm_model::tokenize::field::FieldTokenizer;
    use nfm_traffic::netsim::{simulate, SimConfig};

    fn setup() -> (FmClassifier, Vec<TextExample>) {
        let lt = simulate(&SimConfig {
            n_sessions: 25,
            n_general_hosts: 3,
            n_iot_sets: 1,
            ..SimConfig::default()
        });
        let tok = FieldTokenizer::new();
        let cfg = PipelineConfig {
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            d_ff: 32,
            max_len: 32,
            pretrain: PretrainConfig {
                epochs: 1,
                tasks: TaskMix::mlm_only(),
                ..PretrainConfig::default()
            },
            ..PipelineConfig::default()
        };
        let (fm, _) =
            FoundationModel::pretrain_on(&[&lt.trace], &tok, &cfg).expect("pretraining failed");
        let train: Vec<TextExample> = (0..24)
            .map(|i| TextExample {
                tokens: vec![
                    if i % 2 == 0 { "PORT_53" } else { "PORT_443" }.to_string(),
                    "IP4".to_string(),
                ],
                label: i % 2,
            })
            .collect();
        let clf = FmClassifier::fine_tune(
            &fm,
            &train,
            2,
            &FineTuneConfig { epochs: 6, ..FineTuneConfig::default() },
        )
        .expect("fine-tuning failed");
        (clf, train)
    }

    #[test]
    fn scores_are_finite_and_ordered_sensibly() {
        let (clf, train) = setup();
        let det = OodDetector::new(&clf, &train);
        for kind in OodScore::ALL {
            let in_dist = det.score(&train[0].tokens, kind);
            assert!(in_dist.is_finite(), "{kind:?}");
        }
    }

    #[test]
    fn mahalanobis_flags_far_embeddings() {
        let (clf, train) = setup();
        let det = OodDetector::new(&clf, &train);
        let in_scores: Vec<f64> =
            train.iter().map(|e| det.score(&e.tokens, OodScore::Mahalanobis)).collect();
        // Gibberish tokens (all [UNK]) land somewhere unusual.
        let odd: Vec<TextExample> = (0..10)
            .map(|i| TextExample {
                tokens: vec![format!("XYZZY_{i}"), "NEVER_SEEN".to_string(), "WAT_9".to_string()],
                label: 0,
            })
            .collect();
        let out_scores = det.score_all(&odd, OodScore::Mahalanobis);
        let a = auroc(&out_scores, &in_scores);
        assert!(a > 0.8, "auroc {a}");
    }

    #[test]
    fn energy_and_msp_agree_directionally() {
        let (clf, train) = setup();
        let det = OodDetector::new(&clf, &train);
        // For a confidently-classified example both scores should be low
        // relative to their own scale on an ambiguous one; just check they
        // produce valid numbers across the training set.
        for kind in [OodScore::MaxSoftmax, OodScore::Energy] {
            let scores = det.score_all(&train, kind);
            assert!(scores.iter().all(|s| s.is_finite()));
        }
    }

    #[test]
    fn embedding_stats_handle_missing_class() {
        let (clf, mut train) = setup();
        // Remove all label-1 examples: stats must still fit.
        train.retain(|e| e.label == 0);
        let stats = EmbeddingStats::fit(&clf, &train);
        let d = stats.distance(&clf.embed(&train[0].tokens));
        assert!(d.is_finite());
    }
}
