//! Property-based invariants for the modeling layer: tokenizers never
//! panic and respect budgets, vocabularies round-trip, masking preserves
//! recoverability, and encoders stay finite on arbitrary valid inputs.

use nfm_model::context::{first_m_of_n_context, flow_context};
use nfm_model::nn::transformer::{Encoder, EncoderConfig};
use nfm_model::pretrain::{encode_context, mask_sequence};
use nfm_model::tokenize::bytes::ByteTokenizer;
use nfm_model::tokenize::field::FieldTokenizer;
use nfm_model::tokenize::{log2_bin, Tokenizer};
use nfm_model::vocab::Vocab;
use nfm_net::addr::MacAddr;
use nfm_net::capture::TracePacket;
use nfm_net::packet::Packet;
use nfm_tensor::loss::IGNORE_INDEX;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::Ipv4Addr;

fn arb_udp_packet() -> impl Strategy<Value = Packet> {
    (
        any::<u32>(),
        any::<u32>(),
        1u16..,
        1u16..,
        1u8..,
        proptest::collection::vec(any::<u8>(), 0..200),
    )
        .prop_map(|(src, dst, sp, dp, ttl, payload)| {
            Packet::udp_v4(
                MacAddr::from_index(1),
                MacAddr::from_index(2),
                Ipv4Addr::from(src),
                Ipv4Addr::from(dst),
                sp,
                dp,
                ttl,
                payload,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn field_tokenizer_never_panics_and_is_deterministic(p in arb_udp_packet()) {
        let tok = FieldTokenizer::new();
        let a = tok.tokenize(&p);
        let b = tok.tokenize(&p);
        prop_assert_eq!(&a, &b);
        prop_assert!(!a.is_empty());
        // Tokens never contain whitespace (vocabulary hygiene).
        prop_assert!(a.iter().all(|t| !t.contains(' ')));
    }

    #[test]
    fn byte_tokenizer_budget(p in arb_udp_packet(), cap in 1usize..64) {
        let tok = ByteTokenizer { max_bytes: cap, skip_ethernet: true };
        let toks = tok.tokenize(&p);
        prop_assert!(toks.len() <= cap);
    }

    #[test]
    fn flow_context_budget_holds(
        packets in proptest::collection::vec(arb_udp_packet(), 1..10),
        cap in 4usize..64,
    ) {
        let tps: Vec<TracePacket> = packets
            .iter()
            .enumerate()
            .map(|(i, p)| TracePacket::from_packet(i as u64 * 100, p))
            .collect();
        let tok = FieldTokenizer::new();
        let ctx = flow_context(&tps, &tok, cap);
        prop_assert!(ctx.len() <= cap);
        let m_of_n = first_m_of_n_context(&tps, &tok, 3, 2, cap);
        prop_assert!(m_of_n.len() <= 6.min(cap));
    }

    #[test]
    fn vocab_encode_decode_identity_on_known_tokens(
        tokens in proptest::collection::vec("[a-z]{1,8}", 1..20),
    ) {
        let seqs = vec![tokens.clone()];
        let vocab = Vocab::from_sequences(&seqs, 1);
        let decoded = vocab.decode(&vocab.encode(&tokens));
        prop_assert_eq!(decoded, tokens);
    }

    #[test]
    fn masking_targets_always_recover_originals(
        tokens in proptest::collection::vec("[a-z]{1,6}", 2..30),
        mask_prob in 0.05f64..0.9,
        seed in 0u64..1000,
    ) {
        let seqs = vec![tokens.clone()];
        let vocab = Vocab::from_sequences(&seqs, 1);
        let ids = encode_context(&vocab, &tokens, 64);
        let mut rng = StdRng::seed_from_u64(seed);
        let (input, targets) = mask_sequence(&mut rng, &ids, &vocab, mask_prob, false);
        prop_assert_eq!(input.len(), ids.len());
        prop_assert_eq!(targets.len(), ids.len());
        let mut n_masked = 0;
        for i in 0..ids.len() {
            if targets[i] != IGNORE_INDEX {
                n_masked += 1;
                // Target restores the original token id.
                prop_assert_eq!(targets[i], ids[i]);
            } else {
                // Unmasked positions keep their input id.
                prop_assert_eq!(input[i], ids[i]);
            }
        }
        prop_assert!(n_masked >= 1);
        // Specials never masked.
        prop_assert_eq!(targets[0], IGNORE_INDEX);
        prop_assert_eq!(*targets.last().unwrap(), IGNORE_INDEX);
    }

    #[test]
    fn encoder_is_finite_on_arbitrary_valid_ids(
        ids in proptest::collection::vec(0usize..30, 1..20),
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = EncoderConfig { vocab: 30, d_model: 8, n_heads: 2, n_layers: 1, d_ff: 16, max_len: 24 };
        let enc = Encoder::new(&mut rng, cfg);
        let h = enc.forward_inference(&ids);
        prop_assert!(h.is_finite());
        prop_assert_eq!(h.rows(), ids.len().min(24));
    }

    #[test]
    fn log2_bin_monotone(a in 0usize..100_000, b in 0usize..100_000) {
        if a <= b {
            prop_assert!(log2_bin(a) <= log2_bin(b));
        }
    }

    #[test]
    fn encode_context_structure(
        tokens in proptest::collection::vec("[a-z]{1,5}", 0..40),
        max_len in 4usize..32,
    ) {
        let seqs = vec![tokens.clone()];
        let vocab = Vocab::from_sequences(&seqs, 1);
        let ids = encode_context(&vocab, &tokens, max_len);
        prop_assert!(ids.len() <= max_len);
        prop_assert_eq!(ids[0], vocab.cls_id());
        prop_assert_eq!(*ids.last().unwrap(), vocab.sep_id());
    }
}
