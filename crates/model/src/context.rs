//! Context construction (§4.1.3): how token sequences ("sentences") are cut
//! out of a packet trace before pre-training.
//!
//! The paper highlights that a capture point sees interleaved packets from
//! concurrent connections, that focusing on single connections can lose
//! cross-connection semantics, and that practical models cap context length
//! — suggesting "non-standard contexts over network protocols: e.g., use the
//! first M tokens from each of the N successive IP packets". All four
//! strategies are implemented and ablated in experiment E5.

use nfm_net::capture::{Trace, TracePacket};
use nfm_net::flow::FlowTable;

use crate::tokenize::Tokenizer;

/// A context-construction strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContextStrategy {
    /// One context per packet (shortest).
    Packet,
    /// One context per flow/session: all its packets' tokens concatenated.
    Flow,
    /// Contexts cut from the raw interleaved capture order, `window`
    /// packets at a time — what a naive observer at the capture point sees.
    InterleavedWindow {
        /// Packets per context window.
        window: usize,
    },
    /// Per flow, the first `m` tokens of each of the first `n` packets —
    /// the paper's proposed budget-aware context.
    FirstMofN {
        /// Tokens kept per packet.
        m: usize,
        /// Packets considered per flow.
        n: usize,
    },
    /// All of one client endpoint's packets within a time window — the
    /// paper's "focusing on traffic from and to individual end points"
    /// option. This is the only strategy whose contexts span *related
    /// flows* (a DNS lookup and the connection it resolves), capturing the
    /// cross-connection semantics §4.1.3 warns are otherwise lost.
    ClientWindow {
        /// Window length in microseconds.
        window_us: u64,
    },
}

impl ContextStrategy {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ContextStrategy::Packet => "packet",
            ContextStrategy::Flow => "flow",
            ContextStrategy::InterleavedWindow { .. } => "interleaved",
            ContextStrategy::FirstMofN { .. } => "first-m-of-n",
            ContextStrategy::ClientWindow { .. } => "client-window",
        }
    }
}

/// Heuristic for "which endpoint is the monitored client": prefer the
/// RFC 1918 192.168/16 side (the LAN an enterprise capture point watches);
/// fall back to the source.
fn client_of(packet: &nfm_net::Packet) -> std::net::IpAddr {
    let is_lan = |ip: &std::net::IpAddr| match ip {
        std::net::IpAddr::V4(a) => a.octets()[0] == 192 && a.octets()[1] == 168,
        std::net::IpAddr::V6(_) => false,
    };
    let src = packet.ip.src();
    let dst = packet.ip.dst();
    if is_lan(&src) {
        src
    } else if is_lan(&dst) {
        dst
    } else {
        src
    }
}

/// Tokenize one packet if it parses.
fn packet_tokens(tok: &dyn Tokenizer, tp: &TracePacket) -> Option<Vec<String>> {
    tp.parse().ok().map(|p| tok.tokenize(&p))
}

/// Build a single flow-level context from a flow's packets, truncated to
/// `max_tokens`. This is also how downstream classification examples are
/// encoded.
pub fn flow_context(
    packets: &[TracePacket],
    tok: &dyn Tokenizer,
    max_tokens: usize,
) -> Vec<String> {
    let mut out = Vec::new();
    for tp in packets {
        if let Some(mut toks) = packet_tokens(tok, tp) {
            out.append(&mut toks);
            if out.len() >= max_tokens {
                out.truncate(max_tokens);
                break;
            }
        }
    }
    out
}

/// Build the first-M-of-N context for a flow.
pub fn first_m_of_n_context(
    packets: &[TracePacket],
    tok: &dyn Tokenizer,
    m: usize,
    n: usize,
    max_tokens: usize,
) -> Vec<String> {
    let mut out = Vec::new();
    for tp in packets.iter().take(n) {
        if let Some(toks) = packet_tokens(tok, tp) {
            out.extend(toks.into_iter().take(m));
            if out.len() >= max_tokens {
                out.truncate(max_tokens);
                break;
            }
        }
    }
    out
}

/// Build pre-training contexts from a whole trace under `strategy`, each
/// capped at `max_tokens`. Empty contexts are dropped.
pub fn contexts_from_trace(
    trace: &Trace,
    tok: &dyn Tokenizer,
    strategy: ContextStrategy,
    max_tokens: usize,
) -> Vec<Vec<String>> {
    let mut out = Vec::new();
    match strategy {
        ContextStrategy::Packet => {
            for tp in trace.packets() {
                if let Some(mut toks) = packet_tokens(tok, tp) {
                    toks.truncate(max_tokens);
                    if !toks.is_empty() {
                        out.push(toks);
                    }
                }
            }
        }
        ContextStrategy::Flow => {
            let table = FlowTable::from_trace(trace.packets().iter());
            for flow in table.flows() {
                let packets: Vec<TracePacket> =
                    flow.packets.iter().map(|fp| trace.packets()[fp.index].clone()).collect();
                let ctx = flow_context(&packets, tok, max_tokens);
                if !ctx.is_empty() {
                    out.push(ctx);
                }
            }
        }
        ContextStrategy::InterleavedWindow { window } => {
            let window = window.max(1);
            for chunk in trace.packets().chunks(window) {
                let mut ctx = Vec::new();
                for tp in chunk {
                    if let Some(mut toks) = packet_tokens(tok, tp) {
                        ctx.append(&mut toks);
                        if ctx.len() >= max_tokens {
                            ctx.truncate(max_tokens);
                            break;
                        }
                    }
                }
                if !ctx.is_empty() {
                    out.push(ctx);
                }
            }
        }
        ContextStrategy::FirstMofN { m, n } => {
            let table = FlowTable::from_trace(trace.packets().iter());
            for flow in table.flows() {
                let packets: Vec<TracePacket> =
                    flow.packets.iter().map(|fp| trace.packets()[fp.index].clone()).collect();
                let ctx = first_m_of_n_context(&packets, tok, m, n, max_tokens);
                if !ctx.is_empty() {
                    out.push(ctx);
                }
            }
        }
        ContextStrategy::ClientWindow { window_us } => {
            use std::collections::BTreeMap;
            let window_us = window_us.max(1);
            let mut groups: BTreeMap<(std::net::IpAddr, u64), Vec<String>> = BTreeMap::new();
            for tp in trace.packets() {
                if let Ok(p) = tp.parse() {
                    let key = (client_of(&p), tp.ts_us / window_us);
                    let ctx = groups.entry(key).or_default();
                    if ctx.len() < max_tokens {
                        let mut toks = tok.tokenize(&p);
                        toks.truncate(max_tokens - ctx.len());
                        ctx.extend(toks);
                    }
                }
            }
            out.extend(groups.into_values().filter(|c| !c.is_empty()));
        }
    }
    out
}

/// Consecutive flow-context pairs from a trace, ordered by flow start time —
/// the unit for next-"sentence" (next-flow) prediction pre-training.
pub fn consecutive_flow_contexts(
    trace: &Trace,
    tok: &dyn Tokenizer,
    max_tokens: usize,
) -> Vec<Vec<String>> {
    contexts_from_trace(trace, tok, ContextStrategy::Flow, max_tokens)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::field::FieldTokenizer;
    use nfm_traffic::netsim::{simulate, SimConfig};

    fn small_trace() -> Trace {
        simulate(&SimConfig {
            n_sessions: 20,
            n_general_hosts: 3,
            n_iot_sets: 1,
            ..SimConfig::default()
        })
        .trace
    }

    #[test]
    fn packet_contexts_match_packet_count() {
        let trace = small_trace();
        let tok = FieldTokenizer::new();
        let ctxs = contexts_from_trace(&trace, &tok, ContextStrategy::Packet, 64);
        assert_eq!(ctxs.len(), trace.len());
        assert!(ctxs.iter().all(|c| !c.is_empty() && c.len() <= 64));
    }

    #[test]
    fn flow_contexts_fewer_but_longer() {
        let trace = small_trace();
        let tok = FieldTokenizer::new();
        let per_packet = contexts_from_trace(&trace, &tok, ContextStrategy::Packet, 256);
        let per_flow = contexts_from_trace(&trace, &tok, ContextStrategy::Flow, 256);
        assert!(per_flow.len() < per_packet.len());
        let mean_packet: f64 =
            per_packet.iter().map(|c| c.len()).sum::<usize>() as f64 / per_packet.len() as f64;
        let mean_flow: f64 =
            per_flow.iter().map(|c| c.len()).sum::<usize>() as f64 / per_flow.len() as f64;
        assert!(mean_flow > mean_packet);
    }

    #[test]
    fn window_contexts_cover_whole_trace() {
        let trace = small_trace();
        let tok = FieldTokenizer::new();
        let ctxs = contexts_from_trace(
            &trace,
            &tok,
            ContextStrategy::InterleavedWindow { window: 8 },
            512,
        );
        assert_eq!(ctxs.len(), trace.len().div_ceil(8));
    }

    #[test]
    fn first_m_of_n_respects_budgets() {
        let trace = small_trace();
        let tok = FieldTokenizer::new();
        let ctxs =
            contexts_from_trace(&trace, &tok, ContextStrategy::FirstMofN { m: 4, n: 3 }, 512);
        for c in &ctxs {
            assert!(c.len() <= 12, "context of {} tokens", c.len());
        }
    }

    #[test]
    fn max_tokens_enforced_everywhere() {
        let trace = small_trace();
        let tok = FieldTokenizer::new();
        for strategy in [
            ContextStrategy::Packet,
            ContextStrategy::Flow,
            ContextStrategy::InterleavedWindow { window: 32 },
            ContextStrategy::FirstMofN { m: 8, n: 8 },
            ContextStrategy::ClientWindow { window_us: 2_000_000 },
        ] {
            for c in contexts_from_trace(&trace, &tok, strategy, 16) {
                assert!(c.len() <= 16, "{strategy:?}");
            }
        }
    }

    #[test]
    fn client_window_spans_related_flows() {
        // A client's DNS lookup and its follow-on TCP connection land in
        // the same context — the cross-connection property.
        let trace = small_trace();
        let tok = FieldTokenizer::new();
        let ctxs = contexts_from_trace(
            &trace,
            &tok,
            ContextStrategy::ClientWindow { window_us: 10_000_000 },
            512,
        );
        assert!(!ctxs.is_empty());
        let spans_protocols = ctxs.iter().any(|c| {
            let has_dns = c.iter().any(|t| t.starts_with("DNS_"));
            let has_tcp = c.iter().any(|t| t == "PROTO_TCP");
            has_dns && has_tcp
        });
        assert!(spans_protocols, "some context must span DNS + TCP flows");
    }

    #[test]
    fn strategy_names() {
        assert_eq!(ContextStrategy::Packet.name(), "packet");
        assert_eq!(ContextStrategy::Flow.name(), "flow");
        assert_eq!(ContextStrategy::InterleavedWindow { window: 4 }.name(), "interleaved");
        assert_eq!(ContextStrategy::FirstMofN { m: 1, n: 1 }.name(), "first-m-of-n");
    }
}
