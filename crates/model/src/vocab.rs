//! Token vocabulary with the BERT-style special tokens.

use std::collections::HashMap;

/// Padding token (id 0).
pub const PAD: &str = "[PAD]";
/// Unknown token (id 1).
pub const UNK: &str = "[UNK]";
/// Sequence-start / classification token (id 2).
pub const CLS: &str = "[CLS]";
/// Separator token (id 3).
pub const SEP: &str = "[SEP]";
/// Mask token for MLM pre-training (id 4).
pub const MASK: &str = "[MASK]";

/// The special tokens, in id order.
pub const SPECIALS: [&str; 5] = [PAD, UNK, CLS, SEP, MASK];

/// A bidirectional token ↔ id mapping.
#[derive(Debug, Clone)]
pub struct Vocab {
    to_id: HashMap<String, usize>,
    to_token: Vec<String>,
}

impl Vocab {
    /// Build from token frequency counts, keeping tokens with frequency at
    /// least `min_freq`, most frequent first (ties broken lexicographically
    /// so construction is deterministic).
    pub fn build(counts: &HashMap<String, usize>, min_freq: usize) -> Vocab {
        let mut items: Vec<(&String, &usize)> =
            counts.iter().filter(|(_, &c)| c >= min_freq).collect();
        items.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
        let mut to_token: Vec<String> = SPECIALS.iter().map(|s| s.to_string()).collect();
        to_token.extend(items.into_iter().map(|(t, _)| t.clone()));
        let to_id = to_token.iter().cloned().enumerate().map(|(i, t)| (t, i)).collect();
        Vocab { to_id, to_token }
    }

    /// Build by counting tokens across `sequences`.
    pub fn from_sequences<'a>(
        sequences: impl IntoIterator<Item = &'a Vec<String>>,
        min_freq: usize,
    ) -> Vocab {
        let mut counts: HashMap<String, usize> = HashMap::new();
        for seq in sequences {
            for tok in seq {
                *counts.entry(tok.clone()).or_insert(0) += 1;
            }
        }
        Vocab::build(&counts, min_freq)
    }

    /// Reconstruct a vocabulary from an exact id-ordered token list (as
    /// produced by [`Vocab::iter`]) — the checkpoint-restore path. Fails if
    /// the list does not start with the special tokens or contains
    /// duplicates, since either would silently remap ids.
    pub fn from_tokens(tokens: Vec<String>) -> Result<Vocab, String> {
        if tokens.len() < SPECIALS.len() {
            return Err(format!("vocabulary has {} tokens, fewer than the specials", tokens.len()));
        }
        for (i, special) in SPECIALS.iter().enumerate() {
            if tokens[i] != *special {
                return Err(format!("token {i} is {:?}, expected special {special:?}", tokens[i]));
            }
        }
        let to_id: HashMap<String, usize> =
            tokens.iter().cloned().enumerate().map(|(i, t)| (t, i)).collect();
        if to_id.len() != tokens.len() {
            return Err("duplicate token in vocabulary".to_string());
        }
        Ok(Vocab { to_id, to_token: tokens })
    }

    /// Vocabulary size including specials.
    pub fn len(&self) -> usize {
        self.to_token.len()
    }

    /// Never true (specials always present).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Id of `token`, or the [`UNK`] id.
    pub fn id(&self, token: &str) -> usize {
        self.to_id.get(token).copied().unwrap_or(1)
    }

    /// Id of `token` only if present.
    pub fn id_exact(&self, token: &str) -> Option<usize> {
        self.to_id.get(token).copied()
    }

    /// Token for `id` (UNK for out-of-range).
    pub fn token(&self, id: usize) -> &str {
        self.to_token.get(id).map(|s| s.as_str()).unwrap_or(UNK)
    }

    /// Encode a token sequence.
    pub fn encode(&self, tokens: &[String]) -> Vec<usize> {
        tokens.iter().map(|t| self.id(t)).collect()
    }

    /// Decode an id sequence.
    pub fn decode(&self, ids: &[usize]) -> Vec<String> {
        ids.iter().map(|&i| self.token(i).to_string()).collect()
    }

    /// Ids of the special tokens.
    pub fn pad_id(&self) -> usize {
        0
    }
    /// Id of [`UNK`].
    pub fn unk_id(&self) -> usize {
        1
    }
    /// Id of [`CLS`].
    pub fn cls_id(&self) -> usize {
        2
    }
    /// Id of [`SEP`].
    pub fn sep_id(&self) -> usize {
        3
    }
    /// Id of [`MASK`].
    pub fn mask_id(&self) -> usize {
        4
    }

    /// Iterate `(id, token)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &str)> {
        self.to_token.iter().enumerate().map(|(i, t)| (i, t.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Vocab {
        let seqs = vec![
            vec!["a".to_string(), "b".to_string(), "a".to_string()],
            vec!["a".to_string(), "c".to_string()],
        ];
        Vocab::from_sequences(&seqs, 1)
    }

    #[test]
    fn specials_have_fixed_ids() {
        let v = toy();
        assert_eq!(v.id(PAD), 0);
        assert_eq!(v.id(UNK), 1);
        assert_eq!(v.id(CLS), 2);
        assert_eq!(v.id(SEP), 3);
        assert_eq!(v.id(MASK), 4);
        assert_eq!(v.pad_id(), 0);
        assert_eq!(v.mask_id(), 4);
    }

    #[test]
    fn frequency_ordering() {
        let v = toy();
        // 'a' (3 occurrences) gets the first non-special id.
        assert_eq!(v.id("a"), 5);
        assert_eq!(v.len(), 5 + 3);
    }

    #[test]
    fn unknown_maps_to_unk() {
        let v = toy();
        assert_eq!(v.id("zzz"), v.unk_id());
        assert_eq!(v.id_exact("zzz"), None);
        assert_eq!(v.token(9999), UNK);
    }

    #[test]
    fn encode_decode_round_trip_known() {
        let v = toy();
        let tokens: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        let ids = v.encode(&tokens);
        assert_eq!(v.decode(&ids), tokens);
    }

    #[test]
    fn min_freq_filters() {
        let seqs = vec![vec!["rare".to_string()], vec!["common".to_string(), "common".to_string()]];
        let v = Vocab::from_sequences(&seqs, 2);
        assert_eq!(v.id_exact("rare"), None);
        assert!(v.id_exact("common").is_some());
    }

    #[test]
    fn deterministic_construction() {
        let a = toy();
        let b = toy();
        for (id, tok) in a.iter() {
            assert_eq!(b.token(id), tok);
        }
    }
}
