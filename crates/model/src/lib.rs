//! # nfm-model — NLP machinery adapted to network traffic
//!
//! Everything between raw packets and a trained model: vocabularies,
//! tokenizers (byte-level, learned BPE, protocol-field-aware — §4.1.2),
//! context builders (§4.1.3), context-independent embedding baselines
//! (Word2Vec, GloVe — §2), the transformer encoder and GRU baseline, and
//! self-supervised pre-training objectives (MLM, next-flow prediction, DNS
//! query–answer — §4.1.4).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod context;
pub mod embed;
pub mod generate;
pub mod guard;
pub mod nn;
pub mod pretrain;
pub mod tokenize;
pub mod vocab;

pub use context::{contexts_from_trace, flow_context, ContextStrategy};
pub use guard::{GuardConfig, GuardEvent, TrainError, TrainGuard};
pub use nn::gru::GruClassifier;
pub use nn::transformer::{Encoder, EncoderConfig};
pub use pretrain::{pretrain, PretrainConfig, TaskMix};
pub use tokenize::field::FieldTokenizer;
pub use tokenize::Tokenizer;
pub use vocab::Vocab;
