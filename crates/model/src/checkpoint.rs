//! Model-level checkpointing: encoder, task heads, vocabulary, and full
//! mid-run training state, built on the record format in
//! [`nfm_tensor::checkpoint`].
//!
//! Models are stored as their construction config plus a flat parameter
//! dump in [`nfm_tensor::layers::Module::visit_params`] order (which every layer keeps
//! stable); loading reconstructs the architecture and overwrites every
//! slot, so a round trip is bitwise exact.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::path::Path;

use nfm_tensor::checkpoint::{
    load_record, read_adam, read_module_params, save_record, write_adam, write_module_params,
    ByteReader, ByteWriter, CheckpointError, KIND_ENCODER, KIND_TRAIN, KIND_VOCAB,
};
use nfm_tensor::optim::Adam;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::nn::heads::{ClsHead, MlmHead};
use crate::nn::transformer::{Encoder, EncoderConfig};
use crate::vocab::Vocab;

/// Serialize an encoder config.
pub fn write_encoder_config(w: &mut ByteWriter, cfg: &EncoderConfig) {
    w.put_usize(cfg.vocab);
    w.put_usize(cfg.d_model);
    w.put_usize(cfg.n_heads);
    w.put_usize(cfg.n_layers);
    w.put_usize(cfg.d_ff);
    w.put_usize(cfg.max_len);
}

/// Deserialize an encoder config.
pub fn read_encoder_config(r: &mut ByteReader) -> Result<EncoderConfig, CheckpointError> {
    let cfg = EncoderConfig {
        vocab: r.get_count()?,
        d_model: r.get_count()?,
        n_heads: r.get_count()?,
        n_layers: r.get_count()?,
        d_ff: r.get_count()?,
        max_len: r.get_count()?,
    };
    if cfg.d_model == 0 || cfg.n_heads == 0 || !cfg.d_model.is_multiple_of(cfg.n_heads) {
        return Err(CheckpointError::Malformed(format!(
            "invalid encoder config: d_model {} with {} heads",
            cfg.d_model, cfg.n_heads
        )));
    }
    // Cap dimensions so a corrupted-but-checksum-colliding config cannot
    // request an absurd allocation.
    const MAX_DIM: usize = 1 << 24;
    if [cfg.vocab, cfg.d_model, cfg.n_layers, cfg.d_ff, cfg.max_len].iter().any(|&d| d > MAX_DIM) {
        return Err(CheckpointError::Malformed("encoder config dimension too large".into()));
    }
    Ok(cfg)
}

/// Serialize an encoder (config + parameters). Takes `&mut` because
/// parameter access goes through [`nfm_tensor::layers::Module::visit_params`].
pub fn write_encoder(w: &mut ByteWriter, encoder: &mut Encoder) {
    write_encoder_config(w, &encoder.config);
    write_module_params(w, encoder);
}

/// Deserialize an encoder: rebuild the architecture from its config, then
/// overwrite every parameter slot.
pub fn read_encoder(r: &mut ByteReader) -> Result<Encoder, CheckpointError> {
    let cfg = read_encoder_config(r)?;
    // The RNG only fills values that are immediately overwritten.
    let mut encoder = Encoder::new(&mut StdRng::seed_from_u64(0), cfg);
    read_module_params(r, &mut encoder)?;
    Ok(encoder)
}

/// Serialize an MLM head.
pub fn write_mlm_head(w: &mut ByteWriter, head: &mut MlmHead) {
    let (d_model, vocab) = head.dims();
    w.put_usize(d_model);
    w.put_usize(vocab);
    write_module_params(w, head);
}

/// Deserialize an MLM head.
pub fn read_mlm_head(r: &mut ByteReader) -> Result<MlmHead, CheckpointError> {
    let d_model = r.get_count()?;
    let vocab = r.get_count()?;
    let mut head = MlmHead::new(&mut StdRng::seed_from_u64(0), d_model, vocab);
    read_module_params(r, &mut head)?;
    Ok(head)
}

/// Serialize a classification head.
pub fn write_cls_head(w: &mut ByteWriter, head: &mut ClsHead) {
    let (d_model, n_classes) = head.dims();
    w.put_usize(d_model);
    w.put_usize(n_classes);
    write_module_params(w, head);
}

/// Deserialize a classification head.
pub fn read_cls_head(r: &mut ByteReader) -> Result<ClsHead, CheckpointError> {
    let d_model = r.get_count()?;
    let n_classes = r.get_count()?;
    let mut head = ClsHead::new(&mut StdRng::seed_from_u64(0), d_model, n_classes);
    read_module_params(r, &mut head)?;
    Ok(head)
}

/// Serialize a vocabulary as its id-ordered token list.
pub fn write_vocab(w: &mut ByteWriter, vocab: &Vocab) {
    w.put_usize(vocab.len());
    for (_, token) in vocab.iter() {
        w.put_str(token);
    }
}

/// Deserialize a vocabulary, restoring exact token ids.
pub fn read_vocab(r: &mut ByteReader) -> Result<Vocab, CheckpointError> {
    let n = r.get_len()?;
    let mut tokens = Vec::with_capacity(n);
    for _ in 0..n {
        tokens.push(r.get_str()?);
    }
    Vocab::from_tokens(tokens).map_err(CheckpointError::Malformed)
}

/// Save an encoder alone to `path`.
pub fn save_encoder(path: &Path, encoder: &mut Encoder) -> Result<(), CheckpointError> {
    let mut w = ByteWriter::new();
    write_encoder(&mut w, encoder);
    save_record(path, KIND_ENCODER, &w.into_bytes())
}

/// Load an encoder alone from `path`.
pub fn load_encoder(path: &Path) -> Result<Encoder, CheckpointError> {
    let payload = load_record(path, KIND_ENCODER)?;
    let mut r = ByteReader::new(&payload);
    read_encoder(&mut r)
}

/// Save a vocabulary alone to `path`.
pub fn save_vocab(path: &Path, vocab: &Vocab) -> Result<(), CheckpointError> {
    let mut w = ByteWriter::new();
    write_vocab(&mut w, vocab);
    save_record(path, KIND_VOCAB, &w.into_bytes())
}

/// Load a vocabulary alone from `path`.
pub fn load_vocab(path: &Path) -> Result<Vocab, CheckpointError> {
    let payload = load_record(path, KIND_VOCAB)?;
    let mut r = ByteReader::new(&payload);
    read_vocab(&mut r)
}

/// Everything needed to continue an interrupted pre-training run with
/// bitwise-identical results: model, heads, optimizer moments, and the
/// loop's progress counters (which also pin the per-epoch shuffle seeds
/// and the learning-rate backoff state).
#[derive(Debug, Clone)]
pub struct TrainState {
    /// First epoch the resumed loop should run.
    pub next_epoch: usize,
    /// Global batch-step counter (monotonic across rollbacks).
    pub global_step: u64,
    /// Guard rollbacks so far (feeds the per-epoch reshuffle seed).
    pub total_retries: u64,
    /// Current learning-rate multiplier after backoffs.
    pub lr_scale: f32,
    /// Per-epoch mean MLM loss so far.
    pub mlm_loss: Vec<f32>,
    /// Per-epoch mean next-flow loss so far.
    pub next_flow_loss: Vec<f32>,
    /// The encoder.
    pub encoder: Encoder,
    /// The MLM head.
    pub mlm_head: MlmHead,
    /// The next-flow-prediction head.
    pub nfp_head: ClsHead,
    /// Encoder optimizer.
    pub opt_enc: Adam,
    /// MLM-head optimizer.
    pub opt_mlm: Adam,
    /// NFP-head optimizer.
    pub opt_nfp: Adam,
}

/// Serialize a full training snapshot to `path`.
pub fn save_train_state(path: &Path, state: &mut TrainState) -> Result<(), CheckpointError> {
    let mut w = ByteWriter::new();
    w.put_usize(state.next_epoch);
    w.put_u64(state.global_step);
    w.put_u64(state.total_retries);
    w.put_f32(state.lr_scale);
    w.put_f32_slice(&state.mlm_loss);
    w.put_f32_slice(&state.next_flow_loss);
    write_encoder(&mut w, &mut state.encoder);
    write_mlm_head(&mut w, &mut state.mlm_head);
    write_cls_head(&mut w, &mut state.nfp_head);
    write_adam(&mut w, &state.opt_enc);
    write_adam(&mut w, &state.opt_mlm);
    write_adam(&mut w, &state.opt_nfp);
    save_record(path, KIND_TRAIN, &w.into_bytes())
}

/// Load a full training snapshot from `path`.
pub fn load_train_state(path: &Path) -> Result<TrainState, CheckpointError> {
    let payload = load_record(path, KIND_TRAIN)?;
    let mut r = ByteReader::new(&payload);
    let next_epoch = r.get_count()?;
    let global_step = r.get_u64()?;
    let total_retries = r.get_u64()?;
    let lr_scale = r.get_f32()?;
    let mlm_loss = r.get_f32_vec()?;
    let next_flow_loss = r.get_f32_vec()?;
    let encoder = read_encoder(&mut r)?;
    let mlm_head = read_mlm_head(&mut r)?;
    let nfp_head = read_cls_head(&mut r)?;
    let opt_enc = read_adam(&mut r)?;
    let opt_mlm = read_adam(&mut r)?;
    let opt_nfp = read_adam(&mut r)?;
    if r.remaining() != 0 {
        return Err(CheckpointError::Malformed(format!(
            "{} trailing bytes after train state",
            r.remaining()
        )));
    }
    Ok(TrainState {
        next_epoch,
        global_step,
        total_retries,
        lr_scale,
        mlm_loss,
        next_flow_loss,
        encoder,
        mlm_head,
        nfp_head,
        opt_enc,
        opt_mlm,
        opt_nfp,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfm_tensor::layers::Module;
    use nfm_tensor::optim::Schedule;
    use rand::Rng;

    fn small_encoder(seed: u64) -> Encoder {
        let cfg =
            EncoderConfig { vocab: 17, d_model: 8, n_heads: 2, n_layers: 2, d_ff: 16, max_len: 12 };
        Encoder::new(&mut StdRng::seed_from_u64(seed), cfg)
    }

    fn params_of(m: &mut dyn Module) -> Vec<Vec<u32>> {
        let mut out = Vec::new();
        m.visit_params(&mut |p, _| out.push(p.iter().map(|v| v.to_bits()).collect()));
        out
    }

    #[test]
    fn encoder_round_trip_is_bitwise() {
        let mut enc = small_encoder(42);
        let mut w = ByteWriter::new();
        write_encoder(&mut w, &mut enc);
        let bytes = w.into_bytes();
        let mut back = read_encoder(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back.config, enc.config);
        assert_eq!(params_of(&mut enc), params_of(&mut back));
        // Same forward output, bit for bit.
        let ids = [2usize, 7, 9, 3];
        let a = enc.forward_inference(&ids);
        let b = back.forward_inference(&ids);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn encoder_file_round_trip_and_corruption() {
        let dir = std::env::temp_dir().join(format!("nfm_model_ckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("enc.nfmc");
        let mut enc = small_encoder(1);
        save_encoder(&path, &mut enc).unwrap();
        let mut back = load_encoder(&path).unwrap();
        assert_eq!(params_of(&mut enc), params_of(&mut back));
        // Flip a byte in the middle: load must fail, not panic.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_encoder(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn heads_round_trip() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut mlm = MlmHead::new(&mut rng, 8, 17);
        let mut cls = ClsHead::new(&mut rng, 8, 4);
        let mut w = ByteWriter::new();
        write_mlm_head(&mut w, &mut mlm);
        write_cls_head(&mut w, &mut cls);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let mut mlm2 = read_mlm_head(&mut r).unwrap();
        let mut cls2 = read_cls_head(&mut r).unwrap();
        assert_eq!(params_of(&mut mlm), params_of(&mut mlm2));
        assert_eq!(params_of(&mut cls), params_of(&mut cls2));
        assert_eq!(mlm2.dims(), (8, 17));
        assert_eq!(cls2.dims(), (8, 4));
    }

    #[test]
    fn vocab_round_trip_preserves_ids() {
        let seqs: Vec<Vec<String>> =
            (0..10).map(|i| (0..5).map(|j| format!("tok_{}_{}", i % 3, j)).collect()).collect();
        let vocab = Vocab::from_sequences(&seqs, 1);
        let mut w = ByteWriter::new();
        write_vocab(&mut w, &vocab);
        let bytes = w.into_bytes();
        let back = read_vocab(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back.len(), vocab.len());
        for (id, tok) in vocab.iter() {
            assert_eq!(back.token(id), tok);
            assert_eq!(back.id(tok), id);
        }
    }

    #[test]
    fn vocab_rejects_bad_token_lists() {
        assert!(Vocab::from_tokens(vec!["a".into()]).is_err());
        let mut tokens: Vec<String> =
            crate::vocab::SPECIALS.iter().map(|s| s.to_string()).collect();
        tokens.push("x".into());
        tokens.push("x".into());
        assert!(Vocab::from_tokens(tokens).is_err());
        let mut wrong: Vec<String> = crate::vocab::SPECIALS.iter().map(|s| s.to_string()).collect();
        wrong[0] = "[NOTPAD]".into();
        assert!(Vocab::from_tokens(wrong).is_err());
    }

    #[test]
    fn train_state_round_trip() {
        let dir = std::env::temp_dir().join(format!("nfm_ts_ckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.nfmc");
        let mut rng = StdRng::seed_from_u64(9);
        let mut state = TrainState {
            next_epoch: 2,
            global_step: 37,
            total_retries: 1,
            lr_scale: 0.5,
            mlm_loss: vec![3.0, 2.5],
            next_flow_loss: vec![0.7, 0.6],
            encoder: small_encoder(9),
            mlm_head: MlmHead::new(&mut rng, 8, 17),
            nfp_head: ClsHead::new(&mut rng, 8, 2),
            opt_enc: Adam::new(Schedule::Constant(1e-3)),
            opt_mlm: Adam::new(Schedule::Constant(1e-3)),
            opt_nfp: Adam::new(Schedule::Constant(1e-3)),
        };
        // Give the optimizers some state.
        state.opt_enc.step(&mut state.encoder);
        state.opt_enc.set_lr_scale(0.5);
        save_train_state(&path, &mut state).unwrap();
        let mut back = load_train_state(&path).unwrap();
        assert_eq!(back.next_epoch, 2);
        assert_eq!(back.global_step, 37);
        assert_eq!(back.total_retries, 1);
        assert_eq!(back.lr_scale, 0.5);
        assert_eq!(back.mlm_loss, vec![3.0, 2.5]);
        assert_eq!(back.opt_enc.steps(), 1);
        assert_eq!(back.opt_enc.lr_scale(), 0.5);
        assert_eq!(params_of(&mut state.encoder), params_of(&mut back.encoder));
        let (_, m0, v0) = state.opt_enc.state();
        let (_, m1, v1) = back.opt_enc.state();
        assert_eq!(m0, m1);
        assert_eq!(v0, v1);
        // Truncated file: typed error, no panic.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        assert!(load_train_state(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rng_gets_unused_values_only() {
        // read_encoder seeds a throwaway RNG; make sure fresh construction
        // with a different seed still loads to identical parameters (i.e.
        // nothing of the dummy init survives).
        let mut enc = small_encoder(123);
        let mut w = ByteWriter::new();
        write_encoder(&mut w, &mut enc);
        let bytes = w.into_bytes();
        let mut a = read_encoder(&mut ByteReader::new(&bytes)).unwrap();
        let mut b = read_encoder(&mut ByteReader::new(&bytes)).unwrap();
        let _ = StdRng::seed_from_u64(0).gen::<u64>();
        assert_eq!(params_of(&mut a), params_of(&mut b));
        assert_eq!(params_of(&mut a), params_of(&mut enc));
    }
}
