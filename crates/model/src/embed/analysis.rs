//! Embedding-space analysis: nearest neighbors and analogy arithmetic — the
//! probes behind NetBERT's "BGP is to router as STP is to switch" and
//! NorBERT's "nearest neighbor of port 80 is port 443" findings (§3.4).

use nfm_tensor::matrix::{cosine, Matrix};

use crate::vocab::Vocab;

/// A token's similarity score.
#[derive(Debug, Clone, PartialEq)]
pub struct Neighbor {
    /// Token id.
    pub id: usize,
    /// Token text.
    pub token: String,
    /// Cosine similarity to the query.
    pub similarity: f32,
}

/// The `k` nearest neighbors of `query_id` by cosine over `embeddings`
/// (`vocab × dim`), excluding the query itself and the special tokens.
pub fn nearest_neighbors(
    embeddings: &Matrix,
    vocab: &Vocab,
    query_id: usize,
    k: usize,
) -> Vec<Neighbor> {
    let q = embeddings.row(query_id);
    let mut scored: Vec<Neighbor> = (0..embeddings.rows())
        .filter(|&i| i != query_id && i >= 5) // skip specials
        .map(|i| Neighbor {
            id: i,
            token: vocab.token(i).to_string(),
            similarity: cosine(q, embeddings.row(i)),
        })
        .collect();
    scored.sort_by(|a, b| b.similarity.partial_cmp(&a.similarity).expect("finite"));
    scored.truncate(k);
    scored
}

/// Solve the analogy `a : b :: c : ?` via `vec(b) − vec(a) + vec(c)`,
/// returning the `k` best candidates excluding `a`, `b`, `c`.
pub fn analogy(
    embeddings: &Matrix,
    vocab: &Vocab,
    a: usize,
    b: usize,
    c: usize,
    k: usize,
) -> Vec<Neighbor> {
    let dim = embeddings.cols();
    let mut target = vec![0.0f32; dim];
    for (i, t) in target.iter_mut().enumerate() {
        *t = embeddings.row(b)[i] - embeddings.row(a)[i] + embeddings.row(c)[i];
    }
    let mut scored: Vec<Neighbor> = (0..embeddings.rows())
        .filter(|&i| i != a && i != b && i != c && i >= 5)
        .map(|i| Neighbor {
            id: i,
            token: vocab.token(i).to_string(),
            similarity: cosine(&target, embeddings.row(i)),
        })
        .collect();
    scored.sort_by(|x, y| y.similarity.partial_cmp(&x.similarity).expect("finite"));
    scored.truncate(k);
    scored
}

/// Rank (1-based) of `expected_id` in the nearest-neighbor list of
/// `query_id`; `None` if outside the top `limit`.
pub fn neighbor_rank(
    embeddings: &Matrix,
    vocab: &Vocab,
    query_id: usize,
    expected_id: usize,
    limit: usize,
) -> Option<usize> {
    nearest_neighbors(embeddings, vocab, query_id, limit)
        .iter()
        .position(|n| n.id == expected_id)
        .map(|p| p + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Hand-built embedding space with known geometry:
    /// tokens t0..t3 along axis 0, t4..t5 along axis 1, and a perfect
    /// parallelogram for the analogy test.
    fn setup() -> (Matrix, Vocab) {
        let mut counts = HashMap::new();
        for (i, name) in ["t0", "t1", "t2", "t3", "t4", "t5"].iter().enumerate() {
            counts.insert(name.to_string(), 100 - i);
        }
        let vocab = Vocab::build(&counts, 1);
        // Rows: 5 specials + 6 tokens (dim 3).
        let mut data = vec![0.0f32; (5 + 6) * 3];
        let rows: [[f32; 3]; 6] = [
            [1.0, 0.0, 0.0],   // t0
            [0.95, 0.05, 0.0], // t1 ~ t0
            [1.0, 1.0, 0.0],   // t2 = t0 + y  (analogy corner)
            [0.0, 1.0, 0.0],   // t3 = y
            [0.0, 0.9, 0.3],   // t4 ~ t3
            [-1.0, 0.0, 0.0],  // t5 opposite t0
        ];
        for (i, row) in rows.iter().enumerate() {
            let base = (5 + i) * 3;
            data[base..base + 3].copy_from_slice(row);
        }
        (Matrix::from_vec(11, 3, data), vocab)
    }

    #[test]
    fn nearest_neighbor_finds_the_close_token() {
        let (emb, vocab) = setup();
        let t0 = vocab.id("t0");
        let nn = nearest_neighbors(&emb, &vocab, t0, 2);
        assert_eq!(nn[0].token, "t1");
        assert!(nn[0].similarity > 0.99);
        // The opposite vector is nowhere near the top.
        assert!(nn.iter().all(|n| n.token != "t5"));
    }

    #[test]
    fn analogy_parallelogram() {
        let (emb, vocab) = setup();
        // t0 : t2 :: t3 : ?  → t2 - t0 + ... wait: b - a + c with
        // a=t0 (x), b=t2 (x+y), c=... we want ? = y + something.
        // b - a + c = (x+y) - x + t3(y) = 2y → nearest is t4 (≈y direction).
        let result = analogy(&emb, &vocab, vocab.id("t0"), vocab.id("t2"), vocab.id("t3"), 1);
        assert_eq!(result[0].token, "t4");
    }

    #[test]
    fn neighbor_rank_reports_position() {
        let (emb, vocab) = setup();
        let t0 = vocab.id("t0");
        let t1 = vocab.id("t1");
        assert_eq!(neighbor_rank(&emb, &vocab, t0, t1, 5), Some(1));
        let t5 = vocab.id("t5");
        assert_eq!(neighbor_rank(&emb, &vocab, t0, t5, 2), None);
    }

    #[test]
    fn specials_excluded() {
        let (emb, vocab) = setup();
        let nn = nearest_neighbors(&emb, &vocab, vocab.id("t0"), 10);
        assert!(nn.iter().all(|n| n.id >= 5));
    }
}
