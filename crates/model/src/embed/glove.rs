//! GloVe (Pennington et al., cited §3.4): context-independent embeddings fit
//! to the log co-occurrence matrix with AdaGrad — the baseline NorBERT
//! compared against.

use std::collections::HashMap;

use nfm_tensor::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Training configuration.
#[derive(Debug, Clone)]
pub struct GloveConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Co-occurrence window radius.
    pub window: usize,
    /// Weighting cap `x_max`.
    pub x_max: f64,
    /// Weighting exponent `alpha`.
    pub alpha: f64,
    /// AdaGrad learning rate.
    pub lr: f32,
    /// Training epochs over the co-occurrence entries.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GloveConfig {
    fn default() -> Self {
        GloveConfig { dim: 32, window: 4, x_max: 100.0, alpha: 0.75, lr: 0.05, epochs: 20, seed: 1 }
    }
}

/// Trained GloVe embeddings.
#[derive(Debug, Clone)]
pub struct Glove {
    /// Sum of word and context vectors (the standard output), `vocab × dim`.
    pub embeddings: Matrix,
}

impl Glove {
    /// Accumulate the windowed co-occurrence counts (1/distance weighting).
    pub fn cooccurrences(sequences: &[Vec<usize>], window: usize) -> HashMap<(usize, usize), f64> {
        let mut counts: HashMap<(usize, usize), f64> = HashMap::new();
        for seq in sequences {
            for (i, &w) in seq.iter().enumerate() {
                let hi = (i + window + 1).min(seq.len());
                for (dist, j) in (i + 1..hi).enumerate() {
                    let c = seq[j];
                    let weight = 1.0 / (dist as f64 + 1.0);
                    *counts.entry((w, c)).or_insert(0.0) += weight;
                    *counts.entry((c, w)).or_insert(0.0) += weight;
                }
            }
        }
        counts
    }

    /// Train on encoded sequences over a vocabulary of size `vocab_size`.
    pub fn train(sequences: &[Vec<usize>], vocab_size: usize, config: &GloveConfig) -> Glove {
        let d = config.dim;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let cooc: Vec<((usize, usize), f64)> =
            Self::cooccurrences(sequences, config.window).into_iter().collect();
        // Sort entries for determinism (HashMap order is random).
        let mut cooc = cooc;
        cooc.sort_by_key(|a| a.0);

        let scale = 0.5 / d as f32;
        let mut w = Matrix::from_fn(vocab_size, d, |_, _| (rng.gen::<f32>() - 0.5) * scale);
        let mut wc = Matrix::from_fn(vocab_size, d, |_, _| (rng.gen::<f32>() - 0.5) * scale);
        let mut b = vec![0.0f32; vocab_size];
        let mut bc = vec![0.0f32; vocab_size];
        // AdaGrad accumulators.
        let mut gw = Matrix::from_fn(vocab_size, d, |_, _| 1.0);
        let mut gwc = Matrix::from_fn(vocab_size, d, |_, _| 1.0);
        let mut gb = vec![1.0f32; vocab_size];
        let mut gbc = vec![1.0f32; vocab_size];

        for _ in 0..config.epochs {
            for &((i, j), x) in &cooc {
                let weight =
                    if x < config.x_max { (x / config.x_max).powf(config.alpha) } else { 1.0 }
                        as f32;
                let dot: f32 = w.row(i).iter().zip(wc.row(j)).map(|(a, b)| a * b).sum();
                let diff = dot + b[i] + bc[j] - (x as f32).ln();
                let fdiff = weight * diff;
                // Gradients.
                let wi: Vec<f32> = w.row(i).to_vec();
                let wj: Vec<f32> = wc.row(j).to_vec();
                for k in 0..d {
                    let gi = fdiff * wj[k];
                    let gj = fdiff * wi[k];
                    let wi_row = w.row_mut(i);
                    wi_row[k] -= config.lr * gi / gw.row(i)[k].sqrt();
                    let wj_row = wc.row_mut(j);
                    wj_row[k] -= config.lr * gj / gwc.row(j)[k].sqrt();
                    gw.row_mut(i)[k] += gi * gi;
                    gwc.row_mut(j)[k] += gj * gj;
                }
                b[i] -= config.lr * fdiff / gb[i].sqrt();
                bc[j] -= config.lr * fdiff / gbc[j].sqrt();
                gb[i] += fdiff * fdiff;
                gbc[j] += fdiff * fdiff;
            }
        }
        let mut emb = w;
        emb.add_assign(&wc);
        Glove { embeddings: emb }
    }

    /// The embedding vector for a token id.
    pub fn vector(&self, id: usize) -> &[f32] {
        self.embeddings.row(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::Vocab;
    use nfm_tensor::matrix::cosine;

    fn clustered_corpus() -> Vec<Vec<String>> {
        let a = ["a0", "a1", "a2"];
        let b = ["b0", "b1", "b2"];
        let mut seqs = Vec::new();
        for i in 0..200 {
            let group: &[&str] = if i % 2 == 0 { &a } else { &b };
            let seq: Vec<String> = (0..8).map(|j| group[(i + j) % 3].to_string()).collect();
            seqs.push(seq);
        }
        seqs
    }

    #[test]
    fn cooccurrence_symmetry_and_weighting() {
        let seqs = vec![vec![0usize, 1, 2]];
        let cooc = Glove::cooccurrences(&seqs, 2);
        assert_eq!(cooc[&(0, 1)], cooc[&(1, 0)]);
        // Adjacent pair weight 1.0; distance-2 pair weight 0.5.
        assert!((cooc[&(0, 1)] - 1.0).abs() < 1e-9);
        assert!((cooc[&(0, 2)] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn glove_separates_clusters() {
        let seqs = clustered_corpus();
        let vocab = Vocab::from_sequences(&seqs, 1);
        let encoded: Vec<Vec<usize>> = seqs.iter().map(|s| vocab.encode(s)).collect();
        let glove = Glove::train(
            &encoded,
            vocab.len(),
            &GloveConfig { dim: 8, epochs: 300, ..GloveConfig::default() },
        );
        let sim = |x: &str, y: &str| cosine(glove.vector(vocab.id(x)), glove.vector(vocab.id(y)));
        let within = sim("a0", "a1");
        let cross = sim("a0", "b1");
        assert!(within > cross, "within {within} cross {cross}");
        assert!(glove.embeddings.is_finite());
    }

    #[test]
    fn training_is_deterministic() {
        let seqs = clustered_corpus();
        let vocab = Vocab::from_sequences(&seqs, 1);
        let encoded: Vec<Vec<usize>> = seqs.iter().map(|s| vocab.encode(s)).collect();
        let cfg = GloveConfig { dim: 8, epochs: 2, ..GloveConfig::default() };
        let a = Glove::train(&encoded, vocab.len(), &cfg);
        let b = Glove::train(&encoded, vocab.len(), &cfg);
        assert_eq!(a.embeddings.data(), b.embeddings.data());
    }
}
