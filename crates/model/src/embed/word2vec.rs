//! Word2Vec skip-gram with negative sampling (Mikolov et al., cited §2),
//! trained on token-id sequences.

use nfm_tensor::layers::sigmoid;
use nfm_tensor::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::vocab::Vocab;

/// Training configuration.
#[derive(Debug, Clone)]
pub struct Word2VecConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Context window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Learning rate (linearly decayed to 10%).
    pub lr: f32,
    /// Passes over the corpus.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
    /// Frequent-token subsampling threshold `t` (word2vec's `-sample`);
    /// occurrences of a token with corpus frequency `f` are kept with
    /// probability `min(1, sqrt(t/f) + t/f)`. 0 disables. Without it,
    /// ultra-frequent header tokens dominate every context and all
    /// embeddings collapse toward one direction.
    pub subsample: f64,
}

impl Default for Word2VecConfig {
    fn default() -> Self {
        Word2VecConfig {
            dim: 32,
            window: 4,
            negatives: 5,
            lr: 0.025,
            epochs: 3,
            seed: 1,
            subsample: 1e-3,
        }
    }
}

/// Trained skip-gram embeddings.
#[derive(Debug, Clone)]
pub struct Word2Vec {
    /// Input-side embeddings, `vocab × dim` (the ones consumers use).
    pub embeddings: Matrix,
}

impl Word2Vec {
    /// Train on encoded sequences. Special-token ids (0..5) participate but
    /// are rarely informative; callers typically pass raw encoded contexts.
    pub fn train(sequences: &[Vec<usize>], vocab: &Vocab, config: &Word2VecConfig) -> Word2Vec {
        let v = vocab.len();
        let d = config.dim;
        let mut rng = StdRng::seed_from_u64(config.seed);
        // Init: input in U(-0.5/d, 0.5/d), output zeros (word2vec.c style).
        let mut win = Matrix::from_fn(v, d, |_, _| (rng.gen::<f32>() - 0.5) / d as f32);
        let mut wout = Matrix::zeros(v, d);

        // Unigram^0.75 negative-sampling table.
        let mut counts = vec![1.0f64; v];
        let mut total_tokens = 0usize;
        for seq in sequences {
            for &t in seq {
                counts[t] += 1.0;
                total_tokens += 1;
            }
        }
        let powered: Vec<f64> = counts.iter().map(|c| c.powf(0.75)).collect();
        let sum: f64 = powered.iter().sum();
        let mut neg_table = Vec::with_capacity(1 << 16);
        {
            let mut acc = 0.0;
            let mut idx = 0usize;
            for i in 0..(1 << 16) {
                let frac = (i as f64 + 0.5) / (1 << 16) as f64;
                while acc + powered[idx] / sum < frac && idx + 1 < v {
                    acc += powered[idx] / sum;
                    idx += 1;
                }
                neg_table.push(idx);
            }
        }

        // Keep probability per token id for frequent-token subsampling.
        let keep_prob: Vec<f64> = counts
            .iter()
            .map(|&c| {
                if config.subsample <= 0.0 {
                    return 1.0;
                }
                let f = c / total_tokens.max(1) as f64;
                ((config.subsample / f).sqrt() + config.subsample / f).min(1.0)
            })
            .collect();

        let total_steps = (config.epochs * total_tokens).max(1);
        let mut step = 0usize;
        for _ in 0..config.epochs {
            for full_seq in sequences {
                // Subsample this epoch's view of the sequence.
                let seq: Vec<usize> = full_seq
                    .iter()
                    .copied()
                    .filter(|&t| keep_prob[t] >= 1.0 || rng.gen_bool(keep_prob[t]))
                    .collect();
                for (i, &center) in seq.iter().enumerate() {
                    step += 1;
                    let progress = step as f32 / total_steps as f32;
                    let lr = config.lr * (1.0 - 0.9 * progress);
                    let lo = i.saturating_sub(config.window);
                    let hi = (i + config.window + 1).min(seq.len());
                    for (j, &context) in seq.iter().enumerate().take(hi).skip(lo) {
                        if j == i {
                            continue;
                        }
                        // One positive + k negative updates on (center, x).
                        let mut grad_center = vec![0.0f32; d];
                        for k in 0..=config.negatives {
                            let (target, label) = if k == 0 {
                                (context, 1.0f32)
                            } else {
                                (neg_table[rng.gen_range(0..neg_table.len())], 0.0f32)
                            };
                            if k > 0 && target == context {
                                continue;
                            }
                            let dot: f32 = win
                                .row(center)
                                .iter()
                                .zip(wout.row(target))
                                .map(|(a, b)| a * b)
                                .sum();
                            let g = (sigmoid(dot) - label) * lr;
                            for (gc, &o) in grad_center.iter_mut().zip(wout.row(target)) {
                                *gc += g * o;
                            }
                            let center_row: Vec<f32> = win.row(center).to_vec();
                            for (o, c) in wout.row_mut(target).iter_mut().zip(&center_row) {
                                *o -= g * c;
                            }
                        }
                        for (c, g) in win.row_mut(center).iter_mut().zip(&grad_center) {
                            *c -= g;
                        }
                    }
                }
            }
        }
        Word2Vec { embeddings: win }
    }

    /// The embedding vector for a token id.
    pub fn vector(&self, id: usize) -> &[f32] {
        self.embeddings.row(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfm_tensor::matrix::cosine;

    /// A toy corpus with two hard clusters: tokens `a*` co-occur only with
    /// each other, likewise `b*`.
    fn clustered_corpus() -> (Vec<Vec<String>>, Vec<&'static str>, Vec<&'static str>) {
        let a = vec!["a0", "a1", "a2", "a3"];
        let b = vec!["b0", "b1", "b2", "b3"];
        let mut seqs = Vec::new();
        let mut rng_state = 7u64;
        let mut next = || {
            rng_state =
                rng_state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (rng_state >> 33) as usize
        };
        for i in 0..300 {
            let group = if i % 2 == 0 { &a } else { &b };
            let seq: Vec<String> = (0..8).map(|_| group[next() % 4].to_string()).collect();
            seqs.push(seq);
        }
        (seqs, a, b)
    }

    #[test]
    fn skipgram_separates_cooccurrence_clusters() {
        let (seqs, a, b) = clustered_corpus();
        let vocab = Vocab::from_sequences(&seqs, 1);
        let encoded: Vec<Vec<usize>> = seqs.iter().map(|s| vocab.encode(s)).collect();
        let w2v = Word2Vec::train(
            &encoded,
            &vocab,
            &Word2VecConfig { dim: 16, epochs: 4, subsample: 0.0, ..Word2VecConfig::default() },
        );
        // Mean within-cluster similarity must exceed cross-cluster.
        let sim = |x: &str, y: &str| cosine(w2v.vector(vocab.id(x)), w2v.vector(vocab.id(y)));
        let mut within = 0.0;
        let mut cross = 0.0;
        let mut nw = 0;
        let mut nc = 0;
        for &x in &a {
            for &y in &a {
                if x != y {
                    within += sim(x, y);
                    nw += 1;
                }
            }
            for &y in &b {
                cross += sim(x, y);
                nc += 1;
            }
        }
        let within = within / nw as f32;
        let cross = cross / nc as f32;
        assert!(within > cross + 0.3, "within {within} should exceed cross {cross}");
    }

    #[test]
    fn training_is_deterministic() {
        let (seqs, _, _) = clustered_corpus();
        let vocab = Vocab::from_sequences(&seqs, 1);
        let encoded: Vec<Vec<usize>> = seqs.iter().map(|s| vocab.encode(s)).collect();
        let cfg = Word2VecConfig { dim: 8, epochs: 1, subsample: 0.0, ..Word2VecConfig::default() };
        let a = Word2Vec::train(&encoded, &vocab, &cfg);
        let b = Word2Vec::train(&encoded, &vocab, &cfg);
        assert_eq!(a.embeddings.data(), b.embeddings.data());
    }

    #[test]
    fn embeddings_are_finite() {
        let (seqs, _, _) = clustered_corpus();
        let vocab = Vocab::from_sequences(&seqs, 1);
        let encoded: Vec<Vec<usize>> = seqs.iter().map(|s| vocab.encode(s)).collect();
        let w2v = Word2Vec::train(&encoded, &vocab, &Word2VecConfig::default());
        assert!(w2v.embeddings.is_finite());
    }
}
