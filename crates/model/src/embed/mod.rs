//! Context-independent embedding baselines (Word2Vec skip-gram with negative
//! sampling, GloVe) and embedding-space analysis (nearest neighbors,
//! analogies) — the pre-BERT lineage the paper's §2 walks through.

pub mod analysis;
pub mod glove;
pub mod word2vec;
