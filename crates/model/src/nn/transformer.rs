//! The BERT-style transformer encoder: token + learned position embeddings,
//! post-LN encoder blocks (attention and feed-forward sublayers with
//! residuals), processed one unpadded sequence at a time.
//!
//! For serving under deadlines, [`Encoder::forward_inference_within`] is a
//! budgeted entry point: inference cost is metered in deterministic
//! multiply-accumulate units (a reproducible proxy for wall time), checked
//! before every encoder block, and the call returns a typed
//! [`InferError::DeadlineExceeded`] instead of starting work it cannot
//! afford.

use std::fmt;

use nfm_tensor::layers::{Embedding, Gelu, LayerNorm, Linear, Module};
use nfm_tensor::matrix::Matrix;
use nfm_tensor::scratch::ScratchArena;
use rand::Rng;

use super::attention::MultiHeadAttention;

/// Why a budgeted inference call could not produce hidden states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InferError {
    /// The token sequence is empty (nothing to encode).
    EmptyInput,
    /// The remaining deadline budget cannot cover the next unit of work.
    /// Costs are deterministic multiply-accumulate counts, so the same
    /// request against the same model misses its deadline identically on
    /// every run.
    DeadlineExceeded {
        /// Cost units already spent when the check failed.
        spent: u64,
        /// Cost units the next unit of work would need.
        needed: u64,
        /// The total budget the request arrived with.
        budget: u64,
    },
}

impl fmt::Display for InferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferError::EmptyInput => write!(f, "empty token sequence"),
            InferError::DeadlineExceeded { spent, needed, budget } => write!(
                f,
                "deadline exceeded: spent {spent} + next step {needed} cost units > budget {budget}"
            ),
        }
    }
}

impl std::error::Error for InferError {}

/// Encoder hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncoderConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Model dimension.
    pub d_model: usize,
    /// Attention heads.
    pub n_heads: usize,
    /// Encoder blocks.
    pub n_layers: usize,
    /// Feed-forward inner dimension.
    pub d_ff: usize,
    /// Maximum sequence length (positional table size).
    pub max_len: usize,
}

impl EncoderConfig {
    /// A small default suited to CPU training.
    pub fn small(vocab: usize) -> EncoderConfig {
        EncoderConfig { vocab, d_model: 32, n_heads: 4, n_layers: 2, d_ff: 64, max_len: 128 }
    }
}

/// One post-LN encoder block.
#[derive(Debug, Clone)]
pub struct EncoderBlock {
    attn: MultiHeadAttention,
    ln1: LayerNorm,
    ff1: Linear,
    gelu: Gelu,
    ff2: Linear,
    ln2: LayerNorm,
}

impl EncoderBlock {
    fn new<R: Rng + ?Sized>(rng: &mut R, cfg: &EncoderConfig) -> EncoderBlock {
        EncoderBlock {
            attn: MultiHeadAttention::new(rng, cfg.d_model, cfg.n_heads),
            ln1: LayerNorm::new(cfg.d_model),
            ff1: Linear::new(rng, cfg.d_model, cfg.d_ff),
            gelu: Gelu::new(),
            ff2: Linear::new(rng, cfg.d_ff, cfg.d_model),
            ln2: LayerNorm::new(cfg.d_model),
        }
    }

    fn forward(&mut self, x: &Matrix) -> Matrix {
        let a = self.attn.forward(x);
        let mut r1 = x.clone();
        r1.add_assign(&a);
        let h1 = self.ln1.forward(&r1);
        let f = self.ff2.forward(&self.gelu.forward(&self.ff1.forward(&h1)));
        let mut r2 = h1.clone();
        r2.add_assign(&f);
        self.ln2.forward(&r2)
    }

    fn forward_inference(&self, x: &Matrix) -> Matrix {
        let a = self.attn.forward_inference(x);
        let mut r1 = x.clone();
        r1.add_assign(&a);
        let h1 = self.ln1.forward_inference(&r1);
        let f = self
            .ff2
            .forward_inference(&self.gelu.forward_inference(&self.ff1.forward_inference(&h1)));
        let mut r2 = h1.clone();
        r2.add_assign(&f);
        self.ln2.forward_inference(&r2)
    }

    /// Packed-batch inference over concatenated sequences (rows of `x`;
    /// sequence `s` owns rows `bounds[s]..bounds[s+1]`). Linear/LayerNorm/
    /// GELU sublayers operate per row, so they run once over the packed
    /// matrix; attention iterates per sequence inside
    /// [`MultiHeadAttention::forward_inference_batch`]. Takes ownership of
    /// `x` to reuse its buffer for the first residual; every intermediate
    /// comes from (and retires into) `arena`. Bitwise identical, row for
    /// row, to [`EncoderBlock::forward_inference`] on each sequence.
    fn forward_inference_batch(
        &self,
        mut x: Matrix,
        bounds: &[usize],
        arena: &mut ScratchArena,
    ) -> Matrix {
        let (rows, d) = (x.rows(), x.cols());
        let a = self.attn.forward_inference_batch(&x, bounds, arena);
        // r1 = x + a, reusing x's buffer (same `+=` arithmetic as the
        // single-sequence `r1 = x.clone(); r1 += a`).
        x.add_assign(&a);
        arena.put(a);
        let mut h1 = arena.take(rows, d);
        self.ln1.forward_inference_into(&x, &mut h1);
        arena.put(x);
        let d_ff = self.ff1.w.cols();
        let mut f1 = arena.take(rows, d_ff);
        self.ff1.forward_inference_into(&h1, &mut f1);
        let mut g = arena.take(rows, d_ff);
        self.gelu.forward_inference_into(&f1, &mut g);
        arena.put(f1);
        let mut f2 = arena.take(rows, d);
        self.ff2.forward_inference_into(&g, &mut f2);
        arena.put(g);
        // r2 = h1 + f, reusing h1's buffer.
        h1.add_assign(&f2);
        arena.put(f2);
        let mut out = arena.take(rows, d);
        self.ln2.forward_inference_into(&h1, &mut out);
        arena.put(h1);
        out
    }

    fn backward(&mut self, dy: &Matrix) -> Matrix {
        let dr2 = self.ln2.backward(dy);
        // r2 = h1 + f
        let df = dr2.clone();
        let dff = self.ff1.backward(&self.gelu.backward(&self.ff2.backward(&df)));
        let mut dh1 = dr2;
        dh1.add_assign(&dff);
        let dr1 = self.ln1.backward(&dh1);
        // r1 = x + attn(x)
        let da = dr1.clone();
        let mut dx = dr1;
        dx.add_assign(&self.attn.backward(&da));
        dx
    }

    /// Attention probabilities from the last training forward.
    pub fn last_attention(&self) -> Option<&[Matrix]> {
        self.attn.last_attention()
    }
}

impl Module for EncoderBlock {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        self.attn.visit_params(f);
        self.ln1.visit_params(f);
        self.ff1.visit_params(f);
        self.ff2.visit_params(f);
        self.ln2.visit_params(f);
    }
}

/// The full encoder.
#[derive(Debug, Clone)]
pub struct Encoder {
    /// Hyperparameters.
    pub config: EncoderConfig,
    tok_emb: Embedding,
    pos_emb: Embedding,
    blocks: Vec<EncoderBlock>,
    emb_ln: LayerNorm,
}

impl Encoder {
    /// Create with random initialization.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, config: EncoderConfig) -> Encoder {
        Encoder {
            tok_emb: Embedding::new(rng, config.vocab, config.d_model),
            pos_emb: Embedding::new(rng, config.max_len, config.d_model),
            blocks: (0..config.n_layers).map(|_| EncoderBlock::new(rng, &config)).collect(),
            emb_ln: LayerNorm::new(config.d_model),
            config,
        }
    }

    /// Replace the token-embedding table (e.g. with pre-trained GloVe
    /// vectors). Panics on shape mismatch.
    pub fn set_token_embeddings(&mut self, table: Matrix) {
        assert_eq!(table.rows(), self.config.vocab);
        assert_eq!(table.cols(), self.config.d_model);
        self.tok_emb.table.data_mut().copy_from_slice(table.data());
    }

    /// A copy of the token-embedding table (vocab × d_model).
    pub fn token_embeddings(&self) -> &Matrix {
        &self.tok_emb.table
    }

    /// Zero the token-embedding gradients accumulated this step. Calling
    /// this before every optimizer step freezes the embedding table (with
    /// optimizers whose state starts at zero), preserving pre-trained token
    /// geometry — including for tokens the fine-tuning set never contains.
    pub fn zero_token_embedding_grads(&mut self) {
        self.tok_emb.zero_grad();
    }

    fn clamp_ids<'a>(&self, ids: &'a [usize]) -> &'a [usize] {
        &ids[..ids.len().min(self.config.max_len)]
    }

    /// Forward one sequence of token ids (training mode; caches for
    /// backward). Returns hidden states (T×d).
    pub fn forward(&mut self, ids: &[usize]) -> Matrix {
        let ids = self.clamp_ids(ids);
        assert!(!ids.is_empty(), "empty sequence");
        let positions: Vec<usize> = (0..ids.len()).collect();
        let mut x = self.tok_emb.forward(ids);
        x.add_assign(&self.pos_emb.forward(&positions));
        let mut h = self.emb_ln.forward(&x);
        for block in &mut self.blocks {
            h = block.forward(&h);
        }
        h
    }

    /// Forward without caching (inference).
    pub fn forward_inference(&self, ids: &[usize]) -> Matrix {
        let ids = self.clamp_ids(ids);
        assert!(!ids.is_empty(), "empty sequence");
        let positions: Vec<usize> = (0..ids.len()).collect();
        let mut x = self.tok_emb.lookup(ids);
        x.add_assign(&self.pos_emb.lookup(&positions));
        let mut h = self.emb_ln.forward_inference(&x);
        for block in &self.blocks {
            h = block.forward_inference(&h);
        }
        h
    }

    /// Deterministic cost (multiply-accumulate units) of running one
    /// encoder block on a `t`-token sequence: QKV/output projections,
    /// attention scores, and the feed-forward sublayer.
    pub fn block_cost(&self, t: usize) -> u64 {
        let t = t as u64;
        let d = self.config.d_model as u64;
        let d_ff = self.config.d_ff as u64;
        4 * t * d * d + 2 * t * t * d + 2 * t * d * d_ff
    }

    /// Cost of the embedding lookup + embedding layer norm for `t` tokens.
    pub fn embed_cost(&self, t: usize) -> u64 {
        2 * t as u64 * self.config.d_model as u64
    }

    /// Total inference cost for a `t`-token sequence (after clamping to
    /// `max_len`): embeddings plus every block. This is the reproducible
    /// wall-time proxy the serving path budgets against.
    pub fn inference_cost(&self, t: usize) -> u64 {
        let t = t.min(self.config.max_len);
        self.embed_cost(t) + self.config.n_layers as u64 * self.block_cost(t)
    }

    /// Budgeted inference: like [`Encoder::forward_inference`], but meters
    /// deterministic cost units against `budget`, checking **before** each
    /// encoder block so no work is started that the deadline cannot cover.
    /// Returns the hidden states and the cost actually spent, or a typed
    /// [`InferError`] (never panics — including on empty input, which the
    /// unbudgeted path asserts on).
    pub fn forward_inference_within(
        &self,
        ids: &[usize],
        budget: u64,
    ) -> Result<(Matrix, u64), InferError> {
        let ids = self.clamp_ids(ids);
        if ids.is_empty() {
            return Err(InferError::EmptyInput);
        }
        let mut spent = 0u64;
        let mut charge = |needed: u64| -> Result<(), InferError> {
            if spent + needed > budget {
                Err(InferError::DeadlineExceeded { spent, needed, budget })
            } else {
                spent += needed;
                Ok(())
            }
        };
        charge(self.embed_cost(ids.len()))?;
        let positions: Vec<usize> = (0..ids.len()).collect();
        let mut x = self.tok_emb.lookup(ids);
        x.add_assign(&self.pos_emb.lookup(&positions));
        let mut h = self.emb_ln.forward_inference(&x);
        let block_cost = self.block_cost(ids.len());
        for block in &self.blocks {
            charge(block_cost)?;
            h = block.forward_inference(&h);
        }
        Ok((h, spent))
    }

    /// Packed-batch inference over several token sequences at once: clamps
    /// each sequence to `max_len`, concatenates them row-wise, and runs
    /// embeddings, layer norms, and all linear projections as single
    /// operations over the packed rows (attention iterates per sequence).
    /// Returns the packed hidden states plus row bounds: sequence `s`
    /// occupies rows `bounds[s]..bounds[s+1]`.
    ///
    /// Every per-row computation in the stack (GEMM output rows, layer
    /// norm, GELU, embedding gathers) is independent of neighbouring rows
    /// and of the total row count, so each sequence's block of the output
    /// is bitwise identical to [`Encoder::forward_inference`] on that
    /// sequence alone. Scratch matrices come from `arena`, which after the
    /// first batch serves every request from warm buffers.
    ///
    /// Panics if any sequence is empty (mirroring the single-sequence
    /// assert); budgeted callers must filter affordable, non-empty
    /// sequences first (see [`Encoder::plan_inference_cost`]).
    pub fn forward_inference_batch(
        &self,
        seqs: &[&[usize]],
        arena: &mut ScratchArena,
    ) -> (Matrix, Vec<usize>) {
        let clamped: Vec<&[usize]> = seqs.iter().map(|ids| self.clamp_ids(ids)).collect();
        let mut bounds = Vec::with_capacity(clamped.len() + 1);
        bounds.push(0usize);
        for ids in &clamped {
            assert!(!ids.is_empty(), "empty sequence");
            bounds.push(bounds.last().unwrap() + ids.len());
        }
        let rows = *bounds.last().unwrap();
        let d = self.config.d_model;
        let mut x = arena.take(rows, d);
        let mut pos_ids = Vec::with_capacity(rows);
        for (s, ids) in clamped.iter().enumerate() {
            self.tok_emb.lookup_span(ids, &mut x, bounds[s]);
            pos_ids.extend(0..ids.len());
        }
        let mut pos = arena.take(rows, d);
        self.pos_emb.lookup_span(&pos_ids, &mut pos, 0);
        x.add_assign(&pos);
        arena.put(pos);
        let mut h = arena.take(rows, d);
        self.emb_ln.forward_inference_into(&x, &mut h);
        arena.put(x);
        for block in &self.blocks {
            h = block.forward_inference_batch(h, &bounds, arena);
        }
        (h, bounds)
    }

    /// Replay the exact charge schedule [`Encoder::forward_inference_within`]
    /// walks for a `t`-token (pre-clamp) sequence against `budget`, without
    /// doing any compute: the embedding charge, then one block charge per
    /// layer. Returns the encoder cost it would spend, or the identical
    /// [`InferError::DeadlineExceeded`] (same `spent`/`needed`/`budget`
    /// fields) the budgeted forward would produce. The batch scheduler uses
    /// this to give unaffordable requests their deterministic refusal
    /// without holding up the rest of the batch.
    pub fn plan_inference_cost(&self, t: usize, budget: u64) -> Result<u64, InferError> {
        let t = t.min(self.config.max_len);
        if t == 0 {
            return Err(InferError::EmptyInput);
        }
        let mut spent = 0u64;
        let mut charge = |needed: u64| -> Result<(), InferError> {
            if spent + needed > budget {
                Err(InferError::DeadlineExceeded { spent, needed, budget })
            } else {
                spent += needed;
                Ok(())
            }
        };
        charge(self.embed_cost(t))?;
        let block_cost = self.block_cost(t);
        for _ in &self.blocks {
            charge(block_cost)?;
        }
        Ok(spent)
    }

    /// Backward from dL/dhidden; accumulates gradients in all submodules.
    pub fn backward(&mut self, dhidden: &Matrix) {
        let mut d = dhidden.clone();
        for block in self.blocks.iter_mut().rev() {
            d = block.backward(&d);
        }
        let dx = self.emb_ln.backward(&d);
        self.tok_emb.backward(&dx);
        self.pos_emb.backward(&dx);
    }

    /// Attention maps of the last training forward, per layer then head.
    pub fn last_attention(&self) -> Vec<&[Matrix]> {
        self.blocks.iter().filter_map(|b| b.last_attention()).collect()
    }

    /// The `[CLS]` (first-position) embedding of a sequence, inference mode.
    pub fn cls_embedding(&self, ids: &[usize]) -> Vec<f32> {
        self.forward_inference(ids).row(0).to_vec()
    }

    /// Mean-pooled hidden state, inference mode.
    pub fn mean_embedding(&self, ids: &[usize]) -> Vec<f32> {
        let h = self.forward_inference(ids);
        let mut out = vec![0.0f32; h.cols()];
        for r in 0..h.rows() {
            for (o, v) in out.iter_mut().zip(h.row(r)) {
                *o += v;
            }
        }
        for o in &mut out {
            *o /= h.rows() as f32;
        }
        out
    }
}

impl Module for Encoder {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        self.tok_emb.visit_params(f);
        self.pos_emb.visit_params(f);
        self.emb_ln.visit_params(f);
        for block in &mut self.blocks {
            block.visit_params(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small() -> (Encoder, StdRng) {
        let mut rng = StdRng::seed_from_u64(7);
        let enc = Encoder::new(
            &mut rng,
            EncoderConfig {
                vocab: 20,
                d_model: 16,
                n_heads: 2,
                n_layers: 2,
                d_ff: 32,
                max_len: 16,
            },
        );
        (enc, rng)
    }

    #[test]
    fn forward_shapes_and_finiteness() {
        let (mut enc, _) = small();
        let h = enc.forward(&[2, 5, 6, 7, 3]);
        assert_eq!((h.rows(), h.cols()), (5, 16));
        assert!(h.is_finite());
    }

    #[test]
    fn train_and_inference_agree() {
        let (mut enc, _) = small();
        let ids = [2usize, 9, 10, 3];
        let a = enc.forward(&ids);
        let b = enc.forward_inference(&ids);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn sequences_longer_than_max_len_are_clamped() {
        let (mut enc, _) = small();
        let ids: Vec<usize> = (0..40).map(|i| i % 20).collect();
        let h = enc.forward(&ids);
        assert_eq!(h.rows(), 16);
    }

    #[test]
    fn contextual_embeddings_differ_by_context() {
        // The same token in different contexts gets different vectors —
        // the BERT-vs-Word2Vec distinction the paper's §2 highlights.
        let (mut enc, _) = small();
        let h1 = enc.forward(&[2, 7, 8, 3]);
        let h2 = enc.forward(&[2, 7, 15, 3]);
        // Token 7 at position 1 in both, different right context.
        let v1 = h1.row(1);
        let v2 = h2.row(1);
        let diff: f32 = v1.iter().zip(v2).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-3, "contextual embeddings should differ: {diff}");
    }

    #[test]
    fn end_to_end_gradient_check() {
        let (mut enc, _) = small();
        let ids = [2usize, 6, 11, 3];
        // L = ½‖h‖².
        let h = enc.forward(&ids);
        enc.zero_grad();
        // Re-run forward so caches match the graded pass.
        let h = {
            let h2 = enc.forward(&ids);
            assert_eq!(h.data(), h2.data());
            h2
        };
        enc.backward(&h);
        // Numeric check on one token-embedding entry.
        let eps = 1e-2;
        let token = ids[1];
        let dim0 = 0usize;
        let idx = token * 16 + dim0;
        let mut analytic = 0.0;
        let mut slot = 0;
        enc.visit_params(&mut |_, g| {
            if slot == 0 {
                analytic = g[idx];
            }
            slot += 1;
        });
        let loss = |enc: &Encoder| -> f32 {
            let h = enc.forward_inference(&ids);
            0.5 * h.data().iter().map(|v| v * v).sum::<f32>()
        };
        let mut orig = 0.0;
        let mut slot = 0;
        enc.visit_params(&mut |p, _| {
            if slot == 0 {
                orig = p[idx];
                p[idx] = orig + eps;
            }
            slot += 1;
        });
        let lp = loss(&enc);
        let mut slot = 0;
        enc.visit_params(&mut |p, _| {
            if slot == 0 {
                p[idx] = orig - eps;
            }
            slot += 1;
        });
        let lm = loss(&enc);
        let mut slot = 0;
        enc.visit_params(&mut |p, _| {
            if slot == 0 {
                p[idx] = orig;
            }
            slot += 1;
        });
        let numeric = (lp - lm) / (2.0 * eps);
        let rel = (numeric - analytic).abs() / numeric.abs().max(1e-2);
        assert!(rel < 0.1, "numeric {numeric} analytic {analytic}");
    }

    #[test]
    fn budgeted_inference_matches_unbudgeted_when_affordable() {
        let (enc, _) = small();
        let ids = [2usize, 5, 6, 7, 3];
        let cost = enc.inference_cost(ids.len());
        assert!(cost > 0);
        let (h, spent) = enc.forward_inference_within(&ids, cost).expect("exact budget suffices");
        assert_eq!(spent, cost);
        let full = enc.forward_inference(&ids);
        assert_eq!(h.data(), full.data(), "budgeted path computes the same hidden states");
    }

    #[test]
    fn budgeted_inference_rejects_tight_budgets_deterministically() {
        let (enc, _) = small();
        let ids = [2usize, 5, 6, 7, 3];
        let cost = enc.inference_cost(ids.len());
        let err = enc.forward_inference_within(&ids, cost - 1).expect_err("one unit short");
        match err {
            InferError::DeadlineExceeded { spent, needed, budget } => {
                assert_eq!(budget, cost - 1);
                assert!(spent + needed > budget);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        // Zero budget fails before any block runs; the error displays.
        let err = enc.forward_inference_within(&ids, 0).expect_err("zero budget");
        assert!(err.to_string().contains("deadline exceeded"));
        // Same inputs, same verdict: the proxy is reproducible.
        assert_eq!(
            enc.forward_inference_within(&ids, cost - 1).unwrap_err(),
            enc.forward_inference_within(&ids, cost - 1).unwrap_err(),
        );
    }

    #[test]
    fn budgeted_inference_handles_empty_and_overlong_input() {
        let (enc, _) = small();
        assert_eq!(enc.forward_inference_within(&[], u64::MAX), Err(InferError::EmptyInput));
        // Sequences past max_len are clamped, and the cost model agrees.
        let ids: Vec<usize> = (0..40).map(|i| i % 20).collect();
        let cost = enc.inference_cost(ids.len());
        assert_eq!(cost, enc.inference_cost(enc.config.max_len));
        let (h, spent) = enc.forward_inference_within(&ids, cost).expect("clamped fits");
        assert_eq!(h.rows(), enc.config.max_len);
        assert_eq!(spent, cost);
    }

    #[test]
    fn packed_batch_forward_matches_single_sequences_bitwise() {
        let (enc, _) = small();
        let seqs: Vec<Vec<usize>> = vec![
            vec![2, 5, 6, 7, 3],
            vec![2, 3],
            vec![2, 9, 10, 11, 12, 13, 14, 3],
            (0..40).map(|i| i % 20).collect(), // clamped to max_len
        ];
        let refs: Vec<&[usize]> = seqs.iter().map(|s| s.as_slice()).collect();
        let mut arena = ScratchArena::new();
        // Two passes: the second runs entirely on recycled dirty buffers.
        for pass in 0..2 {
            let (h, bounds) = enc.forward_inference_batch(&refs, &mut arena);
            assert_eq!(bounds.len(), seqs.len() + 1);
            for (s, ids) in seqs.iter().enumerate() {
                let single = enc.forward_inference(ids);
                assert_eq!(bounds[s + 1] - bounds[s], single.rows(), "seq {s} rows");
                for r in 0..single.rows() {
                    let got: Vec<u32> = h.row(bounds[s] + r).iter().map(|v| v.to_bits()).collect();
                    let want: Vec<u32> = single.row(r).iter().map(|v| v.to_bits()).collect();
                    assert_eq!(got, want, "pass {pass} seq {s} row {r}");
                }
            }
            arena.put(h);
        }
        assert!(arena.available() > 0, "buffers were retired for reuse");
    }

    #[test]
    fn plan_inference_cost_mirrors_budgeted_forward_exactly() {
        let (enc, _) = small();
        let ids = [2usize, 5, 6, 7, 3];
        let cost = enc.inference_cost(ids.len());
        // Affordable: spent agrees with the real budgeted forward.
        assert_eq!(enc.plan_inference_cost(ids.len(), cost), Ok(cost));
        // Every refusal budget yields the identical typed error.
        for budget in [0u64, 1, cost / 2, cost - 1] {
            assert_eq!(
                enc.plan_inference_cost(ids.len(), budget),
                enc.forward_inference_within(&ids, budget).map(|(_, spent)| spent),
                "budget {budget}"
            );
        }
        assert_eq!(enc.plan_inference_cost(0, u64::MAX), Err(InferError::EmptyInput));
        // Over-long sequences clamp the same way the forward does.
        assert_eq!(
            enc.plan_inference_cost(40, u64::MAX),
            Ok(enc.inference_cost(enc.config.max_len))
        );
    }

    #[test]
    fn set_token_embeddings_replaces_table() {
        let (mut enc, mut rng) = small();
        let table = nfm_tensor::init::normal(&mut rng, 20, 16, 0.1);
        enc.set_token_embeddings(table.clone());
        assert_eq!(enc.token_embeddings().data(), table.data());
    }

    #[test]
    fn cls_and_mean_embeddings() {
        let (enc, _) = small();
        let cls = enc.cls_embedding(&[2, 5, 3]);
        let mean = enc.mean_embedding(&[2, 5, 3]);
        assert_eq!(cls.len(), 16);
        assert_eq!(mean.len(), 16);
        assert_ne!(cls, mean);
    }
}
