//! GRU sequence classifier — the baseline NorBERT compared against (§3.4):
//! "gated recurrent units (GRU) models, with both initialization to random
//! values, and context-independent embeddings (GloVe)".
//!
//! Processes one sequence at a time with full BPTT; gradients are
//! hand-derived and finite-difference checked.

use nfm_tensor::layers::{sigmoid, Embedding, Linear, Module};
use nfm_tensor::matrix::Matrix;
use rand::Rng;

/// One GRU layer's parameters (input `d_in`, hidden `h`).
#[derive(Debug, Clone)]
pub struct GruCell {
    wz: Matrix,
    uz: Matrix,
    bz: Vec<f32>,
    wr: Matrix,
    ur: Matrix,
    br: Vec<f32>,
    wn: Matrix,
    un: Matrix,
    bn: Vec<f32>,
    // Gradients.
    gwz: Matrix,
    guz: Matrix,
    gbz: Vec<f32>,
    gwr: Matrix,
    gur: Matrix,
    gbr: Vec<f32>,
    gwn: Matrix,
    gun: Matrix,
    gbn: Vec<f32>,
    d_in: usize,
    d_hidden: usize,
    cache: Vec<StepCache>,
}

#[derive(Debug, Clone)]
struct StepCache {
    x: Vec<f32>,
    h_prev: Vec<f32>,
    z: Vec<f32>,
    r: Vec<f32>,
    n: Vec<f32>,
}

fn matvec(w: &Matrix, x: &[f32], out: &mut [f32]) {
    // w is d_in × d_out; x is d_in; out += xᵀ·w. No zero-skip branch:
    // embedded inputs are dense, and the branchless loop autovectorizes.
    for (i, &xi) in x.iter().enumerate() {
        for (o, &wv) in out.iter_mut().zip(w.row(i)) {
            *o += xi * wv;
        }
    }
}

/// Accumulate outer product `x ⊗ d` into grad (d_in × d_out).
fn outer_acc(grad: &mut Matrix, x: &[f32], d: &[f32]) {
    for (i, &xi) in x.iter().enumerate() {
        for (g, &dv) in grad.row_mut(i).iter_mut().zip(d) {
            *g += xi * dv;
        }
    }
}

/// Accumulate `d · wᵀ` into out (length d_in).
fn matvec_t(w: &Matrix, d: &[f32], out: &mut [f32]) {
    for (i, o) in out.iter_mut().enumerate() {
        let row = w.row(i);
        let mut acc = 0.0;
        for (a, b) in row.iter().zip(d) {
            acc += a * b;
        }
        *o += acc;
    }
}

impl GruCell {
    /// Create with Xavier weights.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, d_in: usize, d_hidden: usize) -> GruCell {
        let init = |rng: &mut R, r, c| nfm_tensor::init::xavier_uniform(rng, r, c);
        GruCell {
            wz: init(rng, d_in, d_hidden),
            uz: init(rng, d_hidden, d_hidden),
            bz: vec![0.0; d_hidden],
            wr: init(rng, d_in, d_hidden),
            ur: init(rng, d_hidden, d_hidden),
            br: vec![0.0; d_hidden],
            wn: init(rng, d_in, d_hidden),
            un: init(rng, d_hidden, d_hidden),
            bn: vec![0.0; d_hidden],
            gwz: Matrix::zeros(d_in, d_hidden),
            guz: Matrix::zeros(d_hidden, d_hidden),
            gbz: vec![0.0; d_hidden],
            gwr: Matrix::zeros(d_in, d_hidden),
            gur: Matrix::zeros(d_hidden, d_hidden),
            gbr: vec![0.0; d_hidden],
            gwn: Matrix::zeros(d_in, d_hidden),
            gun: Matrix::zeros(d_hidden, d_hidden),
            gbn: vec![0.0; d_hidden],
            d_in,
            d_hidden,
            cache: Vec::new(),
        }
    }

    /// Clear the BPTT cache (start of a new sequence).
    pub fn reset(&mut self) {
        self.cache.clear();
    }

    /// One step: h_t from (x_t, h_{t-1}); caches for backward when `train`.
    pub fn step(&mut self, x: &[f32], h_prev: &[f32], train: bool) -> Vec<f32> {
        assert_eq!(x.len(), self.d_in);
        assert_eq!(h_prev.len(), self.d_hidden);
        let h = self.d_hidden;
        let mut z = self.bz.clone();
        matvec(&self.wz, x, &mut z);
        matvec(&self.uz, h_prev, &mut z);
        z.iter_mut().for_each(|v| *v = sigmoid(*v));
        let mut r = self.br.clone();
        matvec(&self.wr, x, &mut r);
        matvec(&self.ur, h_prev, &mut r);
        r.iter_mut().for_each(|v| *v = sigmoid(*v));
        let rh: Vec<f32> = r.iter().zip(h_prev).map(|(a, b)| a * b).collect();
        let mut n = self.bn.clone();
        matvec(&self.wn, x, &mut n);
        matvec(&self.un, &rh, &mut n);
        n.iter_mut().for_each(|v| *v = nfm_tensor::fastmath::tanhf(*v));
        let mut h_new = vec![0.0; h];
        for i in 0..h {
            h_new[i] = (1.0 - z[i]) * n[i] + z[i] * h_prev[i];
        }
        if train {
            self.cache.push(StepCache { x: x.to_vec(), h_prev: h_prev.to_vec(), z, r, n });
        }
        h_new
    }

    /// Backward one step (pop the cache): given dL/dh_t, returns
    /// (dL/dx_t, dL/dh_{t-1}) and accumulates parameter gradients.
    pub fn step_backward(&mut self, dh: &[f32]) -> (Vec<f32>, Vec<f32>) {
        let c = self.cache.pop().expect("backward without matching forward step");
        let h = self.d_hidden;
        let mut dx = vec![0.0; self.d_in];
        let mut dh_prev = vec![0.0; h];

        // h = (1-z)*n + z*h_prev
        let mut dz = vec![0.0; h];
        let mut dn = vec![0.0; h];
        for i in 0..h {
            dz[i] = dh[i] * (c.h_prev[i] - c.n[i]);
            dn[i] = dh[i] * (1.0 - c.z[i]);
            dh_prev[i] += dh[i] * c.z[i];
        }
        // n = tanh(pre_n)
        let dn_pre: Vec<f32> = dn.iter().zip(&c.n).map(|(d, n)| d * (1.0 - n * n)).collect();
        // pre_n = x·Wn + (r⊙h_prev)·Un + bn
        let rh: Vec<f32> = c.r.iter().zip(&c.h_prev).map(|(a, b)| a * b).collect();
        outer_acc(&mut self.gwn, &c.x, &dn_pre);
        outer_acc(&mut self.gun, &rh, &dn_pre);
        for (g, d) in self.gbn.iter_mut().zip(&dn_pre) {
            *g += d;
        }
        matvec_t(&self.wn, &dn_pre, &mut dx);
        let mut drh = vec![0.0; h];
        matvec_t(&self.un, &dn_pre, &mut drh);
        let mut dr = vec![0.0; h];
        for i in 0..h {
            dr[i] = drh[i] * c.h_prev[i];
            dh_prev[i] += drh[i] * c.r[i];
        }
        // z, r gates: sigmoid backward.
        let dz_pre: Vec<f32> = dz.iter().zip(&c.z).map(|(d, z)| d * z * (1.0 - z)).collect();
        let dr_pre: Vec<f32> = dr.iter().zip(&c.r).map(|(d, r)| d * r * (1.0 - r)).collect();
        outer_acc(&mut self.gwz, &c.x, &dz_pre);
        outer_acc(&mut self.guz, &c.h_prev, &dz_pre);
        for (g, d) in self.gbz.iter_mut().zip(&dz_pre) {
            *g += d;
        }
        outer_acc(&mut self.gwr, &c.x, &dr_pre);
        outer_acc(&mut self.gur, &c.h_prev, &dr_pre);
        for (g, d) in self.gbr.iter_mut().zip(&dr_pre) {
            *g += d;
        }
        matvec_t(&self.wz, &dz_pre, &mut dx);
        matvec_t(&self.wr, &dr_pre, &mut dx);
        matvec_t(&self.uz, &dz_pre, &mut dh_prev);
        matvec_t(&self.ur, &dr_pre, &mut dh_prev);
        (dx, dh_prev)
    }
}

impl Module for GruCell {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(self.wz.data_mut(), self.gwz.data_mut());
        f(self.uz.data_mut(), self.guz.data_mut());
        f(&mut self.bz, &mut self.gbz);
        f(self.wr.data_mut(), self.gwr.data_mut());
        f(self.ur.data_mut(), self.gur.data_mut());
        f(&mut self.br, &mut self.gbr);
        f(self.wn.data_mut(), self.gwn.data_mut());
        f(self.un.data_mut(), self.gun.data_mut());
        f(&mut self.bn, &mut self.gbn);
    }
}

/// Embedding → GRU → linear classifier over the final hidden state.
#[derive(Debug, Clone)]
pub struct GruClassifier {
    /// Token embeddings.
    pub embedding: Embedding,
    cell: GruCell,
    head: Linear,
    /// Hidden size.
    pub d_hidden: usize,
    /// Freeze the embedding table (GloVe-initialized baseline keeps its
    /// pre-trained vectors fixed, matching the NorBERT setup).
    pub freeze_embeddings: bool,
    cache_ids: Vec<usize>,
}

impl GruClassifier {
    /// Create with random embeddings.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        vocab: usize,
        d_embed: usize,
        d_hidden: usize,
        n_classes: usize,
    ) -> GruClassifier {
        GruClassifier {
            embedding: Embedding::new(rng, vocab, d_embed),
            cell: GruCell::new(rng, d_embed, d_hidden),
            head: Linear::new(rng, d_hidden, n_classes),
            d_hidden,
            freeze_embeddings: false,
            cache_ids: Vec::new(),
        }
    }

    /// Replace embeddings with a pre-trained table and freeze them.
    pub fn with_pretrained_embeddings(mut self, table: Matrix) -> GruClassifier {
        assert_eq!(table.rows(), self.embedding.vocab());
        assert_eq!(table.cols(), self.embedding.dim());
        self.embedding.table.data_mut().copy_from_slice(table.data());
        self.freeze_embeddings = true;
        self
    }

    /// Forward one sequence to class logits (1×n_classes). Training mode.
    pub fn forward(&mut self, ids: &[usize]) -> Matrix {
        assert!(!ids.is_empty());
        self.cell.reset();
        self.cache_ids = ids.to_vec();
        let x = self.embedding.forward(ids);
        let mut h = vec![0.0f32; self.d_hidden];
        for t in 0..ids.len() {
            h = self.cell.step(x.row(t), &h, true);
        }
        self.head.forward(&Matrix::from_vec(1, self.d_hidden, h))
    }

    /// Forward without caching.
    pub fn forward_inference(&self, ids: &[usize]) -> Matrix {
        assert!(!ids.is_empty());
        let x = self.embedding.lookup(ids);
        let mut h = vec![0.0f32; self.d_hidden];
        let mut cell = self.cell.clone();
        cell.reset();
        for t in 0..ids.len() {
            h = cell.step(x.row(t), &h, false);
        }
        self.head.forward_inference(&Matrix::from_vec(1, self.d_hidden, h))
    }

    /// Backward from dL/dlogits (1×n_classes).
    pub fn backward(&mut self, dlogits: &Matrix) {
        let dh_last = self.head.backward(dlogits);
        let t_len = self.cache_ids.len();
        let mut dh = dh_last.row(0).to_vec();
        let mut dxs = vec![vec![0.0f32; self.embedding.dim()]; t_len];
        for t in (0..t_len).rev() {
            let (dx, dh_prev) = self.cell.step_backward(&dh);
            dxs[t] = dx;
            dh = dh_prev;
        }
        if !self.freeze_embeddings {
            let mut dx_mat = Matrix::zeros(t_len, self.embedding.dim());
            for (t, dx) in dxs.iter().enumerate() {
                dx_mat.row_mut(t).copy_from_slice(dx);
            }
            self.embedding.backward(&dx_mat);
        }
    }
}

impl Module for GruClassifier {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        if !self.freeze_embeddings {
            self.embedding.visit_params(f);
        }
        self.cell.visit_params(f);
        self.head.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfm_tensor::loss::softmax_cross_entropy;
    use nfm_tensor::optim::{Adam, Schedule};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gru_step_gradient_check() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut cell = GruCell::new(&mut rng, 3, 4);
        let x = vec![0.5, -0.3, 0.8];
        let h_prev = vec![0.1, -0.2, 0.3, 0.0];
        let h = cell.step(&x, &h_prev, true);
        // L = ½‖h‖² ⇒ dL/dh = h.
        let (dx, dh_prev) = cell.step_backward(&h);

        let eps = 1e-3;
        let loss = |cell: &mut GruCell, x: &[f32], hp: &[f32]| -> f32 {
            let h = cell.step(x, hp, false);
            0.5 * h.iter().map(|v| v * v).sum::<f32>()
        };
        // Check dx[0].
        let mut xp = x.clone();
        xp[0] += eps;
        let mut xm = x.clone();
        xm[0] -= eps;
        let numeric = (loss(&mut cell, &xp, &h_prev) - loss(&mut cell, &xm, &h_prev)) / (2.0 * eps);
        assert!((numeric - dx[0]).abs() < 1e-3, "dx numeric {numeric} analytic {}", dx[0]);
        // Check dh_prev[1].
        let mut hp = h_prev.clone();
        hp[1] += eps;
        let mut hm = h_prev.clone();
        hm[1] -= eps;
        let numeric = (loss(&mut cell, &x, &hp) - loss(&mut cell, &x, &hm)) / (2.0 * eps);
        assert!(
            (numeric - dh_prev[1]).abs() < 1e-3,
            "dh numeric {numeric} analytic {}",
            dh_prev[1]
        );
    }

    #[test]
    fn classifier_learns_first_token_rule() {
        // Class = first token (0..3 → class id). Learnable only through
        // the recurrent state surviving to the end.
        let mut rng = StdRng::seed_from_u64(9);
        let mut model = GruClassifier::new(&mut rng, 12, 8, 16, 3);
        let mut opt = Adam::new(Schedule::Constant(5e-3));
        let make = |i: usize| -> (Vec<usize>, usize) {
            let class = i % 3;
            let mut ids = vec![5 + class];
            for j in 0..6 {
                ids.push(8 + (i + j) % 4);
            }
            (ids, class)
        };
        for epoch in 0..60 {
            let mut correct = 0;
            for i in 0..30 {
                let (ids, class) = make(i);
                model.zero_grad();
                let logits = model.forward(&ids);
                let (_, dlogits) = softmax_cross_entropy(&logits, &[class]);
                model.backward(&dlogits);
                opt.step(&mut model);
                if logits.argmax_rows()[0] == class {
                    correct += 1;
                }
            }
            if epoch > 40 {
                assert!(correct >= 25, "epoch {epoch}: {correct}/30");
            }
        }
    }

    #[test]
    fn frozen_embeddings_stay_fixed() {
        let mut rng = StdRng::seed_from_u64(10);
        let table = nfm_tensor::init::normal(&mut rng, 10, 4, 0.1);
        let mut model =
            GruClassifier::new(&mut rng, 10, 4, 6, 2).with_pretrained_embeddings(table.clone());
        let mut opt = Adam::new(Schedule::Constant(1e-2));
        for _ in 0..5 {
            model.zero_grad();
            let logits = model.forward(&[1, 2, 3]);
            let (_, d) = softmax_cross_entropy(&logits, &[0]);
            model.backward(&d);
            opt.step(&mut model);
        }
        assert_eq!(model.embedding.table.data(), table.data());
    }

    #[test]
    fn inference_matches_training_forward() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut model = GruClassifier::new(&mut rng, 10, 4, 6, 2);
        let a = model.forward(&[1, 2, 3, 4]);
        let b = model.forward_inference(&[1, 2, 3, 4]);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }
}
