//! Task heads attached to the encoder: the MLM head for pre-training, a
//! `[CLS]` classification head for fine-tuning, and a regression head for
//! performance prediction.

use nfm_tensor::layers::{Gelu, LayerNorm, Linear, Module};
use nfm_tensor::matrix::Matrix;
use rand::Rng;

/// BERT-style MLM head: dense → GELU → LayerNorm → vocabulary projection.
#[derive(Debug, Clone)]
pub struct MlmHead {
    dense: Linear,
    act: Gelu,
    ln: LayerNorm,
    proj: Linear,
}

impl MlmHead {
    /// Create for hidden size `d_model` and `vocab` output classes.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, d_model: usize, vocab: usize) -> MlmHead {
        MlmHead {
            dense: Linear::new(rng, d_model, d_model),
            act: Gelu::new(),
            ln: LayerNorm::new(d_model),
            proj: Linear::new(rng, d_model, vocab),
        }
    }

    /// `(d_model, vocab)` this head was built for.
    pub fn dims(&self) -> (usize, usize) {
        (self.dense.w.rows(), self.proj.w.cols())
    }

    /// Hidden states (T×d) → vocabulary logits (T×V). Training mode.
    pub fn forward(&mut self, hidden: &Matrix) -> Matrix {
        let h = self.ln.forward(&self.act.forward(&self.dense.forward(hidden)));
        self.proj.forward(&h)
    }

    /// Inference mode.
    pub fn forward_inference(&self, hidden: &Matrix) -> Matrix {
        let h = self
            .ln
            .forward_inference(&self.act.forward_inference(&self.dense.forward_inference(hidden)));
        self.proj.forward_inference(&h)
    }

    /// Backward from dL/dlogits; returns dL/dhidden.
    pub fn backward(&mut self, dlogits: &Matrix) -> Matrix {
        let dh = self.proj.backward(dlogits);
        self.dense.backward(&self.act.backward(&self.ln.backward(&dh)))
    }
}

impl Module for MlmHead {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        self.dense.visit_params(f);
        self.ln.visit_params(f);
        self.proj.visit_params(f);
    }
}

/// Classification head over the `[CLS]` position: dense → GELU → logits.
#[derive(Debug, Clone)]
pub struct ClsHead {
    dense: Linear,
    act: Gelu,
    out: Linear,
}

impl ClsHead {
    /// Create for `n_classes` outputs.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, d_model: usize, n_classes: usize) -> ClsHead {
        ClsHead {
            dense: Linear::new(rng, d_model, d_model),
            act: Gelu::new(),
            out: Linear::new(rng, d_model, n_classes),
        }
    }

    /// `(d_model, n_classes)` this head was built for.
    pub fn dims(&self) -> (usize, usize) {
        (self.dense.w.rows(), self.out.w.cols())
    }

    /// `[CLS]` row (1×d) → logits (1×n_classes). Training mode.
    pub fn forward(&mut self, cls: &Matrix) -> Matrix {
        self.out.forward(&self.act.forward(&self.dense.forward(cls)))
    }

    /// Inference mode.
    pub fn forward_inference(&self, cls: &Matrix) -> Matrix {
        self.out.forward_inference(&self.act.forward_inference(&self.dense.forward_inference(cls)))
    }

    /// Backward from dL/dlogits; returns dL/dcls.
    pub fn backward(&mut self, dlogits: &Matrix) -> Matrix {
        self.dense.backward(&self.act.backward(&self.out.backward(dlogits)))
    }
}

impl Module for ClsHead {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        self.dense.visit_params(f);
        self.out.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfm_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mlm_head_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut head = MlmHead::new(&mut rng, 8, 30);
        let hidden = init::normal(&mut rng, 5, 8, 1.0);
        let logits = head.forward(&hidden);
        assert_eq!((logits.rows(), logits.cols()), (5, 30));
        let dh = head.backward(&logits);
        assert_eq!((dh.rows(), dh.cols()), (5, 8));
        assert!(dh.is_finite());
    }

    #[test]
    fn cls_head_shapes_and_agreement() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut head = ClsHead::new(&mut rng, 8, 4);
        let cls = init::normal(&mut rng, 1, 8, 1.0);
        let a = head.forward(&cls);
        let b = head.forward_inference(&cls);
        assert_eq!((a.rows(), a.cols()), (1, 4));
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn heads_expose_params() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut mlm = MlmHead::new(&mut rng, 8, 30);
        // dense (8·8+8) + ln (8+8) + proj (8·30+30)
        assert_eq!(mlm.n_params(), 8 * 8 + 8 + 16 + 8 * 30 + 30);
        let mut cls = ClsHead::new(&mut rng, 8, 4);
        assert_eq!(cls.n_params(), 8 * 8 + 8 + 8 * 4 + 4);
    }
}
