//! Neural sequence models: multi-head self-attention, the transformer
//! encoder (the foundation model), task heads, and the GRU baseline NorBERT
//! compared against.

pub mod attention;
pub mod gru;
pub mod heads;
pub mod transformer;
