//! Multi-head self-attention with an explicit, gradient-checked backward
//! pass. Sequences are processed unpadded one at a time (T×d matrices), so
//! no attention mask is needed.

use nfm_tensor::layers::{Linear, Module};
use nfm_tensor::matrix::{dot, dot8, Matrix};
use nfm_tensor::pool;
use nfm_tensor::scratch::ScratchArena;
use rand::Rng;

/// Multi-head self-attention: `Y = concat_h(softmax(Q_h K_hᵀ/√d_h) V_h) W_o`.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    /// Number of heads (must divide the model dimension).
    pub n_heads: usize,
    /// Model dimension.
    pub d_model: usize,
    cache: Option<Cache>,
}

#[derive(Debug, Clone)]
struct Cache {
    q: Matrix,
    k: Matrix,
    v: Matrix,
    /// Per-head post-softmax attention probabilities (T×T each).
    probs: Vec<Matrix>,
    /// Concatenated head outputs before W_o (T×d).
    concat: Matrix,
}

fn head_slice(m: &Matrix, head: usize, d_head: usize) -> Matrix {
    let mut out = Matrix::zeros(m.rows(), d_head);
    for r in 0..m.rows() {
        let src = &m.row(r)[head * d_head..(head + 1) * d_head];
        out.row_mut(r).copy_from_slice(src);
    }
    out
}

fn head_insert(dst: &mut Matrix, src: &Matrix, head: usize, d_head: usize) {
    for r in 0..src.rows() {
        let row = src.row(r).to_vec();
        dst.row_mut(r)[head * d_head..(head + 1) * d_head].copy_from_slice(&row);
    }
}

/// Approximate flop count of one attention pass over a T-row input: the
/// two T×T×d_head matmuls per head dominate, summed across heads. Used to
/// gate head-level parallelism — serving single short sequences through a
/// small model must not pay a thread spawn per layer per request.
fn attend_work(t: usize, d_model: usize) -> usize {
    4 * t * t * d_model
}

impl MultiHeadAttention {
    /// Create with `n_heads` dividing `d_model`.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, d_model: usize, n_heads: usize) -> MultiHeadAttention {
        assert!(d_model.is_multiple_of(n_heads), "heads must divide d_model");
        MultiHeadAttention {
            wq: Linear::new(rng, d_model, d_model),
            wk: Linear::new(rng, d_model, d_model),
            wv: Linear::new(rng, d_model, d_model),
            wo: Linear::new(rng, d_model, d_model),
            n_heads,
            d_model,
            cache: None,
        }
    }

    /// Forward pass over one sequence `x` (T×d), caching for backward.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let (y, cache) = self.compute(x, true);
        self.cache = cache;
        y
    }

    /// Forward without caching.
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        let d_head = self.d_model / self.n_heads;
        let q = self.wq.forward_inference(x);
        let k = self.wk.forward_inference(x);
        let v = self.wv.forward_inference(x);
        let work = attend_work(x.rows(), self.d_model);
        let heads = pool::par_map_work(self.n_heads, work, |h| attend(&q, &k, &v, h, d_head).0);
        let mut concat = Matrix::zeros(x.rows(), self.d_model);
        for (h, oh) in heads.iter().enumerate() {
            head_insert(&mut concat, oh, h, d_head);
        }
        self.wo.forward_inference(&concat)
    }

    /// Packed-batch inference: `x` holds several sequences concatenated
    /// row-wise, with sequence `s` occupying rows `bounds[s]..bounds[s+1]`.
    /// The Q/K/V/O projections run as single large GEMMs over the packed
    /// rows (per-output-row reductions, so each row's bits are independent
    /// of its neighbours), while attention itself iterates per sequence per
    /// head — exactly the [`MultiHeadAttention::forward_inference`]
    /// arithmetic on that sequence's row block, but computed straight off
    /// the packed Q/K/V with strided head views: no head-slice copies, no
    /// per-head output matrices, head results accumulated directly into the
    /// concat buffer. Scores use the same [`dot`] kernel `matmul_nt` runs
    /// on materialised slices and the `probs·V` product accumulates over
    /// ascending `p` like `matmul`, so every bit matches the
    /// single-sequence path. Activations come from `arena` and are retired
    /// back into it.
    pub fn forward_inference_batch(
        &self,
        x: &Matrix,
        bounds: &[usize],
        arena: &mut ScratchArena,
    ) -> Matrix {
        let d_head = self.d_model / self.n_heads;
        let dm = self.d_model;
        let rows = x.rows();
        // Fuse the Q/K/V projections into one GEMM over the packed rows:
        // W_f = [W_q | W_k | W_v] column-wise, so row r of the output is
        // [q_r | k_r | v_r]. Each output element is the same ascending-`p`
        // reduction plus the same bias add the three separate projections
        // perform — identical bits, one pass over `x` instead of three.
        let mut wf = arena.take(dm, 3 * dm);
        for p in 0..dm {
            let row = wf.row_mut(p);
            row[..dm].copy_from_slice(self.wq.w.row(p));
            row[dm..2 * dm].copy_from_slice(self.wk.w.row(p));
            row[2 * dm..].copy_from_slice(self.wv.w.row(p));
        }
        let mut bf = arena.take(1, 3 * dm);
        {
            let b = bf.row_mut(0);
            b[..dm].copy_from_slice(&self.wq.b);
            b[dm..2 * dm].copy_from_slice(&self.wk.b);
            b[2 * dm..].copy_from_slice(&self.wv.b);
        }
        let mut qkv = arena.take(rows, 3 * dm);
        x.matmul_into(&wf, &mut qkv);
        qkv.add_row_broadcast(bf.row(0));
        arena.put(wf);
        arena.put(bf);
        let mut concat = arena.take(rows, self.d_model);
        let scale = 1.0 / (d_head as f32).sqrt();
        let n_seqs = bounds.len().saturating_sub(1);
        // One flat accumulator strip reused by every 4-row probs·V tile.
        let mut acc_strip = vec![0.0f32; 4 * d_head];
        for s in 0..n_seqs {
            let (r0, r1) = (bounds[s], bounds[s + 1]);
            let t = r1 - r0;
            let mut scores = arena.take(t, t);
            for h in 0..self.n_heads {
                let off = h * d_head;
                // scores[i][j] = q_h[i] · k_h[j]: the bits `matmul_nt`
                // produces on head-sliced copies, read in place. Four query
                // rows share each streamed key row; every score is still its
                // own [`dot`] call, so regrouping changes no element's bits.
                let mut i = 0;
                while i + 4 <= t {
                    let q0 = &qkv.row(r0 + i)[off..off + d_head];
                    let q1 = &qkv.row(r0 + i + 1)[off..off + d_head];
                    let q2 = &qkv.row(r0 + i + 2)[off..off + d_head];
                    let q3 = &qkv.row(r0 + i + 3)[off..off + d_head];
                    let block = &mut scores.data_mut()[i * t..(i + 4) * t];
                    let (s0, rest) = block.split_at_mut(t);
                    let (s1, rest) = rest.split_at_mut(t);
                    let (s2, s3) = rest.split_at_mut(t);
                    if d_head == 8 {
                        // dot8 == dot bit-for-bit at this width; the
                        // specialised body keeps the whole product in SIMD
                        // registers (the generic loop defeats the
                        // vectoriser at an 8-long trip count).
                        for j in 0..t {
                            let kj = &qkv.row(r0 + j)[dm + off..dm + off + d_head];
                            s0[j] = dot8(q0, kj);
                            s1[j] = dot8(q1, kj);
                            s2[j] = dot8(q2, kj);
                            s3[j] = dot8(q3, kj);
                        }
                    } else {
                        for j in 0..t {
                            let kj = &qkv.row(r0 + j)[dm + off..dm + off + d_head];
                            s0[j] = dot(q0, kj);
                            s1[j] = dot(q1, kj);
                            s2[j] = dot(q2, kj);
                            s3[j] = dot(q3, kj);
                        }
                    }
                    i += 4;
                }
                for i in i..t {
                    let qi = &qkv.row(r0 + i)[off..off + d_head];
                    if d_head == 8 {
                        for (j, sv) in scores.row_mut(i).iter_mut().enumerate() {
                            *sv = dot8(qi, &qkv.row(r0 + j)[dm + off..dm + off + d_head]);
                        }
                    } else {
                        for (j, sv) in scores.row_mut(i).iter_mut().enumerate() {
                            *sv = dot(qi, &qkv.row(r0 + j)[dm + off..dm + off + d_head]);
                        }
                    }
                }
                scores.scale(scale);
                scores.softmax_rows();
                // concat_h[i] = Σ_p scores[i][p] · v_h[p], `p` ascending
                // into the zeroed concat rows — the accumulation order
                // `matmul` guarantees, so the same bits it would write.
                // Four output rows share each streamed v row (register
                // blocking; regrouping rows never changes an element's own
                // accumulation sequence).
                let mut i = 0;
                while i + 4 <= t {
                    let (s0, s1) = (scores.row(i), scores.row(i + 1));
                    let (s2, s3) = (scores.row(i + 2), scores.row(i + 3));
                    acc_strip.fill(0.0);
                    let (acc0, rest) = acc_strip.split_at_mut(d_head);
                    let (acc1, rest) = rest.split_at_mut(d_head);
                    let (acc2, acc3) = rest.split_at_mut(d_head);
                    for p in 0..t {
                        let vrow = &qkv.row(r0 + p)[2 * dm + off..2 * dm + off + d_head];
                        let (w0, w1, w2, w3) = (s0[p], s1[p], s2[p], s3[p]);
                        for (l, &vv) in vrow.iter().enumerate() {
                            acc0[l] += w0 * vv;
                            acc1[l] += w1 * vv;
                            acc2[l] += w2 * vv;
                            acc3[l] += w3 * vv;
                        }
                    }
                    concat.row_mut(r0 + i)[off..off + d_head].copy_from_slice(acc0);
                    concat.row_mut(r0 + i + 1)[off..off + d_head].copy_from_slice(acc1);
                    concat.row_mut(r0 + i + 2)[off..off + d_head].copy_from_slice(acc2);
                    concat.row_mut(r0 + i + 3)[off..off + d_head].copy_from_slice(acc3);
                    i += 4;
                }
                for i in i..t {
                    let srow = scores.row(i);
                    let orow = &mut concat.row_mut(r0 + i)[off..off + d_head];
                    for (p, &sv) in srow.iter().enumerate() {
                        let vrow = &qkv.row(r0 + p)[2 * dm + off..2 * dm + off + d_head];
                        for (o, &vv) in orow.iter_mut().zip(vrow) {
                            *o += sv * vv;
                        }
                    }
                }
            }
            arena.put(scores);
        }
        arena.put(qkv);
        let mut y = arena.take(rows, self.d_model);
        self.wo.forward_inference_into(&concat, &mut y);
        arena.put(concat);
        y
    }

    /// Attention probabilities per head from the last cached forward.
    pub fn last_attention(&self) -> Option<&[Matrix]> {
        self.cache.as_ref().map(|c| c.probs.as_slice())
    }

    fn compute(&mut self, x: &Matrix, train: bool) -> (Matrix, Option<Cache>) {
        let d_head = self.d_model / self.n_heads;
        let (q, k, v) = if train {
            (self.wq.forward(x), self.wk.forward(x), self.wv.forward(x))
        } else {
            (
                self.wq.forward_inference(x),
                self.wk.forward_inference(x),
                self.wv.forward_inference(x),
            )
        };
        // Heads are independent; par_map returns them in head order, so the
        // concat/probs layout matches the sequential loop exactly.
        let work = attend_work(x.rows(), self.d_model);
        let heads = pool::par_map_work(self.n_heads, work, |h| attend(&q, &k, &v, h, d_head));
        let mut concat = Matrix::zeros(x.rows(), self.d_model);
        let mut probs = Vec::with_capacity(self.n_heads);
        for (h, (oh, p)) in heads.into_iter().enumerate() {
            head_insert(&mut concat, &oh, h, d_head);
            probs.push(p);
        }
        let y = if train { self.wo.forward(&concat) } else { self.wo.forward_inference(&concat) };
        let cache = train.then(|| Cache { q, k, v, probs, concat: concat.clone() });
        (y, cache)
    }

    /// Backward pass; returns dL/dx.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let cache = self.cache.take().expect("forward before backward");
        let d_head = self.d_model / self.n_heads;
        let scale = 1.0 / (d_head as f32).sqrt();

        let dconcat = self.wo.backward(dy);
        let t = cache.concat.rows();
        // Backward roughly doubles the forward's per-head matmul work.
        let work = 2 * attend_work(t, self.d_model);
        let head_grads = pool::par_map_work(self.n_heads, work, |h| {
            let doh = head_slice(&dconcat, h, d_head);
            let p = &cache.probs[h];
            let qh = head_slice(&cache.q, h, d_head);
            let kh = head_slice(&cache.k, h, d_head);
            let vh = head_slice(&cache.v, h, d_head);
            // dP = dOh · Vhᵀ ; dVh = Pᵀ · dOh
            let dp = doh.matmul_nt(&vh);
            let dvh = p.matmul_tn(&doh);
            // Softmax backward per row: dS = P ⊙ (dP − rowsum(dP⊙P)).
            let mut ds = Matrix::zeros(t, t);
            for r in 0..t {
                let prow = p.row(r);
                let dprow = dp.row(r);
                let dot: f32 = prow.iter().zip(dprow).map(|(a, b)| a * b).sum();
                for c in 0..t {
                    ds.set(r, c, prow[c] * (dprow[c] - dot));
                }
            }
            ds.scale(scale);
            // dQh = dS · Kh ; dKh = dSᵀ · Qh
            (ds.matmul(&kh), ds.matmul_tn(&qh), dvh)
        });
        let mut dq = Matrix::zeros(t, self.d_model);
        let mut dk = Matrix::zeros(t, self.d_model);
        let mut dv = Matrix::zeros(t, self.d_model);
        for (h, (dqh, dkh, dvh)) in head_grads.into_iter().enumerate() {
            head_insert(&mut dq, &dqh, h, d_head);
            head_insert(&mut dk, &dkh, h, d_head);
            head_insert(&mut dv, &dvh, h, d_head);
        }
        let mut dx = self.wq.backward(&dq);
        dx.add_assign(&self.wk.backward(&dk));
        dx.add_assign(&self.wv.backward(&dv));
        dx
    }
}

/// One head's attention: returns (output T×d_head, probs T×T).
fn attend(q: &Matrix, k: &Matrix, v: &Matrix, head: usize, d_head: usize) -> (Matrix, Matrix) {
    let qh = head_slice(q, head, d_head);
    let kh = head_slice(k, head, d_head);
    let vh = head_slice(v, head, d_head);
    let mut scores = qh.matmul_nt(&kh);
    scores.scale(1.0 / (d_head as f32).sqrt());
    scores.softmax_rows();
    let out = scores.matmul(&vh);
    (out, scores)
}

impl Module for MultiHeadAttention {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        self.wq.visit_params(f);
        self.wk.visit_params(f);
        self.wv.visit_params(f);
        self.wo.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfm_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_shape_and_prob_rows_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut attn = MultiHeadAttention::new(&mut rng, 16, 4);
        let x = init::normal(&mut rng, 6, 16, 1.0);
        let y = attn.forward(&x);
        assert_eq!((y.rows(), y.cols()), (6, 16));
        for p in attn.last_attention().unwrap() {
            for r in 0..p.rows() {
                let s: f32 = p.row(r).iter().sum();
                assert!((s - 1.0).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn train_and_inference_forward_agree() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut attn = MultiHeadAttention::new(&mut rng, 8, 2);
        let x = init::normal(&mut rng, 4, 8, 1.0);
        let y_train = attn.forward(&x);
        let y_inf = attn.forward_inference(&x);
        for (a, b) in y_train.data().iter().zip(y_inf.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut attn = MultiHeadAttention::new(&mut rng, 8, 2);
        let x = init::normal(&mut rng, 3, 8, 0.5);
        // L = ½‖y‖² so dL/dy = y.
        let y = attn.forward(&x);
        let dx = attn.backward(&y);

        let eps = 1e-2;
        let loss = |attn: &MultiHeadAttention, x: &Matrix| -> f32 {
            let y = attn.forward_inference(x);
            0.5 * y.data().iter().map(|v| v * v).sum::<f32>()
        };
        let mut max_rel = 0.0f32;
        for (r, c) in [(0, 0), (1, 3), (2, 7)] {
            let mut xp = x.clone();
            xp.set(r, c, x.get(r, c) + eps);
            let mut xm = x.clone();
            xm.set(r, c, x.get(r, c) - eps);
            let numeric = (loss(&attn, &xp) - loss(&attn, &xm)) / (2.0 * eps);
            let analytic = dx.get(r, c);
            let rel = (numeric - analytic).abs() / numeric.abs().max(1e-3);
            max_rel = max_rel.max(rel);
        }
        assert!(max_rel < 0.07, "max relative error {max_rel}");
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut attn = MultiHeadAttention::new(&mut rng, 8, 2);
        let x = init::normal(&mut rng, 3, 8, 0.5);
        attn.zero_grad();
        let y = attn.forward(&x);
        attn.backward(&y);
        // Grab dL/d(wq[0,0]).
        let mut analytic = 0.0;
        let mut slot = 0;
        attn.visit_params(&mut |_, g| {
            if slot == 0 {
                analytic = g[0];
            }
            slot += 1;
        });
        let eps = 1e-2;
        let loss = |attn: &MultiHeadAttention, x: &Matrix| -> f32 {
            let y = attn.forward_inference(x);
            0.5 * y.data().iter().map(|v| v * v).sum::<f32>()
        };
        let mut orig = 0.0;
        let mut slot = 0;
        attn.visit_params(&mut |p, _| {
            if slot == 0 {
                orig = p[0];
                p[0] = orig + eps;
            }
            slot += 1;
        });
        let lp = loss(&attn, &x);
        let mut slot = 0;
        attn.visit_params(&mut |p, _| {
            if slot == 0 {
                p[0] = orig - eps;
            }
            slot += 1;
        });
        let lm = loss(&attn, &x);
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (numeric - analytic).abs() / numeric.abs().max(1e-3) < 0.07,
            "numeric {numeric} analytic {analytic}"
        );
    }

    #[test]
    fn packed_batch_matches_single_sequences_bitwise() {
        let mut rng = StdRng::seed_from_u64(7);
        let attn = MultiHeadAttention::new(&mut rng, 16, 4);
        let seqs = [
            init::normal(&mut rng, 3, 16, 0.8),
            init::normal(&mut rng, 7, 16, 0.8),
            init::normal(&mut rng, 1, 16, 0.8),
        ];
        let packed = Matrix::vstack(&[&seqs[0], &seqs[1], &seqs[2]]);
        let bounds = [0usize, 3, 10, 11];
        let mut arena = ScratchArena::new();
        // Run twice: the second pass exercises warm (reused, dirty) buffers.
        for _ in 0..2 {
            let y = attn.forward_inference_batch(&packed, &bounds, &mut arena);
            for (s, x) in seqs.iter().enumerate() {
                let single = attn.forward_inference(x);
                for r in 0..x.rows() {
                    let got: Vec<u32> = y.row(bounds[s] + r).iter().map(|v| v.to_bits()).collect();
                    let want: Vec<u32> = single.row(r).iter().map(|v| v.to_bits()).collect();
                    assert_eq!(got, want, "seq {s} row {r}");
                }
            }
            arena.put(y);
        }
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut attn = MultiHeadAttention::new(&mut rng, 16, 4);
        // 4 linears of 16×16 + bias 16.
        assert_eq!(attn.n_params(), 4 * (16 * 16 + 16));
    }

    #[test]
    #[should_panic(expected = "heads must divide")]
    fn invalid_head_count_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = MultiHeadAttention::new(&mut rng, 10, 3);
    }
}
