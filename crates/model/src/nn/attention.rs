//! Multi-head self-attention with an explicit, gradient-checked backward
//! pass. Sequences are processed unpadded one at a time (T×d matrices), so
//! no attention mask is needed.

use nfm_tensor::layers::{Linear, Module};
use nfm_tensor::matrix::Matrix;
use nfm_tensor::pool;
use rand::Rng;

/// Multi-head self-attention: `Y = concat_h(softmax(Q_h K_hᵀ/√d_h) V_h) W_o`.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    /// Number of heads (must divide the model dimension).
    pub n_heads: usize,
    /// Model dimension.
    pub d_model: usize,
    cache: Option<Cache>,
}

#[derive(Debug, Clone)]
struct Cache {
    q: Matrix,
    k: Matrix,
    v: Matrix,
    /// Per-head post-softmax attention probabilities (T×T each).
    probs: Vec<Matrix>,
    /// Concatenated head outputs before W_o (T×d).
    concat: Matrix,
}

fn head_slice(m: &Matrix, head: usize, d_head: usize) -> Matrix {
    let mut out = Matrix::zeros(m.rows(), d_head);
    for r in 0..m.rows() {
        let src = &m.row(r)[head * d_head..(head + 1) * d_head];
        out.row_mut(r).copy_from_slice(src);
    }
    out
}

fn head_insert(dst: &mut Matrix, src: &Matrix, head: usize, d_head: usize) {
    for r in 0..src.rows() {
        let row = src.row(r).to_vec();
        dst.row_mut(r)[head * d_head..(head + 1) * d_head].copy_from_slice(&row);
    }
}

/// Approximate flop count of one attention pass over a T-row input: the
/// two T×T×d_head matmuls per head dominate, summed across heads. Used to
/// gate head-level parallelism — serving single short sequences through a
/// small model must not pay a thread spawn per layer per request.
fn attend_work(t: usize, d_model: usize) -> usize {
    4 * t * t * d_model
}

impl MultiHeadAttention {
    /// Create with `n_heads` dividing `d_model`.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, d_model: usize, n_heads: usize) -> MultiHeadAttention {
        assert!(d_model.is_multiple_of(n_heads), "heads must divide d_model");
        MultiHeadAttention {
            wq: Linear::new(rng, d_model, d_model),
            wk: Linear::new(rng, d_model, d_model),
            wv: Linear::new(rng, d_model, d_model),
            wo: Linear::new(rng, d_model, d_model),
            n_heads,
            d_model,
            cache: None,
        }
    }

    /// Forward pass over one sequence `x` (T×d), caching for backward.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let (y, cache) = self.compute(x, true);
        self.cache = cache;
        y
    }

    /// Forward without caching.
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        let d_head = self.d_model / self.n_heads;
        let q = self.wq.forward_inference(x);
        let k = self.wk.forward_inference(x);
        let v = self.wv.forward_inference(x);
        let work = attend_work(x.rows(), self.d_model);
        let heads = pool::par_map_work(self.n_heads, work, |h| attend(&q, &k, &v, h, d_head).0);
        let mut concat = Matrix::zeros(x.rows(), self.d_model);
        for (h, oh) in heads.iter().enumerate() {
            head_insert(&mut concat, oh, h, d_head);
        }
        self.wo.forward_inference(&concat)
    }

    /// Attention probabilities per head from the last cached forward.
    pub fn last_attention(&self) -> Option<&[Matrix]> {
        self.cache.as_ref().map(|c| c.probs.as_slice())
    }

    fn compute(&mut self, x: &Matrix, train: bool) -> (Matrix, Option<Cache>) {
        let d_head = self.d_model / self.n_heads;
        let (q, k, v) = if train {
            (self.wq.forward(x), self.wk.forward(x), self.wv.forward(x))
        } else {
            (
                self.wq.forward_inference(x),
                self.wk.forward_inference(x),
                self.wv.forward_inference(x),
            )
        };
        // Heads are independent; par_map returns them in head order, so the
        // concat/probs layout matches the sequential loop exactly.
        let work = attend_work(x.rows(), self.d_model);
        let heads = pool::par_map_work(self.n_heads, work, |h| attend(&q, &k, &v, h, d_head));
        let mut concat = Matrix::zeros(x.rows(), self.d_model);
        let mut probs = Vec::with_capacity(self.n_heads);
        for (h, (oh, p)) in heads.into_iter().enumerate() {
            head_insert(&mut concat, &oh, h, d_head);
            probs.push(p);
        }
        let y = if train { self.wo.forward(&concat) } else { self.wo.forward_inference(&concat) };
        let cache = train.then(|| Cache { q, k, v, probs, concat: concat.clone() });
        (y, cache)
    }

    /// Backward pass; returns dL/dx.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let cache = self.cache.take().expect("forward before backward");
        let d_head = self.d_model / self.n_heads;
        let scale = 1.0 / (d_head as f32).sqrt();

        let dconcat = self.wo.backward(dy);
        let t = cache.concat.rows();
        // Backward roughly doubles the forward's per-head matmul work.
        let work = 2 * attend_work(t, self.d_model);
        let head_grads = pool::par_map_work(self.n_heads, work, |h| {
            let doh = head_slice(&dconcat, h, d_head);
            let p = &cache.probs[h];
            let qh = head_slice(&cache.q, h, d_head);
            let kh = head_slice(&cache.k, h, d_head);
            let vh = head_slice(&cache.v, h, d_head);
            // dP = dOh · Vhᵀ ; dVh = Pᵀ · dOh
            let dp = doh.matmul_nt(&vh);
            let dvh = p.matmul_tn(&doh);
            // Softmax backward per row: dS = P ⊙ (dP − rowsum(dP⊙P)).
            let mut ds = Matrix::zeros(t, t);
            for r in 0..t {
                let prow = p.row(r);
                let dprow = dp.row(r);
                let dot: f32 = prow.iter().zip(dprow).map(|(a, b)| a * b).sum();
                for c in 0..t {
                    ds.set(r, c, prow[c] * (dprow[c] - dot));
                }
            }
            ds.scale(scale);
            // dQh = dS · Kh ; dKh = dSᵀ · Qh
            (ds.matmul(&kh), ds.matmul_tn(&qh), dvh)
        });
        let mut dq = Matrix::zeros(t, self.d_model);
        let mut dk = Matrix::zeros(t, self.d_model);
        let mut dv = Matrix::zeros(t, self.d_model);
        for (h, (dqh, dkh, dvh)) in head_grads.into_iter().enumerate() {
            head_insert(&mut dq, &dqh, h, d_head);
            head_insert(&mut dk, &dkh, h, d_head);
            head_insert(&mut dv, &dvh, h, d_head);
        }
        let mut dx = self.wq.backward(&dq);
        dx.add_assign(&self.wk.backward(&dk));
        dx.add_assign(&self.wv.backward(&dv));
        dx
    }
}

/// One head's attention: returns (output T×d_head, probs T×T).
fn attend(q: &Matrix, k: &Matrix, v: &Matrix, head: usize, d_head: usize) -> (Matrix, Matrix) {
    let qh = head_slice(q, head, d_head);
    let kh = head_slice(k, head, d_head);
    let vh = head_slice(v, head, d_head);
    let mut scores = qh.matmul_nt(&kh);
    scores.scale(1.0 / (d_head as f32).sqrt());
    scores.softmax_rows();
    let out = scores.matmul(&vh);
    (out, scores)
}

impl Module for MultiHeadAttention {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        self.wq.visit_params(f);
        self.wk.visit_params(f);
        self.wv.visit_params(f);
        self.wo.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfm_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_shape_and_prob_rows_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut attn = MultiHeadAttention::new(&mut rng, 16, 4);
        let x = init::normal(&mut rng, 6, 16, 1.0);
        let y = attn.forward(&x);
        assert_eq!((y.rows(), y.cols()), (6, 16));
        for p in attn.last_attention().unwrap() {
            for r in 0..p.rows() {
                let s: f32 = p.row(r).iter().sum();
                assert!((s - 1.0).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn train_and_inference_forward_agree() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut attn = MultiHeadAttention::new(&mut rng, 8, 2);
        let x = init::normal(&mut rng, 4, 8, 1.0);
        let y_train = attn.forward(&x);
        let y_inf = attn.forward_inference(&x);
        for (a, b) in y_train.data().iter().zip(y_inf.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut attn = MultiHeadAttention::new(&mut rng, 8, 2);
        let x = init::normal(&mut rng, 3, 8, 0.5);
        // L = ½‖y‖² so dL/dy = y.
        let y = attn.forward(&x);
        let dx = attn.backward(&y);

        let eps = 1e-2;
        let loss = |attn: &MultiHeadAttention, x: &Matrix| -> f32 {
            let y = attn.forward_inference(x);
            0.5 * y.data().iter().map(|v| v * v).sum::<f32>()
        };
        let mut max_rel = 0.0f32;
        for (r, c) in [(0, 0), (1, 3), (2, 7)] {
            let mut xp = x.clone();
            xp.set(r, c, x.get(r, c) + eps);
            let mut xm = x.clone();
            xm.set(r, c, x.get(r, c) - eps);
            let numeric = (loss(&attn, &xp) - loss(&attn, &xm)) / (2.0 * eps);
            let analytic = dx.get(r, c);
            let rel = (numeric - analytic).abs() / numeric.abs().max(1e-3);
            max_rel = max_rel.max(rel);
        }
        assert!(max_rel < 0.07, "max relative error {max_rel}");
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut attn = MultiHeadAttention::new(&mut rng, 8, 2);
        let x = init::normal(&mut rng, 3, 8, 0.5);
        attn.zero_grad();
        let y = attn.forward(&x);
        attn.backward(&y);
        // Grab dL/d(wq[0,0]).
        let mut analytic = 0.0;
        let mut slot = 0;
        attn.visit_params(&mut |_, g| {
            if slot == 0 {
                analytic = g[0];
            }
            slot += 1;
        });
        let eps = 1e-2;
        let loss = |attn: &MultiHeadAttention, x: &Matrix| -> f32 {
            let y = attn.forward_inference(x);
            0.5 * y.data().iter().map(|v| v * v).sum::<f32>()
        };
        let mut orig = 0.0;
        let mut slot = 0;
        attn.visit_params(&mut |p, _| {
            if slot == 0 {
                orig = p[0];
                p[0] = orig + eps;
            }
            slot += 1;
        });
        let lp = loss(&attn, &x);
        let mut slot = 0;
        attn.visit_params(&mut |p, _| {
            if slot == 0 {
                p[0] = orig - eps;
            }
            slot += 1;
        });
        let lm = loss(&attn, &x);
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (numeric - analytic).abs() / numeric.abs().max(1e-3) < 0.07,
            "numeric {numeric} analytic {analytic}"
        );
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut attn = MultiHeadAttention::new(&mut rng, 16, 4);
        // 4 linears of 16×16 + bias 16.
        assert_eq!(attn.n_params(), 4 * (16 * 16 + 16));
    }

    #[test]
    #[should_panic(expected = "heads must divide")]
    fn invalid_head_count_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = MultiHeadAttention::new(&mut rng, 10, 3);
    }
}
