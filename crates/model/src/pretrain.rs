//! Self-supervised pre-training (paper §2, §4.1.4): masked language
//! modelling over packet-token contexts, next-flow prediction (the NSP
//! analogue for traffic), and a DNS query–answer objective — the
//! network-specific pre-training task the paper calls for ("new training
//! tasks may be required to capture the nature of the relationships between
//! a query and its answers").

use std::path::PathBuf;

use nfm_tensor::layers::Module;
use nfm_tensor::loss::{softmax_cross_entropy, IGNORE_INDEX};
use nfm_tensor::matrix::Matrix;
use nfm_tensor::optim::{clip_global_norm, Adam, Schedule};
use nfm_tensor::pool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::checkpoint::{load_train_state, save_train_state, TrainState};
use crate::guard::{GuardConfig, GuardEvent, TrainError, TrainGuard};
use crate::nn::heads::{ClsHead, MlmHead};
use crate::nn::transformer::{Encoder, EncoderConfig};
use crate::vocab::Vocab;

/// Which pre-training objectives are active (experiment E6 sweeps this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskMix {
    /// Masked language modelling.
    pub mlm: bool,
    /// Next-flow prediction (NSP analogue).
    pub next_flow: bool,
    /// DNS query→answer masking.
    pub query_answer: bool,
}

impl Default for TaskMix {
    fn default() -> Self {
        TaskMix { mlm: true, next_flow: true, query_answer: true }
    }
}

impl TaskMix {
    /// MLM only.
    pub fn mlm_only() -> TaskMix {
        TaskMix { mlm: true, next_flow: false, query_answer: false }
    }

    /// Short display name.
    pub fn name(&self) -> String {
        let mut parts = Vec::new();
        if self.mlm {
            parts.push("mlm");
        }
        if self.next_flow {
            parts.push("nfp");
        }
        if self.query_answer {
            parts.push("qa");
        }
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join("+")
        }
    }
}

/// Pre-training hyperparameters.
#[derive(Debug, Clone)]
pub struct PretrainConfig {
    /// Fraction of tokens masked for MLM.
    pub mask_prob: f64,
    /// Epochs over the context corpus.
    pub epochs: usize,
    /// Peak learning rate.
    pub lr: f32,
    /// Sequences per optimizer step.
    pub batch_size: usize,
    /// RNG seed.
    pub seed: u64,
    /// Active objectives.
    pub tasks: TaskMix,
    /// Divergence-detection thresholds and retry policy.
    pub guard: GuardConfig,
    /// Directory for periodic on-disk snapshots (`None` disables).
    pub snapshot_dir: Option<PathBuf>,
    /// Write a snapshot every this many epochs (the final epoch is always
    /// snapshotted when `snapshot_dir` is set).
    pub snapshot_every: usize,
    /// Resume from this snapshot file instead of starting fresh. The rest
    /// of the config must match the run that wrote it; training continues
    /// deterministically, bitwise-identical to an uninterrupted run.
    pub resume_from: Option<PathBuf>,
    /// Fault-injection hook for tests and E14: global batch steps whose
    /// loss is replaced with NaN before the guard check.
    pub inject_nan_at: Vec<u64>,
}

impl Default for PretrainConfig {
    fn default() -> Self {
        PretrainConfig {
            mask_prob: 0.15,
            epochs: 3,
            lr: 3e-3,
            batch_size: 8,
            seed: 1,
            tasks: TaskMix::default(),
            guard: GuardConfig::default(),
            snapshot_dir: None,
            snapshot_every: 1,
            resume_from: None,
            inject_nan_at: Vec::new(),
        }
    }
}

/// Per-epoch pre-training statistics.
#[derive(Debug, Clone)]
pub struct PretrainStats {
    /// Mean MLM loss per epoch.
    pub mlm_loss: Vec<f32>,
    /// Mean next-flow loss per epoch (empty when the task is off).
    pub next_flow_loss: Vec<f32>,
    /// Final masked-token top-1 accuracy on the training corpus.
    pub final_mlm_accuracy: f32,
    /// Recovery actions the divergence guard took (empty on a clean run).
    pub guard_events: Vec<GuardEvent>,
    /// The epoch this run resumed from, if it resumed from a snapshot.
    pub resumed_at: Option<usize>,
}

/// Apply BERT masking to an encoded sequence. Positions holding special
/// tokens are never masked. Returns `(input_ids, targets)` where targets is
/// [`IGNORE_INDEX`] at unmasked positions.
///
/// `qa_mode`: when true, positions whose token text carries DNS answer
/// semantics (`ATYPE_*`, `ANCOUNT_*`, `RCODE_*`) are always masked — the
/// query→answer objective.
pub fn mask_sequence(
    rng: &mut StdRng,
    ids: &[usize],
    vocab: &Vocab,
    mask_prob: f64,
    qa_mode: bool,
) -> (Vec<usize>, Vec<usize>) {
    let mut input = ids.to_vec();
    let mut targets = vec![IGNORE_INDEX; ids.len()];
    let mut n_masked = 0;
    for (i, &id) in ids.iter().enumerate() {
        if id < 5 {
            continue; // specials
        }
        let token_text = vocab.token(id);
        let is_answer_token = qa_mode
            && (token_text.starts_with("ATYPE_")
                || token_text.starts_with("ANCOUNT_")
                || token_text.starts_with("RCODE_"));
        // Name tokens (QD_/SNI_/HOST_) carry the long-tail semantics the
        // paper cares about; boost their masking rate so prediction
        // pressure concentrates on them rather than on the frequent
        // header tokens (the MLM analogue of word2vec's subsampling).
        let effective_prob = if token_text.starts_with("QD_")
            || token_text.starts_with("SNI_")
            || token_text.starts_with("HOST_")
        {
            (mask_prob * 2.5).min(0.5)
        } else {
            mask_prob
        };
        if !is_answer_token && !rng.gen_bool(effective_prob) {
            continue;
        }
        targets[i] = id;
        n_masked += 1;
        let roll: f64 = rng.gen();
        input[i] = if roll < 0.8 {
            vocab.mask_id()
        } else if roll < 0.9 {
            rng.gen_range(5..vocab.len())
        } else {
            id
        };
    }
    // Guarantee at least one masked position on non-trivial sequences.
    if n_masked == 0 {
        if let Some(i) = ids.iter().position(|&id| id >= 5) {
            targets[i] = ids[i];
            input[i] = vocab.mask_id();
        }
    }
    (input, targets)
}

/// Wrap a context with `[CLS]` … `[SEP]` and encode, truncating to `max_len`.
pub fn encode_context(vocab: &Vocab, ctx: &[String], max_len: usize) -> Vec<usize> {
    let body = ctx.len().min(max_len.saturating_sub(2));
    let mut ids = Vec::with_capacity(body + 2);
    ids.push(vocab.cls_id());
    for t in &ctx[..body] {
        ids.push(vocab.id(t));
    }
    ids.push(vocab.sep_id());
    ids
}

/// Build a `[CLS]` A `[SEP]` B `[SEP]` pair for next-flow prediction.
///
/// Truncation policy: the token budget after the three specials is
/// `max_len - 3`. Segment A is capped at half the budget; segment B then
/// takes whatever A left unused, so a short A lets a long B run past the
/// half mark (the reverse does not hold — A never exceeds half even when B
/// is short). Degenerate `max_len < 3` still emits the three specials, so
/// the result is `[CLS][SEP][SEP]` and may exceed `max_len`.
pub fn encode_pair(vocab: &Vocab, a: &[String], b: &[String], max_len: usize) -> Vec<usize> {
    let budget = max_len.saturating_sub(3);
    let a_take = a.len().min(budget / 2);
    let b_take = b.len().min(budget - a_take);
    let mut ids = Vec::with_capacity(a_take + b_take + 3);
    ids.push(vocab.cls_id());
    ids.extend(a.iter().take(a_take).map(|t| vocab.id(t)));
    ids.push(vocab.sep_id());
    ids.extend(b.iter().take(b_take).map(|t| vocab.id(t)));
    ids.push(vocab.sep_id());
    ids
}

/// One example's precomputed training inputs. All RNG draws happen on the
/// main thread in example order (the exact stream the sequential loop would
/// consume), so randomness never depends on the thread count.
struct BatchItem {
    /// MLM/QA objective: (masked input, targets).
    mlm: Option<(Vec<usize>, Vec<usize>)>,
    /// Next-flow prediction: (pair encoding, label).
    nfp: Option<(Vec<usize>, usize)>,
}

/// Loss bookkeeping accumulated by one gradient shard.
#[derive(Default)]
struct ShardSums {
    mlm_loss: f64,
    n_mlm: usize,
    nfp_loss: f64,
    n_nfp: usize,
    batch_loss: f64,
    batch_items: usize,
}

/// Gradients for one module, one `Vec<f32>` per parameter in
/// `visit_params` order.
type GradSlots = Vec<Vec<f32>>;

/// Forward/backward a shard of examples on private model replicas,
/// returning accumulated gradients (in `visit_params` order) plus loss
/// sums. Workers never touch the shared models, so shards run concurrently;
/// the caller folds the results in fixed shard order, which makes the
/// summed gradient bitwise identical for any thread count.
fn run_pretrain_shard(
    encoder: &Encoder,
    mlm_head: &MlmHead,
    nfp_head: &ClsHead,
    items: &[BatchItem],
) -> (GradSlots, GradSlots, GradSlots, ShardSums) {
    let mut enc = encoder.clone();
    let mut mlm = mlm_head.clone();
    let mut nfp = nfp_head.clone();
    enc.zero_grad();
    mlm.zero_grad();
    nfp.zero_grad();
    let mut sums = ShardSums::default();
    for item in items {
        if let Some((input, targets)) = &item.mlm {
            let hidden = enc.forward(input);
            let logits = mlm.forward(&hidden);
            let (loss, dlogits) = softmax_cross_entropy(&logits, targets);
            if loss > 0.0 {
                sums.mlm_loss += loss as f64;
                sums.n_mlm += 1;
                sums.batch_loss += loss as f64;
                sums.batch_items += 1;
                let dhidden = mlm.backward(&dlogits);
                enc.backward(&dhidden);
            }
        }
        if let Some((pair, label)) = &item.nfp {
            let hidden = enc.forward(pair);
            let cls = hidden.rows_slice(0, 1);
            let logits = nfp.forward(&cls);
            let (loss, dlogits) = softmax_cross_entropy(&logits, &[*label]);
            sums.nfp_loss += loss as f64;
            sums.n_nfp += 1;
            sums.batch_loss += loss as f64;
            sums.batch_items += 1;
            let dcls = nfp.backward(&dlogits);
            // Scatter dcls back into a full dhidden (only row 0).
            let mut dhidden = Matrix::zeros(hidden.rows(), hidden.cols());
            dhidden.row_mut(0).copy_from_slice(dcls.row(0));
            enc.backward(&dhidden);
        }
    }
    (enc.export_grads(), mlm.export_grads(), nfp.export_grads(), sums)
}

/// Deterministic per-epoch stream seed: mixes the base seed, the epoch, and
/// the guard's retry counter (so a rolled-back epoch replays with a fresh
/// batch order). SplitMix64-style finalizer.
pub fn epoch_seed(seed: u64, epoch: usize, salt: u64) -> u64 {
    let mut z = seed
        ^ (epoch as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ salt.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Pre-train an encoder on `contexts` (token sequences in capture order).
/// Returns the trained encoder, the MLM head, and statistics.
///
/// The loop is fault-tolerant: a [`TrainGuard`] checks every optimizer
/// step's loss and pre-clip gradient norm; on NaN/Inf/explosion it rolls
/// the model and optimizers back to the epoch-start snapshot, scales the
/// learning rate down, reshuffles the batch order, and retries (bounded by
/// [`GuardConfig::max_retries`] per epoch). With
/// [`PretrainConfig::snapshot_dir`] set, full training state is written to
/// disk at epoch boundaries; a later run with
/// [`PretrainConfig::resume_from`] continues from that point and finishes
/// with weights bitwise identical to the uninterrupted run.
pub fn pretrain(
    contexts: &[Vec<String>],
    vocab: &Vocab,
    encoder_config: EncoderConfig,
    config: &PretrainConfig,
) -> Result<(Encoder, MlmHead, PretrainStats), TrainError> {
    if contexts.is_empty() {
        return Err(TrainError::NoData);
    }
    // The whole run is one span; its deterministic cost is the MAC delta of
    // the global matmul counter, so the trace carries reproducible work
    // units alongside (histogram-only) wall time.
    let macs = nfm_obs::global().counter("tensor.matmul.macs", nfm_obs::Unit::Macs);
    let macs_at_start = macs.get();
    let mut run_span = nfm_obs::span!("pretrain.run");
    // The init stream is separate from the per-epoch training streams so a
    // resumed run can rebuild identical initial weights without replaying
    // any training randomness.
    let mut init_rng = StdRng::seed_from_u64(config.seed);
    let mut encoder = Encoder::new(&mut init_rng, encoder_config);
    let mut mlm_head = MlmHead::new(&mut init_rng, encoder_config.d_model, vocab.len());
    let mut nfp_head = ClsHead::new(&mut init_rng, encoder_config.d_model, 2);
    let max_len = encoder_config.max_len;

    let encoded: Vec<Vec<usize>> =
        contexts.iter().map(|c| encode_context(vocab, c, max_len)).collect();

    let steps_per_epoch = encoded.len().div_ceil(config.batch_size);
    let total = (steps_per_epoch * config.epochs).max(1);
    let schedule =
        Schedule::WarmupLinear { peak: config.lr, warmup: total / 10 + 1, total: total + 1 };
    let mut opt_enc = Adam::new(schedule);
    let mut opt_mlm = Adam::new(schedule);
    let mut opt_nfp = Adam::new(schedule);

    let mut stats = PretrainStats {
        mlm_loss: Vec::new(),
        next_flow_loss: Vec::new(),
        final_mlm_accuracy: 0.0,
        guard_events: Vec::new(),
        resumed_at: None,
    };

    let mut guard = TrainGuard::new(config.guard);
    let mut lr_scale = 1.0f32;
    let mut total_retries = 0u64;
    let mut global_step = 0u64;
    let mut start_epoch = 0usize;

    if let Some(path) = &config.resume_from {
        let state = load_train_state(path)?;
        encoder = state.encoder;
        mlm_head = state.mlm_head;
        nfp_head = state.nfp_head;
        opt_enc = state.opt_enc;
        opt_mlm = state.opt_mlm;
        opt_nfp = state.opt_nfp;
        lr_scale = state.lr_scale;
        total_retries = state.total_retries;
        global_step = state.global_step;
        start_epoch = state.next_epoch;
        stats.mlm_loss = state.mlm_loss;
        stats.next_flow_loss = state.next_flow_loss;
        stats.resumed_at = Some(start_epoch);
    }

    for epoch in start_epoch..config.epochs {
        let mut attempt = 0usize;
        loop {
            // Last-good snapshot for divergence rollback.
            let snapshot = (
                encoder.clone(),
                mlm_head.clone(),
                nfp_head.clone(),
                opt_enc.clone(),
                opt_mlm.clone(),
                opt_nfp.clone(),
            );
            // Deterministic shuffle from the identity permutation — the
            // order must depend only on (seed, epoch, retries), never on
            // previous epochs, or resumed runs would diverge. The retry
            // counter feeds the seed so a rolled-back epoch sees a
            // different batch order.
            let mut order: Vec<usize> = (0..encoded.len()).collect();
            let mut rng = StdRng::seed_from_u64(epoch_seed(config.seed, epoch, total_retries));
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            let mut epoch_mlm = 0.0f64;
            let mut epoch_nfp = 0.0f64;
            let mut n_mlm = 0usize;
            let mut n_nfp = 0usize;
            let mut tripped: Option<String> = None;
            'batches: for batch in order.chunks(config.batch_size) {
                encoder.zero_grad();
                mlm_head.zero_grad();
                nfp_head.zero_grad();
                // Stage 1 (sequential): draw every random decision in
                // example order, exactly as a fully sequential loop would.
                let mut items: Vec<BatchItem> = Vec::with_capacity(batch.len());
                for &idx in batch {
                    let ids = &encoded[idx];
                    if ids.len() < 3 {
                        continue;
                    }
                    let mlm = (config.tasks.mlm || config.tasks.query_answer).then(|| {
                        let qa = config.tasks.query_answer;
                        let mask_prob = if config.tasks.mlm { config.mask_prob } else { 0.02 };
                        mask_sequence(&mut rng, ids, vocab, mask_prob, qa)
                    });
                    let nfp = (config.tasks.next_flow && encoded.len() > 2).then(|| {
                        // Positive: the temporally-next context. Negative: a
                        // random one.
                        let is_next = rng.gen_bool(0.5);
                        let other = if is_next && idx + 1 < contexts.len() {
                            idx + 1
                        } else {
                            rng.gen_range(0..contexts.len())
                        };
                        let label = usize::from(is_next && other == idx + 1);
                        (encode_pair(vocab, &contexts[idx], &contexts[other], max_len), label)
                    });
                    items.push(BatchItem { mlm, nfp });
                }
                // Stage 2 (parallel): forward/backward each fixed shard on
                // model replicas. Shard boundaries depend only on the item
                // count, never on the thread count. The dispatch is work-
                // gated: a backward pass costs roughly twice the forward,
                // and below the gate the per-batch spawn (plus per-shard
                // model clone + gradient reduction) costs more than it
                // saves, so small batches run inline.
                let batch_work: usize = items
                    .iter()
                    .map(|it| {
                        let mlm_t = it.mlm.as_ref().map_or(0, |(ids, _)| ids.len());
                        let nfp_t = it.nfp.as_ref().map_or(0, |(ids, _)| ids.len());
                        3 * (encoder.inference_cost(mlm_t) + encoder.inference_cost(nfp_t)) as usize
                    })
                    .sum();
                let shards = pool::shard_ranges(items.len(), pool::REDUCE_SHARDS);
                let results = pool::par_map_work(shards.len(), batch_work, |s| {
                    run_pretrain_shard(&encoder, &mlm_head, &nfp_head, &items[shards[s].clone()])
                });
                // Stage 3 (sequential): reduce gradients and loss partials
                // in shard order — a fixed-shape summation tree.
                let mut batch_loss = 0.0f64;
                let mut batch_items = 0usize;
                for (enc_g, mlm_g, nfp_g, sums) in results {
                    encoder.accumulate_grads(&enc_g);
                    mlm_head.accumulate_grads(&mlm_g);
                    nfp_head.accumulate_grads(&nfp_g);
                    epoch_mlm += sums.mlm_loss;
                    n_mlm += sums.n_mlm;
                    epoch_nfp += sums.nfp_loss;
                    n_nfp += sums.n_nfp;
                    batch_loss += sums.batch_loss;
                    batch_items += sums.batch_items;
                }
                let step = global_step;
                global_step += 1;
                let mut check_loss =
                    if batch_items > 0 { (batch_loss / batch_items as f64) as f32 } else { 0.0 };
                if config.inject_nan_at.contains(&step) {
                    check_loss = f32::NAN;
                }
                let mut grad_norm = clip_global_norm(&mut encoder, 5.0);
                grad_norm = grad_norm.max(clip_global_norm(&mut mlm_head, 5.0));
                if config.tasks.next_flow {
                    grad_norm = grad_norm.max(clip_global_norm(&mut nfp_head, 5.0));
                }
                nfm_obs::counter!("train.steps").inc();
                nfm_obs::histogram!(
                    "train.grad_norm_milli",
                    nfm_obs::Unit::Milli,
                    nfm_obs::NORM_EDGES
                )
                .observe((grad_norm as f64 * 1000.0) as u64);
                if let Some(cause) = guard.inspect(check_loss, grad_norm) {
                    tripped = Some(cause);
                    break 'batches;
                }
                opt_enc.step(&mut encoder);
                opt_mlm.step(&mut mlm_head);
                if config.tasks.next_flow {
                    opt_nfp.step(&mut nfp_head);
                }
            }
            if let Some(cause) = tripped {
                attempt += 1;
                total_retries += 1;
                (encoder, mlm_head, nfp_head, opt_enc, opt_mlm, opt_nfp) = snapshot;
                lr_scale *= config.guard.lr_backoff;
                opt_enc.set_lr_scale(lr_scale);
                opt_mlm.set_lr_scale(lr_scale);
                opt_nfp.set_lr_scale(lr_scale);
                nfm_obs::counter!("train.rollbacks").inc();
                nfm_obs::event(
                    "train.guard.rollback",
                    &[
                        ("epoch", nfm_obs::Value::U(epoch as u64)),
                        ("step", nfm_obs::Value::U(global_step - 1)),
                        ("cause", nfm_obs::Value::S(&cause)),
                        ("lr_scale", nfm_obs::Value::F32(lr_scale)),
                    ],
                );
                let action = format!(
                    "rolled back to epoch {epoch} start; lr_scale {lr_scale:.4}; reshuffled"
                );
                guard.record(epoch, global_step - 1, cause, action);
                if attempt > config.guard.max_retries {
                    return Err(TrainError::Diverged { attempts: attempt, log: guard.events });
                }
                continue;
            }
            stats.mlm_loss.push(if n_mlm > 0 { (epoch_mlm / n_mlm as f64) as f32 } else { 0.0 });
            if config.tasks.next_flow {
                stats.next_flow_loss.push(if n_nfp > 0 {
                    (epoch_nfp / n_nfp as f64) as f32
                } else {
                    0.0
                });
            }
            nfm_obs::counter!("train.epochs").inc();
            let mut fields = vec![
                ("epoch", nfm_obs::Value::U(epoch as u64)),
                ("mlm_loss", nfm_obs::Value::F32(*stats.mlm_loss.last().unwrap_or(&0.0))),
            ];
            if config.tasks.next_flow {
                fields.push((
                    "nfp_loss",
                    nfm_obs::Value::F32(*stats.next_flow_loss.last().unwrap_or(&0.0)),
                ));
            }
            nfm_obs::event("train.epoch", &fields);
            break;
        }
        if let Some(dir) = &config.snapshot_dir {
            let every = config.snapshot_every.max(1);
            if (epoch + 1) % every == 0 || epoch + 1 == config.epochs {
                std::fs::create_dir_all(dir)
                    .map_err(nfm_tensor::checkpoint::CheckpointError::from)?;
                let mut state = TrainState {
                    next_epoch: epoch + 1,
                    global_step,
                    total_retries,
                    lr_scale,
                    mlm_loss: stats.mlm_loss.clone(),
                    next_flow_loss: stats.next_flow_loss.clone(),
                    encoder: encoder.clone(),
                    mlm_head: mlm_head.clone(),
                    nfp_head: nfp_head.clone(),
                    opt_enc: opt_enc.clone(),
                    opt_mlm: opt_mlm.clone(),
                    opt_nfp: opt_nfp.clone(),
                };
                save_train_state(&dir.join(format!("snapshot_ep{}.nfmc", epoch + 1)), &mut state)?;
            }
        }
    }

    // Final masked-prediction accuracy over a sample of the corpus, on a
    // dedicated stream so the result is identical whether or not the run
    // was resumed.
    let mut eval_rng = StdRng::seed_from_u64(epoch_seed(config.seed, config.epochs, 0x4556_414C));
    let mut correct = 0usize;
    let mut total_masked = 0usize;
    let sample = encoded.len().min(200);
    for ids in encoded.iter().take(sample) {
        if ids.len() < 3 {
            continue;
        }
        let (input, targets) = mask_sequence(&mut eval_rng, ids, vocab, config.mask_prob, false);
        let hidden = encoder.forward_inference(&input);
        let logits = mlm_head.forward_inference(&hidden);
        let preds = logits.argmax_rows();
        for (i, &t) in targets.iter().enumerate() {
            if t != IGNORE_INDEX {
                total_masked += 1;
                if preds[i] == t {
                    correct += 1;
                }
            }
        }
    }
    stats.final_mlm_accuracy =
        if total_masked > 0 { correct as f32 / total_masked as f32 } else { 0.0 };
    stats.guard_events = guard.events;
    run_span.add_cost(macs.get().saturating_sub(macs_at_start));

    Ok((encoder, mlm_head, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_vocab_and_contexts() -> (Vocab, Vec<Vec<String>>) {
        // Deterministic bigram structure: "x_i" is always followed by
        // "y_i" — MLM can learn to fill either from the other.
        let mut contexts = Vec::new();
        for i in 0..120 {
            let k = i % 4;
            let ctx: Vec<String> =
                (0..6).flat_map(|_| vec![format!("x{k}"), format!("y{k}")]).collect();
            contexts.push(ctx);
        }
        let vocab = Vocab::from_sequences(&contexts, 1);
        (vocab, contexts)
    }

    #[test]
    fn masking_respects_specials_and_rate() {
        let (vocab, contexts) = toy_vocab_and_contexts();
        let ids = encode_context(&vocab, &contexts[0], 32);
        let mut rng = StdRng::seed_from_u64(1);
        let mut masked_total = 0;
        for _ in 0..100 {
            let (input, targets) = mask_sequence(&mut rng, &ids, &vocab, 0.15, false);
            assert_eq!(input.len(), ids.len());
            // CLS/SEP untouched.
            assert_eq!(input[0], vocab.cls_id());
            assert_eq!(*input.last().unwrap(), vocab.sep_id());
            assert_eq!(targets[0], IGNORE_INDEX);
            for (i, &t) in targets.iter().enumerate() {
                if t != IGNORE_INDEX {
                    masked_total += 1;
                    assert_eq!(t, ids[i], "target restores the original id");
                }
            }
        }
        // ~15% of 12 maskable positions × 100 trials ≈ 180.
        assert!((100..300).contains(&masked_total), "masked {masked_total}");
    }

    #[test]
    fn masking_always_masks_at_least_one() {
        let (vocab, contexts) = toy_vocab_and_contexts();
        let ids = encode_context(&vocab, &contexts[0][..1], 8);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let (_, targets) = mask_sequence(&mut rng, &ids, &vocab, 0.01, false);
            assert!(targets.iter().any(|&t| t != IGNORE_INDEX));
        }
    }

    #[test]
    fn qa_mode_masks_answer_tokens() {
        let ctx: Vec<String> = vec![
            "DNS_RESP".into(),
            "QD_com".into(),
            "RCODE_NOERROR".into(),
            "ANCOUNT_2".into(),
            "ATYPE_A".into(),
        ];
        let vocab = Vocab::from_sequences(std::iter::once(&ctx), 1);
        let ids = encode_context(&vocab, &ctx, 16);
        let mut rng = StdRng::seed_from_u64(3);
        let (_, targets) = mask_sequence(&mut rng, &ids, &vocab, 0.0, true);
        // The three answer tokens are always masked (positions 3, 4, 5 after
        // CLS at 0).
        let masked: Vec<usize> = targets
            .iter()
            .enumerate()
            .filter(|(_, &t)| t != IGNORE_INDEX)
            .map(|(i, _)| i)
            .collect();
        let answer_positions: Vec<usize> = ids
            .iter()
            .enumerate()
            .filter(|(_, &id)| {
                let t = vocab.token(id);
                t.starts_with("ATYPE") || t.starts_with("ANCOUNT") || t.starts_with("RCODE")
            })
            .map(|(i, _)| i)
            .collect();
        assert_eq!(masked, answer_positions);
    }

    #[test]
    fn encode_pair_structure() {
        let (vocab, contexts) = toy_vocab_and_contexts();
        let pair = encode_pair(&vocab, &contexts[0], &contexts[1], 32);
        assert_eq!(pair[0], vocab.cls_id());
        assert_eq!(pair.iter().filter(|&&i| i == vocab.sep_id()).count(), 2);
        assert!(pair.len() <= 32);
    }

    #[test]
    fn encode_pair_truncates_overlength_segments() {
        let (vocab, contexts) = toy_vocab_and_contexts();
        let long = &contexts[0]; // 12 tokens
        assert!(long.len() >= 10);
        // Both over-length: A capped at half the budget, B takes the rest,
        // and the total exactly fills max_len.
        let pair = encode_pair(&vocab, long, long, 11); // budget 8, half 4
        assert_eq!(pair.len(), 11);
        let seps: Vec<usize> =
            pair.iter().enumerate().filter(|(_, &t)| t == vocab.sep_id()).map(|(i, _)| i).collect();
        assert_eq!(seps, vec![5, 10], "A gets 4 tokens, B gets 4");
        // A's tokens are the first 4 of the segment (prefix truncation).
        for (i, t) in long.iter().take(4).enumerate() {
            assert_eq!(pair[1 + i], vocab.id(t));
        }
    }

    #[test]
    fn encode_pair_short_a_yields_budget_to_b() {
        let (vocab, contexts) = toy_vocab_and_contexts();
        let long = &contexts[0];
        let short: Vec<String> = long[..1].to_vec();
        // A has 1 token; B may use the remaining 7 of the 8-token budget.
        let pair = encode_pair(&vocab, &short, long, 11);
        assert_eq!(pair.len(), 11);
        let seps: Vec<usize> =
            pair.iter().enumerate().filter(|(_, &t)| t == vocab.sep_id()).map(|(i, _)| i).collect();
        assert_eq!(seps, vec![2, 10], "B expands into A's unused budget");
        // The reverse is not symmetric: a short B does NOT let A exceed half.
        let pair = encode_pair(&vocab, long, &short, 11);
        let seps: Vec<usize> =
            pair.iter().enumerate().filter(|(_, &t)| t == vocab.sep_id()).map(|(i, _)| i).collect();
        assert_eq!(seps, vec![5, 7], "A stays capped at half");
        assert_eq!(pair.len(), 8);
    }

    #[test]
    fn encode_pair_degenerate_max_len_keeps_specials() {
        let (vocab, contexts) = toy_vocab_and_contexts();
        for max_len in [0, 1, 2, 3] {
            let pair = encode_pair(&vocab, &contexts[0], &contexts[1], max_len);
            assert_eq!(pair, vec![vocab.cls_id(), vocab.sep_id(), vocab.sep_id()], "{max_len}");
        }
    }

    #[test]
    fn pretraining_reduces_mlm_loss_and_beats_chance() {
        let (vocab, contexts) = toy_vocab_and_contexts();
        let cfg = EncoderConfig {
            vocab: vocab.len(),
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            d_ff: 32,
            max_len: 16,
        };
        let (_, _, stats) = pretrain(
            &contexts,
            &vocab,
            cfg,
            &PretrainConfig { epochs: 4, tasks: TaskMix::mlm_only(), ..PretrainConfig::default() },
        )
        .expect("pretraining failed");
        let first = stats.mlm_loss[0];
        let last = *stats.mlm_loss.last().unwrap();
        assert!(last < first, "loss should fall: {first} → {last}");
        // Chance over ~13 vocab entries is ~8%; the bigram structure makes
        // much higher accuracy learnable.
        assert!(stats.final_mlm_accuracy > 0.5, "accuracy {}", stats.final_mlm_accuracy);
    }

    #[test]
    fn next_flow_task_trains() {
        let (vocab, contexts) = toy_vocab_and_contexts();
        let cfg = EncoderConfig {
            vocab: vocab.len(),
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            d_ff: 32,
            max_len: 24,
        };
        let (_, _, stats) = pretrain(
            &contexts[..40],
            &vocab,
            cfg,
            &PretrainConfig {
                epochs: 2,
                tasks: TaskMix { mlm: true, next_flow: true, query_answer: false },
                ..PretrainConfig::default()
            },
        )
        .expect("pretraining failed");
        assert_eq!(stats.next_flow_loss.len(), 2);
        assert!(stats.next_flow_loss.iter().all(|l| l.is_finite()));
    }

    fn tiny_cfg(vocab: &Vocab) -> EncoderConfig {
        EncoderConfig {
            vocab: vocab.len(),
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            d_ff: 32,
            max_len: 16,
        }
    }

    fn encoder_bits(enc: &mut Encoder) -> Vec<u32> {
        let mut bits = Vec::new();
        enc.visit_params(&mut |p, _| bits.extend(p.iter().map(|v| v.to_bits())));
        bits
    }

    #[test]
    fn empty_corpus_is_a_typed_error() {
        let (vocab, _) = toy_vocab_and_contexts();
        let result = pretrain(&[], &vocab, tiny_cfg(&vocab), &PretrainConfig::default());
        assert!(matches!(result, Err(TrainError::NoData)));
    }

    #[test]
    fn same_seed_same_weights() {
        let (vocab, contexts) = toy_vocab_and_contexts();
        let cfg =
            PretrainConfig { epochs: 2, tasks: TaskMix::mlm_only(), ..PretrainConfig::default() };
        let (mut a, _, _) =
            pretrain(&contexts[..30], &vocab, tiny_cfg(&vocab), &cfg).expect("run a");
        let (mut b, _, _) =
            pretrain(&contexts[..30], &vocab, tiny_cfg(&vocab), &cfg).expect("run b");
        assert_eq!(encoder_bits(&mut a), encoder_bits(&mut b));
    }

    #[test]
    fn pretrain_weights_identical_across_thread_counts() {
        let (vocab, contexts) = toy_vocab_and_contexts();
        // Both objectives on, so MLM and NFP gradients both cross the
        // shard reduction.
        let cfg = PretrainConfig {
            epochs: 2,
            tasks: TaskMix { mlm: true, next_flow: true, query_answer: false },
            ..PretrainConfig::default()
        };
        pool::set_threads(1);
        let (mut seq, _, seq_stats) =
            pretrain(&contexts[..24], &vocab, tiny_cfg(&vocab), &cfg).expect("1-thread run");
        pool::set_threads(4);
        let (mut par, _, par_stats) =
            pretrain(&contexts[..24], &vocab, tiny_cfg(&vocab), &cfg).expect("4-thread run");
        pool::set_threads(0);
        assert_eq!(
            encoder_bits(&mut seq),
            encoder_bits(&mut par),
            "weights must be bitwise identical across thread counts"
        );
        assert_eq!(seq_stats.mlm_loss, par_stats.mlm_loss);
        assert_eq!(seq_stats.next_flow_loss, par_stats.next_flow_loss);
        assert_eq!(seq_stats.final_mlm_accuracy, par_stats.final_mlm_accuracy);
    }

    #[test]
    fn resume_matches_uninterrupted_run_bitwise() {
        let (vocab, contexts) = toy_vocab_and_contexts();
        let contexts = &contexts[..30];
        let dir = std::env::temp_dir().join(format!("nfm_resume_test_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let base = PretrainConfig {
            epochs: 4,
            tasks: TaskMix::mlm_only(),
            snapshot_dir: Some(dir.clone()),
            snapshot_every: 1,
            ..PretrainConfig::default()
        };
        let (mut full, _, full_stats) =
            pretrain(contexts, &vocab, tiny_cfg(&vocab), &base).expect("uninterrupted run");
        // "Kill" after epoch 2: resume from its snapshot and finish.
        let resumed_cfg = PretrainConfig {
            snapshot_dir: None,
            resume_from: Some(dir.join("snapshot_ep2.nfmc")),
            ..base.clone()
        };
        let (mut resumed, _, resumed_stats) =
            pretrain(contexts, &vocab, tiny_cfg(&vocab), &resumed_cfg).expect("resumed run");
        assert_eq!(resumed_stats.resumed_at, Some(2));
        assert_eq!(
            encoder_bits(&mut full),
            encoder_bits(&mut resumed),
            "resumed weights must be bitwise identical"
        );
        assert_eq!(full_stats.mlm_loss, resumed_stats.mlm_loss);
        assert_eq!(full_stats.final_mlm_accuracy, resumed_stats.final_mlm_accuracy);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn guard_recovers_from_injected_nan() {
        let (vocab, contexts) = toy_vocab_and_contexts();
        let cfg = PretrainConfig {
            epochs: 2,
            tasks: TaskMix::mlm_only(),
            inject_nan_at: vec![3],
            ..PretrainConfig::default()
        };
        let (_, _, stats) =
            pretrain(&contexts[..30], &vocab, tiny_cfg(&vocab), &cfg).expect("guard recovery");
        assert_eq!(stats.guard_events.len(), 1);
        assert!(stats.guard_events[0].cause.contains("NaN"));
        assert!(stats.guard_events[0].action.contains("lr_scale 0.5"));
        assert_eq!(stats.mlm_loss.len(), 2, "both epochs complete after recovery");
        assert!(stats.mlm_loss.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn persistent_divergence_is_a_typed_error() {
        let (vocab, contexts) = toy_vocab_and_contexts();
        let cfg = PretrainConfig {
            epochs: 2,
            tasks: TaskMix::mlm_only(),
            // Trip every step the first epoch can ever reach.
            inject_nan_at: (0..32).collect(),
            guard: GuardConfig { max_retries: 2, ..GuardConfig::default() },
            ..PretrainConfig::default()
        };
        match pretrain(&contexts[..30], &vocab, tiny_cfg(&vocab), &cfg) {
            Err(TrainError::Diverged { attempts, log }) => {
                assert_eq!(attempts, 3);
                assert_eq!(log.len(), 3);
            }
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    #[test]
    fn epoch_seed_is_stable_and_spreads() {
        assert_eq!(epoch_seed(1, 0, 0), epoch_seed(1, 0, 0));
        assert_ne!(epoch_seed(1, 0, 0), epoch_seed(1, 1, 0));
        assert_ne!(epoch_seed(1, 0, 0), epoch_seed(1, 0, 1));
        assert_ne!(epoch_seed(1, 0, 0), epoch_seed(2, 0, 0));
    }
}
