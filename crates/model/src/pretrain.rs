//! Self-supervised pre-training (paper §2, §4.1.4): masked language
//! modelling over packet-token contexts, next-flow prediction (the NSP
//! analogue for traffic), and a DNS query–answer objective — the
//! network-specific pre-training task the paper calls for ("new training
//! tasks may be required to capture the nature of the relationships between
//! a query and its answers").

use nfm_tensor::layers::Module;
use nfm_tensor::loss::{softmax_cross_entropy, IGNORE_INDEX};
use nfm_tensor::matrix::Matrix;
use nfm_tensor::optim::{clip_global_norm, Adam, Schedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::nn::heads::{ClsHead, MlmHead};
use crate::nn::transformer::{Encoder, EncoderConfig};
use crate::vocab::Vocab;

/// Which pre-training objectives are active (experiment E6 sweeps this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskMix {
    /// Masked language modelling.
    pub mlm: bool,
    /// Next-flow prediction (NSP analogue).
    pub next_flow: bool,
    /// DNS query→answer masking.
    pub query_answer: bool,
}

impl Default for TaskMix {
    fn default() -> Self {
        TaskMix { mlm: true, next_flow: true, query_answer: true }
    }
}

impl TaskMix {
    /// MLM only.
    pub fn mlm_only() -> TaskMix {
        TaskMix { mlm: true, next_flow: false, query_answer: false }
    }

    /// Short display name.
    pub fn name(&self) -> String {
        let mut parts = Vec::new();
        if self.mlm {
            parts.push("mlm");
        }
        if self.next_flow {
            parts.push("nfp");
        }
        if self.query_answer {
            parts.push("qa");
        }
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join("+")
        }
    }
}

/// Pre-training hyperparameters.
#[derive(Debug, Clone)]
pub struct PretrainConfig {
    /// Fraction of tokens masked for MLM.
    pub mask_prob: f64,
    /// Epochs over the context corpus.
    pub epochs: usize,
    /// Peak learning rate.
    pub lr: f32,
    /// Sequences per optimizer step.
    pub batch_size: usize,
    /// RNG seed.
    pub seed: u64,
    /// Active objectives.
    pub tasks: TaskMix,
}

impl Default for PretrainConfig {
    fn default() -> Self {
        PretrainConfig {
            mask_prob: 0.15,
            epochs: 3,
            lr: 3e-3,
            batch_size: 8,
            seed: 1,
            tasks: TaskMix::default(),
        }
    }
}

/// Per-epoch pre-training statistics.
#[derive(Debug, Clone)]
pub struct PretrainStats {
    /// Mean MLM loss per epoch.
    pub mlm_loss: Vec<f32>,
    /// Mean next-flow loss per epoch (empty when the task is off).
    pub next_flow_loss: Vec<f32>,
    /// Final masked-token top-1 accuracy on the training corpus.
    pub final_mlm_accuracy: f32,
}

/// Apply BERT masking to an encoded sequence. Positions holding special
/// tokens are never masked. Returns `(input_ids, targets)` where targets is
/// [`IGNORE_INDEX`] at unmasked positions.
///
/// `qa_mode`: when true, positions whose token text carries DNS answer
/// semantics (`ATYPE_*`, `ANCOUNT_*`, `RCODE_*`) are always masked — the
/// query→answer objective.
pub fn mask_sequence(
    rng: &mut StdRng,
    ids: &[usize],
    vocab: &Vocab,
    mask_prob: f64,
    qa_mode: bool,
) -> (Vec<usize>, Vec<usize>) {
    let mut input = ids.to_vec();
    let mut targets = vec![IGNORE_INDEX; ids.len()];
    let mut n_masked = 0;
    for (i, &id) in ids.iter().enumerate() {
        if id < 5 {
            continue; // specials
        }
        let token_text = vocab.token(id);
        let is_answer_token = qa_mode
            && (token_text.starts_with("ATYPE_")
                || token_text.starts_with("ANCOUNT_")
                || token_text.starts_with("RCODE_"));
        // Name tokens (QD_/SNI_/HOST_) carry the long-tail semantics the
        // paper cares about; boost their masking rate so prediction
        // pressure concentrates on them rather than on the frequent
        // header tokens (the MLM analogue of word2vec's subsampling).
        let effective_prob = if token_text.starts_with("QD_")
            || token_text.starts_with("SNI_")
            || token_text.starts_with("HOST_")
        {
            (mask_prob * 2.5).min(0.5)
        } else {
            mask_prob
        };
        if !is_answer_token && !rng.gen_bool(effective_prob) {
            continue;
        }
        targets[i] = id;
        n_masked += 1;
        let roll: f64 = rng.gen();
        input[i] = if roll < 0.8 {
            vocab.mask_id()
        } else if roll < 0.9 {
            rng.gen_range(5..vocab.len())
        } else {
            id
        };
    }
    // Guarantee at least one masked position on non-trivial sequences.
    if n_masked == 0 {
        if let Some(i) = ids.iter().position(|&id| id >= 5) {
            targets[i] = ids[i];
            input[i] = vocab.mask_id();
        }
    }
    (input, targets)
}

/// Wrap a context with [CLS] … [SEP] and encode, truncating to `max_len`.
pub fn encode_context(vocab: &Vocab, ctx: &[String], max_len: usize) -> Vec<usize> {
    let body = ctx.len().min(max_len.saturating_sub(2));
    let mut ids = Vec::with_capacity(body + 2);
    ids.push(vocab.cls_id());
    for t in &ctx[..body] {
        ids.push(vocab.id(t));
    }
    ids.push(vocab.sep_id());
    ids
}

/// Build a [CLS] A [SEP] B [SEP] pair for next-flow prediction.
pub fn encode_pair(vocab: &Vocab, a: &[String], b: &[String], max_len: usize) -> Vec<usize> {
    let budget = max_len.saturating_sub(3);
    let half = budget / 2;
    let mut ids = vec![vocab.cls_id()];
    for t in a.iter().take(half) {
        ids.push(vocab.id(t));
    }
    ids.push(vocab.sep_id());
    for t in b.iter().take(budget - ids.len().saturating_sub(2).min(budget)) {
        if ids.len() >= max_len - 1 {
            break;
        }
        ids.push(vocab.id(t));
    }
    ids.push(vocab.sep_id());
    ids
}

/// Pre-train an encoder on `contexts` (token sequences in capture order).
/// Returns the trained encoder, the MLM head, and statistics.
pub fn pretrain(
    contexts: &[Vec<String>],
    vocab: &Vocab,
    encoder_config: EncoderConfig,
    config: &PretrainConfig,
) -> (Encoder, MlmHead, PretrainStats) {
    assert!(!contexts.is_empty(), "need at least one context");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut encoder = Encoder::new(&mut rng, encoder_config);
    let mut mlm_head = MlmHead::new(&mut rng, encoder_config.d_model, vocab.len());
    let mut nfp_head = ClsHead::new(&mut rng, encoder_config.d_model, 2);
    let max_len = encoder_config.max_len;

    let encoded: Vec<Vec<usize>> =
        contexts.iter().map(|c| encode_context(vocab, c, max_len)).collect();

    let steps_per_epoch = encoded.len().div_ceil(config.batch_size);
    let total = (steps_per_epoch * config.epochs).max(1);
    let schedule =
        Schedule::WarmupLinear { peak: config.lr, warmup: total / 10 + 1, total: total + 1 };
    let mut opt_enc = Adam::new(schedule);
    let mut opt_mlm = Adam::new(schedule);
    let mut opt_nfp = Adam::new(schedule);

    let mut stats = PretrainStats {
        mlm_loss: Vec::new(),
        next_flow_loss: Vec::new(),
        final_mlm_accuracy: 0.0,
    };

    let mut order: Vec<usize> = (0..encoded.len()).collect();
    for _epoch in 0..config.epochs {
        // Deterministic shuffle.
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let mut epoch_mlm = 0.0f64;
        let mut epoch_nfp = 0.0f64;
        let mut n_mlm = 0usize;
        let mut n_nfp = 0usize;
        for batch in order.chunks(config.batch_size) {
            encoder.zero_grad();
            mlm_head.zero_grad();
            nfp_head.zero_grad();
            for &idx in batch {
                let ids = &encoded[idx];
                if ids.len() < 3 {
                    continue;
                }
                if config.tasks.mlm || config.tasks.query_answer {
                    let qa = config.tasks.query_answer;
                    let mask_prob = if config.tasks.mlm { config.mask_prob } else { 0.02 };
                    let (input, targets) =
                        mask_sequence(&mut rng, ids, vocab, mask_prob, qa);
                    let hidden = encoder.forward(&input);
                    let logits = mlm_head.forward(&hidden);
                    let (loss, dlogits) = softmax_cross_entropy(&logits, &targets);
                    if loss > 0.0 {
                        epoch_mlm += loss as f64;
                        n_mlm += 1;
                        let dhidden = mlm_head.backward(&dlogits);
                        encoder.backward(&dhidden);
                    }
                }
                if config.tasks.next_flow && encoded.len() > 2 {
                    // Positive: the temporally-next context. Negative: a
                    // random one.
                    let is_next = rng.gen_bool(0.5);
                    let other = if is_next && idx + 1 < contexts.len() {
                        idx + 1
                    } else {
                        rng.gen_range(0..contexts.len())
                    };
                    let label = usize::from(is_next && other == idx + 1);
                    let pair = encode_pair(vocab, &contexts[idx], &contexts[other], max_len);
                    let hidden = encoder.forward(&pair);
                    let cls = hidden.rows_slice(0, 1);
                    let logits = nfp_head.forward(&cls);
                    let (loss, dlogits) = softmax_cross_entropy(&logits, &[label]);
                    epoch_nfp += loss as f64;
                    n_nfp += 1;
                    let dcls = nfp_head.backward(&dlogits);
                    // Scatter dcls back into a full dhidden (only row 0).
                    let mut dhidden = Matrix::zeros(hidden.rows(), hidden.cols());
                    dhidden.row_mut(0).copy_from_slice(dcls.row(0));
                    encoder.backward(&dhidden);
                }
            }
            clip_global_norm(&mut encoder, 5.0);
            clip_global_norm(&mut mlm_head, 5.0);
            opt_enc.step(&mut encoder);
            opt_mlm.step(&mut mlm_head);
            if config.tasks.next_flow {
                clip_global_norm(&mut nfp_head, 5.0);
                opt_nfp.step(&mut nfp_head);
            }
        }
        stats.mlm_loss.push(if n_mlm > 0 { (epoch_mlm / n_mlm as f64) as f32 } else { 0.0 });
        if config.tasks.next_flow {
            stats
                .next_flow_loss
                .push(if n_nfp > 0 { (epoch_nfp / n_nfp as f64) as f32 } else { 0.0 });
        }
    }

    // Final masked-prediction accuracy over a sample of the corpus.
    let mut correct = 0usize;
    let mut total_masked = 0usize;
    let sample = encoded.len().min(200);
    for ids in encoded.iter().take(sample) {
        if ids.len() < 3 {
            continue;
        }
        let (input, targets) = mask_sequence(&mut rng, ids, vocab, config.mask_prob, false);
        let hidden = encoder.forward_inference(&input);
        let logits = mlm_head.forward_inference(&hidden);
        let preds = logits.argmax_rows();
        for (i, &t) in targets.iter().enumerate() {
            if t != IGNORE_INDEX {
                total_masked += 1;
                if preds[i] == t {
                    correct += 1;
                }
            }
        }
    }
    stats.final_mlm_accuracy =
        if total_masked > 0 { correct as f32 / total_masked as f32 } else { 0.0 };

    (encoder, mlm_head, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_vocab_and_contexts() -> (Vocab, Vec<Vec<String>>) {
        // Deterministic bigram structure: "x_i" is always followed by
        // "y_i" — MLM can learn to fill either from the other.
        let mut contexts = Vec::new();
        for i in 0..120 {
            let k = i % 4;
            let ctx: Vec<String> = (0..6)
                .flat_map(|_| vec![format!("x{k}"), format!("y{k}")])
                .collect();
            contexts.push(ctx);
        }
        let vocab = Vocab::from_sequences(&contexts, 1);
        (vocab, contexts)
    }

    #[test]
    fn masking_respects_specials_and_rate() {
        let (vocab, contexts) = toy_vocab_and_contexts();
        let ids = encode_context(&vocab, &contexts[0], 32);
        let mut rng = StdRng::seed_from_u64(1);
        let mut masked_total = 0;
        for _ in 0..100 {
            let (input, targets) = mask_sequence(&mut rng, &ids, &vocab, 0.15, false);
            assert_eq!(input.len(), ids.len());
            // CLS/SEP untouched.
            assert_eq!(input[0], vocab.cls_id());
            assert_eq!(*input.last().unwrap(), vocab.sep_id());
            assert_eq!(targets[0], IGNORE_INDEX);
            for (i, &t) in targets.iter().enumerate() {
                if t != IGNORE_INDEX {
                    masked_total += 1;
                    assert_eq!(t, ids[i], "target restores the original id");
                }
            }
        }
        // ~15% of 12 maskable positions × 100 trials ≈ 180.
        assert!((100..300).contains(&masked_total), "masked {masked_total}");
    }

    #[test]
    fn masking_always_masks_at_least_one() {
        let (vocab, contexts) = toy_vocab_and_contexts();
        let ids = encode_context(&vocab, &contexts[0][..1], 8);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let (_, targets) = mask_sequence(&mut rng, &ids, &vocab, 0.01, false);
            assert!(targets.iter().any(|&t| t != IGNORE_INDEX));
        }
    }

    #[test]
    fn qa_mode_masks_answer_tokens() {
        let ctx: Vec<String> = vec![
            "DNS_RESP".into(),
            "QD_com".into(),
            "RCODE_NOERROR".into(),
            "ANCOUNT_2".into(),
            "ATYPE_A".into(),
        ];
        let vocab = Vocab::from_sequences(std::iter::once(&ctx), 1);
        let ids = encode_context(&vocab, &ctx, 16);
        let mut rng = StdRng::seed_from_u64(3);
        let (_, targets) = mask_sequence(&mut rng, &ids, &vocab, 0.0, true);
        // The three answer tokens are always masked (positions 3, 4, 5 after
        // CLS at 0).
        let masked: Vec<usize> =
            targets.iter().enumerate().filter(|(_, &t)| t != IGNORE_INDEX).map(|(i, _)| i).collect();
        let answer_positions: Vec<usize> = ids
            .iter()
            .enumerate()
            .filter(|(_, &id)| {
                let t = vocab.token(id);
                t.starts_with("ATYPE") || t.starts_with("ANCOUNT") || t.starts_with("RCODE")
            })
            .map(|(i, _)| i)
            .collect();
        assert_eq!(masked, answer_positions);
    }

    #[test]
    fn encode_pair_structure() {
        let (vocab, contexts) = toy_vocab_and_contexts();
        let pair = encode_pair(&vocab, &contexts[0], &contexts[1], 32);
        assert_eq!(pair[0], vocab.cls_id());
        assert_eq!(pair.iter().filter(|&&i| i == vocab.sep_id()).count(), 2);
        assert!(pair.len() <= 32);
    }

    #[test]
    fn pretraining_reduces_mlm_loss_and_beats_chance() {
        let (vocab, contexts) = toy_vocab_and_contexts();
        let cfg = EncoderConfig { vocab: vocab.len(), d_model: 16, n_heads: 2, n_layers: 1, d_ff: 32, max_len: 16 };
        let (_, _, stats) = pretrain(
            &contexts,
            &vocab,
            cfg,
            &PretrainConfig { epochs: 4, tasks: TaskMix::mlm_only(), ..PretrainConfig::default() },
        );
        let first = stats.mlm_loss[0];
        let last = *stats.mlm_loss.last().unwrap();
        assert!(last < first, "loss should fall: {first} → {last}");
        // Chance over ~13 vocab entries is ~8%; the bigram structure makes
        // much higher accuracy learnable.
        assert!(
            stats.final_mlm_accuracy > 0.5,
            "accuracy {}",
            stats.final_mlm_accuracy
        );
    }

    #[test]
    fn next_flow_task_trains() {
        let (vocab, contexts) = toy_vocab_and_contexts();
        let cfg = EncoderConfig { vocab: vocab.len(), d_model: 16, n_heads: 2, n_layers: 1, d_ff: 32, max_len: 24 };
        let (_, _, stats) = pretrain(
            &contexts[..40],
            &vocab,
            cfg,
            &PretrainConfig {
                epochs: 2,
                tasks: TaskMix { mlm: true, next_flow: true, query_answer: false },
                ..PretrainConfig::default()
            },
        );
        assert_eq!(stats.next_flow_loss.len(), 2);
        assert!(stats.next_flow_loss.iter().all(|l| l.is_finite()));
    }
}
