//! Divergence detection and recovery for training loops.
//!
//! A [`TrainGuard`] watches per-step loss and pre-clip gradient norms for
//! NaN/Inf or explosion. When a check trips, the training loop rolls back
//! to its last-good snapshot, halves the learning rate, reshuffles the
//! batch order under a fresh seed, and retries; after
//! [`GuardConfig::max_retries`] failed attempts on the same stretch it
//! gives up with a typed [`TrainError::Diverged`] carrying the full
//! recovery log.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::fmt;

use nfm_tensor::checkpoint::CheckpointError;

/// Thresholds and retry policy for divergence detection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardConfig {
    /// Per-step mean loss above this counts as an explosion.
    pub max_loss: f32,
    /// Pre-clip gradient norm above this counts as an explosion.
    pub max_grad_norm: f32,
    /// Retries per epoch before giving up with [`TrainError::Diverged`].
    pub max_retries: usize,
    /// Learning-rate multiplier applied on each rollback (e.g. 0.5 halves).
    pub lr_backoff: f32,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig { max_loss: 1e4, max_grad_norm: 1e3, max_retries: 3, lr_backoff: 0.5 }
    }
}

/// One recovery action taken by the guard.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardEvent {
    /// Epoch in which the trip occurred.
    pub epoch: usize,
    /// Global step at the trip.
    pub step: u64,
    /// What tripped the check (e.g. "loss is NaN").
    pub cause: String,
    /// What recovery did (rollback target, new lr scale).
    pub action: String,
}

impl fmt::Display for GuardEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "epoch {:>3}  step {:>6}  {:<28}  {}",
            self.epoch, self.step, self.cause, self.action
        )
    }
}

/// Why training failed.
#[derive(Debug)]
pub enum TrainError {
    /// The training corpus is empty.
    NoData,
    /// Divergence persisted through every allowed retry.
    Diverged {
        /// Rollback attempts made on the failing stretch.
        attempts: usize,
        /// Everything the guard did before giving up.
        log: Vec<GuardEvent>,
    },
    /// A snapshot could not be written or a resume source could not be read.
    Checkpoint(CheckpointError),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::NoData => write!(f, "no training data"),
            TrainError::Diverged { attempts, log } => {
                writeln!(f, "training diverged after {attempts} recovery attempts:")?;
                for event in log {
                    writeln!(f, "  {event}")?;
                }
                Ok(())
            }
            TrainError::Checkpoint(e) => write!(f, "checkpoint failure during training: {e}"),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for TrainError {
    fn from(e: CheckpointError) -> Self {
        TrainError::Checkpoint(e)
    }
}

/// The divergence watchdog. Stateless between checks apart from the event
/// log; rollback/retry bookkeeping lives in the training loop, which owns
/// the snapshots.
#[derive(Debug, Clone)]
pub struct TrainGuard {
    /// Thresholds and retry policy.
    pub config: GuardConfig,
    /// Recovery log, in order.
    pub events: Vec<GuardEvent>,
}

impl TrainGuard {
    /// A guard with the given policy.
    pub fn new(config: GuardConfig) -> TrainGuard {
        TrainGuard { config, events: Vec::new() }
    }

    /// Check one training step. Returns the trip cause, or `None` when the
    /// step is healthy.
    pub fn inspect(&self, loss: f32, grad_norm: f32) -> Option<String> {
        if loss.is_nan() {
            Some("loss is NaN".to_string())
        } else if loss.is_infinite() {
            Some("loss is infinite".to_string())
        } else if loss > self.config.max_loss {
            Some(format!("loss {loss:.3e} exceeds {:.3e}", self.config.max_loss))
        } else if !grad_norm.is_finite() {
            Some(format!("gradient norm is {grad_norm}"))
        } else if grad_norm > self.config.max_grad_norm {
            Some(format!("gradient norm {grad_norm:.3e} exceeds {:.3e}", self.config.max_grad_norm))
        } else {
            None
        }
    }

    /// Record a recovery action.
    pub fn record(&mut self, epoch: usize, step: u64, cause: String, action: String) {
        self.events.push(GuardEvent { epoch, step, cause, action });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_steps_pass() {
        let g = TrainGuard::new(GuardConfig::default());
        assert_eq!(g.inspect(2.5, 4.0), None);
        assert_eq!(g.inspect(0.0, 0.0), None);
    }

    #[test]
    fn non_finite_and_exploding_values_trip() {
        let g = TrainGuard::new(GuardConfig::default());
        assert!(g.inspect(f32::NAN, 1.0).unwrap().contains("NaN"));
        assert!(g.inspect(f32::INFINITY, 1.0).unwrap().contains("infinite"));
        assert!(g.inspect(1e9, 1.0).unwrap().contains("exceeds"));
        assert!(g.inspect(1.0, f32::NAN).unwrap().contains("gradient"));
        assert!(g.inspect(1.0, 1e9).unwrap().contains("gradient"));
    }

    #[test]
    fn diverged_error_formats_log() {
        let err = TrainError::Diverged {
            attempts: 2,
            log: vec![GuardEvent {
                epoch: 1,
                step: 17,
                cause: "loss is NaN".into(),
                action: "rollback; lr_scale=0.5".into(),
            }],
        };
        let text = err.to_string();
        assert!(text.contains("2 recovery attempts"));
        assert!(text.contains("loss is NaN"));
        assert!(text.contains("lr_scale=0.5"));
    }
}
