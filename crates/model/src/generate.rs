//! Token-sequence generation from a pre-trained MLM — the "generator"
//! downstream family of §3.1 (the paper groups ML-for-networking solutions
//! into "classification, anomaly detection, generator, and reinforcement
//! learning") and a path toward the §4.2 idea of training-data synthesis.
//!
//! Gibbs-style sampling: start from an all-`[MASK]` canvas (optionally with
//! pinned prompt tokens) and iteratively resample positions from the MLM's
//! conditional distributions until the sequence stabilizes.

use nfm_tensor::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::nn::heads::MlmHead;
use crate::nn::transformer::Encoder;
use crate::vocab::Vocab;

/// Generation configuration.
#[derive(Debug, Clone)]
pub struct GenerateConfig {
    /// Number of body tokens to generate (excludes `[CLS]`/`[SEP]`).
    pub length: usize,
    /// Gibbs sweeps over the sequence.
    pub sweeps: usize,
    /// Softmax temperature (1.0 = model distribution; → 0 = greedy).
    pub temperature: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GenerateConfig {
    fn default() -> Self {
        GenerateConfig { length: 16, sweeps: 4, temperature: 0.8, seed: 1 }
    }
}

fn sample_from_logits(rng: &mut StdRng, logits: &[f32], temperature: f32) -> usize {
    if temperature <= 1e-3 {
        // Greedy.
        return logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .unwrap_or(0);
    }
    let scaled: Vec<f32> = logits.iter().map(|l| l / temperature).collect();
    let mut m = Matrix::from_vec(1, scaled.len(), scaled);
    m.softmax_rows();
    let u: f32 = rng.gen();
    let mut acc = 0.0;
    for (i, &p) in m.row(0).iter().enumerate() {
        acc += p;
        if u <= acc {
            return i;
        }
    }
    m.row(0).len() - 1
}

/// Generate one token sequence. `prompt` pins the first tokens (they are
/// never resampled); the rest of the canvas starts as `[MASK]` and is filled
/// left-to-right on the first sweep, then refined on subsequent sweeps.
/// Special tokens are never sampled into the body.
pub fn generate(
    encoder: &Encoder,
    head: &MlmHead,
    vocab: &Vocab,
    prompt: &[String],
    config: &GenerateConfig,
) -> Vec<String> {
    assert!(config.length >= prompt.len(), "length must cover the prompt");
    let mut rng = StdRng::seed_from_u64(config.seed);
    // The canvas ([CLS] + body + [SEP]) must fit the encoder's context.
    let body = config.length.min(encoder.config.max_len.saturating_sub(2)).max(prompt.len());
    // Canvas: [CLS] t1 … tn [SEP].
    let mut ids: Vec<usize> = Vec::with_capacity(body + 2);
    ids.push(vocab.cls_id());
    for t in prompt {
        ids.push(vocab.id(t));
    }
    for _ in prompt.len()..body {
        ids.push(vocab.mask_id());
    }
    ids.push(vocab.sep_id());

    let first_free = 1 + prompt.len();
    let last = 1 + body; // index of [SEP]
    for sweep in 0..config.sweeps.max(1) {
        for pos in first_free..last {
            // Re-mask the position being resampled (except sweep 0, where
            // it's already [MASK]).
            if sweep > 0 {
                ids[pos] = vocab.mask_id();
            }
            let hidden = encoder.forward_inference(&ids);
            let logits = head.forward_inference(&hidden);
            // Suppress special tokens.
            let mut row: Vec<f32> = logits.row(pos).to_vec();
            for logit in row.iter_mut().take(5) {
                *logit = f32::NEG_INFINITY;
            }
            ids[pos] = sample_from_logits(&mut rng, &row, config.temperature);
        }
    }
    ids[1..last].iter().map(|&id| vocab.token(id).to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::transformer::EncoderConfig;
    use crate::pretrain::{pretrain, PretrainConfig, TaskMix};

    /// Corpus with a strict alternation grammar: x_k is always followed by
    /// y_k. A trained MLM should generate sequences that mostly respect it.
    fn trained() -> (Encoder, MlmHead, Vocab, Vec<Vec<String>>) {
        let mut contexts = Vec::new();
        for i in 0..150 {
            let k = i % 3;
            let ctx: Vec<String> =
                (0..5).flat_map(|_| vec![format!("x{k}"), format!("y{k}")]).collect();
            contexts.push(ctx);
        }
        let vocab = Vocab::from_sequences(&contexts, 1);
        let cfg = EncoderConfig {
            vocab: vocab.len(),
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            d_ff: 32,
            max_len: 24,
        };
        let (enc, head, _) = pretrain(
            &contexts,
            &vocab,
            cfg,
            &PretrainConfig { epochs: 5, tasks: TaskMix::mlm_only(), ..PretrainConfig::default() },
        )
        .expect("pretraining failed");
        (enc, head, vocab, contexts)
    }

    #[test]
    fn generates_requested_length_without_specials() {
        let (enc, head, vocab, _) = trained();
        let out = generate(&enc, &head, &vocab, &[], &GenerateConfig::default());
        assert_eq!(out.len(), 16);
        for t in &out {
            assert!(!t.starts_with('['), "special token leaked: {t}");
        }
    }

    #[test]
    fn prompt_tokens_are_pinned() {
        let (enc, head, vocab, _) = trained();
        let prompt = vec!["x1".to_string(), "y1".to_string()];
        let out = generate(
            &enc,
            &head,
            &vocab,
            &prompt,
            &GenerateConfig { length: 10, ..GenerateConfig::default() },
        );
        assert_eq!(&out[..2], &prompt[..]);
    }

    #[test]
    fn generation_is_deterministic_under_seed() {
        let (enc, head, vocab, _) = trained();
        let cfg = GenerateConfig { seed: 42, ..GenerateConfig::default() };
        let a = generate(&enc, &head, &vocab, &[], &cfg);
        let b = generate(&enc, &head, &vocab, &[], &cfg);
        assert_eq!(a, b);
        let c = generate(&enc, &head, &vocab, &[], &GenerateConfig { seed: 43, ..cfg });
        assert_ne!(a, c, "different seeds should explore differently");
    }

    #[test]
    fn greedy_generation_respects_learned_bigrams() {
        let (enc, head, vocab, _) = trained();
        // Low temperature, prompt pins the grammar family.
        let out = generate(
            &enc,
            &head,
            &vocab,
            &["x2".to_string()],
            &GenerateConfig {
                length: 8,
                temperature: 0.01,
                sweeps: 3,
                ..GenerateConfig::default()
            },
        );
        // Count bigrams that follow the x→y alternation grammar.
        let mut good = 0;
        let mut total = 0;
        for w in out.windows(2) {
            total += 1;
            let follows = (w[0].starts_with('x') && w[1].starts_with('y'))
                || (w[0].starts_with('y') && w[1].starts_with('x'));
            if follows {
                good += 1;
            }
        }
        assert!(good * 2 >= total, "at least half the bigrams respect the grammar: {out:?}");
    }
}
