//! The protocol-field-aware tokenizer — the paper's proposed alternative to
//! byte-level tokenization (§4.1.2): "recognizing the network protocol and
//! tokenizing it based on protocol format (e.g., 4 byte IP address, 2 byte
//! port number, one byte TCP flag, HTTP fields, etc.). This would preserve
//! the semantics of the tokens as per the underlying network protocol
//! specifications."
//!
//! Emitted token families (each a categorical symbol):
//! `IP4`/`IP6`, `PROTO_*`, `TTL_*` (bucketed), `LEN_B*` (log₂-binned wire
//! length), `PORT_*`, `FLAGS_*`, `WIN_B*`, and application-layer tokens for
//! DNS (direction, rcode, qname labels reversed so the TLD and the
//! category-bearing domain come first, answer types/counts), TLS (record
//! types, handshake kinds, ciphersuites as `CS_xxxx`, SNI labels), HTTP
//! (method, status class, path root, User-Agent product), NTP, DHCP, and
//! MQTT-over-1883 heuristics.

use nfm_net::packet::{IpRepr, Packet, Transport};
use nfm_net::wire::dns;
use nfm_net::wire::http;
use nfm_net::wire::ntp;
use nfm_net::wire::tls;

use super::{log2_bin, port_token, Tokenizer};

/// The field-aware tokenizer. Stateless; configuration selects how much
/// application-layer detail to emit.
#[derive(Debug, Clone)]
pub struct FieldTokenizer {
    /// Include application-layer (DNS/TLS/HTTP/…) tokens.
    pub app_layer: bool,
    /// Maximum DNS/SNI name labels emitted per name.
    pub max_name_labels: usize,
}

impl Default for FieldTokenizer {
    fn default() -> Self {
        FieldTokenizer { app_layer: true, max_name_labels: 4 }
    }
}

impl FieldTokenizer {
    /// Tokenizer with application-layer parsing enabled.
    pub fn new() -> FieldTokenizer {
        FieldTokenizer::default()
    }

    /// Header-only variant (network + transport tokens).
    pub fn headers_only() -> FieldTokenizer {
        FieldTokenizer { app_layer: false, max_name_labels: 0 }
    }

    fn ttl_token(ttl: u8) -> String {
        // Initial-TTL buckets: 32/64/128/255 separate OS families.
        let bucket = match ttl {
            0..=32 => 32,
            33..=64 => 64,
            65..=128 => 128,
            _ => 255,
        };
        format!("TTL_{bucket}")
    }

    fn name_tokens(&self, out: &mut Vec<String>, prefix: &str, name: &dns::Name) {
        // Reversed labels: TLD first, then the semantically-loaded domain.
        for label in name.labels().iter().rev().take(self.max_name_labels) {
            out.push(format!("{prefix}_{label}"));
        }
    }

    fn dns_tokens(&self, out: &mut Vec<String>, payload: &[u8]) {
        let Ok(msg) = dns::Message::parse(payload) else {
            out.push("DNS_MALFORMED".to_string());
            return;
        };
        out.push(if msg.is_response { "DNS_RESP" } else { "DNS_QUERY" }.to_string());
        for q in msg.questions.iter().take(2) {
            out.push(format!("QTYPE_{:?}", q.rtype).to_ascii_uppercase());
            // Long first labels are a tunneling tell; emit a length bucket.
            if let Some(first) = q.name.labels().first() {
                out.push(format!("QLABLEN_B{}", log2_bin(first.len())));
            }
            self.name_tokens(out, "QD", &q.name);
        }
        if msg.is_response {
            out.push(format!("RCODE_{:?}", msg.rcode).to_ascii_uppercase());
            out.push(format!("ANCOUNT_{}", msg.answers.len().min(7)));
            for a in msg.answers.iter().take(3) {
                out.push(format!("ATYPE_{:?}", a.rtype).to_ascii_uppercase());
            }
        }
    }

    fn tls_tokens(&self, out: &mut Vec<String>, payload: &[u8]) {
        let Ok(records) = tls::Record::parse_all(payload) else {
            // Mid-stream segment: count it as opaque TLS continuation.
            out.push("TLS_CONT".to_string());
            return;
        };
        for rec in records.iter().take(3) {
            match rec.content_type {
                tls::ContentType::Handshake => {
                    if let Ok(ch) = tls::ClientHello::parse(&rec.payload) {
                        out.push("TLS_CLIENT_HELLO".to_string());
                        for cs in ch.ciphersuites.iter().take(6) {
                            out.push(format!("CS_{cs:04X}"));
                        }
                        if let Some(sni) = &ch.server_name {
                            if let Ok(name) = dns::Name::parse_str(sni) {
                                self.name_tokens(out, "SNI", &name);
                            }
                        }
                    } else if let Ok(sh) = tls::ServerHello::parse(&rec.payload) {
                        out.push("TLS_SERVER_HELLO".to_string());
                        out.push(format!("CS_{:04X}", sh.ciphersuite));
                    } else {
                        out.push("TLS_HANDSHAKE".to_string());
                    }
                }
                tls::ContentType::ApplicationData => {
                    out.push("TLS_APPDATA".to_string());
                    out.push(format!("TLSLEN_B{}", log2_bin(rec.payload.len())));
                }
                tls::ContentType::Alert => out.push("TLS_ALERT".to_string()),
                tls::ContentType::ChangeCipherSpec => out.push("TLS_CCS".to_string()),
                tls::ContentType::Other(_) => out.push("TLS_OTHER".to_string()),
            }
        }
    }

    fn http_tokens(&self, out: &mut Vec<String>, payload: &[u8]) {
        if let Ok(req) = http::Request::parse(payload) {
            out.push(format!("HTTP_{}", req.method));
            let root = req.target.trim_start_matches('/').split(['/', '?']).next().unwrap_or("");
            out.push(format!(
                "PATH_{}",
                if root.is_empty() { "root".to_string() } else { root.to_ascii_lowercase() }
            ));
            if let Some(ua) = req.user_agent() {
                let product = ua.split(['/', ' ']).next().unwrap_or("ua");
                out.push(format!("UA_{}", product.to_ascii_lowercase()));
            }
            if let Some(host) = req.host() {
                if let Ok(name) = dns::Name::parse_str(host) {
                    self.name_tokens(out, "HOST", &name);
                }
            }
        } else if let Ok(resp) = http::Response::parse(payload) {
            out.push(format!("HTTP_{}XX", resp.status / 100));
            if let Some(ct) = resp.content_type() {
                let major = ct.split('/').next().unwrap_or("other");
                out.push(format!("CT_{}", major.to_ascii_lowercase()));
            }
            out.push(format!("BODY_B{}", log2_bin(resp.body.len())));
        } else {
            // Continuation segment of a larger HTTP message.
            out.push("HTTP_CONT".to_string());
        }
    }

    fn ntp_tokens(&self, out: &mut Vec<String>, payload: &[u8]) {
        match ntp::Packet::parse(payload) {
            Ok(p) => {
                out.push(format!("NTP_{:?}", p.mode).to_ascii_uppercase());
                out.push(format!("STRATUM_{}", p.stratum.min(9)));
            }
            Err(_) => out.push("NTP_MALFORMED".to_string()),
        }
    }

    fn dhcp_tokens(&self, out: &mut Vec<String>, payload: &[u8]) {
        match nfm_net::wire::dhcp::Message::parse(payload) {
            Ok(m) => {
                out.push(format!("DHCP_{:?}", m.msg_type).to_ascii_uppercase());
                if let Some(h) = &m.hostname {
                    // The device-type prefix of the hostname, not the index.
                    let prefix = h.split('-').next().unwrap_or("host");
                    out.push(format!("HOSTNAME_{}", prefix.to_ascii_lowercase()));
                }
            }
            Err(_) => out.push("DHCP_MALFORMED".to_string()),
        }
    }

    fn app_tokens(&self, out: &mut Vec<String>, sport: u16, dport: u16, payload: &[u8]) {
        if payload.is_empty() {
            return;
        }
        let port = sport.min(dport);
        match port {
            53 => self.dns_tokens(out, payload),
            443 | 8443 => self.tls_tokens(out, payload),
            80 | 8080 => self.http_tokens(out, payload),
            123 => self.ntp_tokens(out, payload),
            67 | 68 => self.dhcp_tokens(out, payload),
            25 | 143 => {
                // Mail verbs: the first ASCII word of the line.
                let line = payload.split(|&b| b == b'\r' || b == b'\n').next().unwrap_or(b"");
                let word: String = line
                    .iter()
                    .take(8)
                    .take_while(|b| b.is_ascii_alphanumeric() || **b == b'*')
                    .map(|&b| b.to_ascii_uppercase() as char)
                    .collect();
                if word.is_empty() {
                    out.push("MAIL_DATA".to_string());
                } else {
                    out.push(format!("MAIL_{word}"));
                }
            }
            1883 => {
                // MQTT control-packet type nibble.
                let kind = payload[0] >> 4;
                out.push(format!("MQTT_{kind}"));
            }
            554 => {
                let is_text = payload.iter().take(8).all(|b| b.is_ascii());
                out.push(if is_text { "RTSP_CTRL" } else { "RTSP_DATA" }.to_string());
            }
            _ => {
                out.push(format!("PAYLEN_B{}", log2_bin(payload.len())));
            }
        }
    }
}

impl Tokenizer for FieldTokenizer {
    fn tokenize(&self, packet: &Packet) -> Vec<String> {
        let mut out = Vec::with_capacity(16);
        match &packet.ip {
            IpRepr::V4(_) => out.push("IP4".to_string()),
            IpRepr::V6(_) => out.push("IP6".to_string()),
        }
        out.push(format!("PROTO_{:?}", packet.ip.protocol()).to_ascii_uppercase());
        out.push(Self::ttl_token(packet.ip.ttl()));
        out.push(format!("LEN_B{}", log2_bin(packet.wire_len())));
        match &packet.transport {
            Transport::Tcp { repr, payload } => {
                out.push(port_token(repr.src_port));
                out.push(port_token(repr.dst_port));
                out.push(format!("FLAGS_{}", repr.flags.mnemonic()));
                out.push(format!("WIN_B{}", log2_bin(repr.window as usize)));
                if self.app_layer {
                    self.app_tokens(&mut out, repr.src_port, repr.dst_port, payload);
                }
            }
            Transport::Udp { repr, payload } => {
                out.push(port_token(repr.src_port));
                out.push(port_token(repr.dst_port));
                if self.app_layer {
                    self.app_tokens(&mut out, repr.src_port, repr.dst_port, payload);
                }
            }
            Transport::Icmp { repr, .. } => {
                out.push(format!("ICMP_{:?}", repr.kind).to_ascii_uppercase());
            }
            Transport::Other { payload } => {
                out.push(format!("PAYLEN_B{}", log2_bin(payload.len())));
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "field"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfm_net::addr::MacAddr;
    use nfm_net::wire::dns::{Message, Name, RecordType};
    use std::net::Ipv4Addr;

    fn udp_dns_query() -> Packet {
        let q = Message::query(7, Name::parse_str("www.acme-video3.com").unwrap(), RecordType::A);
        Packet::udp_v4(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Ipv4Addr::new(192, 168, 0, 2),
            Ipv4Addr::new(10, 0, 0, 53),
            40000,
            53,
            64,
            q.emit(),
        )
    }

    #[test]
    fn dns_query_tokens_expose_hierarchy() {
        let toks = FieldTokenizer::new().tokenize(&udp_dns_query());
        assert!(toks.contains(&"IP4".to_string()));
        assert!(toks.contains(&"PROTO_UDP".to_string()));
        assert!(toks.contains(&"PORT_53".to_string()));
        assert!(toks.contains(&"PORT_EPH".to_string()));
        assert!(toks.contains(&"DNS_QUERY".to_string()));
        assert!(toks.contains(&"QTYPE_A".to_string()));
        // Reversed labels: TLD before brand before host.
        let i_com = toks.iter().position(|t| t == "QD_com").unwrap();
        let i_domain = toks.iter().position(|t| t == "QD_acme-video3").unwrap();
        let i_www = toks.iter().position(|t| t == "QD_www").unwrap();
        assert!(i_com < i_domain && i_domain < i_www);
    }

    #[test]
    fn headers_only_emits_no_app_tokens() {
        let toks = FieldTokenizer::headers_only().tokenize(&udp_dns_query());
        assert!(toks.iter().all(|t| !t.starts_with("DNS")));
        assert!(toks.contains(&"PORT_53".to_string()));
    }

    #[test]
    fn tls_client_hello_tokens_include_suites() {
        let hello = nfm_net::wire::tls::ClientHello {
            version: 0x0303,
            random: [1; 32],
            ciphersuites: vec![0xc02f, 0xc030],
            server_name: Some("api.example.net".to_string()),
        };
        let rec = nfm_net::wire::tls::Record {
            content_type: nfm_net::wire::tls::ContentType::Handshake,
            version: 0x0301,
            payload: hello.emit(),
        };
        let p = Packet::tcp_v4(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Ipv4Addr::new(192, 168, 0, 2),
            Ipv4Addr::new(198, 18, 0, 1),
            nfm_net::wire::tcp::Repr {
                src_port: 50000,
                dst_port: 443,
                seq: 0,
                ack: 0,
                flags: nfm_net::wire::tcp::Flags::PSH_ACK,
                window: 64000,
            },
            64,
            rec.emit(),
        );
        let toks = FieldTokenizer::new().tokenize(&p);
        assert!(toks.contains(&"TLS_CLIENT_HELLO".to_string()));
        assert!(toks.contains(&"CS_C02F".to_string()));
        assert!(toks.contains(&"CS_C030".to_string()));
        assert!(toks.contains(&"SNI_net".to_string()));
        assert!(toks.contains(&"FLAGS_AP".to_string()));
    }

    #[test]
    fn http_request_tokens() {
        let req = nfm_net::wire::http::Request::get(
            "example.com",
            "/api/v1/items?q=1",
            "nfm-browser/1.0",
        );
        let p = Packet::tcp_v4(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Ipv4Addr::new(192, 168, 0, 2),
            Ipv4Addr::new(198, 18, 0, 1),
            nfm_net::wire::tcp::Repr {
                src_port: 50000,
                dst_port: 80,
                seq: 0,
                ack: 0,
                flags: nfm_net::wire::tcp::Flags::PSH_ACK,
                window: 64000,
            },
            128,
            req.emit(),
        );
        let toks = FieldTokenizer::new().tokenize(&p);
        assert!(toks.contains(&"HTTP_GET".to_string()));
        assert!(toks.contains(&"PATH_api".to_string()));
        assert!(toks.contains(&"UA_nfm-browser".to_string()));
        assert!(toks.contains(&"TTL_128".to_string()));
    }

    #[test]
    fn malformed_payloads_tokenize_gracefully() {
        let p = Packet::udp_v4(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            40000,
            53,
            64,
            vec![0xff; 7],
        );
        let toks = FieldTokenizer::new().tokenize(&p);
        assert!(toks.contains(&"DNS_MALFORMED".to_string()));
    }

    #[test]
    fn ttl_buckets() {
        assert_eq!(FieldTokenizer::ttl_token(64), "TTL_64");
        assert_eq!(FieldTokenizer::ttl_token(63), "TTL_64");
        assert_eq!(FieldTokenizer::ttl_token(128), "TTL_128");
        assert_eq!(FieldTokenizer::ttl_token(255), "TTL_255");
        assert_eq!(FieldTokenizer::ttl_token(5), "TTL_32");
    }
}
