//! Byte-pair encoding learned over packet bytes — the learned middle ground
//! between raw bytes and hand-built field tokens (§4.1.2 cites BPE as
//! RoBERTa's subword scheme).
//!
//! Symbols start as the 256 byte values; training repeatedly merges the most
//! frequent adjacent pair into a new symbol. Encoding replays the merges in
//! learned order.

use std::collections::HashMap;

use nfm_net::packet::Packet;

use super::bytes::ByteTokenizer;
use super::Tokenizer;

/// A trained BPE tokenizer over packet bytes.
#[derive(Debug, Clone)]
pub struct BpeTokenizer {
    /// Learned merges in priority order: (left, right) → new symbol id.
    merges: Vec<(u32, u32)>,
    /// Byte extraction configuration shared with the byte baseline.
    pub byte_config: ByteTokenizer,
}

fn frame_symbols(byte_config: &ByteTokenizer, frame: &[u8]) -> Vec<u32> {
    let start = if byte_config.skip_ethernet { 14.min(frame.len()) } else { 0 };
    frame[start..].iter().take(byte_config.max_bytes).map(|&b| b as u32).collect()
}

impl BpeTokenizer {
    /// Learn `n_merges` merges from a corpus of raw frames.
    pub fn train(frames: &[Vec<u8>], n_merges: usize) -> BpeTokenizer {
        let byte_config = ByteTokenizer::new();
        let mut seqs: Vec<Vec<u32>> =
            frames.iter().map(|f| frame_symbols(&byte_config, f)).collect();
        let mut merges = Vec::with_capacity(n_merges);
        let mut next_symbol: u32 = 256;
        #[allow(clippy::explicit_counter_loop)] // symbol ids continue past the loop
        for _ in 0..n_merges {
            // Count adjacent pairs.
            let mut counts: HashMap<(u32, u32), usize> = HashMap::new();
            for seq in &seqs {
                for w in seq.windows(2) {
                    *counts.entry((w[0], w[1])).or_insert(0) += 1;
                }
            }
            // Deterministic argmax: highest count, then smallest pair.
            let Some((&pair, &count)) =
                counts.iter().max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
            else {
                break;
            };
            if count < 2 {
                break; // nothing left worth merging
            }
            merges.push(pair);
            let sym = next_symbol;
            next_symbol += 1;
            for seq in &mut seqs {
                merge_in_place(seq, pair, sym);
            }
        }
        BpeTokenizer { merges, byte_config }
    }

    /// Number of learned merges.
    pub fn n_merges(&self) -> usize {
        self.merges.len()
    }

    /// Encode raw frame bytes into BPE symbol tokens.
    pub fn encode_frame(&self, frame: &[u8]) -> Vec<String> {
        let mut seq = frame_symbols(&self.byte_config, frame);
        for (i, &pair) in self.merges.iter().enumerate() {
            merge_in_place(&mut seq, pair, 256 + i as u32);
        }
        seq.iter().map(|&s| format!("S{s}")).collect()
    }
}

/// Replace every adjacent occurrence of `pair` by `sym`, left to right.
fn merge_in_place(seq: &mut Vec<u32>, pair: (u32, u32), sym: u32) {
    let mut out = Vec::with_capacity(seq.len());
    let mut i = 0;
    while i < seq.len() {
        if i + 1 < seq.len() && seq[i] == pair.0 && seq[i + 1] == pair.1 {
            out.push(sym);
            i += 2;
        } else {
            out.push(seq[i]);
            i += 1;
        }
    }
    *seq = out;
}

impl Tokenizer for BpeTokenizer {
    fn tokenize(&self, packet: &Packet) -> Vec<String> {
        self.encode_frame(&packet.emit())
    }

    fn name(&self) -> &'static str {
        "bpe"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_in_place_basics() {
        let mut seq = vec![1, 2, 1, 2, 3, 1];
        merge_in_place(&mut seq, (1, 2), 256);
        assert_eq!(seq, vec![256, 256, 3, 1]);
        // Overlapping occurrences resolved left to right.
        let mut seq = vec![1, 1, 1];
        merge_in_place(&mut seq, (1, 1), 256);
        assert_eq!(seq, vec![256, 1]);
    }

    #[test]
    fn training_compresses_repetitive_corpus() {
        // A corpus with a strongly repeated 4-byte motif after a fake
        // 14-byte header.
        let mut frames = Vec::new();
        for i in 0..50u8 {
            let mut f = vec![0u8; 14];
            for _ in 0..8 {
                f.extend_from_slice(&[0xAA, 0xBB, 0xCC, i % 3]);
            }
            frames.push(f);
        }
        let bpe = BpeTokenizer::train(&frames, 20);
        assert!(bpe.n_merges() > 0);
        let tokens = bpe.encode_frame(&frames[0]);
        // 32 payload bytes compress well below 32 tokens.
        assert!(tokens.len() < 20, "{} tokens", tokens.len());
    }

    #[test]
    fn encoding_is_deterministic_and_consistent() {
        let frames: Vec<Vec<u8>> =
            (0..20).map(|i| (0..60).map(|j| ((i * 7 + j) % 11) as u8).collect()).collect();
        let bpe = BpeTokenizer::train(&frames, 10);
        let a = bpe.encode_frame(&frames[0]);
        let b = bpe.encode_frame(&frames[0]);
        assert_eq!(a, b);
    }

    #[test]
    fn no_merges_learned_from_unique_noise() {
        // All pairs unique → count < 2 → no merges.
        let frames = vec![(0..40u8).map(|b| b.wrapping_mul(17)).collect::<Vec<u8>>()];
        let bpe = BpeTokenizer::train(&frames, 10);
        assert_eq!(bpe.n_merges(), 0);
        let toks = bpe.encode_frame(&frames[0]);
        assert_eq!(toks.len(), 40 - 14);
    }

    #[test]
    fn train_stops_at_requested_merges() {
        let mut frames = Vec::new();
        for _ in 0..30 {
            let mut f = vec![0u8; 14];
            f.extend(std::iter::repeat_n([1u8, 2, 3, 4], 8).flatten());
            frames.push(f);
        }
        let bpe = BpeTokenizer::train(&frames, 5);
        assert!(bpe.n_merges() <= 5);
    }
}
