//! Tokenizers for packet traces (paper §4.1.2).
//!
//! "With packet traces being often viewed as sequences of bytes, with no
//! clear delimiters…how should network data get tokenized? One approach
//! could consist in applying character-based tokenizers. Another approach
//! may consist in recognizing the network protocol and tokenizing it based
//! on protocol format." Both are implemented here (plus learned BPE over
//! bytes), and experiment E4 ablates them.

pub mod bpe;
pub mod bytes;
pub mod field;

use nfm_net::packet::Packet;

/// Turns one parsed packet into a sequence of string tokens.
pub trait Tokenizer {
    /// Tokenize a parsed packet.
    fn tokenize(&self, packet: &Packet) -> Vec<String>;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Bin a byte count into a log₂ bucket token suffix, e.g. 0, 1, 2, 4, 8 …
/// Keeps numeric fields categorical but ordered, as §3.3 suggests for
/// "numerical variables".
pub fn log2_bin(n: usize) -> u32 {
    if n == 0 {
        0
    } else {
        usize::BITS - n.leading_zeros()
    }
}

/// Canonical token for a port: well-known ports keep their number (they are
/// semantic anchors like `PORT_443`); ephemeral ports collapse to one token.
pub fn port_token(port: u16) -> String {
    if port >= 32768 {
        "PORT_EPH".to_string()
    } else {
        format!("PORT_{port}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_bins_are_monotone() {
        let mut last = 0;
        for n in [0usize, 1, 2, 3, 4, 7, 8, 100, 1500, 65535] {
            let b = log2_bin(n);
            assert!(b >= last);
            last = b;
        }
        assert_eq!(log2_bin(0), 0);
        assert_eq!(log2_bin(1), 1);
        assert_eq!(log2_bin(2), 2);
        assert_eq!(log2_bin(1024), 11);
    }

    #[test]
    fn port_tokens_keep_wellknown_collapse_ephemeral() {
        assert_eq!(port_token(443), "PORT_443");
        assert_eq!(port_token(53), "PORT_53");
        assert_eq!(port_token(49152), "PORT_EPH");
        assert_eq!(port_token(60000), "PORT_EPH");
    }
}
