//! The character/byte-level baseline tokenizer (§4.1.2's first option):
//! every byte of the headers and the payload prefix becomes one token.

use nfm_net::packet::Packet;

use super::Tokenizer;

/// Byte-level tokenizer: emits `Bxx` hex tokens for up to `max_bytes` of the
/// emitted frame (headers first, so the informative bytes survive the cap).
#[derive(Debug, Clone)]
pub struct ByteTokenizer {
    /// Maximum bytes (tokens) emitted per packet.
    pub max_bytes: usize,
    /// Skip the Ethernet header (MACs carry no transferable semantics).
    pub skip_ethernet: bool,
}

impl Default for ByteTokenizer {
    fn default() -> Self {
        ByteTokenizer { max_bytes: 48, skip_ethernet: true }
    }
}

impl ByteTokenizer {
    /// Default configuration (48 bytes, Ethernet skipped).
    pub fn new() -> ByteTokenizer {
        ByteTokenizer::default()
    }

    /// Tokenize raw frame bytes directly.
    pub fn tokenize_bytes(&self, frame: &[u8]) -> Vec<String> {
        let start = if self.skip_ethernet { 14.min(frame.len()) } else { 0 };
        frame[start..].iter().take(self.max_bytes).map(|b| format!("B{b:02x}")).collect()
    }
}

impl Tokenizer for ByteTokenizer {
    fn tokenize(&self, packet: &Packet) -> Vec<String> {
        self.tokenize_bytes(&packet.emit())
    }

    fn name(&self) -> &'static str {
        "bytes"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfm_net::addr::MacAddr;
    use std::net::Ipv4Addr;

    fn sample() -> Packet {
        Packet::udp_v4(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1234,
            53,
            64,
            vec![0xde, 0xad],
        )
    }

    #[test]
    fn emits_hex_byte_tokens() {
        let toks = ByteTokenizer::new().tokenize(&sample());
        assert!(toks.len() <= 48);
        // First byte after Ethernet is the IPv4 version/IHL byte 0x45.
        assert_eq!(toks[0], "B45");
        assert!(toks.iter().all(|t| t.len() == 3 && t.starts_with('B')));
    }

    #[test]
    fn cap_respected_and_header_prioritized() {
        let t = ByteTokenizer { max_bytes: 8, skip_ethernet: true };
        let toks = t.tokenize(&sample());
        assert_eq!(toks.len(), 8);
    }

    #[test]
    fn ethernet_included_when_asked() {
        let t = ByteTokenizer { max_bytes: 64, skip_ethernet: false };
        let toks = t.tokenize(&sample());
        // Destination MAC (from_index(2)) leads: 02 00 00 ...
        assert_eq!(toks[0], "B02");
    }

    #[test]
    fn vocabulary_is_small() {
        // At most 256 distinct tokens regardless of traffic.
        let toks = ByteTokenizer::new().tokenize(&sample());
        for t in toks {
            let v = u8::from_str_radix(&t[1..], 16);
            assert!(v.is_ok());
        }
    }
}
