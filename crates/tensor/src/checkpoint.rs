//! Versioned, checksummed binary serialization for training state.
//!
//! Every checkpoint is a *record*: a fixed header (`NFMC` magic, format
//! version, a kind tag identifying the payload type, payload length) plus a
//! CRC-32 over the payload. Readers validate all of it and return typed
//! [`CheckpointError`]s — a truncated, corrupted, or wrong-version file is
//! always an `Err`, never a panic.
//!
//! The payload encoding is little-endian and explicit: no `unsafe`, no
//! reflection, just [`ByteWriter`]/[`ByteReader`] pairs kept in sync by
//! hand. Higher layers (encoder, heads, vocabulary, full train state) build
//! on the primitives here.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::fmt;
use std::path::Path;

use crate::matrix::Matrix;
use crate::optim::{Adam, Schedule};

/// File magic: "NFMC" (Network Foundation Model Checkpoint).
pub const MAGIC: [u8; 4] = *b"NFMC";
/// Current checkpoint format version.
pub const FORMAT_VERSION: u16 = 1;

/// Record kind: a bare matrix.
pub const KIND_MATRIX: u8 = 1;
/// Record kind: Adam optimizer state.
pub const KIND_ADAM: u8 = 2;
/// Record kind: a transformer encoder (config + parameters).
pub const KIND_ENCODER: u8 = 3;
/// Record kind: a vocabulary.
pub const KIND_VOCAB: u8 = 4;
/// Record kind: a full foundation model (vocab + encoder).
pub const KIND_MODEL: u8 = 5;
/// Record kind: mid-run training state (model + optimizers + progress).
pub const KIND_TRAIN: u8 = 6;
/// Record kind: a fine-tuned classifier (vocab + encoder + head + pooling).
pub const KIND_CLASSIFIER: u8 = 7;
/// Record kind: OOD embedding statistics (class centroids + shared variance).
pub const KIND_OOD: u8 = 8;
/// Record kind: a per-task classification head (name + pooling + weights)
/// detached from its shared encoder backbone.
pub const KIND_TASK_HEAD: u8 = 9;

/// Why a checkpoint could not be read or written.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem error (message includes the underlying cause).
    Io(String),
    /// The data ends before a complete value could be read.
    Truncated {
        /// Bytes the reader needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The file does not start with the `NFMC` magic.
    BadMagic([u8; 4]),
    /// The format version is newer than this build understands.
    UnsupportedVersion(u16),
    /// The record holds a different payload type than requested.
    WrongKind {
        /// Kind the caller asked for.
        expected: u8,
        /// Kind stored in the header.
        found: u8,
    },
    /// The payload CRC does not match the header.
    ChecksumMismatch {
        /// CRC stored in the header.
        stored: u32,
        /// CRC computed over the payload.
        computed: u32,
    },
    /// The payload decoded but its contents are inconsistent.
    Malformed(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(msg) => write!(f, "checkpoint I/O error: {msg}"),
            CheckpointError::Truncated { needed, available } => {
                write!(f, "checkpoint truncated: needed {needed} bytes, had {available}")
            }
            CheckpointError::BadMagic(m) => {
                write!(f, "not a checkpoint file (magic {m:02x?}, expected {MAGIC:02x?})")
            }
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v} (this build reads {FORMAT_VERSION})")
            }
            CheckpointError::WrongKind { expected, found } => {
                write!(f, "wrong checkpoint kind: expected {expected}, found {found}")
            }
            CheckpointError::ChecksumMismatch { stored, computed } => {
                write!(f, "checkpoint corrupted: stored CRC {stored:08x}, computed {computed:08x}")
            }
            CheckpointError::Malformed(msg) => write!(f, "malformed checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e.to_string())
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) lookup table, built at
/// compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Little-endian payload encoder.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter { buf: Vec::new() }
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append an `f32` (bit pattern; exact round-trip including NaN).
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a length-prefixed `f32` slice.
    pub fn put_f32_slice(&mut self, vs: &[f32]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_f32(v);
        }
    }
}

/// Little-endian payload decoder over a borrowed buffer.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.remaining() < n {
            return Err(CheckpointError::Truncated { needed: n, available: self.remaining() });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16`.
    pub fn get_u16(&mut self) -> Result<u16, CheckpointError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Read a `usize`, rejecting values that cannot fit or that exceed the
    /// remaining buffer (defends length fields against corruption).
    pub fn get_len(&mut self) -> Result<usize, CheckpointError> {
        let v = self.get_u64()?;
        let v = usize::try_from(v)
            .map_err(|_| CheckpointError::Malformed(format!("length {v} overflows usize")))?;
        // Any honest length field counts items that occupy at least one
        // byte each, so it can never exceed what remains.
        if v > self.remaining() {
            return Err(CheckpointError::Truncated { needed: v, available: self.remaining() });
        }
        Ok(v)
    }

    /// Read a `usize` that is a count (step numbers, epoch indices) rather
    /// than a length into this buffer — no remaining-bytes bound applies.
    pub fn get_count(&mut self) -> Result<usize, CheckpointError> {
        let v = self.get_u64()?;
        usize::try_from(v)
            .map_err(|_| CheckpointError::Malformed(format!("count {v} overflows usize")))
    }

    /// Read an `f32` bit pattern.
    pub fn get_f32(&mut self) -> Result<f32, CheckpointError> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CheckpointError> {
        let n = self.get_len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| CheckpointError::Malformed(format!("invalid UTF-8 string: {e}")))
    }

    /// Read a length-prefixed `f32` vector.
    pub fn get_f32_vec(&mut self) -> Result<Vec<f32>, CheckpointError> {
        let n = self.get_len()?;
        // Each f32 occupies 4 bytes; check up front so a corrupted length
        // cannot trigger a huge allocation.
        if n.checked_mul(4).is_none_or(|bytes| bytes > self.remaining()) {
            return Err(CheckpointError::Truncated {
                needed: n.saturating_mul(4),
                available: self.remaining(),
            });
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_f32()?);
        }
        Ok(out)
    }
}

/// Frame `payload` as a complete record of `kind`.
pub fn write_record(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 19);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validate a record's header and checksum, returning the payload.
pub fn read_record(bytes: &[u8], expected_kind: u8) -> Result<&[u8], CheckpointError> {
    let mut r = ByteReader::new(bytes);
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(CheckpointError::BadMagic([magic[0], magic[1], magic[2], magic[3]]));
    }
    let version = r.get_u16()?;
    if version != FORMAT_VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let kind = r.get_u8()?;
    if kind != expected_kind {
        return Err(CheckpointError::WrongKind { expected: expected_kind, found: kind });
    }
    let len = r.get_u64()?;
    let len = usize::try_from(len)
        .map_err(|_| CheckpointError::Malformed(format!("payload length {len} overflows")))?;
    let stored = r.get_u32()?;
    let payload = r.take(len)?;
    let computed = crc32(payload);
    if stored != computed {
        return Err(CheckpointError::ChecksumMismatch { stored, computed });
    }
    Ok(payload)
}

/// Write a record to `path` (atomic: write to a sibling temp file, then
/// rename, so a crash mid-write never leaves a half-written checkpoint at
/// the destination).
pub fn save_record(path: &Path, kind: u8, payload: &[u8]) -> Result<(), CheckpointError> {
    let bytes = write_record(kind, payload);
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Read and validate a record from `path`, returning the payload.
pub fn load_record(path: &Path, kind: u8) -> Result<Vec<u8>, CheckpointError> {
    let bytes = std::fs::read(path)?;
    read_record(&bytes, kind).map(<[u8]>::to_vec)
}

/// Serialize a matrix into `w`.
pub fn write_matrix(w: &mut ByteWriter, m: &Matrix) {
    w.put_usize(m.rows());
    w.put_usize(m.cols());
    for &v in m.data() {
        w.put_f32(v);
    }
}

/// Deserialize a matrix from `r`.
pub fn read_matrix(r: &mut ByteReader) -> Result<Matrix, CheckpointError> {
    let rows = r.get_len()?;
    let cols = r.get_len()?;
    let n = rows.checked_mul(cols).ok_or_else(|| {
        CheckpointError::Malformed(format!("matrix shape {rows}x{cols} overflows"))
    })?;
    if n.checked_mul(4).is_none_or(|bytes| bytes > r.remaining()) {
        return Err(CheckpointError::Truncated {
            needed: n.saturating_mul(4),
            available: r.remaining(),
        });
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(r.get_f32()?);
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

/// A matrix as a standalone checkpoint record.
pub fn matrix_to_bytes(m: &Matrix) -> Vec<u8> {
    let mut w = ByteWriter::new();
    write_matrix(&mut w, m);
    write_record(KIND_MATRIX, &w.into_bytes())
}

/// Parse a standalone matrix record.
pub fn matrix_from_bytes(bytes: &[u8]) -> Result<Matrix, CheckpointError> {
    let payload = read_record(bytes, KIND_MATRIX)?;
    let mut r = ByteReader::new(payload);
    let m = read_matrix(&mut r)?;
    if r.remaining() != 0 {
        return Err(CheckpointError::Malformed(format!(
            "{} trailing bytes after matrix",
            r.remaining()
        )));
    }
    Ok(m)
}

/// Serialize a learning-rate schedule.
pub fn write_schedule(w: &mut ByteWriter, s: &Schedule) {
    match *s {
        Schedule::Constant(lr) => {
            w.put_u8(0);
            w.put_f32(lr);
        }
        Schedule::WarmupLinear { peak, warmup, total } => {
            w.put_u8(1);
            w.put_f32(peak);
            w.put_usize(warmup);
            w.put_usize(total);
        }
    }
}

/// Deserialize a learning-rate schedule.
pub fn read_schedule(r: &mut ByteReader) -> Result<Schedule, CheckpointError> {
    match r.get_u8()? {
        0 => Ok(Schedule::Constant(r.get_f32()?)),
        1 => {
            let peak = r.get_f32()?;
            let warmup = r.get_count()?;
            let total = r.get_count()?;
            Ok(Schedule::WarmupLinear { peak, warmup, total })
        }
        tag => Err(CheckpointError::Malformed(format!("unknown schedule tag {tag}"))),
    }
}

/// Serialize full Adam state (hyperparameters, schedule, step count, and
/// both moment estimates) into `w`.
pub fn write_adam(w: &mut ByteWriter, opt: &Adam) {
    write_schedule(w, &opt.schedule);
    w.put_f32(opt.beta1);
    w.put_f32(opt.beta2);
    w.put_f32(opt.eps);
    w.put_f32(opt.weight_decay);
    w.put_f32(opt.lr_scale());
    let (t, m, v) = opt.state();
    w.put_usize(t);
    w.put_usize(m.len());
    for slot in m {
        w.put_f32_slice(slot);
    }
    for slot in v {
        w.put_f32_slice(slot);
    }
}

/// Deserialize a fully-formed Adam optimizer from `r`.
pub fn read_adam(r: &mut ByteReader) -> Result<Adam, CheckpointError> {
    let schedule = read_schedule(r)?;
    let mut opt = Adam::new(schedule);
    opt.beta1 = r.get_f32()?;
    opt.beta2 = r.get_f32()?;
    opt.eps = r.get_f32()?;
    opt.weight_decay = r.get_f32()?;
    opt.set_lr_scale(r.get_f32()?);
    let t = r.get_count()?;
    let n_slots = r.get_len()?;
    let read_moments = |r: &mut ByteReader| -> Result<Vec<Vec<f32>>, CheckpointError> {
        let mut out = Vec::with_capacity(n_slots);
        for _ in 0..n_slots {
            out.push(r.get_f32_vec()?);
        }
        Ok(out)
    };
    let m = read_moments(r)?;
    let v = read_moments(r)?;
    if m.len() != v.len() || m.iter().zip(&v).any(|(a, b)| a.len() != b.len()) {
        return Err(CheckpointError::Malformed("adam moment shapes disagree".into()));
    }
    opt.restore_state(t, m, v);
    Ok(opt)
}

/// Adam state as a standalone checkpoint record.
pub fn adam_to_bytes(opt: &Adam) -> Vec<u8> {
    let mut w = ByteWriter::new();
    write_adam(&mut w, opt);
    write_record(KIND_ADAM, &w.into_bytes())
}

/// Parse a standalone Adam record.
pub fn adam_from_bytes(bytes: &[u8]) -> Result<Adam, CheckpointError> {
    let payload = read_record(bytes, KIND_ADAM)?;
    let mut r = ByteReader::new(payload);
    read_adam(&mut r)
}

/// Serialize every parameter slot of a module, in visit order.
pub fn write_module_params(w: &mut ByteWriter, module: &mut dyn crate::layers::Module) {
    let mut slots: Vec<Vec<f32>> = Vec::new();
    module.visit_params(&mut |p, _| slots.push(p.to_vec()));
    w.put_usize(slots.len());
    for slot in &slots {
        w.put_f32_slice(slot);
    }
}

/// Overwrite a module's parameters from a serialized dump. The module must
/// have the same architecture (slot count and sizes) as the one saved.
pub fn read_module_params(
    r: &mut ByteReader,
    module: &mut dyn crate::layers::Module,
) -> Result<(), CheckpointError> {
    let n = r.get_len()?;
    let mut slots: Vec<Vec<f32>> = Vec::with_capacity(n);
    for _ in 0..n {
        slots.push(r.get_f32_vec()?);
    }
    let mut expected = 0usize;
    module.visit_params(&mut |_, _| expected += 1);
    if expected != n {
        return Err(CheckpointError::Malformed(format!(
            "parameter slot count mismatch: module has {expected}, checkpoint has {n}"
        )));
    }
    let mut mismatch: Option<(usize, usize, usize)> = None;
    let mut i = 0usize;
    module.visit_params(&mut |p, _| {
        if p.len() == slots[i].len() {
            p.copy_from_slice(&slots[i]);
        } else if mismatch.is_none() {
            mismatch = Some((i, p.len(), slots[i].len()));
        }
        i += 1;
    });
    if let Some((slot, have, want)) = mismatch {
        return Err(CheckpointError::Malformed(format!(
            "parameter slot {slot} size mismatch: module has {have}, checkpoint has {want}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Module};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn crc32_known_vector() {
        // CRC-32/ISO-HDLC of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_round_trip() {
        let payload = b"hello checkpoint";
        let rec = write_record(KIND_MATRIX, payload);
        assert_eq!(read_record(&rec, KIND_MATRIX).unwrap(), payload);
    }

    #[test]
    fn record_rejects_wrong_kind_version_magic() {
        let rec = write_record(KIND_MATRIX, b"x");
        assert!(matches!(
            read_record(&rec, KIND_ADAM),
            Err(CheckpointError::WrongKind { expected: KIND_ADAM, found: KIND_MATRIX })
        ));
        let mut bad_magic = rec.clone();
        bad_magic[0] = b'X';
        assert!(matches!(read_record(&bad_magic, KIND_MATRIX), Err(CheckpointError::BadMagic(_))));
        let mut bad_version = rec.clone();
        bad_version[4] = 0xFF;
        assert!(matches!(
            read_record(&bad_version, KIND_MATRIX),
            Err(CheckpointError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn record_rejects_corruption_and_truncation() {
        let rec = write_record(KIND_MATRIX, b"payload bytes");
        let mut flipped = rec.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert!(matches!(
            read_record(&flipped, KIND_MATRIX),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
        for cut in 0..rec.len() {
            assert!(
                read_record(&rec[..cut], KIND_MATRIX).is_err(),
                "prefix of {cut} bytes accepted"
            );
        }
    }

    #[test]
    fn matrix_round_trip_is_bitwise() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = crate::init::normal(&mut rng, 7, 3, 2.0);
        let bytes = matrix_to_bytes(&m);
        let back = matrix_from_bytes(&bytes).unwrap();
        assert_eq!(back.rows(), 7);
        assert_eq!(back.cols(), 3);
        for (a, b) in m.data().iter().zip(back.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn matrix_preserves_nan_and_inf_bits() {
        let m = Matrix::from_vec(1, 3, vec![f32::NAN, f32::INFINITY, -0.0]);
        let back = matrix_from_bytes(&matrix_to_bytes(&m)).unwrap();
        for (a, b) in m.data().iter().zip(back.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn adam_round_trip_preserves_moments_and_step() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut layer = Linear::new(&mut rng, 4, 3);
        let mut opt = Adam::new(Schedule::WarmupLinear { peak: 1e-3, warmup: 5, total: 50 });
        opt.set_lr_scale(0.25);
        let x = crate::init::normal(&mut rng, 2, 4, 1.0);
        for _ in 0..3 {
            layer.zero_grad();
            let y = layer.forward(&x);
            layer.backward(&y);
            opt.step(&mut layer);
        }
        let back = adam_from_bytes(&adam_to_bytes(&opt)).unwrap();
        assert_eq!(back.steps(), opt.steps());
        assert_eq!(back.lr_scale(), 0.25);
        assert_eq!(back.schedule, opt.schedule);
        let (_, m0, v0) = opt.state();
        let (_, m1, v1) = back.state();
        assert_eq!(m0, m1);
        assert_eq!(v0, v1);
    }

    #[test]
    fn module_params_round_trip() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut layer = Linear::new(&mut rng, 5, 2);
        let mut w = ByteWriter::new();
        write_module_params(&mut w, &mut layer);
        let bytes = w.into_bytes();
        let mut fresh = Linear::new(&mut rng, 5, 2);
        let mut r = ByteReader::new(&bytes);
        read_module_params(&mut r, &mut fresh).unwrap();
        assert_eq!(layer.w.data(), fresh.w.data());
        // Wrong architecture is a typed error.
        let mut wrong = Linear::new(&mut rng, 3, 2);
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            read_module_params(&mut r, &mut wrong),
            Err(CheckpointError::Malformed(_))
        ));
    }

    #[test]
    fn save_and_load_record_via_file() {
        let dir = std::env::temp_dir().join(format!("nfm_ckpt_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.nfmc");
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let mut w = ByteWriter::new();
        write_matrix(&mut w, &m);
        save_record(&path, KIND_MATRIX, &w.into_bytes()).unwrap();
        let payload = load_record(&path, KIND_MATRIX).unwrap();
        let back = read_matrix(&mut ByteReader::new(&payload)).unwrap();
        assert_eq!(back.data(), m.data());
        std::fs::remove_dir_all(&dir).ok();
    }
}
