//! Scoped worker pool with deterministic sharding.
//!
//! Built on `std::thread::scope` only — the build environment has no
//! crates.io access, so rayon is unavailable (the `compat/criterion` stub's
//! `rayon` feature is empty). Three properties drive the design:
//!
//! 1. **Fixed shard boundaries.** Work is split by pure functions of the
//!    problem size ([`shard_ranges`], [`reduce_shards`]), never of the
//!    thread count, so every floating-point reduction has the same shape —
//!    and therefore the same bits — whether it runs on 1 thread or 64.
//! 2. **Single-thread fast path.** With one effective thread (or inside an
//!    already-parallel region) no threads are spawned at all: the exact
//!    sequential loop runs inline on the caller, so `NFM_THREADS=1` is a
//!    plain, debuggable serial execution of the same arithmetic.
//! 3. **No nesting.** Worker closures run with a thread-local flag set;
//!    pool calls made from inside a worker degrade to the sequential path
//!    instead of oversubscribing the machine. Data-level parallelism (batch
//!    shards) therefore composes safely with kernel-level parallelism
//!    (matmul row shards).
//!
//! The thread count comes from the `NFM_THREADS` environment variable,
//! falling back to [`std::thread::available_parallelism`]; tests override
//! it in-process with [`set_threads`]. Whatever is requested, the count
//! actually used to spawn workers is capped at the machine's hardware
//! parallelism (see [`effective_threads`]) — oversubscribing compute-bound
//! kernels only adds spawn overhead.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Hard cap on worker threads (a safety bound for absurd `NFM_THREADS`).
pub const MAX_THREADS: usize = 64;

/// Shard count used by order-sensitive reductions ([`reduce_shards`]).
/// A constant — never derived from the thread count — so reduction trees
/// are identical for every parallelism level.
pub const REDUCE_SHARDS: usize = 8;

static OVERRIDE: AtomicUsize = AtomicUsize::new(0);
static DEFAULT: OnceLock<usize> = OnceLock::new();

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn env_default() -> usize {
    std::env::var("NFM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        .min(MAX_THREADS)
}

/// The configured worker count: the [`set_threads`] override if set,
/// otherwise `NFM_THREADS`, otherwise the machine's available parallelism.
pub fn num_threads() -> usize {
    let o = OVERRIDE.load(Ordering::Relaxed);
    if o != 0 {
        return o;
    }
    *DEFAULT.get_or_init(env_default)
}

/// Override the worker count in-process (`0` clears the override and
/// returns to the `NFM_THREADS`/auto default). Intended for tests and
/// benchmarks; results are bitwise identical at every setting, so a
/// concurrent override is a performance event, never a correctness one.
pub fn set_threads(n: usize) {
    OVERRIDE.store(n.min(MAX_THREADS), Ordering::Relaxed);
}

/// The machine's available hardware parallelism (cached).
fn hw_threads() -> usize {
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Worker count effective at this call site: 1 inside a pool worker (no
/// nested spawning), otherwise [`num_threads`] capped at the machine's
/// hardware parallelism. The cap matters for compute-bound kernels:
/// requesting `NFM_THREADS=4` on a 1-core host used to spawn four scoped
/// threads that time-slice one core, paying full spawn overhead for zero
/// speedup (the `matmul_96x256x256`/`pretrain_epoch` 4-thread bench
/// regressions). Oversubscription never helps these kernels, and results
/// are bitwise identical at every worker count, so capping is purely a
/// performance decision.
pub fn effective_threads() -> usize {
    if IN_WORKER.with(Cell::get) {
        1
    } else {
        num_threads().min(hw_threads())
    }
}

/// Split `0..len` into `shards` contiguous ranges whose boundaries depend
/// only on `(len, shards)`. Empty trailing ranges are dropped.
pub fn shard_ranges(len: usize, shards: usize) -> Vec<Range<usize>> {
    let shards = shards.clamp(1, len.max(1));
    let mut out = Vec::with_capacity(shards);
    for s in 0..shards {
        let start = s * len / shards;
        let end = (s + 1) * len / shards;
        if start < end {
            out.push(start..end);
        }
    }
    if out.is_empty() {
        out.push(0..0);
    }
    out
}

/// Time one task and record it in the `pool.task.wall_us` histogram (a
/// wall-clock metric: rendered in tables, excluded from the deterministic
/// JSONL snapshot).
fn timed_task<R>(f: &(impl Fn(usize) -> R + Sync), i: usize) -> R {
    let t0 = std::time::Instant::now();
    let r = f(i);
    nfm_obs::histogram!("pool.task.wall_us", nfm_obs::Unit::Micros, nfm_obs::WALL_EDGES)
        .observe(t0.elapsed().as_micros() as u64);
    r
}

/// Run `f(task_index)` for every task, returning results in task order.
/// Tasks are handed to workers through an atomic counter, so scheduling is
/// nondeterministic — callers must ensure tasks are independent (they get
/// `&self`-style shared access only). The returned ordering is always by
/// task index regardless of which worker ran what.
pub fn par_map<R, F>(n_tasks: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = effective_threads().min(n_tasks);
    nfm_obs::counter!("pool.par_map.calls").inc();
    nfm_obs::counter!("pool.par_map.tasks").add(n_tasks as u64);
    // Gauge writes are last-write-wins; restricting them to the main thread
    // keeps the final snapshot value deterministic (workers would race).
    if !IN_WORKER.with(Cell::get) {
        nfm_obs::gauge!("pool.threads.effective").set(threads.max(1) as f64);
    }
    if threads <= 1 {
        let f = &f;
        return (0..n_tasks).map(|i| timed_task(f, i)).collect();
    }
    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;
    let mut slots: Vec<Option<R>> = (0..n_tasks).map(|_| None).collect();
    let collected: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n_tasks {
                            break;
                        }
                        local.push((i, timed_task(f, i)));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("pool worker panicked")).collect()
    });
    for (i, r) in collected.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots.into_iter().map(|s| s.expect("pool task not executed")).collect()
}

/// Minimum total work (in flop-like units) before [`par_map_work`] spawns
/// threads. Mirrors the matmul gate: workers are scoped OS threads
/// (~tens of µs to spawn), so fanning out below roughly a million
/// flop-like units of work costs more than it saves — the sequential path
/// is strictly faster for small jobs like single-request inference.
pub const PAR_WORK_MIN: usize = 1 << 20;

/// [`par_map`] with a work gate: runs sequentially inline when
/// `total_work < ` [`PAR_WORK_MIN`], spawning workers only when the job is
/// big enough to amortise thread startup. `total_work` is the caller's
/// estimate of the whole call's cost in flop-like units. Results are
/// bitwise identical on either path — tasks are independent and returned
/// in task order — so the gate is a performance decision, never a
/// correctness one.
pub fn par_map_work<R, F>(n_tasks: usize, total_work: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if total_work < PAR_WORK_MIN || effective_threads() <= 1 {
        let f = &f;
        return (0..n_tasks).map(|i| timed_task(f, i)).collect();
    }
    par_map(n_tasks, f)
}

/// Split `data` into chunks of `chunk_len` elements and run
/// `f(element_offset, chunk)` over each, in parallel when worthwhile.
/// Chunks are disjoint, so any per-element or per-chunk computation is
/// deterministic regardless of thread count.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk_len = chunk_len.max(1);
    let n_chunks = data.len().div_ceil(chunk_len);
    let threads = effective_threads().min(n_chunks.max(1));
    nfm_obs::counter!("pool.par_chunks.calls").inc();
    if threads <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i * chunk_len, chunk);
        }
        return;
    }
    // Strided assignment: worker w owns chunks w, w+threads, … — fixed
    // chunk boundaries, so results never depend on the assignment.
    let mut per_worker: Vec<Vec<(usize, &mut [T])>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
        per_worker[i % threads].push((i * chunk_len, chunk));
    }
    let f = &f;
    std::thread::scope(|scope| {
        for assigned in per_worker {
            scope.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                for (offset, chunk) in assigned {
                    f(offset, chunk);
                }
            });
        }
    });
}

/// Deterministic parallel reduction: split `0..len` into [`REDUCE_SHARDS`]
/// fixed shards, compute `partial(range)` per shard (in parallel), then
/// left-fold the partials **in shard order** with `combine`. Because the
/// shard boundaries and fold order are pure functions of `len`, the result
/// is bitwise identical for every thread count.
pub fn reduce_shards<R, P, C>(len: usize, init: R, partial: P, combine: C) -> R
where
    R: Send,
    P: Fn(Range<usize>) -> R + Sync,
    C: Fn(R, R) -> R,
{
    let ranges = shard_ranges(len, REDUCE_SHARDS);
    let partials = par_map(ranges.len(), |i| partial(ranges[i].clone()));
    partials.into_iter().fold(init, combine)
}

/// Chunk length for elementwise parallel ops over a `len`-element slice:
/// the whole slice when parallelism isn't worthwhile (small input, single
/// thread, already inside a worker), otherwise an even split across the
/// effective workers. Chunk boundaries never affect elementwise results.
///
/// The gate reuses [`PAR_WORK_MIN`]: elementwise ops are ~one flop-like
/// unit per element and memory-bound besides, so below a million elements
/// the scoped-thread spawns (~tens of µs each) cost more than the whole
/// sequential loop. The old 8192-element gate made every mid-sized tensor
/// in the micro-batched serving path (e.g. 512×64 activations) spawn
/// workers for microseconds of work, which is why 4-thread serving
/// benchmarked *slower* than 1-thread.
pub fn elem_chunk(len: usize) -> usize {
    let threads = effective_threads();
    if threads <= 1 || len < PAR_WORK_MIN {
        len.max(1)
    } else {
        len.div_ceil(threads)
    }
}

/// Fixed-shard sum of squares (the gradient-clipping hot loop). Each shard
/// accumulates sequentially; shard partials fold in order, so the value is
/// independent of the thread count.
pub fn sum_sq(xs: &[f32]) -> f32 {
    if xs.len() < 4096 {
        return xs.iter().map(|v| v * v).sum();
    }
    reduce_shards(xs.len(), 0.0f32, |r| xs[r].iter().map(|v| v * v).sum::<f32>(), |acc, p| acc + p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_cover_exactly() {
        for len in [0usize, 1, 7, 8, 9, 100, 1023] {
            for shards in [1usize, 2, 7, 8, 64] {
                let ranges = shard_ranges(len, shards);
                let mut covered = 0;
                let mut prev_end = 0;
                for r in &ranges {
                    assert_eq!(r.start, prev_end, "contiguous");
                    covered += r.len();
                    prev_end = r.end;
                }
                assert_eq!(covered, len, "len {len} shards {shards}");
            }
        }
    }

    #[test]
    fn shard_ranges_are_a_pure_function_of_len() {
        set_threads(1);
        let a = shard_ranges(1000, REDUCE_SHARDS);
        set_threads(4);
        let b = shard_ranges(1000, REDUCE_SHARDS);
        set_threads(0);
        assert_eq!(a, b);
    }

    #[test]
    fn par_map_preserves_task_order() {
        set_threads(4);
        let out = par_map(100, |i| i * 3);
        set_threads(0);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_mut_touches_every_element_once() {
        set_threads(3);
        let mut data = vec![0u32; 1000];
        par_chunks_mut(&mut data, 7, |offset, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v += (offset + i) as u32 + 1;
            }
        });
        set_threads(0);
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32 + 1));
    }

    #[test]
    fn sum_sq_is_thread_count_invariant() {
        let xs: Vec<f32> = (0..20_000).map(|i| (i as f32 * 0.37).sin()).collect();
        set_threads(1);
        let a = sum_sq(&xs);
        set_threads(4);
        let b = sum_sq(&xs);
        set_threads(0);
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn nested_calls_degrade_to_sequential() {
        set_threads(4);
        let nested = par_map(4, |_| effective_threads());
        set_threads(0);
        assert!(nested.iter().all(|&t| t == 1), "workers must not nest: {nested:?}");
    }

    #[test]
    fn par_map_work_gates_small_jobs_and_matches_par_map() {
        set_threads(4);
        let small = par_map_work(8, 100, |i| i * 7);
        let big = par_map_work(8, PAR_WORK_MIN * 2, |i| i * 7);
        set_threads(0);
        let expect: Vec<usize> = (0..8).map(|i| i * 7).collect();
        assert_eq!(small, expect, "sequential path below the gate");
        assert_eq!(big, expect, "parallel path above the gate");
    }

    #[test]
    fn effective_threads_never_exceeds_hardware() {
        set_threads(MAX_THREADS);
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert!(effective_threads() <= hw);
        set_threads(0);
    }

    #[test]
    fn set_threads_round_trip() {
        set_threads(2);
        assert_eq!(num_threads(), 2);
        set_threads(0);
        assert!(num_threads() >= 1);
    }
}
