//! Optimizers (SGD with momentum, Adam), gradient clipping, and learning
//! rate schedules (constant, linear warmup + decay).
//!
//! Optimizers address parameters through [`Module::visit_params`]; per-slot
//! state (momentum, Adam moments) is allocated lazily and aligned by visit
//! order, which every layer keeps stable.

use crate::layers::Module;
use crate::pool;

/// Learning-rate schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Schedule {
    /// Fixed rate.
    Constant(f32),
    /// Linear warmup over `warmup` steps to `peak`, then linear decay to
    /// zero at `total` steps.
    WarmupLinear {
        /// Peak learning rate.
        peak: f32,
        /// Warmup steps.
        warmup: usize,
        /// Total steps (decay reaches 0 here).
        total: usize,
    },
}

impl Schedule {
    /// Learning rate at step `t` (0-based).
    pub fn lr(&self, t: usize) -> f32 {
        match *self {
            Schedule::Constant(lr) => lr,
            Schedule::WarmupLinear { peak, warmup, total } => {
                if t < warmup {
                    peak * (t + 1) as f32 / warmup.max(1) as f32
                } else if t >= total {
                    0.0
                } else {
                    peak * (total - t) as f32 / (total - warmup).max(1) as f32
                }
            }
        }
    }
}

/// Clip all gradients so the global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
pub fn clip_global_norm(model: &mut dyn Module, max_norm: f32) -> f32 {
    // Per-slot fixed-shard sums folded in visit order: the norm is a pure
    // function of the gradient values, independent of the thread count.
    let mut sq = 0.0f32;
    model.visit_params(&mut |_, g| sq += pool::sum_sq(g));
    let norm = sq.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        model.visit_params(&mut |_, g| {
            let chunk_len = pool::elem_chunk(g.len());
            pool::par_chunks_mut(g, chunk_len, |_, chunk| {
                for v in chunk {
                    *v *= scale;
                }
            });
        });
    }
    norm
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning-rate schedule.
    pub schedule: Schedule,
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
    t: usize,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Create with a schedule and momentum.
    pub fn new(schedule: Schedule, momentum: f32) -> Sgd {
        Sgd { schedule, momentum, t: 0, velocity: Vec::new() }
    }

    /// Apply one update step; gradients are left untouched (call
    /// `zero_grad` afterwards).
    pub fn step(&mut self, model: &mut dyn Module) {
        let lr = self.schedule.lr(self.t);
        self.t += 1;
        let momentum = self.momentum;
        let mut slot = 0;
        let velocity = &mut self.velocity;
        model.visit_params(&mut |p, g| {
            if velocity.len() <= slot {
                velocity.push(vec![0.0; p.len()]);
            }
            let v = &mut velocity[slot];
            assert_eq!(v.len(), p.len(), "parameter shapes changed between steps");
            for i in 0..p.len() {
                v[i] = momentum * v[i] + g[i];
                p[i] -= lr * v[i];
            }
            slot += 1;
        });
    }

    /// Steps taken so far.
    pub fn steps(&self) -> usize {
        self.t
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning-rate schedule.
    pub schedule: Schedule,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Decoupled weight decay (AdamW-style; 0 disables).
    pub weight_decay: f32,
    t: usize,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
    lr_scale: f32,
}

impl Adam {
    /// Create with standard betas.
    pub fn new(schedule: Schedule) -> Adam {
        Adam {
            schedule,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
            lr_scale: 1.0,
        }
    }

    /// Multiplier applied on top of the schedule's learning rate. Divergence
    /// recovery halves this to back off without rebuilding the schedule.
    pub fn lr_scale(&self) -> f32 {
        self.lr_scale
    }

    /// Set the learning-rate multiplier (see [`Adam::lr_scale`]).
    pub fn set_lr_scale(&mut self, scale: f32) {
        self.lr_scale = scale;
    }

    /// Internal state for checkpointing: `(t, m, v)`.
    pub fn state(&self) -> (usize, &[Vec<f32>], &[Vec<f32>]) {
        (self.t, &self.m, &self.v)
    }

    /// Restore internal state from a checkpoint.
    pub fn restore_state(&mut self, t: usize, m: Vec<Vec<f32>>, v: Vec<Vec<f32>>) {
        self.t = t;
        self.m = m;
        self.v = v;
    }

    /// Apply one update step.
    pub fn step(&mut self, model: &mut dyn Module) {
        let lr = self.schedule.lr(self.t) * self.lr_scale;
        self.t += 1;
        let t = self.t as f32;
        let (b1, b2, eps, wd) = (self.beta1, self.beta2, self.eps, self.weight_decay);
        let bc1 = 1.0 - b1.powf(t);
        let bc2 = 1.0 - b2.powf(t);
        let mut slot = 0;
        let (ms, vs) = (&mut self.m, &mut self.v);
        model.visit_params(&mut |p, g| {
            if ms.len() <= slot {
                ms.push(vec![0.0; p.len()]);
                vs.push(vec![0.0; p.len()]);
            }
            let m = &mut ms[slot];
            let v = &mut vs[slot];
            assert_eq!(m.len(), p.len(), "parameter shapes changed between steps");
            for i in 0..p.len() {
                m[i] = b1 * m[i] + (1.0 - b1) * g[i];
                v[i] = b2 * v[i] + (1.0 - b2) * g[i] * g[i];
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                p[i] -= lr * (mhat / (vhat.sqrt() + eps) + wd * p[i]);
            }
            slot += 1;
        });
    }

    /// Steps taken so far.
    pub fn steps(&self) -> usize {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Module};
    use crate::matrix::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Minimize ||x·W + b - target||² with each optimizer; loss must drop.
    fn train_once(use_adam: bool) -> (f32, f32) {
        let mut rng = StdRng::seed_from_u64(11);
        let mut layer = Linear::new(&mut rng, 3, 2);
        let x = crate::init::normal(&mut rng, 8, 3, 1.0);
        // Realizable target: generated by a hidden linear layer, so the
        // optimum loss is zero.
        let true_layer = Linear::new(&mut rng, 3, 2);
        let target = true_layer.forward_inference(&x);
        let mut sgd = Sgd::new(Schedule::Constant(0.05), 0.9);
        let mut adam = Adam::new(Schedule::Constant(0.05));
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..200 {
            layer.zero_grad();
            let y = layer.forward(&x);
            let mut diff = y.clone();
            diff.sub_assign(&target);
            let loss: f32 = diff.data().iter().map(|v| v * v).sum::<f32>();
            let dy = diff.map(|v| 2.0 * v);
            layer.backward(&dy);
            if use_adam {
                adam.step(&mut layer);
            } else {
                sgd.step(&mut layer);
            }
            if first.is_none() {
                first = Some(loss);
            }
            last = loss;
        }
        (first.unwrap(), last)
    }

    #[test]
    fn sgd_reduces_loss() {
        let (first, last) = train_once(false);
        assert!(last < first * 0.05, "first {first} last {last}");
    }

    #[test]
    fn adam_reduces_loss() {
        let (first, last) = train_once(true);
        assert!(last < first * 0.05, "first {first} last {last}");
    }

    #[test]
    fn warmup_schedule_shape() {
        let s = Schedule::WarmupLinear { peak: 1.0, warmup: 10, total: 110 };
        assert!(s.lr(0) < s.lr(5));
        assert!((s.lr(9) - 1.0).abs() < 1e-6);
        assert!(s.lr(10) <= 1.0);
        assert!(s.lr(60) < s.lr(10));
        assert_eq!(s.lr(110), 0.0);
        assert_eq!(s.lr(1000), 0.0);
    }

    #[test]
    fn clip_reduces_large_gradients() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut layer = Linear::new(&mut rng, 4, 4);
        let x = crate::init::normal(&mut rng, 4, 4, 100.0);
        let y = layer.forward(&x);
        layer.backward(&y.map(|v| v * 100.0));
        let pre = clip_global_norm(&mut layer, 1.0);
        assert!(pre > 1.0);
        // After clipping, the norm is at most 1.
        let mut sq = 0.0f32;
        layer.visit_params(&mut |_, g| {
            for v in g {
                sq += *v * *v;
            }
        });
        assert!(sq.sqrt() <= 1.0 + 1e-4);
    }

    #[test]
    fn clip_noop_when_small() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut layer = Linear::new(&mut rng, 2, 2);
        layer.zero_grad();
        let pre = clip_global_norm(&mut layer, 10.0);
        assert_eq!(pre, 0.0);
    }

    #[test]
    fn matrix_target_shapes_preserved() {
        // Guard that optimizers don't corrupt shapes (params stay finite).
        let mut rng = StdRng::seed_from_u64(14);
        let mut layer = Linear::new(&mut rng, 5, 3);
        let x = crate::init::normal(&mut rng, 2, 5, 1.0);
        let mut adam = Adam::new(Schedule::Constant(0.001));
        for _ in 0..10 {
            layer.zero_grad();
            let y = layer.forward(&x);
            layer.backward(&y);
            adam.step(&mut layer);
        }
        assert!(layer.w.is_finite());
        let y = layer.forward(&Matrix::zeros(1, 5));
        assert_eq!(y.cols(), 3);
    }
}
